(* Benchmark & regeneration harness.

   Regenerates every table and figure of the paper:
     TABLE-1   competitive-ratio bounds — theory, executed lower-bound
               gadgets, and upper-bound fuzzing against exact OPT
     TABLE-2   experimental parameters
     FIGURE-1  Move To Front leading/non-leading decomposition (live run)
     FIGURE-2  First Fit P/Q decomposition (live run)
     FIGURE-3  Theorem 5 adversarial execution (live run)
     FIGURE-4  average-case ratio sweep over the d × mu grid
     ABLATIONS Best Fit load measures, dimension correlation, clairvoyance

   then runs Bechamel micro-benchmarks (one per table/figure) measuring the
   throughput of the code paths that produce them.

   Usage: main.exe [--jobs N] [--json [PATH]]

   Environment knobs:
     DVBP_FIGURE4_INSTANCES  instances per grid point (default 30; the
                             paper uses 1000 — see EXPERIMENTS.md).
                             Validated: a non-integer or value < 1 is a
                             clear error, not a silent fallback.
     DVBP_JOBS               worker domains for instance sharding
                             (default: all cores; the --jobs flag takes
                             precedence). Orthogonal to the knob above:
                             jobs only shards work, never changes results.
     DVBP_SKIP_MICRO         set to skip the Bechamel section (CI speed) *)

open Bechamel
open Toolkit
module Rng = Dvbp_prelude.Rng
module Domain_pool = Dvbp_parallel.Domain_pool
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Engine_session = Dvbp_engine.Session
module W = Dvbp_workload
module X = Dvbp_experiments
module A = Dvbp_adversary

let banner title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

(* forced in main, after a validation pass that can fail cleanly *)
let figure4_instances =
  lazy (match X.Figure4.instances_from_env () with Some n -> n | None -> 30)

let figure4_instances () = Lazy.force figure4_instances

let regenerate_tables () =
  banner "TABLE-2 — experimental parameters";
  print_string (X.Table2.render ~instances:(figure4_instances ()) ());

  banner "TABLE-1 — competitive-ratio bounds (theory)";
  print_string (X.Table1.render_theory ());

  banner "TABLE-1 — lower-bound gadgets executed (d=2, mu=5)";
  print_string
    (X.Table1.render_verification (X.Table1.verify_gadgets ~d:2 ~mu:5.0 ~ks:[ 2; 4; 8 ] ()));

  banner "TABLE-1 — upper bounds fuzzed against exact OPT";
  print_string (X.Table1.render_fuzz (X.Table1.fuzz_upper_bounds ~instances:200 ~seed:7 ()));

  banner "TABLE-1 — lower-bound gadget convergence toward the limits";
  print_string (X.Table1.convergence ~d:2 ~mu:5.0 ());

  banner "LOWER BOUNDS — span / utilisation / height (Lemma 1) vs DFF vs exact OPT";
  let rng = Rng.create ~seed:33 in
  let rows =
    List.map
      (fun i ->
        let inst =
          W.Uniform_model.generate
            { W.Uniform_model.d = 2; n = 10; mu = 4; span = 12; bin_size = 10 }
            ~rng:(Rng.split rng ~key:i)
        in
        let b = Dvbp_lowerbound.Bounds.span inst in
        [
          Printf.sprintf "small-%d" i;
          Printf.sprintf "%.2f" b;
          Printf.sprintf "%.2f" (Dvbp_lowerbound.Bounds.utilisation inst);
          Printf.sprintf "%.2f" (Dvbp_lowerbound.Bounds.height_integral inst);
          Printf.sprintf "%.2f" (Dvbp_lowerbound.Dff.integral inst);
          Printf.sprintf "%.2f" (Dvbp_lowerbound.Opt.exact_exn inst);
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  print_string
    (Dvbp_report.Table.render
       ~header:[ "instance"; "span"; "util/d"; "height (i)"; "DFF"; "exact OPT" ]
       ~rows)

let regenerate_figures () =
  banner "FIGURE-1 — Move To Front leading/non-leading decomposition";
  print_string (X.Proof_figures.figure1 ());
  banner "FIGURE-2 — First Fit P/Q decomposition";
  print_string (X.Proof_figures.figure2 ());
  banner "FIGURE-3 — Theorem 5 construction executed";
  print_string (X.Proof_figures.figure3 ());

  banner
    (Printf.sprintf
       "FIGURE-4 — average-case ratios (m=%d per point; paper: m=1000; jobs=%d)"
       (figure4_instances ())
       (Domain_pool.jobs (Domain_pool.default ())));
  let config = { X.Figure4.default with X.Figure4.instances = figure4_instances () } in
  let cells = X.Figure4.run ~progress:prerr_endline config in
  print_string (X.Figure4.render_table cells);
  print_newline ();
  print_string (X.Figure4.render_plots cells);

  banner "FIGURE-4 — ratio distributions at (d=2, mu=100)";
  let samples =
    X.Runner.ratio_samples ~instances:(figure4_instances ()) ~seed:42
      ~gen:(fun ~rng -> W.Uniform_model.generate (W.Uniform_model.table2 ~d:2 ~mu:100) ~rng)
      ~competitors:(X.Runner.standard_competitors ())
      ()
  in
  List.iter
    (fun label ->
      Printf.printf "\n%s:\n%s" label
        (Dvbp_report.Histogram.render ~bins:8 (Array.to_list (List.assoc label samples))))
    [ "mtf"; "nf"; "wf" ]

let regenerate_scenarios () =
  banner "SCENARIO — cloud gaming sessions (gpu/bandwidth/memory; §1)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.cloud_gaming ~instances:20 ()));
  banner "SCENARIO — VM placement (heavy-tailed lifetimes, diurnal arrivals; §1)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.vm_placement ~instances:20 ()));
  banner "SCENARIO — flash crowd (burst arrivals; alignment stress)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.flash_crowd ~instances:20 ()));
  banner "SCENARIO — diurnal arrivals (sinusoidal rate; trough consolidation)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.diurnal ~instances:20 ()));
  banner "SCENARIO — heavy-tailed durations (Pareto lifetimes; stragglers)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.heavy_tail ~instances:20 ()));
  banner "SCENARIO — flash crowd with decay (spike + exponential trail-off)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.flash_crowd_decay ~instances:20 ()));
  banner "SCENARIO — azure mix (2-d cpu:mem catalogue; correlated demands)";
  print_string
    (X.Scenarios.render ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.azure_mix ~instances:20 ()));
  banner "SWEEP — diurnal amplitude 0 -> 0.9 (drain-and-refill exploitation)";
  print_string
    (X.Scenarios.render_sweep ~title:"cost / LB; * = clairvoyant"
       (X.Scenarios.diurnal_amplitude_sweep ~instances:12 ()))

let regenerate_significance () =
  banner "SIGNIFICANCE — is the Figure 4 ordering statistically real?";
  List.iter
    (fun (d, mu) ->
      Printf.printf "\n(d=%d, mu=%d), every policy vs mtf, Mann-Whitney at 0.05:\n" d mu;
      print_string
        (X.Significance.render (X.Significance.head_to_head ~instances:40 ~d ~mu ())))
    [ (1, 100); (2, 100); (5, 100) ];
  banner "SIGNIFICANCE — bootstrap CIs for the mean ratio gap vs mtf";
  List.iter
    (fun (d, mu) ->
      Printf.printf "\n(d=%d, mu=%d), 95%% percentile bootstrap, 2000 resamples:\n" d mu;
      print_string
        (X.Significance.render_bootstrap
           (X.Significance.bootstrap_gaps ~instances:40 ~d ~mu ())))
    [ (1, 100); (2, 100); (5, 100) ]

let regenerate_worst_case () =
  banner "WORST-CASE SEARCH — hill-climbing for bad instances (cost / exact OPT)";
  print_endline
    "small-instance adversarial probe (§8's open gap); compare against the\n\
     certified gadget ratios above and the proven bounds:";
  let cases =
    List.map
      (fun (policy, d) ->
        (policy, { X.Worst_case_search.default with X.Worst_case_search.d; steps = 300 }))
      [
        ("mtf", 1); ("ff", 1); ("nf", 1); ("mtf", 2); ("ff", 2); ("nf", 2);
        (* repack specs: Thm 5 does not constrain these — attack them too *)
        ("ff+both2", 1); ("ff+both2", 2);
      ]
  in
  List.iter
    (fun (policy, result) -> print_string (X.Worst_case_search.render ~policy result))
    (X.Worst_case_search.search_many cases)

let regenerate_frontier () =
  banner "MIGRATION FRONTIER — budgeted repacking vs the Any Fit ceiling";
  print_string (X.Migration_frontier.render (X.Migration_frontier.run ()))

let regenerate_ablations () =
  banner "ABLATION — Best Fit load measure (d=2, mu=10)";
  print_string
    (X.Ablations.render ~title:"cost / LB over the Table 2 workload"
       (X.Ablations.best_fit_measures ~instances:30 ~seed:42 ~d:2 ~mu:10 ()));
  banner "ABLATION — dimension correlation (d=2, mu=10)";
  print_string
    (X.Ablations.render_sweep ~title:"cost / LB as dimensions correlate" ~param:"rho"
       (X.Ablations.correlation_sweep ~instances:30 ~seed:42 ~d:2 ~mu:10
          ~rhos:[ 0.0; 0.5; 1.0 ] ()));
  banner "ABLATION — clairvoyance (d=2, mu=100)";
  print_string
    (X.Ablations.render ~title:"non-clairvoyant policies vs clairvoyant daf/hff"
       (X.Ablations.clairvoyance ~instances:30 ~seed:42 ~d:2 ~mu:100 ()));
  banner "ABLATION — lower-bound tightness (d=2, mu=10, n=300, mtf)";
  print_string
    (X.Ablations.render
       ~title:"the same runs, normalised by each lower bound (smaller = tighter LB)"
       (X.Ablations.denominator_tightness ~instances:20 ~seed:42 ~d:2 ~mu:10 ()));
  banner "ABLATION — offered load (d=2, mu=10): gaps widen with load";
  print_string
    (X.Ablations.render_sweep ~title:"cost / LB as item count grows (span fixed)"
       ~param:"n"
       (X.Ablations.load_sweep ~instances:20 ~seed:42 ~d:2 ~mu:10
          ~ns:[ 250; 500; 1000; 2000 ] ()));
  banner "ABLATION — Next-K Fit (d=2, mu=100): from Next Fit to First Fit";
  print_string
    (X.Ablations.render ~title:"cost / LB as the candidate window grows"
       (X.Ablations.next_k_sweep ~instances:30 ~seed:42 ~d:2 ~mu:100
          ~ks:[ 1; 2; 4; 8; 16 ] ()));
  banner "ABLATION — size classes (d=2, mu=10): Harmonic Fit vs First Fit";
  print_string
    (X.Ablations.render ~title:"cost / LB with size-segregated bins"
       (X.Ablations.size_classes ~instances:30 ~seed:42 ~d:2 ~mu:10 ()));
  banner "ABLATION — prediction error (d=2, mu=100)";
  print_string
    (X.Ablations.render
       ~title:"duration-aligned fit under log-normal prediction noise"
       (X.Ablations.prediction_error ~instances:30 ~seed:42 ~d:2 ~mu:100
          ~sigmas:[ 0.3; 1.0; 3.0 ] ()))

(* ---------- Bechamel micro-benchmarks ---------- *)

let uniform_instance =
  lazy
    (W.Uniform_model.generate
       (W.Uniform_model.table2 ~d:2 ~mu:10)
       ~rng:(Rng.create ~seed:1))

let small_instance =
  lazy
    (W.Uniform_model.generate
       { W.Uniform_model.d = 2; n = 12; mu = 4; span = 12; bin_size = 10 }
       ~rng:(Rng.create ~seed:2))

let policy_test name =
  Test.make ~name:(Printf.sprintf "figure4/run-%s" name)
    (Staged.stage (fun () ->
         let instance = Lazy.force uniform_instance in
         let policy = Core.Policy.of_name_exn ~rng:(Rng.create ~seed:3) name in
         Engine.run ~policy instance))

let tests =
  Test.make_grouped ~name:"dvbp"
    [
      (* FIGURE-4: one full simulation per policy on the Table 2 workload *)
      Test.make_grouped ~name:"figure4"
        (List.map policy_test Core.Policy.standard_names);
      (* TABLE-2 workload generation itself *)
      Test.make ~name:"table2/generate-uniform"
        (Staged.stage (fun () ->
             W.Uniform_model.generate
               (W.Uniform_model.table2 ~d:2 ~mu:10)
               ~rng:(Rng.create ~seed:4)));
      (* FIGURE-4 denominator: the Lemma 1 (i) lower bound *)
      Test.make ~name:"figure4/lower-bound"
        (Staged.stage (fun () ->
             Dvbp_lowerbound.Bounds.height_integral (Lazy.force uniform_instance)));
      (* TABLE-1: gadget construction + execution, and exact OPT *)
      Test.make ~name:"table1/anyfit-gadget"
        (Staged.stage (fun () ->
             let g = A.Anyfit_lb.construct ~d:2 ~k:4 ~mu:5.0 in
             Engine.run ~policy:(Core.Policy.first_fit ()) g.A.Gadget.instance));
      Test.make ~name:"table1/exact-opt-small"
        (Staged.stage (fun () ->
             Dvbp_lowerbound.Opt.exact_exn (Lazy.force small_instance)));
      (* the incremental session path (arrive/depart driven by hand) *)
      Test.make ~name:"engine/session-1000-items"
        (Staged.stage (fun () ->
             let instance = Lazy.force uniform_instance in
             let session =
               Engine_session.create
                 ~capacity:instance.Core.Instance.capacity
                 ~policy:(Core.Policy.first_fit ()) ()
             in
             let events =
               List.concat_map
                 (fun (r : Core.Item.t) ->
                   [ (r.Core.Item.departure, 0, r); (r.Core.Item.arrival, 1, r) ])
                 instance.Core.Instance.items
               |> List.sort (fun (ta, ka, (ra : Core.Item.t)) (tb, kb, rb) ->
                      compare (ta, ka, ra.Core.Item.id) (tb, kb, rb.Core.Item.id))
             in
             List.iter
               (fun (_, kind, (r : Core.Item.t)) ->
                 if kind = 1 then
                   ignore
                     (Engine_session.arrive session ~at:r.Core.Item.arrival
                        ~id:r.Core.Item.id ~size:r.Core.Item.size ())
                 else
                   Engine_session.depart session ~at:r.Core.Item.departure
                     ~item_id:r.Core.Item.id)
               events;
             Engine_session.finish session ~at:(Engine_session.now session)));
      (* MIGRATION FRONTIER: the same workload through the repack session *)
      Test.make ~name:"frontier/run-ff+both2"
        (Staged.stage (fun () ->
             let instance = Lazy.force uniform_instance in
             Dvbp_engine.Repack.run
               ~config:(Dvbp_engine.Repack.config ~budget:2 ())
               ~policy:(Core.Policy.first_fit ()) instance));
      (* FIGURE-1/2: decomposition analyses *)
      Test.make ~name:"figure1/mtf-decomposition"
        (Staged.stage (fun () ->
             let instance = Lazy.force uniform_instance in
             let run = Engine.run ~policy:(Core.Policy.move_to_front ()) instance in
             Dvbp_analysis.Mtf_decomposition.analyse run.Engine.trace));
      Test.make ~name:"figure2/ff-decomposition"
        (Staged.stage (fun () ->
             let instance = Lazy.force uniform_instance in
             let run = Engine.run ~policy:(Core.Policy.first_fit ()) instance in
             Dvbp_analysis.Ff_decomposition.analyse run.Engine.packing));
    ]

let run_micro () =
  banner "MICRO-BENCHMARKS (Bechamel; time per operation)";
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  print_string
    (Dvbp_report.Table.render
       ~header:[ "benchmark"; "time/op" ]
       ~rows:
         (List.map
            (fun (name, ns) ->
              let human =
                if Float.is_nan ns then "n/a"
                else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
                else Printf.sprintf "%.1f ns" ns
              in
              [ name; human ])
            rows))

(* ---------- JSON benchmark gate (--json [path]) ----------

   Writes a machine-readable perf snapshot so successive PRs have a
   throughput trajectory to compare against:
     - per-policy engine throughput (items/sec, Bechamel OLS estimate) on
       the Table 2 uniform workload at d in {1,5} x mu in {10,200};
     - wall time of a fixed-seed m=50 Figure-4 mini-sweep (the experiment
       pipeline end to end: generation, lower bounds, all 7 policies),
       measured at jobs in {1, 2, 4, all cores} — the scaling curve of the
       domain-pool sharding — together with a check that the sweep output
       is bit-identical across jobs values. *)

let bench_grid = [ (1, 10); (1, 200); (5, 10); (5, 200) ]

(* every grid cell shares the Table 2 item count / span / bin size; the
   JSON workload block below is printed from this same record, so the
   snapshot can never disagree with what actually ran *)
let bench_params = W.Uniform_model.table2 ~d:1 ~mu:10
let bench_n_items = bench_params.W.Uniform_model.n

let json_instance ~d ~mu =
  W.Uniform_model.generate
    (W.Uniform_model.table2 ~d ~mu)
    ~rng:(Rng.create ~seed:(100 + (17 * d) + mu))

let ns_per_run tests =
  (* returns an assoc list: test name -> OLS ns/run estimate *)
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name:"json" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
      (name, ns) :: acc)
    results []

let run_json path =
  let throughput =
    List.map
      (fun name ->
        let tests =
          List.map
            (fun (d, mu) ->
              let instance = json_instance ~d ~mu in
              Test.make ~name:(Printf.sprintf "%s.d%d.mu%d" name d mu)
                (Staged.stage (fun () ->
                     let policy =
                       Core.Policy.of_name_exn ~rng:(Rng.create ~seed:3) name
                     in
                     (* measured in the experiment-pipeline configuration:
                        ratio sweeps drive the engine with tracing off *)
                     Engine.run ~record_trace:false ~policy instance)))
            bench_grid
        in
        let estimates = ns_per_run tests in
        let cells =
          List.map
            (fun (d, mu) ->
              let key = Printf.sprintf "json/%s.d%d.mu%d" name d mu in
              let ns = try List.assoc key estimates with Not_found -> nan in
              let items_per_sec =
                if Float.is_nan ns || ns <= 0.0 then 0.0
                else float_of_int bench_n_items *. 1e9 /. ns
              in
              Printf.eprintf "bench %s d=%d mu=%-3d  %12.0f items/sec\n%!" name d mu
                items_per_sec;
              ((d, mu), items_per_sec))
            bench_grid
        in
        (name, cells))
      Core.Policy.standard_names
  in
  let sweep_config =
    {
      X.Figure4.default with
      X.Figure4.ds = [ 1; 5 ];
      mus = [ 10; 200 ];
      instances = 50;
      seed = 42;
    }
  in
  (* scaling curve of the domain-pool sharding: same fixed-seed sweep at
     jobs in {1, 2, 4, all cores}; the output must not depend on jobs *)
  let cores = Domain.recommended_domain_count () in
  let jobs_points = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let curve =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let cells = X.Figure4.run ~jobs ~progress:ignore sweep_config in
        let seconds = Unix.gettimeofday () -. t0 in
        Printf.eprintf "bench mini-sweep jobs=%-2d  %.3f s\n%!" jobs seconds;
        (jobs, seconds, X.Figure4.to_csv cells))
      jobs_points
  in
  let csv_of jobs =
    List.find_map (fun (j, _, csv) -> if j = jobs then Some csv else None) curve
  in
  let seconds_of jobs =
    List.find_map (fun (j, s, _) -> if j = jobs then Some s else None) curve
  in
  let identical =
    match csv_of 1 with
    | None -> false
    | Some ref_csv -> List.for_all (fun (_, _, csv) -> csv = ref_csv) curve
  in
  let speedup =
    match (seconds_of 1, seconds_of 4) with
    | Some s1, Some s4 when s4 > 0.0 -> s1 /. s4
    | _ -> 1.0
  in
  let sweep_seconds =
    match seconds_of cores with Some s -> s | None -> nan
  in
  (* the service benches below run jobs=1 and never touch the pool — park
     nothing: idle worker domains still join every stop-the-world minor GC,
     which costs the allocation-heavy loadgen ~40% on one core *)
  Domain_pool.shutdown (Domain_pool.default ());
  (* service loadgen: the full serialise -> pipe -> place -> journal -> reply
     round trip, with and without the WAL, on a Table 2 workload *)
  let lg_instance =
    W.Uniform_model.generate (W.Uniform_model.table2 ~d:2 ~mu:100)
      ~rng:(Rng.create ~seed:5)
  in
  (* the journal is a segment chain (tmp.000000.seg...), so cleanup must
     sweep every file sharing the prefix, not just the prefix itself *)
  let remove_journal_files tmp =
    (try Sys.remove tmp with Sys_error _ -> ());
    let dir = Filename.dirname tmp and base = Filename.basename tmp in
    Array.iter
      (fun f ->
        if String.starts_with ~prefix:(base ^ ".") f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||])
  in
  let lg_run ?journal () =
    let tmp = Option.map (fun _ -> Filename.temp_file "dvbp_bench" ".journal") journal in
    Fun.protect
      ~finally:(fun () -> Option.iter remove_journal_files tmp)
      (fun () ->
        match
          Dvbp_service.Loadgen.run ~policy:"mtf" ~seed:3 ?journal:tmp
            ~fsync_every:64 lg_instance
        with
        | Ok report -> report
        | Error e ->
            prerr_endline ("FATAL: loadgen bench failed: " ^ e);
            exit 1)
  in
  let lg_journaled = lg_run ~journal:true () in
  let lg_bare = lg_run () in
  Printf.eprintf "bench loadgen journaled  %12.0f events/sec\n%!"
    lg_journaled.Dvbp_service.Loadgen.events_per_sec;
  Printf.eprintf "bench loadgen bare       %12.0f events/sec\n%!"
    lg_bare.Dvbp_service.Loadgen.events_per_sec;
  (* multi-client group commit: 4 concurrent clients (one tenant each)
     against the event-loop server, requests pipelined in windows, one
     fsync per batch (ceiling 8192). On this 1-core box the gain over the
     single-client line is all amortisation, not parallelism. *)
  let mc_clients = 4 in
  let mc_n = 16000 in
  let mc_fsync_every = 8192 in
  let mc_window = 2048 in
  let lg_mc =
    let inst =
      W.Uniform_model.generate
        { (W.Uniform_model.table2 ~d:2 ~mu:100) with W.Uniform_model.n = mc_n }
        ~rng:(Rng.create ~seed:5)
    in
    (* the earlier sweeps leave a fragmented major heap whose pacing taxes
       this allocation-heavy measurement; compact first, then take the best
       of three runs to shed scheduler noise (each run is ~0.5 s) *)
    Gc.compact ();
    let one () =
      let tmp = Filename.temp_file "dvbp_bench_mc" ".journal" in
      Fun.protect
        ~finally:(fun () -> remove_journal_files tmp)
        (fun () ->
          match
            Dvbp_service.Loadgen.run_multi ~policy:"mtf" ~seed:3 ~journal:tmp
              ~fsync_every:mc_fsync_every ~jobs:1 ~window:mc_window
              (List.init mc_clients (fun _ -> inst))
          with
          | Ok report -> report
          | Error e ->
              prerr_endline ("FATAL: multi-client loadgen bench failed: " ^ e);
              exit 1)
    in
    List.fold_left
      (fun best _ ->
        let r = one () in
        if
          r.Dvbp_service.Loadgen.mr_events_per_sec
          > best.Dvbp_service.Loadgen.mr_events_per_sec
        then r
        else best)
      (one ()) [ (); () ]
  in
  Printf.eprintf "bench loadgen multi x%d  %12.0f events/sec (journaled)\n%!"
    mc_clients lg_mc.Dvbp_service.Loadgen.mr_events_per_sec;
  (* trace store: compile a sharded binary trace, then stream it straight
     into an engine session — the raw replay path, no server in the way *)
  let tr_shards = 4 in
  let tr_shard_n = 25_000 in
  let tr_stats =
    let tmp = Filename.temp_file "dvbp_bench_trace" ".dvbpt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let fatal e =
          prerr_endline ("FATAL: trace replay bench failed: " ^ e);
          exit 1
        in
        let gen k =
          W.Uniform_model.generate
            { (W.Uniform_model.table2 ~d:2 ~mu:100) with W.Uniform_model.n = tr_shard_n }
            ~rng:(Rng.create ~seed:(7 + k))
        in
        (match
           Dvbp_tracestore.Compile.sharded ~path:tmp ~shards:tr_shards ~gen ()
         with
        | Ok _ -> ()
        | Error e -> fatal e);
        match
          Dvbp_tracestore.Trace_reader.with_file tmp (fun reader ->
              let policy = Core.Policy.of_name_exn ~rng:(Rng.create ~seed:3) "mtf" in
              let session =
                Engine_session.create ~record_trace:false
                  ~capacity:(Dvbp_tracestore.Trace_reader.header reader).Dvbp_tracestore.Binfmt.capacity
                  ~policy ()
              in
              Dvbp_tracestore.Replay.into_session ~clock:Unix.gettimeofday
                reader session)
        with
        | Ok stats -> stats
        | Error e -> fatal e)
  in
  Printf.eprintf "bench trace replay       %12.0f events/sec (%d events)\n%!"
    tr_stats.Dvbp_tracestore.Replay.events_per_sec
    tr_stats.Dvbp_tracestore.Replay.events;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"label\": \"pr9\",\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/main.ml --json\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"model\": \"uniform (Table 2)\", \"n_items\": %d, \
        \"span\": %d, \"bin_size\": %d, \"record_trace\": false },\n"
       bench_params.W.Uniform_model.n bench_params.W.Uniform_model.span
       bench_params.W.Uniform_model.bin_size);
  Buffer.add_string buf "  \"throughput_items_per_sec\": {\n";
  List.iteri
    (fun i (name, cells) ->
      Buffer.add_string buf (Printf.sprintf "    %S: { " name);
      List.iteri
        (fun j ((d, mu), ips) ->
          Buffer.add_string buf
            (Printf.sprintf "\"d%d_mu%d\": %.1f%s" d mu ips
               (if j = List.length cells - 1 then "" else ", ")))
        cells;
      Buffer.add_string buf
        (Printf.sprintf " }%s\n" (if i = List.length throughput - 1 then "" else ",")))
    throughput;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"figure4_mini_sweep\": { \"ds\": [1, 5], \"mus\": [10, 200], \"instances\": 50, \"seed\": 42, \"wall_seconds\": %.3f },\n"
       sweep_seconds);
  Buffer.add_string buf "  \"parallel\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"machine_cores\": %d,\n" cores);
  Buffer.add_string buf "    \"wall_seconds_by_jobs\": { ";
  List.iteri
    (fun i (jobs, seconds, _) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%d\": %.3f%s" jobs seconds
           (if i = List.length curve - 1 then "" else ", ")))
    curve;
  Buffer.add_string buf " },\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_jobs4_vs_1\": %.3f,\n" speedup);
  Buffer.add_string buf
    (Printf.sprintf "    \"identical_across_jobs\": %b\n" identical);
  Buffer.add_string buf "  },\n";
  (* scalar-vs-SWAR fit-kernel microbench (see bench/kernel_bench.ml) *)
  let fk_rows = Kernel_bench.run () in
  List.iter
    (fun (r : Kernel_bench.row) ->
      Printf.eprintf "bench fit_kernel d=%d bins=%-5d  scalar %6.2f ns  swar %6.2f ns  %.2fx\n%!"
        r.Kernel_bench.d r.Kernel_bench.bins r.Kernel_bench.scalar_ns
        r.Kernel_bench.swar_ns r.Kernel_bench.speedup)
    fk_rows;
  Buffer.add_string buf (Kernel_bench.to_json fk_rows);
  Buffer.add_string buf ",\n";
  let lg_json name (r : Dvbp_service.Loadgen.report) =
    let lat = r.Dvbp_service.Loadgen.latency_us in
    Printf.sprintf
      "    %S: { \"events\": %d, \"events_per_sec\": %.1f, \
       \"latency_mean_us\": %.1f, \"latency_p50_us\": %.1f, \
       \"latency_p90_us\": %.1f, \"latency_p99_us\": %.1f, \
       \"latency_max_us\": %.1f }"
      name r.Dvbp_service.Loadgen.events r.Dvbp_service.Loadgen.events_per_sec
      lat.Dvbp_obs.Histogram.mean lat.Dvbp_obs.Histogram.p50 lat.Dvbp_obs.Histogram.p90
      lat.Dvbp_obs.Histogram.p99 lat.Dvbp_obs.Histogram.max_v
  in
  Buffer.add_string buf "  \"service_loadgen\": {\n";
  Buffer.add_string buf
    "    \"workload\": \"uniform table2 d=2 mu=100 (n=1000)\", \"policy\": \"mtf\", \"fsync_every\": 64,\n";
  Buffer.add_string buf (lg_json "journaled" lg_journaled);
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (lg_json "no_journal" lg_bare);
  Buffer.add_string buf "\n  },\n";
  let hist_json (h : Dvbp_obs.Histogram.snapshot) =
    Printf.sprintf
      "\"latency_mean_us\": %.1f, \"latency_p50_us\": %.1f, \
       \"latency_p90_us\": %.1f, \"latency_p99_us\": %.1f, \
       \"latency_max_us\": %.1f"
      h.Dvbp_obs.Histogram.mean h.Dvbp_obs.Histogram.p50
      h.Dvbp_obs.Histogram.p90 h.Dvbp_obs.Histogram.p99
      h.Dvbp_obs.Histogram.max_v
  in
  Buffer.add_string buf "  \"service_loadgen_mc\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"workload\": \"uniform table2 d=2 mu=100 (n=%d per client)\", \
        \"policy\": \"mtf\", \"clients\": %d, \"jobs\": %d, \
        \"fsync_every\": %d, \"window\": %d,\n"
       mc_n mc_clients lg_mc.Dvbp_service.Loadgen.jobs mc_fsync_every mc_window);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"journaled_events\": %d, \"journaled_events_per_sec\": %.1f, %s,\n"
       lg_mc.Dvbp_service.Loadgen.total_events
       lg_mc.Dvbp_service.Loadgen.mr_events_per_sec
       (hist_json lg_mc.Dvbp_service.Loadgen.mr_latency_us));
  Buffer.add_string buf "    \"per_client\": {\n";
  let n_clients = List.length lg_mc.Dvbp_service.Loadgen.per_client in
  List.iteri
    (fun i (c : Dvbp_service.Loadgen.client_report) ->
      Buffer.add_string buf
        (Printf.sprintf "      %S: { \"events\": %d, %s }%s\n"
           c.Dvbp_service.Loadgen.tenant c.Dvbp_service.Loadgen.client_events
           (hist_json c.Dvbp_service.Loadgen.client_latency_us)
           (if i = n_clients - 1 then "" else ",")))
    lg_mc.Dvbp_service.Loadgen.per_client;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_replay\": { \"shards\": %d, \"items_per_shard\": %d, \
        \"events\": %d, \"blocks\": %d, \"wall_seconds\": %.3f, \
        \"events_per_sec\": %.1f, \"resident_bytes_max\": %d }\n"
       tr_shards tr_shard_n tr_stats.Dvbp_tracestore.Replay.events
       tr_stats.Dvbp_tracestore.Replay.blocks
       tr_stats.Dvbp_tracestore.Replay.wall_seconds
       tr_stats.Dvbp_tracestore.Replay.events_per_sec
       tr_stats.Dvbp_tracestore.Replay.resident_bytes_max);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "wrote %s (mini-sweep: %.3f s; jobs=4 vs jobs=1 speedup: %.2fx on %d core%s; \
     identical across jobs: %b)\n"
    path sweep_seconds speedup cores
    (if cores = 1 then "" else "s")
    identical;
  if not identical then begin
    prerr_endline "FATAL: sweep output differs across jobs values";
    exit 1
  end

let () =
  (* argv: [--jobs N] [--json [PATH]] in any order, --json last takes a path *)
  let args = List.tl (Array.to_list Sys.argv) in
  let fail msg = prerr_endline msg; exit 2 in
  let rec parse ~json ~jobs = function
    | [] -> (json, jobs)
    | "--jobs" :: v :: rest | "-j" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> parse ~json ~jobs:(Some n) rest
        | Some _ | None ->
            fail (Printf.sprintf "--jobs: expected a positive integer, got %S" v))
    | [ "--jobs" ] | [ "-j" ] -> fail "--jobs: missing value"
    | "--json" :: rest ->
        let path, rest =
          match rest with
          | p :: rest' when not (String.length p > 0 && p.[0] = '-') -> (p, rest')
          | _ -> ("BENCH_pr9.json", rest)
        in
        parse ~json:(Some path) ~jobs rest
    | arg :: _ -> fail (Printf.sprintf "unknown argument %S" arg)
  in
  let json, jobs = parse ~json:None ~jobs:None args in
  (match jobs with Some n -> Domain_pool.set_default_jobs n | None -> ());
  (* force the validated env knobs now so a bad value is a clear error *)
  (try
     ignore (figure4_instances ());
     ignore (Domain_pool.default_jobs ())
   with Invalid_argument msg -> fail msg);
  match json with
  | Some path -> run_json path
  | None ->
      regenerate_tables ();
      regenerate_figures ();
      regenerate_scenarios ();
      regenerate_significance ();
      regenerate_ablations ();
      regenerate_worst_case ();
      regenerate_frontier ();
      if Sys.getenv_opt "DVBP_SKIP_MICRO" = None then run_micro ();
      print_newline ()
