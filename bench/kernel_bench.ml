(* Fit-kernel microbenchmark: times the scalar vs SWAR registry scan in
   isolation, over synthetic registries of live bins — no engine, no
   policy, no workload generation — so kernel regressions are visible
   without the noise of the full bench. Used by both the standalone
   [fit_kernel.exe] table and the [main.exe --json] snapshot.

   The timed operation is {!Dvbp_core.Bin_registry.count_fitting}: it
   examines every slot with no early exit and no block pruning, so the
   measured cost is purely the per-slot fit test of the selected kernel. *)

module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item
module Bin_registry = Dvbp_core.Bin_registry

type row = {
  d : int;
  bins : int;
  scalar_ns : float;  (* ns per slot fit test, scalar kernel *)
  swar_ns : float;  (* same registry content, SWAR kernel *)
  speedup : float;  (* scalar_ns / swar_ns *)
}

(* capacity component: the Table 2 bin size where a byte lane holds it,
   the narrower lane payload at d = 7 and 8 *)
let cap_component d = min 100 (Vec.max_packable ~lane_bits:(63 / d))

let build_registry ~kernel ~d ~bins ~rng =
  let cap_c = cap_component d in
  let capacity = Vec.make ~dim:d cap_c in
  let t = Bin_registry.create ~kernel ~capacity () in
  for i = 0 to bins - 1 do
    let b = Bin.create ~id:i ~capacity ~now:0.0 ~touch:i in
    let load =
      Array.init d (fun _ -> Rng.int rng (cap_c + 1))
    in
    if Array.exists (fun x -> x > 0) load then
      Bin.place b
        (Item.make ~id:(10_000 + i) ~arrival:0.0 ~departure:1.0
           ~size:(Vec.of_array load))
        ~touch:i;
    Bin_registry.add t b
  done;
  t

(* the same query mix for both kernels: sizes in the workload's item
   range, so scans hit and miss like a real arrival stream *)
let query_sizes ~d ~rng =
  Array.init 16 (fun _ ->
      Vec.of_array (Array.init d (fun _ -> 1 + Rng.int rng 30)))

let time_kernel ~kernel ~d ~bins ~iters =
  let rng = Rng.create ~seed:(97 * d + bins) in
  let t = build_registry ~kernel ~d ~bins ~rng in
  let sizes = query_sizes ~d ~rng in
  let sink = ref 0 in
  (* warm-up pass, off the clock *)
  Array.iter (fun s -> sink := !sink + Bin_registry.count_fitting t s) sizes;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Array.iter (fun s -> sink := !sink + Bin_registry.count_fitting t s) sizes
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  let slot_tests = float_of_int (iters * Array.length sizes * bins) in
  ignore (Sys.opaque_identity !sink);
  seconds *. 1e9 /. slot_tests

let measure ~d ~bins =
  (* size the repetition count so each cell runs ~10M slot tests *)
  let iters = max 1 (10_000_000 / (16 * bins)) in
  let scalar_ns = time_kernel ~kernel:`Scalar ~d ~bins ~iters in
  let swar_ns = time_kernel ~kernel:`Auto ~d ~bins ~iters in
  { d; bins; scalar_ns; swar_ns; speedup = scalar_ns /. swar_ns }

let default_grid =
  [ (1, 64); (1, 1024); (2, 1024); (5, 64); (5, 1024); (5, 8192); (8, 1024) ]

let run ?(grid = default_grid) () =
  List.map (fun (d, bins) -> measure ~d ~bins) grid

let render rows =
  Dvbp_report.Table.render
    ~header:[ "d"; "live bins"; "scalar ns/slot"; "swar ns/slot"; "speedup" ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.d;
             string_of_int r.bins;
             Printf.sprintf "%.2f" r.scalar_ns;
             Printf.sprintf "%.2f" r.swar_ns;
             Printf.sprintf "%.2fx" r.speedup;
           ])
         rows)

let to_json rows =
  let cells =
    List.map
      (fun r ->
        Printf.sprintf
          "      { \"d\": %d, \"bins\": %d, \"scalar_ns_per_slot\": %.3f, \
           \"swar_ns_per_slot\": %.3f, \"speedup\": %.3f }"
          r.d r.bins r.scalar_ns r.swar_ns r.speedup)
      rows
  in
  Printf.sprintf
    "  \"fit_kernel\": {\n    \"timed_op\": \"count_fitting (full scan, no \
     pruning)\",\n    \"rows\": [\n%s\n    ]\n  }"
    (String.concat ",\n" cells)
