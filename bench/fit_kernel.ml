(* Standalone fit-kernel microbenchmark: scalar vs SWAR scan cost per
   slot, across live-bin counts and dimensions. See kernel_bench.ml for
   what is measured; main.exe --json embeds the same rows in the
   BENCH_*.json snapshot. *)

let () =
  print_endline "fit-kernel microbenchmark (ns per slot fit test)";
  print_string (Kernel_bench.render (Kernel_bench.run ()))
