(* dvbp — command-line front end for the MinUsageTime DVBP library.

   Subcommands:
     run       simulate one policy on a workload or a CSV trace
     figure4   regenerate the paper's Figure 4 sweep
     table1    regenerate Table 1 (theory + gadget verification + UB fuzz)
     table2    print the experimental parameter table
     figures   regenerate Figures 1-3 from live runs
     adversary build and execute one lower-bound gadget
     describe  summary statistics of a workload or trace
     opt       exact optimal cost of a (small) CSV trace
     serve     durable online placement service (line protocol on stdio)
     recover   rebuild + verify service state from journal/snapshot
     compact   snapshot the journal frontier, retire sealed segments
     loadgen   replay a workload against a live server, report throughput
     frontier  sweep the migration budget/cost frontier (repacking)
     metrics   pretty-print a METRICS / --metrics-dump snapshot
     trace     compile / info / verify / replay binary traces *)

open Cmdliner
module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Repack = Dvbp_engine.Repack
module Reduce = Dvbp_reduce.Reduce
module Bounds = Dvbp_lowerbound.Bounds
module Opt = Dvbp_lowerbound.Opt
module W = Dvbp_workload
module X = Dvbp_experiments
module A = Dvbp_adversary

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc:"Root random seed.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"INT"
           ~doc:"Worker domains for instance sharding (default: \\$(b,DVBP_JOBS), \
                 else all cores). Results are bit-identical for any value.")

let instances_arg default =
  Arg.(value & opt int default & info [ "instances"; "m" ] ~docv:"INT"
         ~doc:"Random instances per configuration.")

(* ---------- run ---------- *)

module Cli = Dvbp_cli_lib

let workload_names = String.concat ", " Cli.Workload_select.known_workloads

let workload_arg =
  Arg.(value & opt string "uniform"
       & info [ "workload" ] ~docv:"NAME"
           ~doc:("Workload: " ^ workload_names
                 ^ ". See $(b,dvbp describe --list) for one-line blurbs."))

let trace_arg =
  Arg.(value & opt (some file) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Replay a trace file (CSV or compiled binary, sniffed by \
                 magic) instead of generating.")

let policy_arg =
  Arg.(value & opt string "mtf"
       & info [ "policy" ] ~docv:"NAME"
           ~doc:"Packing policy: mtf, ff, bf, nf, wf, lf, rf or daf (clairvoyant).")

let d_arg = Arg.(value & opt int 2 & info [ "d" ] ~docv:"INT" ~doc:"Dimensions.")
let mu_arg = Arg.(value & opt int 10 & info [ "mu" ] ~docv:"INT" ~doc:"Max duration.")
let n_arg = Arg.(value & opt int 1000 & info [ "n" ] ~docv:"INT" ~doc:"Item count.")
let rho_arg =
  Arg.(value & opt float 0.5 & info [ "rho" ] ~docv:"FLOAT" ~doc:"Dimension correlation.")
let gantt_arg = Arg.(value & flag & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart.")
let export_arg =
  Arg.(value & opt (some string) None
       & info [ "export" ] ~docv:"FILE" ~doc:"Write the final assignment as CSV.")
let trajectory_arg =
  Arg.(value & flag
       & info [ "trajectory" ] ~doc:"Plot the live cost/lower-bound ratio over time.")

let build_instance ~workload ~trace ~d ~mu ~n ~rho ~seed =
  Cli.Workload_select.build
    { Cli.Workload_select.workload; trace; d; mu; n; rho; seed }

let reduce_arg =
  Arg.(value & flag
       & info [ "reduce" ]
           ~doc:"Preprocess the instance (twin merging; geometric rounding with \
                 $(b,--reduce-gamma)), run on the reduced instance and lift the \
                 packing back, printing the reduction certificate.")

let reduce_gamma_arg =
  Arg.(value & opt float 1.0
       & info [ "reduce-gamma" ] ~docv:"FLOAT"
           ~doc:"Geometric rounding base for $(b,--reduce) (1.0 = exact, no \
                 rounding).")

let repack_arg =
  Arg.(value & opt (some int) None
       & info [ "repack" ] ~docv:"K"
           ~doc:"Budgeted-migration repacking: allow up to K live migrations \
                 per event (strict Any Fit base policies only).")

let repack_strategy_arg =
  Arg.(value & opt string "both"
       & info [ "repack-strategy" ] ~docv:"NAME"
           ~doc:"Repacking strategy: el (drain a bin after departures), cons \
                 (evict to avoid opening bins) or both (default).")

(* Flag cross-validation for run: every error names the offending flag
   and its valid range, before any instance is generated. *)
let run_configs ~reduce ~reduce_gamma ~repack ~repack_strategy =
  let reduce_cfg =
    if not reduce then
      if reduce_gamma <> 1.0 then Error "--reduce-gamma requires --reduce"
      else Ok None
    else if not (Float.is_finite reduce_gamma) || reduce_gamma < 1.0 then
      Error
        (Printf.sprintf "--reduce-gamma must be a finite float >= 1.0 (got %g)"
           reduce_gamma)
    else Ok (Some { Reduce.gamma = reduce_gamma; merge_twins = true })
  in
  let repack_cfg =
    match repack with
    | None ->
        if repack_strategy <> "both" then Error "--repack-strategy requires --repack"
        else Ok None
    | Some k ->
        if k < 0 || k > Repack.max_budget then
          Error
            (Printf.sprintf "--repack must be in 0..%d (got %d)" Repack.max_budget k)
        else (
          match Repack.strategy_of_name repack_strategy with
          | Error e -> Error ("--repack-strategy: " ^ e)
          | Ok strategy -> Ok (Some { Repack.budget = k; strategy }))
  in
  match (reduce_cfg, repack_cfg) with
  | Error e, _ | _, Error e -> Error e
  | Ok reduce, Ok repack -> Ok (reduce, repack)

let run_cmd =
  let action workload trace policy d mu n rho seed gantt export trajectory reduce
      reduce_gamma repack repack_strategy =
    match run_configs ~reduce ~reduce_gamma ~repack ~repack_strategy with
    | Error e -> prerr_endline e; 1
    | Ok (reduce, repack) -> (
        match build_instance ~workload ~trace ~d ~mu ~n ~rho ~seed with
        | Error e -> prerr_endline e; 1
        | Ok instance -> (
            match
              Cli.Run_report.run_one ?export ~trajectory ?reduce ?repack ~policy
                ~seed instance ~gantt
            with
            | Error e -> prerr_endline e; 1
            | Ok () -> 0))
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one policy on a workload or trace")
    Term.(const action $ workload_arg $ trace_arg $ policy_arg $ d_arg $ mu_arg
          $ n_arg $ rho_arg $ seed_arg $ gantt_arg $ export_arg $ trajectory_arg
          $ reduce_arg $ reduce_gamma_arg $ repack_arg $ repack_strategy_arg)

(* ---------- frontier ---------- *)

let frontier_cmd =
  let base_arg =
    Arg.(value & opt string "ff"
         & info [ "base" ] ~docv:"POLICY"
             ~doc:("Base policy of the repack family ("
                   ^ Dvbp_engine.Repack.supported_base_names ^ ")."))
  in
  let strategy_arg =
    Arg.(value & opt string "both"
         & info [ "strategy" ] ~docv:"NAME"
             ~doc:"Repacking strategy: el, cons or both.")
  in
  let ks_arg =
    Arg.(value & opt (list int) [ 0; 1; 2; 4; 8 ]
         & info [ "k" ] ~docv:"K1,K2,.."
             ~doc:"Comma-separated migration budgets to sweep.")
  in
  let fd_arg = Arg.(value & opt int 2 & info [ "d" ] ~docv:"INT" ~doc:"Dimensions.") in
  let fmu_arg =
    Arg.(value & opt int 100 & info [ "mu" ] ~docv:"INT" ~doc:"Max duration.")
  in
  let fn_arg =
    Arg.(value & opt int 200 & info [ "n" ] ~docv:"INT" ~doc:"Item count.")
  in
  let action base strategy ks m seed d mu n jobs =
    match
      match jobs with
      | Some j when j < 1 ->
          invalid_arg (Printf.sprintf "--jobs must be a positive integer (got %d)" j)
      | Some j -> Dvbp_parallel.Domain_pool.set_default_jobs j
      | None -> ignore (Dvbp_parallel.Domain_pool.default_jobs ())
    with
    | exception Invalid_argument msg -> prerr_endline msg; 1
    | () -> (
        match Repack.strategy_of_name strategy with
        | Error e -> prerr_endline ("--strategy: " ^ e); 1
        | Ok strategy -> (
            match
              X.Migration_frontier.run ~instances:m ~seed ~base ~strategy ~ks ~d
                ~mu ~n ()
            with
            | exception Invalid_argument msg -> prerr_endline msg; 1
            | f -> print_string (X.Migration_frontier.render f); 0))
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Sweep the migration budget/cost frontier: Any Fit references vs \
             budgeted repacking, against Lemma 1 and exact OPT")
    Term.(const action $ base_arg $ strategy_arg $ ks_arg $ instances_arg 40
          $ seed_arg $ fd_arg $ fmu_arg $ fn_arg $ jobs_arg)

(* ---------- figure4 ---------- *)

let figure4_cmd =
  let full_arg =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Paper-scale run: 1000 instances per point (slow).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write long-format CSV here.")
  in
  let action full m seed csv jobs =
    match
      match jobs with
      | Some j when j < 1 ->
          invalid_arg (Printf.sprintf "--jobs must be a positive integer (got %d)" j)
      | Some j -> Dvbp_parallel.Domain_pool.set_default_jobs j
      | None -> ignore (Dvbp_parallel.Domain_pool.default_jobs ())
    with
    | exception Invalid_argument msg -> prerr_endline msg; 1
    | () ->
    let config =
      if full then X.Figure4.paper
      else { X.Figure4.default with X.Figure4.instances = m; seed }
    in
    print_string (X.Table2.render ~instances:config.X.Figure4.instances ());
    print_newline ();
    let cells = X.Figure4.run ~progress:prerr_endline config in
    print_string (X.Figure4.render_table cells);
    print_newline ();
    print_string (X.Figure4.render_plots cells);
    (match csv with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (X.Figure4.to_csv cells));
        Printf.printf "wrote %s\n" path
    | None -> ());
    0
  in
  Cmd.v (Cmd.info "figure4" ~doc:"Regenerate the Figure 4 average-case sweep")
    Term.(const action $ full_arg $ instances_arg 60 $ seed_arg $ csv_arg $ jobs_arg)

(* ---------- table1 / table2 / figures ---------- *)

let table1_cmd =
  let action d mu fuzz seed =
    print_string (X.Table1.render_theory ());
    print_newline ();
    print_string
      (X.Table1.render_verification
         (X.Table1.verify_gadgets ~d ~mu:(float_of_int mu) ~ks:[ 2; 4; 8 ] ()));
    print_newline ();
    print_string (X.Table1.render_fuzz (X.Table1.fuzz_upper_bounds ~instances:fuzz ~seed ()));
    0
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 with live verification")
    Term.(const action $ d_arg $ mu_arg $ instances_arg 200 $ seed_arg)

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Print the experimental parameter table")
    Term.(const (fun () -> print_string (X.Table2.render ()); 0) $ const ())

let figures_cmd =
  let action () =
    print_string (X.Proof_figures.figure1 ());
    print_newline ();
    print_string (X.Proof_figures.figure2 ());
    print_newline ();
    print_string (X.Proof_figures.figure3 ());
    0
  in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate Figures 1-3 from live runs")
    Term.(const action $ const ())

(* ---------- adversary ---------- *)

let adversary_cmd =
  let family_arg =
    Arg.(value & opt string "anyfit"
         & info [ "family" ] ~docv:"NAME" ~doc:"Gadget: anyfit, nextfit, mtf or bestfit.")
  in
  let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~docv:"INT" ~doc:"Growth parameter.") in
  let action family d k mu policy gantt =
    let gadget =
      match family with
      | "anyfit" -> Ok (A.Anyfit_lb.construct ~d ~k ~mu:(float_of_int mu))
      | "nextfit" ->
          let k = if k mod 2 = 0 then k else k + 1 in
          Ok (A.Nextfit_lb.construct ~d ~k ~mu:(float_of_int mu))
      | "mtf" -> Ok (A.Mtf_lb.construct ~n:k ~mu:(float_of_int mu))
      | "bestfit" -> Ok (A.Bestfit_lb.construct ~k ~t_end:(float_of_int (4 * k * k)))
      | other -> Error (Printf.sprintf "unknown gadget family %S" other)
    in
    match gadget with
    | Error e -> prerr_endline e; 1
    | Ok g -> (
        Format.printf "%a@." A.Gadget.pp g;
        let target = Option.value ~default:policy g.A.Gadget.target in
        match Cli.Run_report.run_one ~policy:target ~seed:1 g.A.Gadget.instance ~gantt with
        | Error e -> prerr_endline e; 1
        | Ok () -> 0)
  in
  Cmd.v (Cmd.info "adversary" ~doc:"Build and execute a lower-bound gadget")
    Term.(const action $ family_arg $ d_arg $ k_arg $ mu_arg $ policy_arg $ gantt_arg)

(* ---------- describe ---------- *)

let describe_cmd =
  let list_arg =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"List every workload family with a one-line description and \
                   exit.")
  in
  let action list workload trace d mu n rho seed =
    if list then begin
      print_string (W.Describe.render_families ());
      0
    end
    else
      match build_instance ~workload ~trace ~d ~mu ~n ~rho ~seed with
      | Error e -> prerr_endline e; 1
      | Ok instance ->
          print_string (W.Describe.render (W.Describe.measure instance));
          0
  in
  Cmd.v (Cmd.info "describe" ~doc:"Summary statistics of a workload or trace")
    Term.(const action $ list_arg $ workload_arg $ trace_arg $ d_arg $ mu_arg
          $ n_arg $ rho_arg $ seed_arg)

(* ---------- opt ---------- *)

let opt_cmd =
  let trace_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.CSV")
  in
  let action path =
    match W.Trace_io.read_file path with
    | Error e -> prerr_endline e; 1
    | Ok instance -> (
        Printf.printf "span lower bound:    %.4f\n" (Bounds.span instance);
        Printf.printf "utilisation bound:   %.4f\n" (Bounds.utilisation instance);
        Printf.printf "height bound (i):    %.4f\n" (Bounds.height_integral instance);
        Printf.printf "DFF bound:           %.4f\n" (Dvbp_lowerbound.Dff.integral instance);
        match Opt.exact instance with
        | Ok opt -> Printf.printf "exact OPT (eq. 2):   %.4f\n" opt; 0
        | Error (`Node_limit n) ->
            Printf.printf "exact OPT: node limit %d exceeded (instance too large)\n" n;
            1)
  in
  Cmd.v (Cmd.info "opt" ~doc:"Lower bounds and exact OPT of a CSV trace")
    Term.(const action $ trace_pos)

(* ---------- serve / recover / loadgen ---------- *)

let capacity_arg =
  Arg.(value & opt string "100,100"
       & info [ "capacity" ] ~docv:"C1,..,CD"
           ~doc:"Bin capacity vector, comma-separated positive integers.")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE" ~doc:"Append-only event journal (WAL).")

let snapshot_arg =
  Arg.(value & opt (some string) None
       & info [ "snapshot" ] ~docv:"FILE" ~doc:"Snapshot (checkpoint) file.")

let snapshot_every_arg =
  Arg.(value & opt (some int) None
       & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Auto-snapshot (and truncate the journal) every N applied events.")

let fsync_every_arg =
  Arg.(value & opt int 64
       & info [ "fsync-every" ] ~docv:"N"
           ~doc:"Journal fsync batch size (1 = fsync every record).")

let serve_jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"INT"
           ~doc:"Tenant shards (worker domains) for batched requests. Per-tenant \
                 packings are bit-identical for any value.")

let segment_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "segment-bytes" ] ~docv:"BYTES"
           ~doc:"Journal segment roll threshold (default 1048576): the active \
                 segment is sealed and a new one opened once it passes this \
                 size.")

let retain_segments_arg =
  Arg.(value & opt (some int) None
       & info [ "retain-segments" ] ~docv:"N"
           ~doc:"Arm online compaction: once more than N sealed segments \
                 accumulate, snapshot and retire the covered ones between \
                 batches. Requires --journal and --snapshot.")

let serve_cmd =
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Recover from an existing journal/snapshot before serving \
                   (a fresh journal is started otherwise).")
  in
  let metrics_dump_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-dump" ] ~docv:"FILE"
             ~doc:"Write the final METRICS snapshot here on exit \
                   (pretty-print it with $(b,dvbp metrics)).")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"SOCK"
             ~doc:"Serve many concurrent clients on this unix socket path \
                   (group commit across connections) instead of stdio.")
  in
  let action policy seed capacity journal snapshot snapshot_every fsync_every jobs
      segment_bytes retain_segments listen resume metrics_dump =
    match
      Cli.Service_cli.serve
        { Cli.Service_cli.policy; seed; capacity; journal; snapshot;
          snapshot_every; fsync_every; jobs; segment_bytes; retain_segments;
          listen; resume; metrics_dump }
        stdin stdout
    with
    | Ok () -> 0
    | Error e -> prerr_endline e; 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Durable online placement service: ARRIVE/DEPART line protocol on \
             stdio or a unix socket")
    Term.(const action $ policy_arg $ seed_arg $ capacity_arg $ journal_arg
          $ snapshot_arg $ snapshot_every_arg $ fsync_every_arg $ serve_jobs_arg
          $ segment_bytes_arg $ retain_segments_arg
          $ listen_arg $ resume_arg $ metrics_dump_arg)

let recover_cmd =
  let journal_pos =
    Arg.(required & opt (some string) None
         & info [ "journal" ] ~docv:"FILE" ~doc:"Journal to recover from.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Verification is always performed (every recorded placement is \
                   recomputed and compared); the flag is accepted for explicit \
                   pipelines.")
  in
  let action journal snapshot _verify =
    match Cli.Service_cli.recover ~journal ~snapshot with
    | Ok rendered -> print_string rendered; 0
    | Error e -> prerr_endline e; 1
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild service state from journal + snapshot, verifying every placement")
    Term.(const action $ journal_pos $ snapshot_arg $ verify_arg)

let compact_cmd =
  let journal_req =
    Arg.(required & opt (some string) None
         & info [ "journal" ] ~docv:"FILE" ~doc:"Journal to compact.")
  in
  let snapshot_req =
    Arg.(required & opt (some string) None
         & info [ "snapshot" ] ~docv:"FILE"
             ~doc:"Snapshot to write at the recovered frontier (an existing \
                   one is read first and replaced atomically).")
  in
  let action journal snapshot segment_bytes =
    match Cli.Service_cli.compact ~journal ~snapshot ?segment_bytes () with
    | Ok out -> print_endline out; 0
    | Error e -> prerr_endline e; 1
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Offline journal compaction: snapshot the recovered frontier, \
             then retire every sealed segment it covers")
    Term.(const action $ journal_req $ snapshot_req $ segment_bytes_arg)

let loadgen_cmd =
  let emit_arg =
    Arg.(value & flag
         & info [ "emit" ]
             ~doc:"Print the protocol request script instead of driving a server.")
  in
  let policy_seed_arg =
    Arg.(value & opt int 42
         & info [ "policy-seed" ] ~docv:"INT"
             ~doc:"Policy rng seed (workload generation uses --seed).")
  in
  let clients_arg =
    Arg.(value & opt int 0
         & info [ "clients" ] ~docv:"N"
             ~doc:"Drive N concurrent clients (tenants t0..t{N-1}) against one \
                   event-loop server; 0 = classic single-client pipe driver.")
  in
  let lg_jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"INT"
             ~doc:"Server-side tenant shards in multi-client mode.")
  in
  let window_arg =
    Arg.(value & opt int 256
         & info [ "window" ] ~docv:"N"
             ~doc:"Per-client pipelining depth in multi-client mode.")
  in
  let lg_fsync_arg =
    Arg.(value & opt (some int) None
         & info [ "fsync-every" ] ~docv:"N"
             ~doc:"Journal fsync batch size / group-commit ceiling \
                   (default: 64 single-client, 1024 multi-client).")
  in
  let connect_arg =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"SOCK"
             ~doc:"Drive an external $(b,dvbp serve --listen) server at this \
                   unix socket instead of an in-process one (server death \
                   mid-run is tolerated and reported).")
  in
  let action workload trace d mu n rho seed policy policy_seed journal snapshot
      snapshot_every fsync_every clients jobs window connect emit =
    let source = { Cli.Workload_select.workload; trace; d; mu; n; rho; seed } in
    match
      Cli.Service_cli.loadgen
        { Cli.Service_cli.source; lg_policy = policy; lg_seed = policy_seed;
          lg_journal = journal; lg_snapshot = snapshot;
          lg_snapshot_every = snapshot_every; lg_fsync_every = fsync_every;
          lg_clients = clients; lg_jobs = jobs; lg_window = window;
          lg_connect = connect; emit }
    with
    | Ok out -> print_string out; 0
    | Error e -> prerr_endline e; 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay a workload through the protocol against a live server")
    Term.(const action $ workload_arg $ trace_arg $ d_arg $ mu_arg $ n_arg
          $ rho_arg $ seed_arg $ policy_arg $ policy_seed_arg $ journal_arg
          $ snapshot_arg $ snapshot_every_arg $ lg_fsync_arg $ clients_arg
          $ lg_jobs_arg $ window_arg $ connect_arg $ emit_arg)

let metrics_cmd =
  let file_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"A metrics dump: the output of $(b,--metrics-dump) or a saved \
                   METRICS reply.")
  in
  let action file =
    match Cli.Metrics_report.of_file file with
    | Ok rendered -> print_string rendered; 0
    | Error e -> prerr_endline e; 1
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Pretty-print a Prometheus-style metrics snapshot")
    Term.(const action $ file_pos)

(* ---------- trace ---------- *)

let trace_group_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace path.")
  in
  let block_size_arg =
    Arg.(value & opt (some int) None
         & info [ "block-size" ] ~docv:"RECORDS"
             ~doc:"Records per block (default 512) — the unit of streaming \
                   reads and of seeking.")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:"Chain $(docv) re-seeded copies of the source end to end \
                   (times shifted, ids offset). Compile memory stays \
                   O(one shard), so this is how multi-million-event traces \
                   are built.")
  in
  let from_model_arg =
    Arg.(value & opt string "uniform"
         & info [ "from-model" ] ~docv:"NAME"
             ~doc:("Generator family to compile: " ^ workload_names ^ "."))
  in
  let file_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")
  in
  let emit = function
    | Ok out -> print_string out; 0
    | Error e -> prerr_endline e; 1
  in
  let compile_cmd =
    let action workload trace d mu n rho seed out block_size shards =
      emit
        (Cli.Trace_cli.compile
           { Cli.Trace_cli.co_source =
               { Cli.Workload_select.workload; trace; d; mu; n; rho; seed };
             co_out = out; co_block_size = block_size; co_shards = shards })
    in
    Cmd.v
      (Cmd.info "compile"
         ~doc:"Compile a generator family or CSV trace to the binary format")
      Term.(const action $ from_model_arg $ trace_arg $ d_arg $ mu_arg $ n_arg
            $ rho_arg $ seed_arg $ out_arg $ block_size_arg $ shards_arg)
  in
  let info_cmd =
    let action path = emit (Cli.Trace_cli.info path) in
    Cmd.v (Cmd.info "info" ~doc:"Print a binary trace's header and geometry")
      Term.(const action $ file_pos)
  in
  let verify_cmd =
    let action path = emit (Cli.Trace_cli.verify path) in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Full-scan integrity check: every CRC and the event sort order")
      Term.(const action $ file_pos)
  in
  let replay_cmd =
    let action path policy seed =
      emit (Cli.Trace_cli.replay ~policy ~seed path)
    in
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Stream a binary trace through an engine session and report \
               throughput")
      Term.(const action $ file_pos $ policy_arg $ seed_arg)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Compile, inspect, verify and replay binary traces")
    [ compile_cmd; info_cmd; verify_cmd; replay_cmd ]

let main_cmd =
  Cmd.group
    (Cmd.info "dvbp" ~version:"1.0.0"
       ~doc:"MinUsageTime Dynamic Vector Bin Packing — simulator and experiments")
    [ run_cmd; figure4_cmd; table1_cmd; table2_cmd; figures_cmd; adversary_cmd;
      describe_cmd; opt_cmd; frontier_cmd; serve_cmd; recover_cmd; compact_cmd;
      loadgen_cmd; metrics_cmd; trace_group_cmd ]

(* Error-path hardening: whatever escapes a subcommand becomes one line on
   stderr and a non-zero exit, never a raw backtrace. *)
let () =
  match Cmd.eval' main_cmd with
  | code -> exit code
  | exception Invalid_argument msg | exception Failure msg | exception Sys_error msg ->
      Printf.eprintf "dvbp: %s\n" msg;
      exit 2
  | exception Dvbp_engine.Session.Session_error msg ->
      Printf.eprintf "dvbp: session error: %s\n" msg;
      exit 2
  | exception exn ->
      Printf.eprintf "dvbp: %s\n" (Printexc.to_string exn);
      exit 2
