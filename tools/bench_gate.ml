(* Bench gate: compares the FF/BF/MTF throughput lines of a fresh
   [bench/main.exe --json] snapshot against a committed baseline and
   fails (exit 1) when any line regresses past the tolerance.

     bench_gate.exe --baseline BENCH_pr3.json --current /tmp/bench.json \
       [--min-ratio 0.8] [--policies ff,bf,mtf]

   The parser is deliberately dependency-free: it only understands the
   flat shape bench/main.ml emits —

     "throughput_items_per_sec": {
       "ff": { "d1_mu10": 1234.5, ... },
       ...
     }

   — and fails loudly when a policy or cell it was asked to gate is
   missing from either file, so a silently renamed line can never pass
   the gate by absence. *)

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "bench_gate: cannot open %s: %s\n" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find_from txt needle start =
  let n = String.length txt and k = String.length needle in
  let rec go i =
    if i + k > n then None
    else if String.sub txt i k = needle then Some i
    else go (i + 1)
  in
  go start

(* [policy_block txt name] is the ["name": { ... }] object body for
   [name] inside the throughput section. *)
let policy_block txt name =
  match find_from txt "\"throughput_items_per_sec\"" 0 with
  | None -> None
  | Some start -> (
      match find_from txt (Printf.sprintf "\"%s\":" name) start with
      | None -> None
      | Some i -> (
          match String.index_from_opt txt i '{' with
          | None -> None
          | Some opening -> (
              match String.index_from_opt txt opening '}' with
              | None -> None
              | Some closing ->
                  Some (String.sub txt (opening + 1) (closing - opening - 1)))))

(* ["d1_mu10": 1234.5] pairs from a policy block body *)
let cells body =
  let cells = ref [] in
  let n = String.length body in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt body !i '"' with
    | None -> i := n
    | Some q1 -> (
        match String.index_from_opt body (q1 + 1) '"' with
        | None -> i := n
        | Some q2 ->
            let key = String.sub body (q1 + 1) (q2 - q1 - 1) in
            let rest = ref (q2 + 1) in
            while
              !rest < n
              && (body.[!rest] = ':' || body.[!rest] = ' ' || body.[!rest] = '\n')
            do
              incr rest
            done;
            let num_start = !rest in
            while
              !rest < n
              &&
              match body.[!rest] with
              | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
              | _ -> false
            do
              incr rest
            done;
            (if !rest > num_start then
               match
                 float_of_string_opt (String.sub body num_start (!rest - num_start))
               with
               | Some v -> cells := (key, v) :: !cells
               | None -> ());
            i := !rest)
  done;
  List.rev !cells

(* first JSON number following [key], starting the search at [start] *)
let number_after txt key start =
  match find_from txt key start with
  | None -> None
  | Some i ->
      let n = String.length txt in
      let j = ref (i + String.length key) in
      while
        !j < n && (match txt.[!j] with ':' | ' ' | '\n' -> true | _ -> false)
      do
        incr j
      done;
      let num_start = !j in
      while
        !j < n
        &&
        match txt.[!j] with
        | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
        | _ -> false
      do
        incr j
      done;
      if !j > num_start then
        float_of_string_opt (String.sub txt num_start (!j - num_start))
      else None

(* the journaled events/s of the single-client service loadgen line:
   "service_loadgen": { ..., "journaled": { ..., "events_per_sec": V } } *)
let service_journaled_eps txt =
  match find_from txt "\"service_loadgen\"" 0 with
  | None -> None
  | Some s -> (
      match find_from txt "\"journaled\"" s with
      | None -> None
      | Some j -> number_after txt "\"events_per_sec\"" j)

(* the trace-store replay throughput:
   "trace_replay": { ..., "events_per_sec": V, ... } *)
let trace_replay_eps txt =
  match find_from txt "\"trace_replay\"" 0 with
  | None -> None
  | Some s -> number_after txt "\"events_per_sec\"" s

let () =
  let baseline = ref "" and current = ref "" in
  let min_ratio = ref 0.8 in
  let policies = ref "ff,bf,mtf" in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline, "PATH committed baseline JSON");
      ("--current", Arg.Set_string current, "PATH freshly generated JSON");
      ( "--min-ratio",
        Arg.Set_float min_ratio,
        "R fail when current/baseline < R in any gated line (default 0.8)" );
      ( "--policies",
        Arg.Set_string policies,
        "CSV policies to gate (default ff,bf,mtf)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_gate --baseline BASE.json --current NEW.json [--min-ratio 0.8]";
  if !baseline = "" || !current = "" then begin
    Printf.eprintf "bench_gate: --baseline and --current are required\n";
    exit 2
  end;
  let base_txt = read_file !baseline and cur_txt = read_file !current in
  let failures = ref 0 and checked = ref 0 in
  let gate policy =
    match (policy_block base_txt policy, policy_block cur_txt policy) with
    | None, _ ->
        Printf.eprintf "bench_gate: policy %S missing from %s\n" policy !baseline;
        incr failures
    | _, None ->
        Printf.eprintf "bench_gate: policy %S missing from %s\n" policy !current;
        incr failures
    | Some bb, Some cb ->
        let base_cells = cells bb and cur_cells = cells cb in
        if base_cells = [] then begin
          Printf.eprintf "bench_gate: no cells for %S in %s\n" policy !baseline;
          incr failures
        end;
        List.iter
          (fun (cell, bv) ->
            match List.assoc_opt cell cur_cells with
            | None ->
                Printf.eprintf "bench_gate: %s.%s missing from %s\n" policy cell
                  !current;
                incr failures
            | Some cv ->
                incr checked;
                let ratio = cv /. bv in
                let ok = ratio >= !min_ratio in
                Printf.printf "%-4s %-10s baseline %12.1f  current %12.1f  %5.2fx  %s\n"
                  policy cell bv cv ratio
                  (if ok then "ok" else "REGRESSION");
                if not ok then incr failures)
          base_cells
  in
  String.split_on_char ',' !policies
  |> List.iter (fun p ->
         let p = String.trim p in
         if p <> "" then gate p);
  (* the durable-service line rides the same floor: journaled events/s
     must not regress either (missing from either file = loud failure,
     so renaming the section can never pass the gate by absence) *)
  (match (service_journaled_eps base_txt, service_journaled_eps cur_txt) with
  | None, _ ->
      Printf.eprintf "bench_gate: service_loadgen journaled line missing from %s\n"
        !baseline;
      incr failures
  | _, None ->
      Printf.eprintf "bench_gate: service_loadgen journaled line missing from %s\n"
        !current;
      incr failures
  | Some bv, Some cv ->
      incr checked;
      let ratio = cv /. bv in
      let ok = ratio >= !min_ratio in
      Printf.printf "%-4s %-10s baseline %12.1f  current %12.1f  %5.2fx  %s\n"
        "svc" "journaled" bv cv ratio
        (if ok then "ok" else "REGRESSION");
      if not ok then incr failures);
  (* the binary-trace replay path is gated the same way: streaming a
     compiled trace into a session must not get slower *)
  (match (trace_replay_eps base_txt, trace_replay_eps cur_txt) with
  | None, _ ->
      Printf.eprintf "bench_gate: trace_replay line missing from %s\n" !baseline;
      incr failures
  | _, None ->
      Printf.eprintf "bench_gate: trace_replay line missing from %s\n" !current;
      incr failures
  | Some bv, Some cv ->
      incr checked;
      let ratio = cv /. bv in
      let ok = ratio >= !min_ratio in
      Printf.printf "%-4s %-10s baseline %12.1f  current %12.1f  %5.2fx  %s\n"
        "trc" "replay" bv cv ratio
        (if ok then "ok" else "REGRESSION");
      if not ok then incr failures);
  if !checked = 0 then begin
    Printf.eprintf "bench_gate: nothing checked\n";
    exit 2
  end;
  if !failures > 0 then begin
    Printf.printf "bench_gate: FAIL (%d regression(s)/missing line(s), floor %.2fx)\n"
      !failures !min_ratio;
    exit 1
  end
  else
    Printf.printf "bench_gate: PASS (%d lines, floor %.2fx of %s)\n" !checked
      !min_ratio !baseline
