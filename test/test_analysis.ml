(* Tests for the proof-structure analysis tools: the MTF leading/non-leading
   decomposition (Claim 1), the FF P/Q decomposition (Claim 4), the NF
   current-bin decomposition, Gantt rendering, CR bound checks and the
   packing/alignment diagnostics. *)

open Dvbp_core
open Dvbp_analysis
module Engine = Dvbp_engine.Engine
module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Rng = Dvbp_prelude.Rng
module Uniform_model = Dvbp_workload.Uniform_model

let v = Vec.of_list
let cap = v [ 100 ]
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let inst specs = Instance.of_specs_exn ~capacity:cap specs

let small_params = { Uniform_model.d = 2; n = 40; mu = 5; span = 40; bin_size = 10 }

let mtf_tests =
  [
    Alcotest.test_case "claim 1 holds on the Thm 8 gadget" `Quick (fun () ->
        let g = Dvbp_adversary.Mtf_lb.construct ~n:3 ~mu:5.0 in
        let run = Engine.run ~policy:(Policy.move_to_front ()) g.Dvbp_adversary.Gadget.instance in
        let d = Mtf_decomposition.analyse run.Engine.trace in
        let activity = Instance.activity g.Dvbp_adversary.Gadget.instance in
        check_bool "partition" true
          (Mtf_decomposition.leading_partition_activity d ~activity);
        check_float "leading total = span" 5.0 (Mtf_decomposition.leading_total d));
    Alcotest.test_case "claim 1 holds with activity gaps" `Quick (fun () ->
        let i =
          inst [ (0.0, 2.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]); (10.0, 12.0, v [ 10 ]) ]
        in
        let run = Engine.run ~policy:(Policy.move_to_front ()) i in
        let d = Mtf_decomposition.analyse run.Engine.trace in
        check_bool "partition" true
          (Mtf_decomposition.leading_partition_activity d ~activity:(Instance.activity i));
        check_float "total = span" (Instance.span i) (Mtf_decomposition.leading_total d));
    Alcotest.test_case "leadership switches on overflow" `Quick (fun () ->
        (* Two big items cannot share: second bin becomes leader when opened;
           the first bin is non-leading until the second closes. *)
        let i = inst [ (0.0, 5.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.move_to_front ()) i in
        let d = Mtf_decomposition.analyse run.Engine.trace in
        let bin0 = List.nth d.Mtf_decomposition.bins 0 in
        let bin1 = List.nth d.Mtf_decomposition.bins 1 in
        check_bool "bin0 leads [0,1) and [3,5)" true
          (Interval_set.equal bin0.Mtf_decomposition.leading
             (Interval_set.of_intervals [ Interval.make 0.0 1.0; Interval.make 3.0 5.0 ]));
        check_bool "bin0 non-leading [1,3)" true
          (Interval_set.equal bin0.Mtf_decomposition.non_leading
             (Interval_set.of_intervals [ Interval.make 1.0 3.0 ]));
        check_bool "bin1 leads its whole life" true
          (Interval_set.equal bin1.Mtf_decomposition.leading
             (Interval_set.of_intervals [ Interval.make 1.0 3.0 ])));
    Alcotest.test_case "non-leading stretches bounded by mu" `Quick (fun () ->
        let params = { small_params with Uniform_model.n = 60 } in
        for seed = 0 to 4 do
          let i = Uniform_model.generate params ~rng:(Rng.create ~seed) in
          let run = Engine.run ~policy:(Policy.move_to_front ()) i in
          let d = Mtf_decomposition.analyse run.Engine.trace in
          check_bool "bounded" true
            (Mtf_decomposition.non_leading_max d <= Instance.max_duration i +. 1e-9)
        done);
  ]

let ff_tests =
  [
    Alcotest.test_case "P/Q values on the staggered 3-bin instance" `Quick (fun () ->
        let i =
          inst [ (0.0, 4.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]); (2.0, 6.0, v [ 60 ]) ]
        in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let d = Ff_decomposition.analyse run.Engine.packing in
        (match d.Ff_decomposition.bins with
        | [ b0; b1; b2 ] ->
            check_bool "P0 empty" true (Interval.is_empty b0.Ff_decomposition.p);
            check_bool "Q0 = [0,4)" true
              (Interval.equal b0.Ff_decomposition.q (Interval.make 0.0 4.0));
            check_bool "P1 = [1,3)" true
              (Interval.equal b1.Ff_decomposition.p (Interval.make 1.0 3.0));
            check_bool "Q1 empty" true (Interval.is_empty b1.Ff_decomposition.q);
            check_bool "P2 = [2,4)" true
              (Interval.equal b2.Ff_decomposition.p (Interval.make 2.0 4.0));
            check_bool "Q2 = [4,6)" true
              (Interval.equal b2.Ff_decomposition.q (Interval.make 4.0 6.0))
        | bins -> Alcotest.failf "expected 3 bins, got %d" (List.length bins));
        check_float "q_total = span" 6.0 (Ff_decomposition.q_total d);
        check_bool "claim4" true
          (Ff_decomposition.check_claim4 d ~activity:(Instance.activity i)));
    Alcotest.test_case "claim 4 holds for every policy (it is packing-generic)"
      `Quick (fun () ->
        List.iter
          (fun name ->
            let rng = Rng.create ~seed:3 in
            let i = Uniform_model.generate small_params ~rng:(Rng.create ~seed:17) in
            let run = Engine.run ~policy:(Policy.of_name_exn ~rng name) i in
            let d = Ff_decomposition.analyse run.Engine.packing in
            check_bool (name ^ " claim4") true
              (Ff_decomposition.check_claim4 d ~activity:(Instance.activity i)))
          Policy.standard_names);
  ]

let nf_tests =
  [
    Alcotest.test_case "current periods on a forced-release run" `Quick (fun () ->
        (* B0 current [0,1): releases when the second 60 misses. B1 current
           until its own close. *)
        let i = inst [ (0.0, 5.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.next_fit ()) i in
        let d = Nf_decomposition.analyse run.Engine.trace in
        (match d.Nf_decomposition.bins with
        | [ b0; b1 ] ->
            check_bool "b0 current [0,1)" true
              (Interval.equal b0.Nf_decomposition.current (Interval.make 0.0 1.0));
            check_bool "b0 released [1,5)" true
              (Interval.equal b0.Nf_decomposition.released (Interval.make 1.0 5.0));
            check_bool "b1 current [1,3)" true
              (Interval.equal b1.Nf_decomposition.current (Interval.make 1.0 3.0))
        | bins -> Alcotest.failf "expected 2 bins, got %d" (List.length bins));
        check_bool "disjoint within activity" true
          (Nf_decomposition.check_disjoint_within_activity d
             ~activity:(Instance.activity i)));
    Alcotest.test_case "invariants on random NF runs" `Quick (fun () ->
        for seed = 0 to 4 do
          let i = Uniform_model.generate small_params ~rng:(Rng.create ~seed) in
          let run = Engine.run ~policy:(Policy.next_fit ()) i in
          let d = Nf_decomposition.analyse run.Engine.trace in
          check_bool "within activity" true
            (Nf_decomposition.check_disjoint_within_activity d
               ~activity:(Instance.activity i));
          check_bool "current_total <= span" true
            (Nf_decomposition.current_total d <= Instance.span i +. 1e-9);
          check_bool "released <= mu" true
            (Nf_decomposition.released_max d <= Instance.max_duration i +. 1e-9)
        done);
  ]

let gantt_tests =
  [
    Alcotest.test_case "renders one row per bin plus a scale" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let out = Gantt.render ~width:40 run.Engine.packing in
        let lines = String.split_on_char '\n' out in
        Alcotest.(check int) "lines" 4 (List.length lines);
        check_bool "has usage marks" true (String.contains out '='));
    Alcotest.test_case "highlight overdraws with #" `Quick (fun () ->
        let i = inst [ (0.0, 4.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let highlight _ = Interval_set.of_intervals [ Interval.make 0.0 2.0 ] in
        let out = Gantt.render ~width:40 ~highlight run.Engine.packing in
        check_bool "has highlight" true (String.contains out '#'));
    Alcotest.test_case "rejects tiny width" `Quick (fun () ->
        let i = inst [ (0.0, 1.0, v [ 1 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        check_bool "raises" true
          (try ignore (Gantt.render ~width:1 run.Engine.packing); false
           with Invalid_argument _ -> true));
  ]

let bound_tests =
  [
    Alcotest.test_case "theoretical bounds instantiate correctly" `Quick (fun () ->
        let some = function Some x -> x | None -> Alcotest.fail "expected bound" in
        check_float "mtf" ((((2.0 *. 5.0) +. 1.0) *. 2.0) +. 1.0)
          (some (Bound_check.theoretical_bound ~policy:"mtf" ~mu:5.0 ~d:2));
        check_float "ff" (((5.0 +. 2.0) *. 2.0) +. 1.0)
          (some (Bound_check.theoretical_bound ~policy:"ff" ~mu:5.0 ~d:2));
        check_float "nf" ((2.0 *. 5.0 *. 2.0) +. 1.0)
          (some (Bound_check.theoretical_bound ~policy:"nf" ~mu:5.0 ~d:2));
        check_bool "bf unbounded" true
          (Bound_check.theoretical_bound ~policy:"bf" ~mu:5.0 ~d:2 = None));
    Alcotest.test_case "check classifies ratios" `Quick (fun () ->
        let i = inst [ (0.0, 1.0, v [ 50 ]); (0.0, 2.0, v [ 50 ]) ] in
        (match Bound_check.check ~policy:"ff" ~cost:2.0 ~opt:2.0 ~instance:i with
        | Some verdict -> check_bool "ok" true verdict.Bound_check.ok
        | None -> Alcotest.fail "expected verdict");
        match Bound_check.check ~policy:"ff" ~cost:1000.0 ~opt:2.0 ~instance:i with
        | Some verdict -> check_bool "violated" false verdict.Bound_check.ok
        | None -> Alcotest.fail "expected verdict");
  ]

let diagnostics_tests =
  [
    Alcotest.test_case "metrics on a two-bin packing" `Quick (fun () ->
        (* bin0: items (0,2,50),(0,2,50); bin1: single item (0,4,60) *)
        let i =
          inst [ (0.0, 2.0, v [ 50 ]); (0.0, 2.0, v [ 50 ]); (0.0, 4.0, v [ 60 ]) ]
        in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let m = Diagnostics.measure run.Engine.packing in
        (* utilisation = .5*2 + .5*2 + .6*4 = 4.4; cost = 2 + 4 = 6 *)
        check_float "efficiency" (4.4 /. 6.0) m.Diagnostics.packing_efficiency;
        check_float "items per bin" 1.5 m.Diagnostics.mean_items_per_bin;
        check_float "singleton fraction" 0.5 m.Diagnostics.singleton_bin_fraction;
        check_float "spread" 0.0 m.Diagnostics.departure_spread);
    Alcotest.test_case "spread catches misaligned departures" `Quick (fun () ->
        let i = inst [ (0.0, 1.0, v [ 50 ]); (0.0, 5.0, v [ 50 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let m = Diagnostics.measure run.Engine.packing in
        check_float "spread" 0.8 m.Diagnostics.departure_spread);
    Alcotest.test_case "worst fit packs less efficiently than best fit on average"
      `Quick (fun () ->
        (* per-instance the order can flip; the aggregate must not *)
        let params =
          { Uniform_model.d = 2; n = 200; mu = 10; span = 100; bin_size = 20 }
        in
        let eff policy seed =
          let i = Uniform_model.generate params ~rng:(Rng.create ~seed) in
          let r = Engine.run ~policy:(policy ()) i in
          (Diagnostics.measure r.Engine.packing).Diagnostics.packing_efficiency
        in
        let mean policy =
          List.fold_left (fun acc s -> acc +. eff policy s) 0.0
            (Dvbp_prelude.Listx.range 0 9)
          /. 10.0
        in
        check_bool "bf tighter" true (mean Policy.best_fit > mean Policy.worst_fit));
  ]

let conformance_tests =
  [
    Alcotest.test_case "every deterministic policy conforms to its semantics"
      `Quick (fun () ->
        let params =
          { Uniform_model.d = 2; n = 120; mu = 8; span = 60; bin_size = 20 }
        in
        for seed = 0 to 4 do
          let instance = Uniform_model.generate params ~rng:(Rng.create ~seed) in
          List.iter
            (fun name ->
              match Conformance.semantics_of_name name with
              | None -> ()
              | Some semantics -> (
                  let run = Engine.run ~policy:(Policy.of_name_exn name) instance in
                  match Conformance.check semantics instance run.Engine.trace with
                  | Ok () -> ()
                  | Error (violation :: _) ->
                      Alcotest.failf "%s (seed %d): %s" name seed
                        (Format.asprintf "%a" Conformance.pp_violation violation)
                  | Error [] -> assert false))
            [ "ff"; "lf"; "bf"; "wf"; "mtf"; "nf" ]
        done);
    Alcotest.test_case "scalar-kernel instances (d=9, bin_size=256) still conform"
      `Quick (fun () ->
        (* both parameterisations fail the SWAR precondition, so these runs
           pin the fallback fit kernel against the replayer *)
        let param_sets =
          [
            { Uniform_model.d = 9; n = 80; mu = 8; span = 40; bin_size = 10 };
            { Uniform_model.d = 2; n = 80; mu = 8; span = 40; bin_size = 256 };
          ]
        in
        List.iter
          (fun params ->
            let capacity = Uniform_model.capacity params in
            Alcotest.(check string)
              "selects scalar" "scalar"
              (Bin_registry.kernel_name (Bin_registry.create ~capacity ()));
            let instance =
              Uniform_model.generate params ~rng:(Rng.create ~seed:11)
            in
            List.iter
              (fun name ->
                match Conformance.semantics_of_name name with
                | None -> ()
                | Some semantics -> (
                    let run = Engine.run ~policy:(Policy.of_name_exn name) instance in
                    match Conformance.check semantics instance run.Engine.trace with
                    | Ok () -> ()
                    | Error (violation :: _) ->
                        Alcotest.failf "%s (d=%d bin_size=%d): %s" name
                          params.Uniform_model.d params.Uniform_model.bin_size
                          (Format.asprintf "%a" Conformance.pp_violation violation)
                    | Error [] -> assert false))
              [ "ff"; "lf"; "bf"; "wf"; "mtf"; "nf" ])
          param_sets);
    Alcotest.test_case "a first-fit trace violates best-fit semantics somewhere"
      `Quick (fun () ->
        (* bins at 50 and 70; the 30 goes first-fit to bin 0 but best-fit
           would choose the fuller bin 1 (70 + 30 = 100) *)
        let i =
          inst
            [ (0.0, 9.0, v [ 50 ]); (0.0, 9.0, v [ 70 ]); (1.0, 9.0, v [ 30 ]) ]
        in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        (match Conformance.check Conformance.First_fit i run.Engine.trace with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "FF trace must conform to FF");
        match
          Conformance.check (Conformance.Best_fit Load_measure.Linf) i run.Engine.trace
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "FF trace should violate BF semantics here");
    Alcotest.test_case "a first-fit trace violates next-fit semantics" `Quick
      (fun () ->
        (* NF would not reuse bin 0 after releasing it *)
        let i =
          inst
            [
              (0.0, 9.0, v [ 60 ]); (0.0, 9.0, v [ 60 ]); (1.0, 9.0, v [ 30 ]);
              (2.0, 9.0, v [ 40 ]);
            ]
        in
        let ff = Engine.run ~policy:(Policy.first_fit ()) i in
        (match Conformance.check Conformance.Next_fit i ff.Engine.trace with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "FF trace should violate NF semantics here");
        let nf = Engine.run ~policy:(Policy.next_fit ()) i in
        match Conformance.check Conformance.Next_fit i nf.Engine.trace with
        | Ok () -> ()
        | Error (violation :: _) ->
            Alcotest.failf "NF trace must conform: %s"
              (Format.asprintf "%a" Conformance.pp_violation violation)
        | Error [] -> assert false);
    Alcotest.test_case "gadget executions conform too (simultaneous arrivals)"
      `Quick (fun () ->
        (* the §6 instances are heavy on same-instant arrivals — a good
           stress for the replayer's ordering assumptions *)
        let gadgets =
          [
            (Dvbp_adversary.Anyfit_lb.construct ~d:2 ~k:2 ~mu:3.0).Dvbp_adversary.Gadget.instance;
            (Dvbp_adversary.Nextfit_lb.construct ~d:1 ~k:4 ~mu:3.0).Dvbp_adversary.Gadget.instance;
            (Dvbp_adversary.Mtf_lb.construct ~n:3 ~mu:4.0).Dvbp_adversary.Gadget.instance;
            (Dvbp_adversary.Bestfit_lb.construct ~k:3 ~t_end:20.0).Dvbp_adversary.Gadget.instance;
          ]
        in
        List.iter
          (fun instance ->
            List.iter
              (fun name ->
                match Conformance.semantics_of_name name with
                | None -> ()
                | Some semantics -> (
                    let run = Engine.run ~policy:(Policy.of_name_exn name) instance in
                    match Conformance.check semantics instance run.Engine.trace with
                    | Ok () -> ()
                    | Error (violation :: _) ->
                        Alcotest.failf "%s: %s" name
                          (Format.asprintf "%a" Conformance.pp_violation violation)
                    | Error [] -> assert false))
              [ "ff"; "lf"; "bf"; "wf"; "mtf"; "nf" ])
          gadgets);
    Alcotest.test_case "semantics_of_name coverage" `Quick (fun () ->
        List.iter
          (fun name ->
            check_bool name true (Conformance.semantics_of_name name <> None))
          [ "ff"; "lf"; "bf"; "wf"; "mtf"; "nf" ];
        check_bool "rf has none" true (Conformance.semantics_of_name "rf" = None));
  ]

let monitor_tests =
  [
    Alcotest.test_case "trajectory of a simple run" `Quick (fun () ->
        (* one bin [0,2), another [1,4); ratio grows when both are open *)
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 4.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        let points = Online_monitor.trajectory i run.Dvbp_engine.Engine.trace in
        (* event times: 0 (open), 1 (open), 2 (close), 4 (close) *)
        Alcotest.(check int) "points" 4 (List.length points);
        let final = List.nth points 3 in
        check_float "cost" 5.0 final.Online_monitor.cost_so_far;
        check_float "lb" 5.0 final.Online_monitor.lower_bound_so_far;
        check_float "final ratio" 1.0 (Online_monitor.final_ratio points));
    Alcotest.test_case "intermediate points track open bins" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 4.0, v [ 60 ]) ] in
        let run = Engine.run ~policy:(Policy.first_fit ()) i in
        (match Online_monitor.trajectory i run.Dvbp_engine.Engine.trace with
        | [ p0; p1; p2; _ ] ->
            Alcotest.(check int) "1 bin at t=0" 1 p0.Online_monitor.open_bins;
            Alcotest.(check int) "2 bins at t=1" 2 p1.Online_monitor.open_bins;
            check_float "cost at t=1" 1.0 p1.Online_monitor.cost_so_far;
            Alcotest.(check int) "1 bin left at t=2" 1 p2.Online_monitor.open_bins;
            check_float "cost at t=2" 3.0 p2.Online_monitor.cost_so_far
        | _ -> Alcotest.fail "expected 4 points"));
    Alcotest.test_case "peak ratio catches a transient" `Quick (fun () ->
        (* NF strands a bin early: the momentary ratio exceeds the final one *)
        let i =
          inst [ (0.0, 10.0, v [ 60 ]); (1.0, 2.0, v [ 60 ]); (2.0, 10.0, v [ 30 ]) ]
        in
        let run = Engine.run ~policy:(Policy.next_fit ()) i in
        let points = Online_monitor.trajectory i run.Dvbp_engine.Engine.trace in
        check_bool "peak >= final" true
          (Online_monitor.peak_ratio points
           >= Online_monitor.final_ratio points -. 1e-9));
    Alcotest.test_case "empty trajectory rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Online_monitor.final_ratio []); false
           with Invalid_argument _ -> true));
  ]

let suites =
  [
    ("analysis.mtf_decomposition", mtf_tests);
    ("analysis.conformance", conformance_tests);
    ("analysis.online_monitor", monitor_tests);
    ("analysis.ff_decomposition", ff_tests);
    ("analysis.nf_decomposition", nf_tests);
    ("analysis.gantt", gantt_tests);
    ("analysis.bound_check", bound_tests);
    ("analysis.diagnostics", diagnostics_tests);
  ]
