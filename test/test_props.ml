(* Metamorphic and cross-cutting property tests.

   These laws hold for *every* deterministic policy by the structure of the
   model, so they catch engine bugs that unit tests with known answers
   cannot:
   - scale invariance: multiplying all sizes and the capacity by c changes
     nothing about the execution;
   - time translation: shifting all times by delta shifts the cost report
     but not assignments;
   - time dilation: multiplying all times by c multiplies the cost by c;
   - additivity: two time-separated sub-instances cost the sum of their
     separate runs;
   - trace accounting: cost equals the sum over bins of close - open. *)

open Dvbp_core
open Dvbp_engine
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng

let deterministic_policies = [ "mtf"; "ff"; "bf"; "nf"; "wf"; "lf" ]

(* random small instance generator shared by the laws *)
let instance_gen =
  QCheck2.Gen.(
    let* d = 1 -- 3 in
    let* n = 1 -- 12 in
    let* specs =
      list_repeat n
        (let* a = 0 -- 8 in
         let* dur = 1 -- 5 in
         let* size = array_repeat d (1 -- 10) in
         return (float_of_int a, float_of_int (a + dur), size))
    in
    let* policy = oneofl deterministic_policies in
    return (d, specs, policy))

let build d specs =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:d 10)
    (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)

let run_policy name inst =
  Engine.run ~policy:(Policy.of_name_exn name) inst

let assignments run =
  List.map (fun (_, item, bin) -> (item, bin)) (Trace.placements run.Engine.trace)

let prop_scale_invariance =
  QCheck2.Test.make ~name:"scaling sizes+capacity changes nothing" ~count:200
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let scaled = Instance.scale_sizes inst ~factor:7 in
      let a = run_policy policy inst and b = run_policy policy scaled in
      assignments a = assignments b
      && Float.abs (Engine.cost a -. Engine.cost b) < 1e-9)

let prop_time_translation =
  QCheck2.Test.make ~name:"shifting time preserves assignments and cost" ~count:200
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let shifted = Instance.shift inst ~by:13.5 in
      let a = run_policy policy inst and b = run_policy policy shifted in
      assignments a = assignments b
      && Float.abs (Engine.cost a -. Engine.cost b) < 1e-6)

let prop_time_dilation =
  QCheck2.Test.make ~name:"dilating time scales the cost" ~count:200 instance_gen
    (fun (d, specs, policy) ->
      let inst = build d specs in
      let dilated = Instance.scale_time inst ~factor:3.0 in
      let a = run_policy policy inst and b = run_policy policy dilated in
      assignments a = assignments b
      && Float.abs ((3.0 *. Engine.cost a) -. Engine.cost b) < 1e-6)

let prop_additivity =
  QCheck2.Test.make ~name:"time-separated copies cost the sum" ~count:200
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let far = Instance.horizon inst +. 5.0 in
      let copy = Instance.shift inst ~by:far in
      match Instance.merge [ inst; copy ] with
      | Error e -> QCheck2.Test.fail_report e
      | Ok merged ->
          let single = Engine.cost (run_policy policy inst) in
          let double = Engine.cost (run_policy policy merged) in
          Float.abs ((2.0 *. single) -. double) < 1e-6)

let prop_trace_accounting =
  QCheck2.Test.make ~name:"cost = sum over bins of close - open" ~count:200
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let run = run_policy policy inst in
      let opens = Trace.openings run.Engine.trace in
      let closes = Trace.closings run.Engine.trace in
      let by_bin = List.map (fun (t, b) -> (b, t)) closes in
      let from_trace =
        List.fold_left
          (fun acc (t_open, bin) -> acc +. (List.assoc bin by_bin -. t_open))
          0.0 opens
      in
      Float.abs (from_trace -. Engine.cost run) < 1e-6)

let prop_bins_opened_consistent =
  QCheck2.Test.make ~name:"bins_opened = #Opened events = #bins in packing"
    ~count:200 instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let run = run_policy policy inst in
      run.Engine.bins_opened = List.length (Trace.openings run.Engine.trace)
      && run.Engine.bins_opened = Packing.num_bins run.Engine.packing)

let prop_every_packing_validates =
  QCheck2.Test.make ~name:"every policy's packing validates" ~count:200
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let run = run_policy policy inst in
      Result.is_ok (Packing.validate inst run.Engine.packing))

let prop_rf_validates_too =
  QCheck2.Test.make ~name:"random fit packs validly" ~count:100
    QCheck2.Gen.(pair instance_gen (0 -- 1000))
    (fun ((d, specs, _), seed) ->
      let inst = build d specs in
      let rng = Rng.create ~seed in
      let run = Engine.run ~policy:(Policy.random_fit ~rng ()) inst in
      Result.is_ok (Packing.validate inst run.Engine.packing))

let prop_policies_conform =
  QCheck2.Test.make ~name:"every deterministic policy passes conformance replay"
    ~count:200 instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let run = run_policy policy inst in
      match Dvbp_analysis.Conformance.semantics_of_name policy with
      | None -> true
      | Some semantics ->
          Result.is_ok (Dvbp_analysis.Conformance.check semantics inst run.Engine.trace))

let prop_runs_deterministic =
  QCheck2.Test.make ~name:"identical runs produce identical traces" ~count:150
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let a = run_policy policy inst and b = run_policy policy inst in
      Trace.events a.Engine.trace = Trace.events b.Engine.trace)

let prop_session_equals_engine =
  QCheck2.Test.make ~name:"session replay equals batch engine" ~count:150
    instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let batch = run_policy policy inst in
      let session =
        Session.create ~capacity:inst.Instance.capacity
          ~policy:(Policy.of_name_exn policy) ()
      in
      let events =
        List.concat_map
          (fun (r : Item.t) ->
            [ (r.Item.departure, 0, r); (r.Item.arrival, 1, r) ])
          inst.Instance.items
        |> List.sort (fun (ta, ka, ra) (tb, kb, rb) ->
               compare (ta, ka, ra.Item.id) (tb, kb, rb.Item.id))
      in
      List.iter
        (fun (_, kind, (r : Item.t)) ->
          if kind = 1 then
            ignore
              (Session.arrive session ~at:r.Item.arrival ~id:r.Item.id
                 ~size:r.Item.size ())
          else Session.depart session ~at:r.Item.departure ~item_id:r.Item.id)
        events;
      let packing = Session.finish session ~at:(Session.now session) in
      Float.abs (Packing.cost packing -. Engine.cost batch) < 1e-9
      && Packing.num_bins packing = Packing.num_bins batch.Engine.packing)

let prop_trace_io_roundtrip =
  QCheck2.Test.make ~name:"CSV trace round-trip is lossless" ~count:150
    instance_gen (fun (d, specs, _) ->
      let inst = build d specs in
      match Dvbp_workload.Trace_io.of_string (Dvbp_workload.Trace_io.to_string inst) with
      | Error _ -> false
      | Ok inst' ->
          Vec.equal inst.Instance.capacity inst'.Instance.capacity
          && List.for_all2
               (fun (a : Item.t) (b : Item.t) ->
                 a.Item.id = b.Item.id && a.Item.arrival = b.Item.arrival
                 && a.Item.departure = b.Item.departure
                 && Vec.equal a.Item.size b.Item.size)
               inst.Instance.items inst'.Instance.items)

let prop_monitor_final_matches =
  QCheck2.Test.make ~name:"online monitor trajectory ends at the run totals"
    ~count:200 instance_gen (fun (d, specs, policy) ->
      let inst = build d specs in
      let run = run_policy policy inst in
      let points = Dvbp_analysis.Online_monitor.trajectory inst run.Engine.trace in
      match List.rev points with
      | [] -> false
      | last :: _ ->
          Float.abs (last.Dvbp_analysis.Online_monitor.cost_so_far -. Engine.cost run)
            < 1e-6
          && Float.abs
               (last.Dvbp_analysis.Online_monitor.lower_bound_so_far
               -. Dvbp_lowerbound.Bounds.height_integral inst)
             < 1e-6)

let suites =
  [
    ( "props.metamorphic",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_scale_invariance;
          prop_time_translation;
          prop_time_dilation;
          prop_additivity;
          prop_trace_accounting;
          prop_bins_opened_consistent;
          prop_every_packing_validates;
          prop_rf_validates_too;
          prop_policies_conform;
          prop_runs_deterministic;
          prop_session_equals_engine;
          prop_trace_io_roundtrip;
          prop_monitor_final_matches;
        ] );
  ]
