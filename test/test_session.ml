(* Tests for the incremental (truly online) session API, including its
   equivalence with the batch engine and its failure modes. *)

open Dvbp_core
open Dvbp_engine
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Uniform_model = Dvbp_workload.Uniform_model

let v = Vec.of_list
let cap = v [ 100 ]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let fresh ?(policy = Policy.first_fit ()) () = Session.create ~capacity:cap ~policy ()

let raises_session f =
  try ignore (f ()); false with Session.Session_error _ -> true

let lifecycle_tests =
  [
    Alcotest.test_case "arrive, depart, cost flow" `Quick (fun () ->
        let s = fresh () in
        let p0 = Session.arrive s ~at:0.0 ~size:(v [ 60 ]) () in
        check_bool "opened" true p0.Session.opened_new_bin;
        check_int "bin 0" 0 p0.Session.bin_id;
        let p1 = Session.arrive s ~at:1.0 ~size:(v [ 30 ]) () in
        check_bool "reused" false p1.Session.opened_new_bin;
        check_int "active" 2 (Session.active_items s);
        check_float "cost at 1" 1.0 (Session.cost_so_far s);
        Session.depart s ~at:3.0 ~item_id:p0.Session.item_id;
        check_int "still open for item 1" 1 (List.length (Session.open_bins s));
        Session.depart s ~at:5.0 ~item_id:p1.Session.item_id;
        check_int "all closed" 0 (List.length (Session.open_bins s));
        check_float "final cost" 5.0 (Session.cost_so_far s));
    Alcotest.test_case "max_open_bins tracks the peak across closes" `Quick
      (fun () ->
        let s = fresh () in
        (* three single-occupant bins open simultaneously: peak 3 *)
        let ps =
          List.map (fun at -> Session.arrive s ~at ~size:(v [ 60 ]) ())
            [ 0.0; 1.0; 2.0 ]
        in
        check_int "peak at 3" 3 (Session.max_open_bins s);
        List.iter
          (fun (p : Session.placement) ->
            Session.depart s ~at:3.0 ~item_id:p.Session.item_id)
          ps;
        (* reopening fewer bins must not move the recorded peak *)
        let p = Session.arrive s ~at:4.0 ~size:(v [ 60 ]) () in
        let _ = Session.arrive s ~at:5.0 ~size:(v [ 60 ]) () in
        check_int "peak unchanged" 3 (Session.max_open_bins s);
        Session.depart s ~at:6.0 ~item_id:p.Session.item_id;
        check_int "still the historic peak" 3 (Session.max_open_bins s));
    Alcotest.test_case "record_trace:false skips the trace, nothing else" `Quick
      (fun () ->
        let run record_trace =
          let s =
            Session.create ~record_trace ~capacity:cap
              ~policy:(Policy.first_fit ()) ()
          in
          let a = Session.arrive s ~at:0.0 ~size:(v [ 60 ]) () in
          let _ = Session.arrive s ~at:1.0 ~size:(v [ 60 ]) () in
          Session.depart s ~at:2.0 ~item_id:a.Session.item_id;
          let events = List.length (Trace.events (Session.trace s)) in
          let packing = Session.finish s ~at:3.0 in
          (events, Packing.cost packing, Session.bins_opened s)
        in
        let events_on, cost_on, bins_on = run true in
        let events_off, cost_off, bins_off = run false in
        check_bool "trace recorded" true (events_on > 0);
        check_int "trace suppressed" 0 events_off;
        check_float "same cost" cost_on cost_off;
        check_int "same bins" bins_on bins_off);
    Alcotest.test_case "cost_so_far bills open bins to now" `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:0.0 ~size:(v [ 60 ]) () in
        let _ = Session.arrive s ~at:2.0 ~size:(v [ 60 ]) () in
        (* two bins open since 0 and 2; at t=2 the bill is 2 + 0 *)
        check_float "cost" 2.0 (Session.cost_so_far s));
    Alcotest.test_case "finish departs leftovers and returns a valid packing"
      `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:0.0 ~size:(v [ 60 ]) () in
        let p1 = Session.arrive s ~at:1.0 ~size:(v [ 60 ]) () in
        Session.depart s ~at:2.0 ~item_id:p1.Session.item_id;
        let packing = Session.finish s ~at:4.0 in
        check_int "bins" 2 (Packing.num_bins packing);
        check_float "cost" (4.0 +. 1.0) (Packing.cost packing));
    Alcotest.test_case "session equals batch engine on a real workload" `Quick
      (fun () ->
        let params =
          { Uniform_model.d = 2; n = 120; mu = 8; span = 60; bin_size = 20 }
        in
        let instance = Uniform_model.generate params ~rng:(Rng.create ~seed:5) in
        let batch = Engine.run ~policy:(Policy.move_to_front ()) instance in
        (* replay the same instance through the session by hand *)
        let session =
          Session.create ~capacity:instance.Instance.capacity
            ~policy:(Policy.move_to_front ()) ()
        in
        let events =
          List.concat_map
            (fun (r : Item.t) ->
              [ (r.Item.departure, 0, r); (r.Item.arrival, 1, r) ])
            instance.Instance.items
          |> List.sort (fun (ta, ka, ra) (tb, kb, rb) ->
                 compare (ta, ka, ra.Item.id) (tb, kb, rb.Item.id))
        in
        List.iter
          (fun (_, kind, (r : Item.t)) ->
            if kind = 1 then
              ignore
                (Session.arrive session ~at:r.Item.arrival ~id:r.Item.id
                   ~size:r.Item.size ())
            else Session.depart session ~at:r.Item.departure ~item_id:r.Item.id)
          events;
        let packing = Session.finish session ~at:(Session.now session) in
        check_float "same cost" (Packing.cost batch.Engine.packing)
          (Packing.cost packing);
        check_int "same bins" (Packing.num_bins batch.Engine.packing)
          (Packing.num_bins packing);
        match Packing.validate instance packing with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
    Alcotest.test_case "auto ids skip explicitly claimed ones" `Quick (fun () ->
        let s = fresh () in
        let a = Session.arrive s ~at:0.0 ~id:0 ~size:(v [ 1 ]) () in
        let b = Session.arrive s ~at:0.0 ~size:(v [ 1 ]) () in
        check_int "explicit" 0 a.Session.item_id;
        check_int "auto skips" 1 b.Session.item_id);
    Alcotest.test_case "clairvoyant arrivals feed the policy" `Quick (fun () ->
        let s = Session.create ~capacity:cap ~policy:(Policy.duration_aligned_fit ()) () in
        let _ = Session.arrive s ~at:0.0 ~departure:10.0 ~size:(v [ 40 ]) () in
        let _ = Session.arrive s ~at:0.0 ~departure:2.0 ~size:(v [ 40 ]) () in
        (* a third item departing at 9.8 should join the bin ending at 10 —
           but both fit in bin 0; daf picks the closer departure *)
        let p = Session.arrive s ~at:1.0 ~departure:9.8 ~size:(v [ 20 ]) () in
        check_int "aligned" 0 p.Session.bin_id);
  ]

let error_tests =
  [
    Alcotest.test_case "time cannot go backwards" `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:5.0 ~size:(v [ 1 ]) () in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:4.0 ~size:(v [ 1 ]) ())));
    Alcotest.test_case "oversized item rejected" `Quick (fun () ->
        let s = fresh () in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:0.0 ~size:(v [ 101 ]) ())));
    Alcotest.test_case "dimension mismatch rejected" `Quick (fun () ->
        let s = fresh () in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:0.0 ~size:(v [ 1; 1 ]) ())));
    Alcotest.test_case "unknown departure rejected" `Quick (fun () ->
        let s = fresh () in
        check_bool "raises" true
          (raises_session (fun () -> Session.depart s ~at:1.0 ~item_id:9; ())));
    Alcotest.test_case "double departure rejected" `Quick (fun () ->
        let s = fresh () in
        let p = Session.arrive s ~at:0.0 ~size:(v [ 1 ]) () in
        Session.depart s ~at:1.0 ~item_id:p.Session.item_id;
        check_bool "raises" true
          (raises_session (fun () ->
               Session.depart s ~at:2.0 ~item_id:p.Session.item_id; ())));
    Alcotest.test_case "zero-duration item rejected" `Quick (fun () ->
        let s = fresh () in
        let p = Session.arrive s ~at:1.0 ~size:(v [ 1 ]) () in
        check_bool "raises" true
          (raises_session (fun () ->
               Session.depart s ~at:1.0 ~item_id:p.Session.item_id; ())));
    Alcotest.test_case "duplicate explicit id rejected" `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:0.0 ~id:3 ~size:(v [ 1 ]) () in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:0.0 ~id:3 ~size:(v [ 1 ]) ())));
    Alcotest.test_case "use after finish rejected" `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:0.0 ~size:(v [ 1 ]) () in
        let _ = Session.finish s ~at:2.0 in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:3.0 ~size:(v [ 1 ]) ())));
    Alcotest.test_case "bad clairvoyant departure rejected" `Quick (fun () ->
        let s = fresh () in
        check_bool "raises" true
          (raises_session (fun () ->
               Session.arrive s ~at:5.0 ~departure:5.0 ~size:(v [ 1 ]) ())));
    Alcotest.test_case "non-finite time rejected" `Quick (fun () ->
        let s = fresh () in
        check_bool "raises" true
          (raises_session (fun () -> Session.arrive s ~at:nan ~size:(v [ 1 ]) ())));
  ]

(* Every Session_error must name the offending item and timestamp, so an
   operator can locate the event in a journal or trace without a debugger. *)
let message_of f =
  try
    ignore (f ());
    Alcotest.fail "expected Session_error"
  with Session.Session_error msg -> msg

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let check_mentions what msg subs =
  List.iter
    (fun sub ->
      if not (contains_sub msg sub) then
        Alcotest.failf "%s: %S does not mention %S" what msg sub)
    subs

let message_tests =
  [
    Alcotest.test_case "backwards time names the item and both times" `Quick
      (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:5.0 ~id:7 ~size:(v [ 1 ]) () in
        check_mentions "arrival"
          (message_of (fun () -> Session.arrive s ~at:4.0 ~id:8 ~size:(v [ 1 ]) ()))
          [ "item 8"; "4"; "5" ];
        check_mentions "departure"
          (message_of (fun () -> Session.depart s ~at:4.0 ~item_id:7))
          [ "item 7"; "4"; "5" ]);
    Alcotest.test_case "oversized arrival names the item, time and sizes" `Quick
      (fun () ->
        let s = fresh () in
        check_mentions "oversized"
          (message_of (fun () -> Session.arrive s ~at:2.5 ~id:3 ~size:(v [ 101 ]) ()))
          [ "item 3"; "2.5"; "101"; "100" ]);
    Alcotest.test_case "dimension mismatch names the item and dimensions" `Quick
      (fun () ->
        let s = fresh () in
        check_mentions "dimension"
          (message_of (fun () -> Session.arrive s ~at:1.0 ~id:4 ~size:(v [ 1; 1 ]) ()))
          [ "item 4"; "dimension 2"; "dimension 1" ]);
    Alcotest.test_case "duplicate id names the id and time" `Quick (fun () ->
        let s = fresh () in
        let _ = Session.arrive s ~at:0.0 ~id:3 ~size:(v [ 1 ]) () in
        check_mentions "duplicate"
          (message_of (fun () -> Session.arrive s ~at:1.0 ~id:3 ~size:(v [ 1 ]) ()))
          [ "item id 3"; "at 1" ]);
    Alcotest.test_case "departure failures name the item and time" `Quick
      (fun () ->
        let s = fresh () in
        check_mentions "unknown item"
          (message_of (fun () -> Session.depart s ~at:1.5 ~item_id:9))
          [ "item id 9"; "1.5" ];
        let p = Session.arrive s ~at:2.0 ~id:1 ~size:(v [ 1 ]) () in
        check_mentions "too early"
          (message_of (fun () -> Session.depart s ~at:2.0 ~item_id:p.Session.item_id))
          [ "item 1"; "at 2"; "arrived at 2" ];
        Session.depart s ~at:3.0 ~item_id:1;
        check_mentions "double departure"
          (message_of (fun () -> Session.depart s ~at:4.0 ~item_id:1))
          [ "item 1"; "at 4"; "departed at 3" ]);
    Alcotest.test_case "bad clairvoyant departure names both timestamps" `Quick
      (fun () ->
        let s = fresh () in
        check_mentions "clairvoyant"
          (message_of (fun () ->
               Session.arrive s ~at:5.0 ~id:2 ~departure:5.0 ~size:(v [ 1 ]) ()))
          [ "item 2"; "at 5"; "departure 5" ]);
    Alcotest.test_case "rejected arrivals leave the session untouched" `Quick
      (fun () ->
        (* the service's REJECT-and-keep-serving path depends on this: a
           refused event must not advance the clock or open a bin *)
        let s = fresh () in
        let _ = Session.arrive s ~at:1.0 ~id:0 ~size:(v [ 60 ]) () in
        check_bool "duplicate id refused" true
          (raises_session (fun () -> Session.arrive s ~at:2.0 ~id:0 ~size:(v [ 1 ]) ()));
        check_bool "oversize refused" true
          (raises_session (fun () -> Session.arrive s ~at:3.0 ~id:1 ~size:(v [ 999 ]) ()));
        check_float "clock unmoved" 1.0 (Session.now s);
        check_int "no stray bins" 1 (Session.bins_opened s);
        (* an event at the original clock is still acceptable *)
        let p = Session.arrive s ~at:1.0 ~id:1 ~size:(v [ 40 ]) () in
        check_bool "same bin" true (p.Session.bin_id = 0));
  ]

let suites =
  [
    ("session.lifecycle", lifecycle_tests);
    ("session.errors", error_tests);
    ("session.error_messages", message_tests);
  ]
