(* Tests for the durable placement service: journal codec and torn-tail
   handling, snapshot round trips, crash recovery (the keystone property:
   recovery from any prefix of the journal, followed by replaying the
   remaining events, is bit-identical to an uninterrupted session), the
   server's line protocol with per-request error isolation, and the load
   generator. *)

open Dvbp_service
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Session = Dvbp_engine.Session
module Uniform_model = Dvbp_workload.Uniform_model

let v = Vec.of_list
let cap = v [ 100; 100 ]
let dflt = Tenant.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* first-occurrence textual replacement, for doctoring serialised state *)
let replace_sub text ~sub ~by =
  let n = String.length text and m = String.length sub in
  let rec find i = if i + m > n then None
    else if String.sub text i m = sub then Some i else find (i + 1) in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i -> String.sub text 0 i ^ by ^ String.sub text (i + m) (n - i - m)

let ok_or_fail = function Ok x -> x | Error e -> Alcotest.fail e

let with_tmp_dir f =
  let dir = Filename.temp_file "dvbp_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let header ?(policy = "mtf") ?(seed = 7) ?(capacity = cap) ?(base = 0) () =
  { Journal.policy; seed; capacity; base }

(* the segmented journal's files for a journal configured at [path]; tests
   that doctor bytes on disk target the active segment — the only file the
   torn-tail rules allow to heal *)
let active_seg ?(idx = 0) path = Printf.sprintf "%s.%06d.seg.open" path idx
let sealed_seg ~idx path = Printf.sprintf "%s.%06d.seg" path idx

(* A deterministic little event script exercising placements across several
   bins, departures, and bin reuse. The recorded placements are computed by
   a real mtf session, so they are exactly what a server would journal. *)
let sample_raw =
  [
    `Arrive (0.0, 0, v [ 60; 10 ]);
    `Arrive (1.0, 1, v [ 50; 50 ]);
    `Arrive (1.5, 2, v [ 30; 20 ]);
    `Depart (3.0, 0);
    `Depart (4.0, 2);
    `Depart (5.5, 1);
  ]

let record_raw ?(policy = "mtf") ?(seed = 7) ?(capacity = cap) raw =
  let p =
    match
      Dvbp_core.Policy.of_name ~rng:(Rng.create ~seed) policy
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let s = Session.create ~capacity ~policy:p () in
  List.map
    (function
      | `Arrive (time, item_id, size) ->
          let p = Session.arrive s ~at:time ~id:item_id ~size () in
          Journal.Arrive
            {
              tenant = dflt;
              time;
              item_id;
              size;
              bin_id = p.Session.bin_id;
              opened_new_bin = p.Session.opened_new_bin;
            }
      | `Depart (time, item_id) ->
          Session.depart s ~at:time ~item_id;
          Journal.Depart { tenant = dflt; time; item_id })
    raw

let sample_events = record_raw sample_raw

let journal_tests =
  [
    Alcotest.test_case "event codec round trips" `Quick (fun () ->
        List.iter
          (fun e ->
            match Journal.decode_event (Journal.encode_event e) with
            | Ok e' -> check_bool "event" true (Journal.equal_event e e')
            | Error msg -> Alcotest.fail msg)
          sample_events);
    Alcotest.test_case "codec survives awkward floats" `Quick (fun () ->
        List.iter
          (fun time ->
            let e = Journal.Depart { tenant = dflt; time; item_id = 3 } in
            match Journal.decode_event (Journal.encode_event e) with
            | Ok e' -> check_bool "time" true (Journal.equal_event e e')
            | Error msg -> Alcotest.fail msg)
          [ 0.1; 1.0 /. 3.0; 1e-300; 12345678.875; 0.0 ]);
    Alcotest.test_case "checksum rejects a corrupted body" `Quick (fun () ->
        let line = Journal.encode_event (List.hd sample_events) in
        let corrupted = Bytes.of_string line in
        (* flip a digit in the body, keep the checksum *)
        Bytes.set corrupted 7 (if Bytes.get corrupted 7 = '0' then '1' else '0');
        match Journal.decode_event (Bytes.to_string corrupted) with
        | Error msg -> check_bool "mentions checksum" true (contains_sub msg "checksum")
        | Ok _ -> Alcotest.fail "corrupted record accepted");
    Alcotest.test_case "truncated record is rejected" `Quick (fun () ->
        let line = Journal.encode_event (List.hd sample_events) in
        check_bool "error" true
          (Result.is_error
             (Journal.decode_event (String.sub line 0 (String.length line - 3)))));
    Alcotest.test_case "writer / read_file round trip" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            check_int "appended" (List.length sample_events) (Journal.appended w);
            Journal.close w;
            let r = ok_or_fail (Journal.read_file path) in
            check_string "policy" "mtf" r.Journal.header.Journal.policy;
            check_int "seed" 7 r.Journal.header.Journal.seed;
            check_int "base" 0 r.Journal.header.Journal.base;
            check_bool "capacity" true (Vec.equal cap r.Journal.header.Journal.capacity);
            check_bool "no torn tail" false r.Journal.dropped_torn;
            check_bool "events" true
              (List.equal Journal.equal_event sample_events r.Journal.events)));
    Alcotest.test_case "unterminated torn tail is detected and dropped" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let full = In_channel.with_open_bin (active_seg path) In_channel.input_all in
            (* chop mid-way through the final record: no trailing newline *)
            Out_channel.with_open_bin (active_seg path) (fun oc ->
                Out_channel.output_string oc (String.sub full 0 (String.length full - 5)));
            let r = ok_or_fail (Journal.read_file path) in
            check_bool "torn flagged" true r.Journal.dropped_torn;
            check_bool "prefix kept" true
              (List.equal Journal.equal_event
                 (List.filteri (fun i _ -> i < List.length sample_events - 1) sample_events)
                 r.Journal.events)));
    Alcotest.test_case "terminated corrupt record is a hard error" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            (* a malformed line *with* its newline cannot be a torn write *)
            Out_channel.with_open_gen [ Open_append ] 0o600 (active_seg path)
              (fun oc -> Out_channel.output_string oc "arrive,gibberish,~0000\n");
            check_bool "error" true (Result.is_error (Journal.read_file path))));
    Alcotest.test_case "corrupt mid-file record is a hard error even with torn tail"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let full = In_channel.with_open_bin (active_seg path) In_channel.input_all in
            (* corrupt a record in the middle; the file still ends torn *)
            let b = Bytes.of_string (String.sub full 0 (String.length full - 5)) in
            let mid = Bytes.length b - 40 in
            Bytes.set b mid (if Bytes.get b mid = '0' then '1' else '0');
            Out_channel.with_open_bin (active_seg path) (fun oc ->
                Out_channel.output_string oc (Bytes.to_string b));
            check_bool "error" true (Result.is_error (Journal.read_file path))));
    Alcotest.test_case "missing magic line rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (Journal.of_string "policy,mtf\nseed,1\ncapacity,10\nbase,0\n")));
    Alcotest.test_case "append_to validates the existing header" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            (match Journal.append_to ~path (header ~policy:"ff" ()) with
            | Error msg -> check_bool "names policy" true (contains_sub msg "policy")
            | Ok _ -> Alcotest.fail "policy mismatch accepted");
            let w, r = ok_or_fail (Journal.append_to ~path (header ())) in
            check_int "existing events" (List.length sample_events)
              (List.length r.Journal.events);
            Journal.append w (Journal.Depart { tenant = dflt; time = 9.0; item_id = 99 });
            Journal.close w;
            let r = ok_or_fail (Journal.read_file path) in
            check_int "one more" (List.length sample_events + 1)
              (List.length r.Journal.events)));
    Alcotest.test_case "append_to a torn file heals the tail first" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let full = In_channel.with_open_bin (active_seg path) In_channel.input_all in
            Out_channel.with_open_bin (active_seg path) (fun oc ->
                Out_channel.output_string oc (String.sub full 0 (String.length full - 5)));
            let w, r = ok_or_fail (Journal.append_to ~path (header ())) in
            check_bool "torn reported" true r.Journal.dropped_torn;
            Journal.append w (Journal.Depart { tenant = dflt; time = 9.0; item_id = 99 });
            Journal.close w;
            (* the new record must not weld onto the dropped fragment *)
            let r = ok_or_fail (Journal.read_file path) in
            check_bool "clean now" false r.Journal.dropped_torn;
            check_int "events" (List.length sample_events) (List.length r.Journal.events)));
    Alcotest.test_case "truncate restarts the file at the new base" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.truncate w ~new_base:(List.length sample_events);
            Journal.append w (Journal.Depart { tenant = dflt; time = 9.0; item_id = 99 });
            Journal.close w;
            let r = ok_or_fail (Journal.read_file path) in
            check_int "base" (List.length sample_events) r.Journal.header.Journal.base;
            check_int "only the suffix" 1 (List.length r.Journal.events)));
    Alcotest.test_case "create rejects bad fsync_every" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            check_bool "raises" true
              (try
                 ignore (Journal.create ~fsync_every:0 ~path (header ()));
                 false
               with Invalid_argument _ -> true)));
  ]

(* -------------------------------------------------------------------- *)
(* The segmented on-disk layout: rolling, sealing, the chain read,
   retirement, and migration from the legacy single-file formats. At
   [segment_bytes = 64] the ~60-byte header alone nearly fills a segment,
   so every append seals — the densest possible chain. *)

let legacy_header_text =
  "policy,mtf\nseed,7\ncapacity,100,100\nbase,0\n"

let segment_tests =
  [
    Alcotest.test_case "appends roll into sealed segments; reads chain them"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~segment_bytes:64 ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            let n = List.length sample_events in
            check_int "every append sealed its segment" n
              (Journal.sealed_segments w);
            check_int "frontier" n (Journal.frontier w);
            (* the writer's byte accounting agrees with the directory *)
            let on_disk =
              Array.fold_left
                (fun acc f ->
                  acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
                0 (Sys.readdir dir)
            in
            check_int "live_bytes matches disk" on_disk (Journal.live_bytes w);
            Journal.close w;
            check_bool "sealed file present" true
              (Sys.file_exists (sealed_seg ~idx:0 path));
            check_bool "active file present" true
              (Sys.file_exists (active_seg ~idx:n path));
            let r = ok_or_fail (Journal.read_file path) in
            check_int "chain base" 0 r.Journal.header.Journal.base;
            check_bool "all events, journal order" true
              (List.equal Journal.equal_event sample_events r.Journal.events)));
    Alcotest.test_case "append_to resumes a multi-segment chain" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let first, rest =
              (List.filteri (fun i _ -> i < 3) sample_events,
               List.filteri (fun i _ -> i >= 3) sample_events)
            in
            let w = Journal.create ~segment_bytes:64 ~path (header ()) in
            List.iter (Journal.append w) first;
            Journal.close w;
            let w, r =
              ok_or_fail (Journal.append_to ~segment_bytes:64 ~path (header ()))
            in
            check_int "existing events" 3 (List.length r.Journal.events);
            check_int "resumed frontier" 3 (Journal.frontier w);
            List.iter (Journal.append w) rest;
            Journal.close w;
            let r = ok_or_fail (Journal.read_file path) in
            check_bool "full history" true
              (List.equal Journal.equal_event sample_events r.Journal.events)));
    Alcotest.test_case "retire_sealed unlinks only covered segments, oldest first"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~segment_bytes:64 ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            (* one record per segment: event frontier 3 covers segments 0-2 *)
            check_int "covered segments retired" 3 (Journal.retire_sealed w ~upto:3);
            check_int "survivors" 3 (Journal.sealed_segments w);
            check_bool "oldest gone" false (Sys.file_exists (sealed_seg ~idx:0 path));
            check_bool "uncovered kept" true (Sys.file_exists (sealed_seg ~idx:3 path));
            (* the bound caps one call's work; a second call finishes *)
            check_int "bounded call" 2
              (Journal.retire_sealed ~max_segments:2 w ~upto:6);
            check_int "remainder" 1 (Journal.retire_sealed w ~upto:6);
            check_int "nothing left to retire" 0 (Journal.retire_sealed w ~upto:6);
            Journal.close w;
            (* the surviving chain reads back with its base above the gap *)
            let r = ok_or_fail (Journal.read_file path) in
            check_int "base" 6 r.Journal.header.Journal.base;
            check_int "events" 0 (List.length r.Journal.events)));
    Alcotest.test_case "a v2 single-file journal migrates into segments" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let oc = open_out path in
            output_string oc ("# dvbp-journal v2\n" ^ legacy_header_text);
            List.iter
              (fun e ->
                output_string oc (Journal.encode_event e);
                output_char oc '\n')
              sample_events;
            close_out oc;
            check_bool "legacy file exists" true (Journal.exists path);
            let w, r = ok_or_fail (Journal.append_to ~path (header ())) in
            check_int "read as v2" 2 r.Journal.version;
            check_bool "events preserved" true
              (List.equal Journal.equal_event sample_events r.Journal.events);
            check_bool "legacy file replaced" false (Sys.file_exists path);
            check_bool "active segment holds the history" true
              (Sys.file_exists (active_seg path));
            Journal.close w;
            (* the migrated chain replays bit-identically *)
            let st = ok_or_fail (Recovery.recover ~journal:path ()) in
            check_int "replayed" (List.length sample_events)
              st.Recovery.from_journal));
    Alcotest.test_case "a torn v1 file heals, then migrates" `Quick (fun () ->
        (* the legacy formats keep their torn-tail healing through the
           migration: chop the v1 file mid-record, append_to must drop the
           fragment and carry the intact prefix into the segment *)
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let seal body =
              let sum =
                String.fold_left
                  (fun acc c -> ((acc * 31) + Char.code c) land 0xffff)
                  0 body
              in
              Printf.sprintf "%s,~%04x" body sum
            in
            let oc = open_out path in
            output_string oc ("# dvbp-journal v1\n" ^ legacy_header_text);
            output_string oc (seal "arrive,0.5,0,0,1,60,10" ^ "\n");
            output_string oc "depart,2,0,~12";  (* torn: no newline *)
            close_out oc;
            let w, r = ok_or_fail (Journal.append_to ~path (header ())) in
            check_bool "torn reported" true r.Journal.dropped_torn;
            check_int "intact prefix" 1 (List.length r.Journal.events);
            Journal.close w;
            let r' = ok_or_fail (Journal.read_file path) in
            check_bool "clean after migration" false r'.Journal.dropped_torn;
            check_int "one event" 1 (List.length r'.Journal.events)));
    Alcotest.test_case "exists: absent / segmented / unreadable" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            check_bool "absent" false (Journal.exists path);
            let w = Journal.create ~path (header ()) in
            Journal.close w;
            check_bool "segmented" true (Journal.exists path);
            (* wreck the active segment's header: the journal must still
               "exist" so a resume surfaces the corruption instead of
               silently starting fresh over it *)
            Out_channel.with_open_bin (active_seg path) (fun oc ->
                Out_channel.output_string oc "garbage\n");
            check_bool "unreadable still exists" true (Journal.exists path);
            check_bool "and reading it fails" true
              (Result.is_error (Journal.read_file path))));
  ]

(* Replays [events] through fresh sessions, asserting each recorded
   placement; returns the default tenant's session. *)
let replay_exn events =
  match Recovery.replay ~policy:"mtf" ~seed:7 ~capacity:cap events with
  | Ok sessions -> List.assoc dflt sessions
  | Error e -> Alcotest.fail e

let digest_of ?(history = sample_events) session =
  {
    Snapshot.policy = "mtf";
    seed = 7;
    capacity = cap;
    digests = [ Snapshot.digest_of_session ~tenant:dflt session ];
    history;
  }

let snapshot_tests =
  [
    Alcotest.test_case "string round trip" `Quick (fun () ->
        let snap = digest_of (replay_exn sample_events) in
        let snap' = ok_or_fail (Snapshot.of_string (Snapshot.to_string snap)) in
        check_string "policy" snap.Snapshot.policy snap'.Snapshot.policy;
        let d = List.hd snap.Snapshot.digests
        and d' = List.hd snap'.Snapshot.digests in
        check_string "tenant" d.Snapshot.tenant d'.Snapshot.tenant;
        check_bool "clock" true (d.Snapshot.clock = d'.Snapshot.clock);
        check_bool "cost" true (d.Snapshot.cost = d'.Snapshot.cost);
        check_int "bins_opened" d.Snapshot.bins_opened d'.Snapshot.bins_opened;
        check_bool "open bins" true (d.Snapshot.open_bins = d'.Snapshot.open_bins);
        check_bool "history" true
          (List.equal Journal.equal_event snap.Snapshot.history snap'.Snapshot.history));
    Alcotest.test_case "digest reflects the live session" `Quick (fun () ->
        (* cut before the departures: bins 0 and 1 still open *)
        let prefix = List.filteri (fun i _ -> i < 3) sample_events in
        let d = Snapshot.digest_of_session ~tenant:dflt (replay_exn prefix) in
        check_int "bins opened" 2 d.Snapshot.bins_opened;
        (* mtf keeps bin 1 at the front after placing item 1, so item 2 lands
           there too *)
        check_bool "occupants" true
          (d.Snapshot.open_bins = [ (0, [ 0 ]); (1, [ 1; 2 ]) ]));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "s.snap" in
            Snapshot.write ~path (digest_of (replay_exn sample_events));
            let snap' = ok_or_fail (Snapshot.load ~path ()) in
            check_int "history" (List.length sample_events)
              (List.length snap'.Snapshot.history)));
    Alcotest.test_case "event count mismatch rejected" `Quick (fun () ->
        let text = Snapshot.to_string (digest_of (replay_exn sample_events)) in
        (* claim one more event than the history section holds *)
        let doctored = replace_sub text ~sub:"events,6" ~by:"events,7" in
        check_bool "error" true (Result.is_error (Snapshot.of_string doctored)));
    Alcotest.test_case "corrupt history record rejected by its checksum" `Quick
      (fun () ->
        let text = Snapshot.to_string (digest_of (replay_exn sample_events)) in
        (* v2 times are hex floats: 3.0 = 0x1.8p+1, 4.0 = 0x1p+2 *)
        let doctored =
          replace_sub text ~sub:"depart,default,0x1.8p+1,0"
            ~by:"depart,default,0x1p+2,0"
        in
        check_bool "error" true (Result.is_error (Snapshot.of_string doctored)));
  ]

let event_of_record = function
  | Journal.Arrive { time; item_id; size; _ } -> `Arrive (time, item_id, size)
  | Journal.Depart { time; item_id; _ } -> `Depart (time, item_id)

(* Applies the raw (unrecorded) side of [events] to [session], returning the
   observed placements for arrivals. *)
let apply_raw session events =
  List.filter_map
    (fun e ->
      match event_of_record e with
      | `Arrive (at, id, size) ->
          Some (Session.arrive session ~at ~id ~size ())
      | `Depart (at, item_id) ->
          Session.depart session ~at ~item_id;
          None)
    events

(* A bigger, policy-exercising event history: run a generated workload
   through [Server.handle_line] so the recorded placements are the server's
   own, journal and all. *)
let server_history ~policy ~n ~dir =
  let journal = Filename.concat dir "j.log" in
  let snapshot = Filename.concat dir "s.snap" in
  let config =
    {
      Server.policy;
      seed = 7;
      capacity = v [ 100; 100 ];
      journal = Some journal;
      snapshot = Some snapshot;
      snapshot_every = None;
      fsync_every = 1000;
      jobs = 1;
      segment_bytes = None;
      retain_segments = None;
    }
  in
  let server = ok_or_fail (Server.create config) in
  let inst =
    Uniform_model.generate
      { Uniform_model.d = 2; n; mu = 10; span = 60; bin_size = 100 }
      ~rng:(Rng.create ~seed:3)
  in
  let replies =
    List.map
      (fun line ->
        let reply, quit = Server.handle_line server line in
        check_bool "no quit" false quit;
        reply)
      (Loadgen.script inst)
  in
  List.iter
    (fun r -> check_bool "accepted" true
        (String.length r > 0 && (r.[0] = 'P' || r.[0] = 'O')))
    replies;
  Server.close server;
  (journal, snapshot, ok_or_fail (Journal.read_file journal))

let recovery_tests =
  [
    Alcotest.test_case "replay verifies recorded placements" `Quick (fun () ->
        let session = replay_exn sample_events in
        check_int "all departed" 0 (Session.active_items session);
        check_int "bins" 2 (Session.bins_opened session));
    Alcotest.test_case "replay rejects a wrong recorded bin id" `Quick (fun () ->
        let doctored =
          List.map
            (function
              | Journal.Arrive ({ item_id = 2; _ } as a) ->
                  (* mtf really places item 2 in bin 1 *)
                  Journal.Arrive { a with bin_id = 0; opened_new_bin = false }
              | e -> e)
            sample_events
        in
        match Recovery.replay ~policy:"mtf" ~seed:7 ~capacity:cap doctored with
        | Error msg ->
            check_bool "names the event" true (contains_sub msg "item 2");
            check_bool "names the cause" true (contains_sub msg "mismatch")
        | Ok _ -> Alcotest.fail "doctored journal accepted");
    Alcotest.test_case "recover without snapshot replays the whole journal" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let st = ok_or_fail (Recovery.recover ~journal:path ()) in
            check_int "from journal" (List.length sample_events) st.Recovery.from_journal;
            check_int "from snapshot" 0 st.Recovery.from_snapshot;
            check_bool "history" true
              (List.equal Journal.equal_event sample_events st.Recovery.history)));
    Alcotest.test_case "recover requires base=0 without a snapshot" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ~base:3 ()) in
            Journal.close w;
            check_bool "error" true
              (Result.is_error (Recovery.recover ~journal:path ()))));
    Alcotest.test_case "recover rejects policy mismatch between files" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let w = Journal.create ~path:journal (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let snap = digest_of ~history:[] (replay_exn []) in
            Snapshot.write ~path:snapshot { snap with Snapshot.policy = "ff" };
            check_bool "error" true
              (Result.is_error (Recovery.recover ~snapshot ~journal ()))));
    Alcotest.test_case "keystone: every journal prefix cut recovers and replays
       bit-identically (mtf)" `Slow (fun () ->
        with_tmp_dir (fun dir ->
            let _, _, full = server_history ~policy:"mtf" ~n:40 ~dir in
            let events = full.Journal.events in
            let total = List.length events in
            (* the uninterrupted run: replay everything in one session *)
            let uncut = replay_exn events in
            let uncut_cost = Session.cost_so_far uncut in
            let cut_dir = Filename.concat dir "cuts" in
            Unix.mkdir cut_dir 0o700;
            for k = 0 to total do
              (* crash after record k: journal holds only the first k records *)
              let path = Filename.concat cut_dir (Printf.sprintf "j%d.log" k) in
              let w = Journal.create ~path (header ()) in
              List.iteri (fun i e -> if i < k then Journal.append w e) events;
              Journal.close w;
              let st = ok_or_fail (Recovery.recover ~journal:path ()) in
              check_int "events recovered" k st.Recovery.from_journal;
              (* replay the remaining raw events; placements must equal the
                 recorded ones bit for bit *)
              let rest = List.filteri (fun i _ -> i >= k) events in
              let observed = apply_raw (Recovery.session st) rest in
              let recorded =
                List.filter_map
                  (function
                    | Journal.Arrive { item_id; bin_id; opened_new_bin; _ } ->
                        Some (item_id, bin_id, opened_new_bin)
                    | Journal.Depart _ -> None)
                  rest
              in
              List.iter2
                (fun (p : Session.placement) (item_id, bin_id, opened) ->
                  check_int "item" item_id p.Session.item_id;
                  check_int "bin" bin_id p.Session.bin_id;
                  check_bool "opened" opened p.Session.opened_new_bin)
                observed recorded;
              check_bool
                (Printf.sprintf "cost identical at cut %d" k)
                true
                (Session.cost_so_far (Recovery.session st) = uncut_cost);
              Sys.remove (active_seg path)
            done;
            Unix.rmdir cut_dir));
    Alcotest.test_case "keystone holds for the seeded random-fit policy" `Slow
      (fun () ->
        (* rf draws from its rng on every placement: recovery must replay the
           stream identically from the seed alone *)
        with_tmp_dir (fun dir ->
            let _, _, full = server_history ~policy:"rf" ~n:30 ~dir in
            let events = full.Journal.events in
            let total = List.length events in
            let cut_dir = Filename.concat dir "cuts" in
            Unix.mkdir cut_dir 0o700;
            List.iter
              (fun k ->
                let path = Filename.concat cut_dir (Printf.sprintf "j%d.log" k) in
                let w = Journal.create ~path (header ~policy:"rf" ()) in
                List.iteri (fun i e -> if i < k then Journal.append w e) events;
                Journal.close w;
                let st = ok_or_fail (Recovery.recover ~journal:path ()) in
                let rest = List.filteri (fun i _ -> i >= k) events in
                ignore (apply_raw (Recovery.session st) rest);
                Sys.remove (active_seg path))
              [ 0; 1; total / 2; total - 1; total ];
            Unix.rmdir cut_dir));
    Alcotest.test_case "recovery across a snapshot matches the journal-only run"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let prefix = List.filteri (fun i _ -> i < 3) sample_events in
            let suffix = List.filteri (fun i _ -> i >= 3) sample_events in
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            Snapshot.write ~path:snapshot (digest_of ~history:prefix (replay_exn prefix));
            let w = Journal.create ~path:journal (header ~base:3 ()) in
            List.iter (Journal.append w) suffix;
            Journal.close w;
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "from snapshot" 3 st.Recovery.from_snapshot;
            check_int "from journal" 3 st.Recovery.from_journal;
            let direct = replay_exn sample_events in
            check_bool "same cost" true
              (Session.cost_so_far (Recovery.session st) = Session.cost_so_far direct);
            check_int "same bins" (Session.bins_opened direct)
              (Session.bins_opened (Recovery.session st))));
    Alcotest.test_case "crash between snapshot and truncation is survivable"
      `Quick (fun () ->
        (* snapshot written, but the journal still holds the whole history
           (base 0): the overlap must be verified and skipped, not re-applied *)
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let prefix = List.filteri (fun i _ -> i < 4) sample_events in
            Snapshot.write ~path:snapshot (digest_of ~history:prefix (replay_exn prefix));
            let w = Journal.create ~path:journal (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "from snapshot" 4 st.Recovery.from_snapshot;
            check_int "journal suffix only" 2 st.Recovery.from_journal;
            check_int "nothing double-applied" 0
              (Session.active_items (Recovery.session st))));
    Alcotest.test_case "overlap divergence between the files is a hard error"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let prefix = List.filteri (fun i _ -> i < 4) sample_events in
            Snapshot.write ~path:snapshot (digest_of ~history:prefix (replay_exn prefix));
            (* journal claims a different event where the snapshot's history
               ends: the files disagree about the past *)
            let doctored =
              List.mapi
                (fun i e ->
                  if i = 3 then Journal.Depart { tenant = dflt; time = 3.0; item_id = 2 }
                  else e)
                sample_events
            in
            let w = Journal.create ~path:journal (header ()) in
            List.iter (Journal.append w) doctored;
            Journal.close w;
            check_bool "error" true
              (Result.is_error (Recovery.recover ~snapshot ~journal ()))));
    Alcotest.test_case "render names the essentials" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w)
              (List.filteri (fun i _ -> i < 3) sample_events);
            Journal.close w;
            let st = ok_or_fail (Recovery.recover ~journal:path ()) in
            let out = Recovery.render st in
            check_bool "policy" true (contains_sub out "mtf");
            check_bool "counts" true (contains_sub out "3");
            check_bool "open bins" true (contains_sub out "bin ")));
  ]

let fresh_server ?journal ?snapshot ?snapshot_every ?segment_bytes
    ?retain_segments () =
  ok_or_fail
    (Server.create
       {
         Server.policy = "mtf";
         seed = 7;
         capacity = cap;
         journal;
         snapshot;
         snapshot_every;
         fsync_every = 64;
         jobs = 1;
         segment_bytes;
         retain_segments;
       })

let expect t line reply =
  let got, _quit = Server.handle_line t line in
  check_string line reply got

let server_tests =
  [
    Alcotest.test_case "protocol happy path" `Quick (fun () ->
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
        expect t "ARRIVE 1 1 50,50" "PLACED 1 1";
        expect t "DEPART 2 0" "OK";
        let reply, quit = Server.handle_line t "QUIT" in
        check_string "quit reply" "BYE" reply;
        check_bool "quit flag" true quit;
        Server.close t);
    Alcotest.test_case "CRLF requests are tolerated" `Quick (fun () ->
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10\r" "PLACED 0 1";
        Server.close t);
    Alcotest.test_case "session refusals answer REJECT and keep serving" `Quick
      (fun () ->
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
        (* duplicate id *)
        let reply, _ = Server.handle_line t "ARRIVE 1 0 5,5" in
        check_bool "REJECT" true (contains_sub reply "REJECT");
        check_bool "names the item" true (contains_sub reply "0");
        (* oversized *)
        let reply, _ = Server.handle_line t "ARRIVE 2 9 500,5" in
        check_bool "REJECT oversized" true (contains_sub reply "REJECT");
        (* time going backwards *)
        expect t "ARRIVE 5 2 10,10" "PLACED 0 0";
        let reply, _ = Server.handle_line t "ARRIVE 4 3 10,10" in
        check_bool "REJECT stale" true (contains_sub reply "REJECT");
        (* the session is untouched by refusals: serving continues cleanly *)
        expect t "ARRIVE 6 4 10,10" "PLACED 0 0";
        let m = Server.metrics t in
        check_int "placements" 3 m.Server.placements;
        check_int "rejections" 3 m.Server.rejections;
        Server.close t);
    Alcotest.test_case "malformed requests answer ERR and keep serving" `Quick
      (fun () ->
        let t = fresh_server () in
        List.iter
          (fun line ->
            let reply, quit = Server.handle_line t line in
            check_bool ("ERR for " ^ line) true (contains_sub reply "ERR");
            check_bool "no quit" false quit)
          [
            "";
            "FROB 1 2";
            "ARRIVE";
            "ARRIVE x 0 10,10";
            "ARRIVE 0 zero 10,10";
            "ARRIVE 0 0";
            "ARRIVE 0 0 10,ten";
            "ARRIVE 0 0 10,-3";
            "DEPART 1";
            "DEPART one 0";
          ];
        expect t "ARRIVE 0 0 10,10" "PLACED 0 1";
        let m = Server.metrics t in
        check_int "errors counted" 10 m.Server.errors;
        check_int "requests counted" 11 m.Server.requests;
        Server.close t);
    Alcotest.test_case "rejected arrivals are not journaled" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let t = fresh_server ~journal () in
            expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
            let reply, _ = Server.handle_line t "ARRIVE 1 0 5,5" in
            check_bool "REJECT" true (contains_sub reply "REJECT");
            expect t "DEPART 2 0" "OK";
            Server.close t;
            let r = ok_or_fail (Journal.read_file journal) in
            check_int "only applied events" 2 (List.length r.Journal.events)));
    Alcotest.test_case "STATS reports the counters" `Quick (fun () ->
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
        expect t "DEPART 1 0" "OK";
        let reply, _ = Server.handle_line t "STATS" in
        check_bool "requests" true (contains_sub reply "requests=3");
        check_bool "placements" true (contains_sub reply "placements=1");
        check_bool "departures" true (contains_sub reply "departures=1");
        check_bool "open bins" true (contains_sub reply "open_bins=0");
        check_bool "cost" true (contains_sub reply "cost=1.0000");
        Server.close t);
    Alcotest.test_case "SNAPSHOT without a configured path is an ERR" `Quick
      (fun () ->
        let t = fresh_server () in
        let reply, _ = Server.handle_line t "SNAPSHOT" in
        check_bool "ERR" true (contains_sub reply "ERR");
        Server.close t);
    Alcotest.test_case "SNAPSHOT truncates the journal; recovery still exact"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let t = fresh_server ~journal ~snapshot () in
            expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
            expect t "ARRIVE 1 1 50,50" "PLACED 1 1";
            let reply, _ = Server.handle_line t "SNAPSHOT" in
            check_bool "ok" true (contains_sub reply "OK snapshot");
            expect t "DEPART 2 0" "OK";
            Server.close t;
            let r = ok_or_fail (Journal.read_file journal) in
            check_int "base" 2 r.Journal.header.Journal.base;
            check_int "suffix" 1 (List.length r.Journal.events);
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "from snapshot" 2 st.Recovery.from_snapshot;
            check_int "from journal" 1 st.Recovery.from_journal;
            check_int "one bin left" 1
              (List.length (Session.open_bins (Recovery.session st)))));
    Alcotest.test_case "snapshot_every auto-checkpoints" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let t = fresh_server ~journal ~snapshot ~snapshot_every:2 () in
            expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
            expect t "ARRIVE 1 1 50,50" "PLACED 1 1";
            expect t "DEPART 2 0" "OK";
            let m = Server.metrics t in
            check_int "snapshots" 1 m.Server.snapshots;
            Server.close t;
            let r = ok_or_fail (Journal.read_file journal) in
            check_int "base" 2 r.Journal.header.Journal.base));
    Alcotest.test_case "config validation" `Quick (fun () ->
        let base =
          {
            Server.policy = "mtf";
            seed = 7;
            capacity = cap;
            journal = None;
            snapshot = None;
            snapshot_every = None;
            fsync_every = 64;
            jobs = 1;
            segment_bytes = None;
            retain_segments = None;
          }
        in
        check_bool "unknown policy" true
          (Result.is_error (Server.create { base with Server.policy = "zzz" }));
        check_bool "fsync_every 0" true
          (Result.is_error (Server.create { base with Server.fsync_every = 0 }));
        check_bool "jobs 0" true
          (Result.is_error (Server.create { base with Server.jobs = 0 }));
        check_bool "snapshot_every without snapshot path" true
          (Result.is_error
             (Server.create { base with Server.snapshot_every = Some 5 }));
        check_bool "snapshot_every 0" true
          (Result.is_error
             (Server.create
                {
                  base with
                  Server.snapshot_every = Some 0;
                  snapshot = Some "/tmp/s.snap";
                  journal = Some "/tmp/j.log";
                }));
        check_bool "segment_bytes below the floor" true
          (Result.is_error
             (Server.create
                {
                  base with
                  Server.segment_bytes = Some 32;
                  journal = Some "/tmp/j.log";
                }));
        check_bool "segment_bytes without journal path" true
          (Result.is_error
             (Server.create { base with Server.segment_bytes = Some 4096 }));
        check_bool "retain_segments negative" true
          (Result.is_error
             (Server.create
                {
                  base with
                  Server.retain_segments = Some (-1);
                  snapshot = Some "/tmp/s.snap";
                  journal = Some "/tmp/j.log";
                }));
        check_bool "retain_segments without snapshot path" true
          (Result.is_error
             (Server.create
                {
                  base with
                  Server.retain_segments = Some 2;
                  journal = Some "/tmp/j.log";
                }));
        check_bool "retain_segments without journal path" true
          (Result.is_error
             (Server.create
                {
                  base with
                  Server.retain_segments = Some 2;
                  snapshot = Some "/tmp/s.snap";
                })));
    Alcotest.test_case "resume validates config against the recovered state"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let t = fresh_server ~journal () in
            expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
            Server.close t;
            let st = ok_or_fail (Recovery.recover ~journal ()) in
            let config =
              {
                Server.policy = "ff";
                seed = 7;
                capacity = cap;
                journal = Some journal;
                snapshot = None;
                snapshot_every = None;
                fsync_every = 64;
                jobs = 1;
                segment_bytes = None;
                retain_segments = None;
              }
            in
            check_bool "policy mismatch" true
              (Result.is_error (Server.resume config st));
            let t =
              ok_or_fail (Server.resume { config with Server.policy = "mtf" } st)
            in
            (* the resumed session carries on where the journal ended *)
            expect t "ARRIVE 1 1 30,30" "PLACED 0 0";
            Server.close t;
            let r = ok_or_fail (Journal.read_file journal) in
            check_int "both events" 2 (List.length r.Journal.events)));
    Alcotest.test_case "serve loop over channels" `Quick (fun () ->
        (* request/reply through real channels, exercising serve's IO path *)
        let req_r, req_w = Unix.pipe ~cloexec:false () in
        let rep_r, rep_w = Unix.pipe ~cloexec:false () in
        let t = fresh_server () in
        let domain =
          Domain.spawn (fun () ->
              Server.serve t (Unix.in_channel_of_descr req_r)
                (Unix.out_channel_of_descr rep_w))
        in
        let oc = Unix.out_channel_of_descr req_w in
        let ic = Unix.in_channel_of_descr rep_r in
        output_string oc "ARRIVE 0 0 60,10\nSTATS\nQUIT\n";
        flush oc;
        check_string "placed" "PLACED 0 1" (input_line ic);
        check_bool "stats" true (contains_sub (input_line ic) "placements=1");
        check_string "bye" "BYE" (input_line ic);
        Domain.join domain;
        check_bool "latency recorded" true
          ((Server.latency_summary t).Dvbp_obs.Histogram.n >= 3);
        close_out_noerr oc;
        close_in_noerr ic);
  ]

let loadgen_tests =
  [
    Alcotest.test_case "script orders events and formats requests" `Quick
      (fun () ->
        let inst =
          Dvbp_core.Instance.of_specs_exn ~capacity:(v [ 10; 10 ])
            [
              (0.0, 5.0, v [ 2; 2 ]);
              (1.0, 2.0, v [ 3; 3 ]);
            ]
        in
        let script = Loadgen.script inst in
        check_int "two arrivals, two departures" 4 (List.length script);
        check_bool "first is arrive at 0" true
          (contains_sub (List.nth script 0) "ARRIVE 0 0");
        (* departure at t=2 precedes nothing else; arrival at t=1 comes second *)
        check_bool "second is arrive at 1" true
          (contains_sub (List.nth script 1) "ARRIVE 1 1");
        check_bool "third departs item 1" true
          (contains_sub (List.nth script 2) "DEPART 2 1"));
    Alcotest.test_case "live run verifies every reply and reports" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let inst =
              Uniform_model.generate
                { Uniform_model.d = 2; n = 60; mu = 8; span = 50; bin_size = 40 }
                ~rng:(Rng.create ~seed:11)
            in
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let report =
              ok_or_fail
                (Loadgen.run ~policy:"mtf" ~seed:7 ~journal ~snapshot
                   ~snapshot_every:25 inst)
            in
            check_int "all events" 120 report.Loadgen.events;
            check_bool "throughput positive" true (report.Loadgen.events_per_sec > 0.0);
            check_int "latency samples" 120 report.Loadgen.latency_us.Dvbp_obs.Histogram.n;
            check_bool "server stats attached" true
              (contains_sub report.Loadgen.server_stats "placements=60");
            (* the METRICS reply captured at the end of the run parses and
               agrees with the server-side counters *)
            let rows =
              ok_or_fail
                (Result.map_error
                   (fun e -> "server_metrics: " ^ e)
                   (Dvbp_obs.Prom.parse report.Loadgen.server_metrics))
            in
            (match Dvbp_obs.Prom.find rows "dvbp_engine_placements_total" with
            | Some r -> check_int "metrics placements" 60 (int_of_float r.Dvbp_obs.Prom.value)
            | None -> Alcotest.fail "dvbp_engine_placements_total missing");
            (* and what the run journaled must recover cleanly *)
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "all recovered" 120
              (st.Recovery.from_snapshot + st.Recovery.from_journal);
            let out = Loadgen.render report in
            check_bool "render mentions events/s" true (contains_sub out "events/s")));
    Alcotest.test_case "tiny segments + compaction keep journal bytes bounded"
      `Quick (fun () ->
        (* the disk-bound regression: a run that writes ~12 KiB of records
           through 256-byte segments with retain_segments=2 must end with
           the journal's on-disk footprint near the retention window — and
           still recover every event through the compaction snapshots *)
        with_tmp_dir (fun dir ->
            let inst =
              Uniform_model.generate
                { Uniform_model.d = 2; n = 150; mu = 8; span = 50; bin_size = 40 }
                ~rng:(Rng.create ~seed:5)
            in
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let report =
              ok_or_fail
                (Loadgen.run ~policy:"mtf" ~seed:7 ~journal ~snapshot
                   ~segment_bytes:256 ~retain_segments:2 inst)
            in
            check_int "all events" 300 report.Loadgen.events;
            let journal_bytes =
              Array.fold_left
                (fun acc f ->
                  if f = "s.snap" then acc
                  else acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
                0 (Sys.readdir dir)
            in
            check_bool
              (Printf.sprintf "journal bytes bounded (%d on disk)" journal_bytes)
              true
              (journal_bytes < 4096);
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "every event recovered" 300
              (st.Recovery.from_snapshot + st.Recovery.from_journal)));
    Alcotest.test_case "unknown policy is a clean error" `Quick (fun () ->
        let inst =
          Dvbp_core.Instance.of_specs_exn ~capacity:(v [ 10; 10 ])
            [ (0.0, 1.0, v [ 2; 2 ]) ]
        in
        check_bool "error" true
          (Result.is_error (Loadgen.run ~policy:"zzz" ~seed:7 inst)));
  ]

(* -------------------------------------------------------------------- *)
(* Observability: the METRICS exposition, journal hooks, and the frozen
   STATS contract. *)

let metric_rows m =
  match Dvbp_obs.Prom.parse (Metrics.render_text m) with
  | Ok rows -> rows
  | Error e -> Alcotest.failf "metrics exposition unparseable: %s" e

let metric_value rows ?labels name =
  match Dvbp_obs.Prom.find rows ?labels name with
  | Some r -> int_of_float r.Dvbp_obs.Prom.value
  | None -> Alcotest.failf "metric %s missing" name

let metrics_tests =
  [
    Alcotest.test_case "STATS line shape is frozen" `Quick (fun () ->
        (* Scripts parse STATS; its field list, order and formatting are a
           compatibility contract. If this test fails, you have broken that
           contract — add new telemetry to METRICS instead. *)
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
        expect t "DEPART 1 0" "OK";
        let reply, _ = Server.handle_line t "STATS" in
        check_string "exact line"
          "STATS requests=3 placements=1 rejections=0 departures=1 errors=0 \
           snapshots=0 events=2 open_bins=0 bins_opened=1 active_items=0 \
           clock=1 cost=1.0000 latency_mean_us=0.0 latency_max_us=0.0"
          reply;
        Server.close t);
    Alcotest.test_case "METRICS replies with a parseable exposition" `Quick
      (fun () ->
        let t = fresh_server () in
        expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
        expect t "ARRIVE 1 1 50,50" "PLACED 1 1";
        let reply, _ = Server.handle_line t "ARRIVE 2 0 5,5" in
        check_bool "dup rejected" true (contains_sub reply "REJECT");
        expect t "DEPART 3 0" "OK";
        let text, quit = Server.handle_line t "METRICS" in
        check_bool "no quit" false quit;
        check_bool "terminated" true (contains_sub text "# EOF");
        let rows = ok_or_fail (Dvbp_obs.Prom.parse text) in
        let engine name = metric_value rows ~labels:[ ("policy", "mtf") ] name in
        check_int "engine placements" 2 (engine "dvbp_engine_placements_total");
        check_int "engine rejects" 1 (engine "dvbp_engine_rejects_total");
        check_int "engine departures" 1 (engine "dvbp_engine_departures_total");
        check_int "engine bins opened" 2 (engine "dvbp_engine_bins_opened_total");
        check_int "engine bins closed" 1 (engine "dvbp_engine_bins_closed_total");
        check_int "engine open bins" 1 (engine "dvbp_engine_open_bins");
        check_int "server placements" 2
          (metric_value rows "dvbp_server_placements_total");
        check_int "server rejections" 1
          (metric_value rows "dvbp_server_rejections_total");
        check_int "arrive requests" 3
          (metric_value rows ~labels:[ ("kind", "arrive") ]
             "dvbp_server_requests_total");
        check_int "depart requests" 1
          (metric_value rows ~labels:[ ("kind", "depart") ]
             "dvbp_server_requests_total");
        (* the METRICS request itself is counted before rendering *)
        check_int "metrics requests" 1
          (metric_value rows ~labels:[ ("kind", "metrics") ]
             "dvbp_server_requests_total");
        Server.close t);
    Alcotest.test_case "journal hooks count appends, bytes and fsyncs" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let m = Metrics.create () in
            let w = Journal.create ~metrics:m ~fsync_every:1 ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let rows = metric_rows m in
            let n = List.length sample_events in
            check_int "appends" n (metric_value rows "dvbp_journal_records_appended_total");
            (* one fsync per append (fsync_every=1) plus one on close *)
            check_int "fsyncs" (n + 1) (metric_value rows "dvbp_journal_fsyncs_total");
            check_int "fsync latencies sampled" (n + 1)
              (metric_value rows "dvbp_journal_fsync_seconds_count");
            check_bool "bytes counted" true
              (metric_value rows "dvbp_journal_bytes_written_total" > n);
            check_int "no heals" 0 (metric_value rows "dvbp_journal_torn_heals_total")));
    Alcotest.test_case "healing a torn tail increments the heal counter" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let w = Journal.create ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.close w;
            let full = In_channel.with_open_bin (active_seg path) In_channel.input_all in
            Out_channel.with_open_bin (active_seg path) (fun oc ->
                Out_channel.output_string oc
                  (String.sub full 0 (String.length full - 5)));
            let m = Metrics.create () in
            let w, r = ok_or_fail (Journal.append_to ~metrics:m ~path (header ())) in
            check_bool "torn reported" true r.Journal.dropped_torn;
            Journal.close w;
            check_int "heal counted" 1
              (metric_value (metric_rows m) "dvbp_journal_torn_heals_total")));
    Alcotest.test_case "truncation is counted" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let m = Metrics.create () in
            let w = Journal.create ~metrics:m ~path (header ()) in
            List.iter (Journal.append w) sample_events;
            Journal.truncate w ~new_base:(List.length sample_events);
            Journal.close w;
            check_int "truncates" 1
              (metric_value (metric_rows m) "dvbp_journal_truncates_total")));
    Alcotest.test_case "fit-scan metrics agree across kernels on one trace" `Quick
      (fun () ->
        (* same deterministic event stream into a SWAR session and a forced
           scalar one: the scan-stats metric families must not drift between
           kernels (OPERATIONS.md documents them kernel-independently) *)
        let drive fit_kernel =
          let m = Metrics.create () in
          let s =
            Session.create ~fit_kernel ~capacity:cap
              ~policy:(Dvbp_core.Policy.of_name_exn "bf") ()
          in
          Metrics.attach_session m ~policy:"bf" s;
          let sizes =
            [| (60, 10); (10, 60); (40, 40); (25, 75); (90, 5); (5, 90) |]
          in
          for i = 0 to 39 do
            let a, b = sizes.(i mod 6) in
            ignore (Session.arrive s ~at:(float_of_int i) ~size:(v [ a; b ]) ());
            if i >= 5 then
              Session.depart s ~at:(float_of_int i +. 0.5) ~item_id:(i - 5)
          done;
          (m, s)
        in
        let m_swar, s_swar = drive `Auto and m_scalar, s_scalar = drive `Scalar in
        check_string "kernels differ" "swar" (Session.fit_kernel s_swar);
        check_string "forced scalar" "scalar" (Session.fit_kernel s_scalar);
        check_string "identical session state" (Session.fingerprint s_swar)
          (Session.fingerprint s_scalar);
        let rows_swar = metric_rows m_swar and rows_scalar = metric_rows m_scalar in
        List.iter
          (fun fam ->
            check_int fam
              (metric_value rows_scalar ~labels:[ ("policy", "bf") ] fam)
              (metric_value rows_swar ~labels:[ ("policy", "bf") ] fam))
          [
            "dvbp_engine_fit_scans_total"; "dvbp_engine_fit_scan_candidates_total";
            "dvbp_engine_recheck_memo_hits_total"; "dvbp_engine_placements_total";
            "dvbp_engine_bins_opened_total";
          ];
        check_int "info gauge (swar)" 1
          (metric_value rows_swar
             ~labels:[ ("policy", "bf"); ("kernel", "swar") ]
             "dvbp_engine_fit_kernel_info");
        check_int "info gauge (scalar)" 1
          (metric_value rows_scalar
             ~labels:[ ("policy", "bf"); ("kernel", "scalar") ]
             "dvbp_engine_fit_kernel_info"));
    Alcotest.test_case "noop metrics render empty and cost no clock reads" `Quick
      (fun () ->
        let m = Metrics.noop () in
        check_bool "is_noop" true (Metrics.is_noop m);
        Metrics.on_append m ~bytes:10;
        Metrics.observe_request m Metrics.Arrive ~seconds:0.5;
        check_string "render" "# EOF" (Metrics.render_text m);
        Alcotest.(check (float 0.0)) "now" 0.0 (Metrics.now m));
  ]

(* -------------------------------------------------------------------- *)
(* Online compaction: the snapshot-then-retire pass, its bounded steps,
   its metric families, and the serve loop keeping disk usage flat. The
   64-byte segment target seals on every append (header ~60 bytes), so a
   six-event script leaves six sealed segments to compact. *)

let drive_sample_protocol t =
  expect t "ARRIVE 0 0 60,10" "PLACED 0 1";
  expect t "ARRIVE 1 1 50,50" "PLACED 1 1";
  expect t "ARRIVE 1.5 2 30,20" "PLACED 1 0";
  expect t "DEPART 3 0" "OK";
  expect t "DEPART 4 2" "OK";
  expect t "DEPART 5.5 1" "OK"

let compaction_tests =
  [
    Alcotest.test_case "compact snapshots the frontier and retires the chain"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let t = fresh_server ~journal ~snapshot ~segment_bytes:64 () in
            drive_sample_protocol t;
            (match Server.compact t with
            | Error e -> Alcotest.fail e
            | Ok (path, retired) ->
                check_string "snapshot path" snapshot path;
                check_int "all sealed segments retired" 6 retired);
            (* the active segment keeps its tail: serving continues and new
               appends chain onto the snapshotted frontier *)
            let reply, _ = Server.handle_line t "ARRIVE 7 9 5,5" in
            check_bool "still serving" true (contains_sub reply "PLACED");
            Server.close t;
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "snapshot covers the compacted prefix" 6
              st.Recovery.from_snapshot;
            check_int "post-compact tail replays from the journal" 1
              st.Recovery.from_journal));
    Alcotest.test_case "compact without snapshot or journal is a clean error"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let t = fresh_server ~journal () in
            check_bool "no snapshot path" true (Result.is_error (Server.compact t));
            Server.close t;
            let t = fresh_server () in
            check_bool "no journal" true (Result.is_error (Server.compact t));
            Server.close t));
    Alcotest.test_case "retain_segments arms pending; bounded steps converge"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let t =
              fresh_server ~journal ~snapshot ~segment_bytes:64
                ~retain_segments:1 ()
            in
            drive_sample_protocol t;
            check_bool "six sealed > retain 1" true (Server.compaction_pending t);
            (* first step writes the snapshot and arms the retire pass *)
            Server.compaction_step t;
            check_bool "snapshot written" true (Sys.file_exists snapshot);
            check_bool "pass mid-flight" true (Server.compaction_pending t);
            let steps = ref 1 in
            while Server.compaction_pending t && !steps < 32 do
              Server.compaction_step t;
              incr steps
            done;
            (* 6 segments at 4 per retire step: snapshot + two retire steps *)
            check_int "converges in bounded steps" 3 !steps;
            Server.compaction_step t;  (* idle: a spurious step is a no-op *)
            Server.close t;
            let st = ok_or_fail (Recovery.recover ~snapshot ~journal ()) in
            check_int "nothing lost" 6
              (st.Recovery.from_snapshot + st.Recovery.from_journal)));
    Alcotest.test_case "compaction updates the segment metric families" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            let m = Metrics.create () in
            let t =
              ok_or_fail
                (Server.create ~metrics:m
                   {
                     Server.policy = "mtf";
                     seed = 7;
                     capacity = cap;
                     journal = Some journal;
                     snapshot = Some snapshot;
                     snapshot_every = None;
                     fsync_every = 64;
                     jobs = 1;
                     segment_bytes = Some 64;
                     retain_segments = Some 1;
                   })
            in
            drive_sample_protocol t;
            let rows = metric_rows m in
            check_int "seals counted" 6
              (metric_value rows "dvbp_journal_segments_sealed_total");
            check_bool "lag tracks unsnapshotted events" true
              (metric_value rows "dvbp_server_compaction_lag_events" > 0);
            while Server.compaction_pending t do
              Server.compaction_step t
            done;
            let rows = metric_rows m in
            check_int "segments gauge: active only" 1
              (metric_value rows "dvbp_journal_segments");
            check_int "retirements counted" 6
              (metric_value rows "dvbp_journal_segments_retired_total");
            check_bool "retired bytes counted" true
              (metric_value rows "dvbp_journal_retired_bytes_total" > 0);
            check_int "one compaction pass" 1
              (metric_value rows "dvbp_server_compactions_total");
            check_int "pass duration sampled" 1
              (metric_value rows "dvbp_server_compaction_seconds_count");
            check_int "lag reset by the pass" 0
              (metric_value rows "dvbp_server_compaction_lag_events");
            check_bool "live bytes back to the active segment" true
              (metric_value rows "dvbp_journal_live_bytes" < 128);
            Server.close t));
  ]

(* -------------------------------------------------------------------- *)
(* Group commit and the multi-client front end: handle_batch isolation,
   the fsync-per-batch ceiling, shard-count determinism, the event loop's
   ordering guarantees, and v1 journal compatibility. *)

let fresh_server_jobs ?journal ?metrics ~jobs () =
  ok_or_fail
    (Server.create ?metrics
       {
         Server.policy = "mtf";
         seed = 7;
         capacity = cap;
         journal;
         snapshot = None;
         snapshot_every = None;
         fsync_every = 64;
         jobs;
         segment_bytes = None;
         retain_segments = None;
       })

(* the same deterministic multi-tenant request mix used by the shard
   determinism tests: four tenants, interleaved arrivals and departures *)
let tenant_mix_lines () =
  let lines = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let tenants = [| "alpha"; "beta"; "gamma"; "delta" |] in
  for i = 0 to 39 do
    let tn = tenants.(i mod 4) in
    let t = i / 4 in
    if i >= 24 && i mod 8 < 2 then emit "DEPART %s %d %d" tn t (i mod 8)
    else emit "ARRIVE %s %d %d %d,%d" tn t i ((i * 13 mod 50) + 5) ((i * 7 mod 40) + 5)
  done;
  Array.of_list (List.rev !lines)

let batch_tests =
  [
    Alcotest.test_case "handle_batch isolates failures and interleaves control"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let t = fresh_server ~journal () in
            let replies =
              Server.handle_batch t
                [|
                  "ARRIVE 0 0 60,10";
                  "ARRIVE t1 0 0 60,10";  (* same id, own tenant: placed *)
                  "BOGUS LINE";
                  "ARRIVE 1 0 5,5";  (* duplicate id in default tenant *)
                  "STATS";
                  "DEPART t1 2 0";
                  "QUIT";
                |]
            in
            check_int "every line answered" 7 (Array.length replies);
            let reply i = fst replies.(i) in
            check_string "default placed" "PLACED 0 1" (reply 0);
            check_string "tenant t1 isolated" "PLACED 0 1" (reply 1);
            check_bool "malformed is ERR" true (contains_sub (reply 2) "ERR");
            check_bool "duplicate is REJECT" true (contains_sub (reply 3) "REJECT");
            check_bool "STATS mid-batch" true (contains_sub (reply 4) "placements=2");
            check_string "t1 departure" "OK" (reply 5);
            check_string "quit reply" "BYE" (reply 6);
            check_bool "quit flag only on QUIT" true
              (Array.for_all (fun (_, q) -> not q) (Array.sub replies 0 6)
              && snd replies.(6));
            Server.close t;
            (* only the three applied events were journaled, tenants intact *)
            let r = ok_or_fail (Journal.read_file journal) in
            let tenants =
              List.map
                (function
                  | Journal.Arrive { tenant; _ } | Journal.Depart { tenant; _ } ->
                      tenant)
                r.Journal.events
            in
            check_bool "journal holds applied events with tenants" true
              (tenants = [ dflt; "t1"; "t1" ])));
    Alcotest.test_case "group commit fsyncs at the per-batch ceiling" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let m = Metrics.create () in
            let t =
              ok_or_fail
                (Server.create ~metrics:m
                   {
                     Server.policy = "mtf";
                     seed = 7;
                     capacity = cap;
                     journal = Some journal;
                     snapshot = None;
                     snapshot_every = None;
                     fsync_every = 4;
                     jobs = 1;
                     segment_bytes = None;
                     retain_segments = None;
                   })
            in
            let arrive i = Printf.sprintf "ARRIVE %d %d 5,5" i i in
            let batch_of lo n = Array.init n (fun k -> arrive (lo + k)) in
            let fsyncs () = metric_value (metric_rows m) "dvbp_journal_fsyncs_total" in
            (* 10 events at ceiling 4 -> ceil(10/4) = 3 commits *)
            ignore (Server.handle_batch t (batch_of 0 10));
            check_int "ceil(10/4) fsyncs" 3 (fsyncs ());
            (* exactly one ceiling's worth -> exactly one more *)
            ignore (Server.handle_batch t (batch_of 10 4));
            check_int "one full chunk" 4 (fsyncs ());
            (* control-only batches commit nothing *)
            ignore (Server.handle_batch t [| "STATS"; "BOGUS" |]);
            check_int "no events, no fsync" 4 (fsyncs ());
            let rows = metric_rows m in
            check_int "batch size histogram counts chunks" 4
              (metric_value rows "dvbp_journal_batch_size_count");
            check_int "batch size histogram sums events" 14
              (metric_value rows "dvbp_journal_batch_size_sum");
            check_int "waiters gauge resets after release" 0
              (metric_value rows "dvbp_journal_group_commit_waiters");
            Server.close t));
    Alcotest.test_case "jobs=4 batch results are bit-identical to jobs=1" `Quick
      (fun () ->
        let lines = tenant_mix_lines () in
        let t1 = fresh_server_jobs ~jobs:1 () in
        let t4 = fresh_server_jobs ~jobs:4 () in
        let r1 = Server.handle_batch t1 lines in
        let r4 = Server.handle_batch t4 lines in
        Array.iteri
          (fun i (reply, _) -> check_string lines.(i) reply (fst r4.(i)))
          r1;
        (* everything up to the wall-clock latency fields is deterministic *)
        let counters line =
          let marker = " latency_mean_us" in
          let n = String.length line and m = String.length marker in
          let rec find i =
            if i + m > n then line
            else if String.sub line i m = marker then String.sub line 0 i
            else find (i + 1)
          in
          find 0
        in
        check_string "aggregate STATS agree"
          (counters (Server.stats_line t1))
          (counters (Server.stats_line t4));
        List.iter2
          (fun (tn1, s1) (tn4, s4) ->
            check_string "tenant order" tn1 tn4;
            check_string ("fingerprint " ^ tn1) (Session.fingerprint s1)
              (Session.fingerprint s4))
          (Server.sessions t1) (Server.sessions t4);
        Server.close t1;
        Server.close t4);
    Alcotest.test_case "event loop: per-connection FIFO, tenants isolated"
      `Quick (fun () ->
        (* two clients over socketpairs issue the same script under their
           own tenants: each must see its own replies, in its own order,
           with identical placements (isolation = same fresh packing) *)
        let s_a, c_a = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let s_b, c_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let t = fresh_server () in
        let loop =
          Domain.spawn (fun () -> Event_loop.serve ~conns:[ s_a; s_b ] t)
        in
        let script tn =
          Printf.sprintf
            "ARRIVE %s 0 0 60,10\nARRIVE %s 1 1 50,50\nDEPART %s 2 0\nQUIT\n" tn
            tn tn
        in
        let send fd s =
          ignore (Unix.write_substring fd s 0 (String.length s))
        in
        send c_a (script "a");
        send c_b (script "b");
        let read_all fd =
          let buf = Bytes.create 4096 in
          let out = Buffer.create 256 in
          let rec go () =
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Buffer.contents out
            | n ->
                Buffer.add_subbytes out buf 0 n;
                go ()
          in
          go ()
        in
        let got_a = read_all c_a and got_b = read_all c_b in
        Domain.join loop;
        let expected = "PLACED 0 1\nPLACED 1 1\nOK\nBYE\n" in
        check_string "client a FIFO replies" expected got_a;
        check_string "client b FIFO replies" expected got_b;
        Unix.close c_a;
        Unix.close c_b);
    Alcotest.test_case "append_to upgrades a v1 journal in place" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "j.log" in
            let seal body =
              let sum =
                String.fold_left
                  (fun acc c -> ((acc * 31) + Char.code c) land 0xffff)
                  0 body
              in
              Printf.sprintf "%s,~%04x" body sum
            in
            (* v1: decimal times, no tenant field *)
            let oc = open_out path in
            output_string oc
              (String.concat "\n"
                 [
                   "# dvbp-journal v1";
                   "policy,mtf";
                   "seed,7";
                   "capacity,100,100";
                   "base,0";
                   seal "arrive,0.5,0,0,1,60,10";
                   seal "depart,2,0";
                   "";
                 ]);
            close_out oc;
            let w, r = ok_or_fail (Journal.append_to ~path (header ())) in
            check_int "read as v1" 1 r.Journal.version;
            check_bool "v1 events own the default tenant" true
              (List.for_all
                 (function
                   | Journal.Arrive { tenant; _ } | Journal.Depart { tenant; _ }
                     -> tenant = dflt)
                 r.Journal.events);
            Journal.append w
              (Journal.Depart { tenant = "t9"; time = 3.0; item_id = 99 });
            Journal.close w;
            (* the file is now v2 end to end and replays both grammars'
               worth of history *)
            let r' = ok_or_fail (Journal.read_file path) in
            check_int "upgraded" 2 r'.Journal.version;
            check_int "all events" 3 (List.length r'.Journal.events);
            match List.hd r'.Journal.events with
            | Journal.Arrive { time; _ } ->
                check_bool "decimal time survives re-encode" true (time = 0.5)
            | _ -> Alcotest.fail "first event should be the v1 arrival"));
  ]

let suites =
  [
    ("service.journal", journal_tests);
    ("service.segments", segment_tests);
    ("service.snapshot", snapshot_tests);
    ("service.recovery", recovery_tests);
    ("service.server", server_tests);
    ("service.compaction", compaction_tests);
    ("service.batch", batch_tests);
    ("service.loadgen", loadgen_tests);
    ("service.metrics", metrics_tests);
  ]
