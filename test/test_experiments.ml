(* Tests for the experiment harness: determinism of the runner, shape of the
   Figure 4 sweep, Table 1 verification, proof figures and ablations. All
   configs here are scaled down — correctness of shape, not statistics. *)

open Dvbp_experiments
module Rng = Dvbp_prelude.Rng
module Uniform_model = Dvbp_workload.Uniform_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let tiny_gen =
  let params = { Uniform_model.d = 2; n = 50; mu = 5; span = 50; bin_size = 20 } in
  fun ~rng -> Uniform_model.generate params ~rng

let runner_tests =
  [
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let go () =
          Runner.ratio_stats ~instances:5 ~seed:3 ~gen:tiny_gen
            ~competitors:(Runner.standard_competitors ())
            ()
        in
        let a = go () and b = go () in
        List.iter2
          (fun (la, sa) (lb, sb) ->
            Alcotest.(check string) "label" la lb;
            Alcotest.(check (float 0.0)) "mean" sa.Runner.mean sb.Runner.mean;
            Alcotest.(check (float 0.0)) "std" sa.Runner.std sb.Runner.std)
          a b);
    Alcotest.test_case "ratios are at least 1" `Quick (fun () ->
        let results =
          Runner.ratio_stats ~instances:5 ~seed:4 ~gen:tiny_gen
            ~competitors:(Runner.standard_competitors ())
            ()
        in
        List.iter
          (fun (label, s) ->
            check_bool (label ^ " min >= 1") true (s.Runner.min >= 1.0 -. 1e-9))
          results);
    Alcotest.test_case "custom denominator" `Quick (fun () ->
        let results =
          Runner.ratio_stats ~denominator:(fun _ -> 1.0) ~instances:2 ~seed:5
            ~gen:tiny_gen
            ~competitors:[ List.hd (Runner.standard_competitors ()) ]
            ()
        in
        List.iter (fun (_, s) -> check_bool "raw cost" true (s.Runner.mean > 10.0)) results);
    Alcotest.test_case "duplicate labels rejected" `Quick (fun () ->
        let c = List.hd (Runner.standard_competitors ()) in
        check_bool "raises" true
          (try
             ignore (Runner.ratio_stats ~instances:1 ~seed:1 ~gen:tiny_gen
                       ~competitors:[ c; c ] ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "non-positive instance count rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Runner.ratio_stats ~instances:0 ~seed:1 ~gen:tiny_gen
                       ~competitors:(Runner.standard_competitors ()) ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "jobs count never changes the samples" `Quick (fun () ->
        (* the determinism contract of the parallel runner: every instance
           derives its streams by index, so sharding is invisible *)
        let competitors = Runner.standard_competitors () in
        let go jobs =
          Runner.ratio_samples ~jobs ~instances:7 ~seed:9 ~gen:tiny_gen
            ~competitors ()
        in
        let a = go 1 and b = go 4 in
        List.iter2
          (fun (la, xs) (lb, ys) ->
            Alcotest.(check string) "label" la lb;
            check_int "length" (Array.length xs) (Array.length ys);
            Array.iteri
              (fun i x -> Alcotest.(check (float 0.0)) "bit-identical" x ys.(i))
              xs)
          a b);
    Alcotest.test_case "an explicit pool gives the sequential answer" `Quick
      (fun () ->
        let pool = Dvbp_parallel.Domain_pool.create ~jobs:3 () in
        Fun.protect
          ~finally:(fun () -> Dvbp_parallel.Domain_pool.shutdown pool)
          (fun () ->
            let competitors = Runner.standard_competitors () in
            let seq =
              Runner.ratio_samples ~jobs:1 ~instances:5 ~seed:12 ~gen:tiny_gen
                ~competitors ()
            in
            let par =
              Runner.ratio_samples ~pool ~instances:5 ~seed:12 ~gen:tiny_gen
                ~competitors ()
            in
            List.iter2
              (fun (_, xs) (_, ys) ->
                Array.iteri
                  (fun i x -> Alcotest.(check (float 0.0)) "equal" x ys.(i))
                  xs)
              seq par));
    Alcotest.test_case "competitor_of_name handles daf and rejects junk" `Quick
      (fun () ->
        (match Runner.competitor_of_name "daf" with
        | Ok c -> check_bool "clairvoyant" true (c.Runner.oracle = Runner.Exact_departures)
        | Error e -> Alcotest.fail e);
        (match Runner.competitor_of_name "mtf" with
        | Ok c -> check_bool "plain" true (c.Runner.oracle = Runner.No_departure_info)
        | Error e -> Alcotest.fail e);
        check_bool "junk" true (Result.is_error (Runner.competitor_of_name "junk")));
  ]

let tiny_config =
  {
    Figure4.ds = [ 1; 2 ];
    mus = [ 1; 5 ];
    instances = 3;
    seed = 11;
    n_items = 40;
    span = 50;
    bin_size = 20;
  }

let figure4_tests =
  [
    Alcotest.test_case "sweep covers the grid with all policies" `Quick (fun () ->
        let cells = Figure4.run tiny_config in
        check_int "cells" 4 (List.length cells);
        List.iter
          (fun c ->
            check_int "policies" 7 (List.length c.Figure4.per_policy);
            List.iter
              (fun (_, s) -> check_int "samples" 3 s.Runner.n)
              c.Figure4.per_policy)
          cells);
    Alcotest.test_case "progress callback fires per cell" `Quick (fun () ->
        let count = ref 0 in
        ignore (Figure4.run ~progress:(fun _ -> incr count) tiny_config);
        check_int "events" 4 !count);
    Alcotest.test_case "table and csv well-formed" `Quick (fun () ->
        let cells = Figure4.run tiny_config in
        let table = Figure4.render_table cells in
        check_bool "has mtf column" true (contains_sub table "mtf");
        let csv = Figure4.to_csv cells in
        let lines =
          List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' csv)
        in
        check_int "csv rows" (1 + (4 * 7)) (List.length lines));
    Alcotest.test_case "plots render one grid per d" `Quick (fun () ->
        let cells = Figure4.run tiny_config in
        let plots = Figure4.render_plots cells in
        check_bool "d=1 present" true (contains_sub plots "d = 1");
        check_bool "d=2 present" true (contains_sub plots "d = 2");
        check_bool "legend" true (contains_sub plots "M mtf"));
    Alcotest.test_case "paper config matches Table 2" `Quick (fun () ->
        check_int "instances" 1000 Figure4.paper.Figure4.instances;
        Alcotest.(check (list int)) "mus" [ 1; 2; 5; 10; 100; 200 ]
          Figure4.paper.Figure4.mus;
        Alcotest.(check (list int)) "ds" [ 1; 2; 5 ] Figure4.paper.Figure4.ds);
    Alcotest.test_case "default runs at paper scale; quick is the CLI scale" `Quick
      (fun () ->
        check_int "default = paper" 1000 Figure4.default.Figure4.instances;
        check_int "quick" 60 Figure4.quick.Figure4.instances);
    Alcotest.test_case "instances_from_env validates its input" `Quick (fun () ->
        let with_env v f =
          let old = Sys.getenv_opt Figure4.env_var in
          (match v with
          | Some s -> Unix.putenv Figure4.env_var s
          | None -> Unix.putenv Figure4.env_var "");
          Fun.protect
            ~finally:(fun () ->
              Unix.putenv Figure4.env_var (Option.value old ~default:""))
            f
        in
        with_env None (fun () ->
            check_bool "empty treated as unset" true
              (Figure4.instances_from_env () = None));
        with_env (Some "250") (fun () ->
            check_bool "parsed" true (Figure4.instances_from_env () = Some 250));
        with_env (Some "many") (fun () ->
            check_bool "non-integer raises" true
              (try ignore (Figure4.instances_from_env ()); false
               with Invalid_argument msg -> contains_sub msg Figure4.env_var));
        with_env (Some "0") (fun () ->
            check_bool "non-positive raises" true
              (try ignore (Figure4.instances_from_env ()); false
               with Invalid_argument msg -> contains_sub msg Figure4.env_var)));
  ]

let table1_tests =
  [
    Alcotest.test_case "theory table lists all five algorithms" `Quick (fun () ->
        let t = Table1.render_theory () in
        List.iter
          (fun name -> check_bool name true (contains_sub t name))
          [ "Any Fit"; "Move To Front"; "First Fit"; "Next Fit"; "Best Fit" ]);
    Alcotest.test_case "gadget verification: measured >= certified" `Quick (fun () ->
        let rows = Table1.verify_gadgets ~d:2 ~mu:3.0 ~ks:[ 2; 4 ] () in
        check_bool "nonempty" true (rows <> []);
        List.iter
          (fun r ->
            check_bool
              (r.Table1.gadget ^ "/" ^ r.Table1.policy)
              true
              (r.Table1.measured_ratio >= r.Table1.certified_ratio -. 1e-9))
          rows);
    Alcotest.test_case "certified ratios never exceed the limit" `Quick (fun () ->
        let rows = Table1.verify_gadgets ~d:1 ~mu:4.0 ~ks:[ 2 ] () in
        List.iter
          (fun r ->
            check_bool "within limit" true (r.Table1.certified_ratio <= r.Table1.limit +. 1e-9))
          rows);
    Alcotest.test_case "upper-bound fuzz finds no violations" `Quick (fun () ->
        let rows = Table1.fuzz_upper_bounds ~instances:40 ~seed:2 () in
        check_int "three policies" 3 (List.length rows);
        List.iter
          (fun r ->
            check_int (r.Table1.policy ^ " violations") 0 r.Table1.violations;
            check_bool "fraction <= 1" true (r.Table1.max_bound_fraction <= 1.0))
          rows);
    Alcotest.test_case "convergence plot renders all three families" `Quick
      (fun () ->
        let out = Table1.convergence ~ks:[ 2; 4 ] ~d:2 ~mu:3.0 () in
        check_bool "anyfit" true (contains_sub out "anyfit (Thm 5)");
        check_bool "nextfit" true (contains_sub out "nextfit (Thm 6)");
        check_bool "mtf" true (contains_sub out "mtf (Thm 8)"));
    Alcotest.test_case "renderers produce tables" `Quick (fun () ->
        let rows = Table1.verify_gadgets ~d:1 ~mu:2.0 ~ks:[ 2 ] () in
        check_bool "verification table" true
          (contains_sub (Table1.render_verification rows) "measured CR");
        let fuzz = Table1.fuzz_upper_bounds ~instances:5 ~seed:3 () in
        check_bool "fuzz table" true (contains_sub (Table1.render_fuzz fuzz) "violations"));
  ]

let figure_tests =
  [
    Alcotest.test_case "figure 1 checks claim 1 live" `Quick (fun () ->
        let out = Proof_figures.figure1 () in
        check_bool "claims hold" true (contains_sub out "holds");
        check_bool "no violation" false (contains_sub out "VIOLATED"));
    Alcotest.test_case "figure 2 checks claim 4 live" `Quick (fun () ->
        let out = Proof_figures.figure2 () in
        check_bool "claims hold" true (contains_sub out "holds");
        check_bool "no violation" false (contains_sub out "VIOLATED"));
    Alcotest.test_case "figure 3 reports dk bins" `Quick (fun () ->
        let out = Proof_figures.figure3 ~d:2 ~k:2 ~mu:3.0 () in
        check_bool "bins line" true (contains_sub out "bins opened = 4"));
    Alcotest.test_case "table 2 renders the paper parameters" `Quick (fun () ->
        let out = Table2.render () in
        check_bool "B" true (contains_sub out "Bin size");
        check_bool "1000" true (contains_sub out "1000"));
  ]

let ablation_tests =
  [
    Alcotest.test_case "best fit measures produce three series" `Quick (fun () ->
        let rows = Ablations.best_fit_measures ~instances:3 ~seed:1 ~d:2 ~mu:5 () in
        Alcotest.(check (list string))
          "labels"
          [ "bf-linf"; "bf-l1"; "bf-l2" ]
          (List.map fst rows));
    Alcotest.test_case "correlation sweep covers all rhos" `Quick (fun () ->
        let sweep =
          Ablations.correlation_sweep ~instances:3 ~seed:1 ~d:2 ~mu:5
            ~rhos:[ 0.0; 1.0 ] ()
        in
        check_int "rho points" 2 (List.length sweep);
        List.iter
          (fun (_, results) -> check_int "policies" 4 (List.length results))
          sweep);
    Alcotest.test_case "clairvoyance includes the daf competitor" `Quick (fun () ->
        let rows = Ablations.clairvoyance ~instances:3 ~seed:1 ~d:2 ~mu:5 () in
        check_bool "daf present" true
          (List.mem_assoc "daf(clairvoyant)" rows));
    Alcotest.test_case "denominator tightness is ordered by bound strength" `Quick
      (fun () ->
        let rows =
          Ablations.denominator_tightness ~instances:2 ~seed:1 ~d:2 ~mu:5 ()
        in
        let mean label = (List.assoc label rows).Runner.mean in
        (* stronger denominators give smaller ratios *)
        check_bool "span >= height" true
          (mean "vs span (iii)" >= mean "vs height (i)" -. 1e-9);
        check_bool "util >= height" true
          (mean "vs utilisation (ii)" >= mean "vs height (i)" -. 1e-9);
        check_bool "height >= dff" true
          (mean "vs height (i)" >= mean "vs DFF" -. 1e-9));
    Alcotest.test_case "load sweep covers all item counts" `Quick (fun () ->
        let sweep =
          Ablations.load_sweep ~instances:2 ~seed:1 ~d:1 ~mu:5 ~ns:[ 100; 200 ] ()
        in
        Alcotest.(check (list (float 0.0))) "ns" [ 100.0; 200.0 ] (List.map fst sweep);
        List.iter (fun (_, r) -> check_int "policies" 5 (List.length r)) sweep);
    Alcotest.test_case "next-k sweep labels" `Quick (fun () ->
        let rows = Ablations.next_k_sweep ~instances:2 ~seed:1 ~d:1 ~mu:5 ~ks:[ 1; 4 ] () in
        Alcotest.(check (list string)) "labels" [ "nf1"; "nf4"; "ff" ] (List.map fst rows));
    Alcotest.test_case "size classes include harmonic" `Quick (fun () ->
        let rows = Ablations.size_classes ~instances:2 ~seed:1 ~d:1 ~mu:5 () in
        check_bool "harmonic" true (List.mem_assoc "harmonic" rows));
    Alcotest.test_case "prediction-error sweep includes all noise levels" `Quick
      (fun () ->
        let rows =
          Ablations.prediction_error ~instances:3 ~seed:1 ~d:2 ~mu:10
            ~sigmas:[ 0.5; 2.0 ] ()
        in
        Alcotest.(check (list string))
          "labels"
          [ "mtf"; "daf-exact"; "daf-noise0.5"; "daf-noise2.0" ]
          (List.map fst rows));
    Alcotest.test_case "renderers work" `Quick (fun () ->
        let rows = Ablations.best_fit_measures ~instances:2 ~seed:1 ~d:1 ~mu:2 () in
        check_bool "table" true (contains_sub (Ablations.render ~title:"t" rows) "bf-linf");
        let sweep =
          Ablations.correlation_sweep ~instances:2 ~seed:1 ~d:2 ~mu:2 ~rhos:[ 0.5 ] ()
        in
        check_bool "sweep table" true
          (contains_sub (Ablations.render_sweep ~title:"t" ~param:"rho" sweep) "0.50"));
  ]

let significance_tests =
  [
    Alcotest.test_case "head_to_head covers the six challengers" `Quick (fun () ->
        let rows =
          Significance.head_to_head ~instances:10 ~seed:3 ~d:1 ~mu:10 ()
        in
        check_int "rows" 6 (List.length rows);
        List.iter
          (fun r ->
            check_bool "p in range" true
              (r.Significance.p_two_sided >= 0.0 && r.Significance.p_two_sided <= 1.0))
          rows);
    Alcotest.test_case "mtf beats worst fit at mu=100 significantly" `Quick
      (fun () ->
        let rows =
          Significance.head_to_head ~instances:30 ~seed:4 ~d:1 ~mu:100 ()
        in
        let wf = List.find (fun r -> r.Significance.challenger = "wf") rows in
        Alcotest.(check string) "verdict" "mtf wins" wf.Significance.verdict);
    Alcotest.test_case "unknown baseline rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Significance.head_to_head ~instances:5 ~d:1 ~mu:5 ~baseline:"zzz" ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "render mentions verdicts" `Quick (fun () ->
        let rows = Significance.head_to_head ~instances:8 ~seed:5 ~d:1 ~mu:10 () in
        check_bool "has header" true (contains_sub (Significance.render rows) "verdict"));
    Alcotest.test_case "bootstrap CIs bracket the point estimate" `Quick (fun () ->
        let rows =
          Significance.bootstrap_gaps ~instances:12 ~seed:3 ~resamples:200 ~d:1
            ~mu:10 ()
        in
        check_int "rows" 6 (List.length rows);
        List.iter
          (fun r ->
            check_bool "ordered" true (r.Significance.ci_lo <= r.Significance.ci_hi);
            check_bool "brackets mean gap" true
              (r.Significance.ci_lo <= r.Significance.b_mean_gap +. 1e-9
              && r.Significance.b_mean_gap <= r.Significance.ci_hi +. 1e-9);
            check_int "resamples recorded" 200 r.Significance.resamples)
          rows);
    Alcotest.test_case "bootstrap is jobs-independent" `Quick (fun () ->
        let go jobs =
          Significance.bootstrap_gaps ~jobs ~instances:10 ~seed:7 ~resamples:150
            ~d:1 ~mu:10 ()
        in
        List.iter2
          (fun a b ->
            Alcotest.(check string) "challenger" a.Significance.b_challenger
              b.Significance.b_challenger;
            Alcotest.(check (float 0.0)) "ci_lo" a.Significance.ci_lo
              b.Significance.ci_lo;
            Alcotest.(check (float 0.0)) "ci_hi" a.Significance.ci_hi
              b.Significance.ci_hi)
          (go 1) (go 4));
    Alcotest.test_case "bootstrap rejects bad resamples and confidence" `Quick
      (fun () ->
        let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
        check_bool "resamples < 2" true
          (raises (fun () ->
               Significance.bootstrap_gaps ~instances:5 ~resamples:1 ~d:1 ~mu:5 ()));
        check_bool "confidence = 1" true
          (raises (fun () ->
               Significance.bootstrap_gaps ~instances:5 ~confidence:1.0 ~d:1 ~mu:5 ())));
    Alcotest.test_case "bootstrap render shows the interval" `Quick (fun () ->
        let rows =
          Significance.bootstrap_gaps ~instances:8 ~seed:2 ~resamples:100 ~d:1
            ~mu:10 ()
        in
        let text = Significance.render_bootstrap rows in
        check_bool "header" true (contains_sub text "CI");
        check_bool "baseline" true (contains_sub text "mtf"));
  ]

let sample_tests =
  [
    Alcotest.test_case "ratio_samples aligns with ratio_stats" `Quick (fun () ->
        let competitors = Runner.standard_competitors () in
        let samples =
          Runner.ratio_samples ~instances:5 ~seed:6 ~gen:tiny_gen ~competitors ()
        in
        let stats =
          Runner.ratio_stats ~instances:5 ~seed:6 ~gen:tiny_gen ~competitors ()
        in
        List.iter2
          (fun (ls, arr) (lt, s) ->
            Alcotest.(check string) "label" ls lt;
            let mean = Array.fold_left ( +. ) 0.0 arr /. 5.0 in
            Alcotest.(check (float 1e-9)) "mean" s.Runner.mean mean;
            check_int "length" 5 (Array.length arr))
          samples stats);
  ]

let worst_case_tests =
  [
    Alcotest.test_case "search result is reproducible and within the bound" `Quick
      (fun () ->
        let config =
          { Worst_case_search.default with Worst_case_search.steps = 60; seed = 5 }
        in
        let a = Worst_case_search.search ~policy:"ff" config in
        let b = Worst_case_search.search ~policy:"ff" config in
        Alcotest.(check (float 0.0)) "deterministic" a.Worst_case_search.ratio
          b.Worst_case_search.ratio;
        check_bool "ratio >= 1" true (a.Worst_case_search.ratio >= 1.0 -. 1e-9);
        match a.Worst_case_search.theoretical_bound with
        | Some bound ->
            check_bool "within proven bound" true (a.Worst_case_search.ratio <= bound +. 1e-9)
        | None -> Alcotest.fail "ff has a proven bound");
    Alcotest.test_case "search beats the random starting point" `Quick (fun () ->
        let short =
          { Worst_case_search.default with Worst_case_search.steps = 0; seed = 8 }
        in
        let long = { short with Worst_case_search.steps = 200 } in
        let r0 = Worst_case_search.search ~policy:"nf" short in
        let r1 = Worst_case_search.search ~policy:"nf" long in
        check_bool "improved" true
          (r1.Worst_case_search.ratio >= r0.Worst_case_search.ratio);
        check_bool "found something bad" true (r1.Worst_case_search.ratio > 1.05));
    Alcotest.test_case "stochastic policy rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Worst_case_search.search ~policy:"rf" Worst_case_search.default);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "bad config rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Worst_case_search.search ~policy:"ff"
                  { Worst_case_search.default with Worst_case_search.max_items = 0 });
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "render mentions the ratio" `Quick (fun () ->
        let config =
          { Worst_case_search.default with Worst_case_search.steps = 10; seed = 2 }
        in
        let r = Worst_case_search.search ~policy:"mtf" config in
        check_bool "text" true
          (contains_sub (Worst_case_search.render ~policy:"mtf" r) "worst ratio"));
    Alcotest.test_case "search_many equals the searches run alone" `Quick
      (fun () ->
        let config =
          { Worst_case_search.default with Worst_case_search.steps = 40; seed = 6 }
        in
        let cases = [ ("ff", config); ("nf", config); ("mtf", config) ] in
        let many = Worst_case_search.search_many ~jobs:3 cases in
        check_int "cases" 3 (List.length many);
        List.iter2
          (fun (policy, config) (policy', r) ->
            Alcotest.(check string) "input order kept" policy policy';
            let alone = Worst_case_search.search ~policy config in
            Alcotest.(check (float 0.0)) "same ratio" alone.Worst_case_search.ratio
              r.Worst_case_search.ratio)
          cases many);
  ]

let suites =
  [
    ("experiments.runner", runner_tests);
    ("experiments.samples", sample_tests);
    ("experiments.significance", significance_tests);
    ("experiments.worst_case_search", worst_case_tests);
    ("experiments.figure4", figure4_tests);
    ("experiments.table1", table1_tests);
    ("experiments.proof_figures", figure_tests);
    ("experiments.ablations", ablation_tests);
  ]
