(* Unit + property tests for Dvbp_vec.Vec: exact integer vectors and the
   capacity-relative norms used throughout the paper (Proposition 1). *)

open Dvbp_vec

let v = Vec.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let construction_tests =
  [
    Alcotest.test_case "of_list / get / dim" `Quick (fun () ->
        let x = v [ 1; 2; 3 ] in
        check_int "dim" 3 (Vec.dim x);
        check_int "get 0" 1 (Vec.get x 0);
        check_int "get 2" 3 (Vec.get x 2));
    Alcotest.test_case "of_array copies" `Quick (fun () ->
        let a = [| 1; 2 |] in
        let x = Vec.of_array a in
        a.(0) <- 99;
        check_int "unchanged" 1 (Vec.get x 0));
    Alcotest.test_case "to_array copies" `Quick (fun () ->
        let x = v [ 1; 2 ] in
        let a = Vec.to_array x in
        a.(0) <- 99;
        check_int "unchanged" 1 (Vec.get x 0));
    Alcotest.test_case "rejects empty" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vec.of_list []); false with Invalid_argument _ -> true));
    Alcotest.test_case "rejects negative" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (v [ 1; -1 ]); false with Invalid_argument _ -> true));
    Alcotest.test_case "make / zero" `Quick (fun () ->
        check_bool "make" true (Vec.equal (Vec.make ~dim:3 5) (v [ 5; 5; 5 ]));
        check_bool "zero" true (Vec.is_zero (Vec.zero ~dim:4)));
    Alcotest.test_case "unit_scaled shape" `Quick (fun () ->
        let x = Vec.unit_scaled ~dim:4 ~axis:2 ~on_axis:9 ~off_axis:1 in
        check_bool "shape" true (Vec.equal x (v [ 1; 1; 9; 1 ])));
    Alcotest.test_case "unit_scaled rejects bad axis" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vec.unit_scaled ~dim:2 ~axis:2 ~on_axis:1 ~off_axis:0); false
           with Invalid_argument _ -> true));
  ]

let algebra_tests =
  [
    Alcotest.test_case "add" `Quick (fun () ->
        check_bool "sum" true (Vec.equal (Vec.add (v [ 1; 2 ]) (v [ 3; 4 ])) (v [ 4; 6 ])));
    Alcotest.test_case "add dimension mismatch" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vec.add (v [ 1 ]) (v [ 1; 2 ])); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "sub" `Quick (fun () ->
        check_bool "diff" true (Vec.equal (Vec.sub (v [ 3; 4 ]) (v [ 1; 2 ])) (v [ 2; 2 ])));
    Alcotest.test_case "sub rejects negative result" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vec.sub (v [ 1; 2 ]) (v [ 2; 1 ])); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "scale" `Quick (fun () ->
        check_bool "times 3" true (Vec.equal (Vec.scale 3 (v [ 1; 2 ])) (v [ 3; 6 ])));
    Alcotest.test_case "sum of list" `Quick (fun () ->
        check_bool "sum" true
          (Vec.equal (Vec.sum ~dim:2 [ v [ 1; 0 ]; v [ 0; 2 ]; v [ 1; 1 ] ]) (v [ 2; 3 ]));
        check_bool "empty sum is zero" true (Vec.is_zero (Vec.sum ~dim:2 [])));
    Alcotest.test_case "max_coord / sum_coords" `Quick (fun () ->
        check_int "max" 7 (Vec.max_coord (v [ 3; 7; 1 ]));
        check_int "sum" 11 (Vec.sum_coords (v [ 3; 7; 1 ])));
  ]

let fit_tests =
  [
    Alcotest.test_case "le componentwise" `Quick (fun () ->
        check_bool "le" true (Vec.le (v [ 1; 2 ]) (v [ 1; 3 ]));
        check_bool "not le" false (Vec.le (v [ 2; 2 ]) (v [ 1; 3 ])));
    Alcotest.test_case "fits exact boundary" `Quick (fun () ->
        let cap = v [ 10; 10 ] in
        check_bool "exactly full fits" true (Vec.fits ~cap ~load:(v [ 4; 9 ]) (v [ 6; 1 ]));
        check_bool "one over fails" false (Vec.fits ~cap ~load:(v [ 4; 9 ]) (v [ 7; 1 ])));
    Alcotest.test_case "fits single overloaded dimension suffices" `Quick (fun () ->
        let cap = v [ 10; 10; 10 ] in
        check_bool "dim 2 overflows" false
          (Vec.fits ~cap ~load:(v [ 0; 0; 10 ]) (v [ 1; 1; 1 ])));
  ]

let norm_tests =
  [
    Alcotest.test_case "linf is max ratio" `Quick (fun () ->
        check_float "linf" 0.9 (Vec.linf ~cap:(v [ 10; 100 ]) (v [ 9; 50 ])));
    Alcotest.test_case "l1 is sum of ratios" `Quick (fun () ->
        check_float "l1" 1.4 (Vec.l1 ~cap:(v [ 10; 100 ]) (v [ 9; 50 ])));
    Alcotest.test_case "l2 between linf and l1" `Quick (fun () ->
        let cap = v [ 10; 10 ] and x = v [ 6; 8 ] in
        let linf = Vec.linf ~cap x and l2 = Vec.lp ~p:2.0 ~cap x and l1 = Vec.l1 ~cap x in
        check_bool "linf <= l2" true (linf <= l2 +. 1e-12);
        check_bool "l2 <= l1" true (l2 <= l1 +. 1e-12);
        check_float "l2 value" 1.0 l2);
    Alcotest.test_case "lp rejects p < 1" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vec.lp ~p:0.5 ~cap:(v [ 10 ]) (v [ 5 ])); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "height: ceil of worst dimension" `Quick (fun () ->
        let cap = v [ 10; 10 ] in
        check_int "zero" 0 (Vec.height ~cap (v [ 0; 0 ]));
        check_int "partial" 1 (Vec.height ~cap (v [ 1; 10 ]));
        check_int "over" 2 (Vec.height ~cap (v [ 1; 11 ]));
        check_int "lots" 5 (Vec.height ~cap (v [ 50; 3 ])));
  ]

let codec_tests =
  [
    Alcotest.test_case "pack places each coordinate in its lane" `Quick (fun () ->
        (* default 10-bit lanes: coordinate j sits at bits 10j.. *)
        check_int "word" (1 lor (2 lsl 10) lor (3 lsl 20))
          (Vec.pack_u8 (v [ 1; 2; 3 ])));
    Alcotest.test_case "unpack inverts pack" `Quick (fun () ->
        let x = v [ 0; 255; 17; 100 ] in
        check_bool "roundtrip" true
          (Vec.equal x (Vec.unpack_u8 ~dim:4 (Vec.pack_u8 x))));
    Alcotest.test_case "max_packable narrows with the lane" `Quick (fun () ->
        (* payload is lane_bits - 2, capped at a byte *)
        check_int "10-bit lane" 255 (Vec.max_packable ~lane_bits:10);
        check_int "12-bit lane" 255 (Vec.max_packable ~lane_bits:12);
        check_int "9-bit lane" 127 (Vec.max_packable ~lane_bits:9);
        check_int "7-bit lane" 31 (Vec.max_packable ~lane_bits:7));
    Alcotest.test_case "pack rejects out-of-lane coordinates" `Quick (fun () ->
        check_bool "256 over a 10-bit lane" true
          (try ignore (Vec.pack_u8 (v [ 256 ])); false
           with Invalid_argument _ -> true);
        check_bool "128 over a 9-bit lane" true
          (try ignore (Vec.pack_u8 ~lane_bits:9 (v [ 128 ])); false
           with Invalid_argument _ -> true);
        check_bool "127 fits a 9-bit lane" true
          (Vec.pack_u8 ~lane_bits:9 (v [ 127 ]) = 127));
    Alcotest.test_case "pack rejects words wider than 63 bits" `Quick (fun () ->
        check_bool "7 lanes of 10 bits" true
          (try ignore (Vec.pack_u8 (Vec.make ~dim:7 1)); false
           with Invalid_argument _ -> true);
        check_bool "10 lanes of 7 bits" true
          (try ignore (Vec.pack_u8 ~lane_bits:7 (Vec.make ~dim:10 1)); false
           with Invalid_argument _ -> true);
        (* 9 lanes of 7 bits are exactly 63 — still one word *)
        check_bool "9 lanes of 7 bits" true
          (Vec.pack_u8 ~lane_bits:7 (Vec.zero ~dim:9) = 0));
  ]

let prop_pack_roundtrip =
  QCheck2.Test.make ~name:"unpack_u8 inverts pack_u8 at every SWAR dimension"
    ~count:500
    QCheck2.Gen.(
      let* d = 1 -- 8 in
      let lane = 63 / d in
      let* a = array_repeat d (0 -- Vec.max_packable ~lane_bits:lane) in
      return (lane, a))
    (fun (lane, a) ->
      let x = Vec.of_array a in
      Vec.equal x (Vec.unpack_u8 ~lane_bits:lane ~dim:(Array.length a)
                     (Vec.pack_u8 ~lane_bits:lane x)))

(* Property 1 of the paper: ‖Σ v_i‖∞ <= Σ ‖v_i‖∞ <= d ‖Σ v_i‖∞. *)
let vec_gen =
  QCheck2.Gen.(
    let* d = 1 -- 5 in
    let* n = 1 -- 8 in
    list_repeat n (array_repeat d (0 -- 100)))

let prop_proposition_1 =
  QCheck2.Test.make ~name:"Proposition 1: norm sandwich" ~count:500 vec_gen
    (fun arrays ->
      let d = Array.length (List.hd arrays) in
      let cap = Vec.make ~dim:d 100 in
      let vs = List.map Vec.of_array arrays in
      let total = Vec.sum ~dim:d vs in
      let lhs = Vec.linf ~cap total in
      let mid = List.fold_left (fun acc x -> acc +. Vec.linf ~cap x) 0.0 vs in
      let rhs = float_of_int d *. lhs in
      lhs <= mid +. 1e-9 && mid <= rhs +. 1e-9)

let prop_scale_homogeneous =
  QCheck2.Test.make ~name:"Proposition 1(i): ‖c·v‖∞ = c‖v‖∞" ~count:500
    QCheck2.Gen.(pair (0 -- 20) (array_size (1 -- 5) (0 -- 50)))
    (fun (c, arr) ->
      let d = Array.length arr in
      let cap = Vec.make ~dim:d 100 in
      let x = Vec.of_array arr in
      Float.abs (Vec.linf ~cap (Vec.scale c x) -. (float_of_int c *. Vec.linf ~cap x))
      < 1e-9)

let prop_fits_iff_le =
  QCheck2.Test.make ~name:"fits <=> add <= cap" ~count:500
    QCheck2.Gen.(
      let* d = 1 -- 4 in
      pair (array_repeat d (0 -- 120)) (array_repeat d (0 -- 120)))
    (fun (a, b) ->
      let d = Array.length a in
      let cap = Vec.make ~dim:d 100 in
      let load = Vec.of_array a and x = Vec.of_array b in
      Vec.fits ~cap ~load x = Vec.le (Vec.add load x) cap)

let prop_add_commutative_associative =
  QCheck2.Test.make ~name:"add is commutative and associative" ~count:300
    QCheck2.Gen.(
      let* d = 1 -- 4 in
      triple (array_repeat d (0 -- 50)) (array_repeat d (0 -- 50))
        (array_repeat d (0 -- 50)))
    (fun (a, b, c) ->
      let x = Vec.of_array a and y = Vec.of_array b and z = Vec.of_array c in
      Vec.equal (Vec.add x y) (Vec.add y x)
      && Vec.equal (Vec.add (Vec.add x y) z) (Vec.add x (Vec.add y z)))

let prop_sub_inverts_add =
  QCheck2.Test.make ~name:"sub inverts add" ~count:300
    QCheck2.Gen.(
      let* d = 1 -- 4 in
      pair (array_repeat d (0 -- 50)) (array_repeat d (0 -- 50)))
    (fun (a, b) ->
      let x = Vec.of_array a and y = Vec.of_array b in
      Vec.equal (Vec.sub (Vec.add x y) y) x)

let prop_height_matches_float_ceil =
  QCheck2.Test.make ~name:"height = ceil of the relative L∞" ~count:300
    QCheck2.Gen.(
      let* d = 1 -- 4 in
      array_repeat d (0 -- 500))
    (fun a ->
      let d = Array.length a in
      let cap = Vec.make ~dim:d 100 in
      let x = Vec.of_array a in
      Vec.height ~cap x = int_of_float (Float.ceil (Vec.linf ~cap x -. 1e-12)))

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_proposition_1; prop_scale_homogeneous; prop_fits_iff_le;
      prop_add_commutative_associative; prop_sub_inverts_add;
      prop_height_matches_float_ceil; prop_pack_roundtrip;
    ]

let suites =
  [
    ("vec.construction", construction_tests);
    ("vec.algebra", algebra_tests);
    ("vec.fit", fit_tests);
    ("vec.norms", norm_tests);
    ("vec.codec", codec_tests);
    ("vec.properties", property_tests);
  ]
