(* Tests for the discrete-event engine: event ordering, bin lifecycle,
   policy-difference scenarios, trace well-formedness and misbehaving
   policies. *)

open Dvbp_core
open Dvbp_engine
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng

let v = Vec.of_list
let cap = v [ 100 ]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let inst specs = Instance.of_specs_exn ~capacity:cap specs
let run_ff specs = Engine.run ~policy:(Policy.first_fit ()) (inst specs)

let basic_tests =
  [
    Alcotest.test_case "single item lifecycle" `Quick (fun () ->
        let r = run_ff [ (1.0, 4.0, v [ 10 ]) ] in
        check_int "bins" 1 r.bins_opened;
        check_float "cost" 3.0 (Engine.cost r);
        match Trace.events r.trace with
        | [ Trace.Opened { time = 1.0; bin_id = 0 };
            Trace.Placed { time = 1.0; item_id = 0; bin_id = 0 };
            Trace.Departed { time = 4.0; item_id = 0; bin_id = 0 };
            Trace.Closed { time = 4.0; bin_id = 0 } ] ->
            ()
        | es -> Alcotest.failf "unexpected trace (%d events)" (List.length es));
    Alcotest.test_case "two items share a bin" `Quick (fun () ->
        let r = run_ff [ (0.0, 2.0, v [ 40 ]); (0.0, 3.0, v [ 60 ]) ] in
        check_int "bins" 1 r.bins_opened;
        check_float "cost" 3.0 (Engine.cost r));
    Alcotest.test_case "overflow opens second bin" `Quick (fun () ->
        let r = run_ff [ (0.0, 2.0, v [ 60 ]); (0.0, 3.0, v [ 60 ]) ] in
        check_int "bins" 2 r.bins_opened;
        check_float "cost" 5.0 (Engine.cost r));
    Alcotest.test_case "departure at t frees capacity before arrival at t" `Quick
      (fun () ->
        (* B1 holds items until t=5; a 60-item arriving exactly at 5 must see
           the departed capacity gone — bin closes, so a fresh bin opens, and
           total cost is 5 + 2, not 7+anything. *)
        let r = run_ff [ (0.0, 5.0, v [ 60 ]); (5.0, 7.0, v [ 60 ]) ] in
        check_int "bins" 2 r.bins_opened;
        check_float "cost" 7.0 (Engine.cost r);
        check_int "peak open" 1 r.max_open_bins);
    Alcotest.test_case "closed bins never reused" `Quick (fun () ->
        let r = run_ff [ (0.0, 1.0, v [ 10 ]); (2.0, 3.0, v [ 10 ]) ] in
        check_int "bins" 2 r.bins_opened;
        check_float "cost" 2.0 (Engine.cost r));
    Alcotest.test_case "simultaneous arrivals processed in sequence order" `Quick
      (fun () ->
        let r =
          run_ff [ (0.0, 1.0, v [ 60 ]); (0.0, 1.0, v [ 60 ]); (0.0, 1.0, v [ 40 ]) ]
        in
        (* FF: item0 -> B0; item1 -> B1; item2 -> B0 (60+40=100 fits) *)
        check_int "bins" 2 r.bins_opened;
        let placements = Trace.placements r.trace in
        Alcotest.(check (list (pair int int)))
          "assignments"
          [ (0, 0); (1, 1); (2, 0) ]
          (List.map (fun (_, item, bin) -> (item, bin)) placements));
    Alcotest.test_case "packing validates for every standard policy" `Quick (fun () ->
        let specs =
          [
            (0.0, 3.0, v [ 30 ]); (0.0, 5.0, v [ 50 ]); (1.0, 4.0, v [ 60 ]);
            (2.0, 6.0, v [ 20 ]); (2.0, 7.0, v [ 80 ]); (4.0, 8.0, v [ 40 ]);
            (5.0, 9.0, v [ 90 ]); (6.0, 10.0, v [ 10 ]);
          ]
        in
        let instance = inst specs in
        List.iter
          (fun name ->
            let rng = Rng.create ~seed:5 in
            let policy = Policy.of_name_exn ~rng name in
            let r = Engine.run ~policy instance in
            match Packing.validate instance r.packing with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s: invalid packing: %s" name (String.concat "; " es))
          Policy.standard_names);
  ]

let policy_difference_tests =
  [
    Alcotest.test_case "next fit ignores released bins; first fit does not" `Quick
      (fun () ->
        let specs =
          [
            (0.0, 10.0, v [ 60 ]); (0.0, 10.0, v [ 60 ]); (1.0, 10.0, v [ 30 ]);
            (2.0, 10.0, v [ 40 ]);
          ]
        in
        let nf = Engine.run ~policy:(Policy.next_fit ()) (inst specs) in
        let ff = Engine.run ~policy:(Policy.first_fit ()) (inst specs) in
        (* NF: 60->B0; 60 misses B0 ->B1; 30->B1(90); 40 misses B1 -> B2,
           even though B0 had room. FF reuses B0. *)
        check_int "nf bins" 3 nf.bins_opened;
        check_int "ff bins" 2 ff.bins_opened);
    Alcotest.test_case "mtf differs from first fit on the Thm 8 pattern" `Quick
      (fun () ->
        (* Thm 8, n=2 (cap 100): odd items size 50 short, even size 25 long.
           MTF pairs each 50 with a 25 (4 bins); FF packs the three later 25s
           into bin 0 beside the first 50. *)
        let mu = 10.0 in
        let specs =
          [
            (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
            (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
            (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
            (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
          ]
        in
        let mtf = Engine.run ~policy:(Policy.move_to_front ()) (inst specs) in
        let ff = Engine.run ~policy:(Policy.first_fit ()) (inst specs) in
        check_int "mtf bins" 4 mtf.bins_opened;
        check_float "mtf cost" (4.0 *. mu) (Engine.cost mtf);
        (* FF: B0 {50,25,25} (full at 100), B1 {50,50}, B2 {25,50,25}: the
           two bins holding long items run for mu, B1 for 1. *)
        check_int "ff bins" 3 ff.bins_opened;
        check_float "ff cost" (1.0 +. (2.0 *. mu)) (Engine.cost ff));
    Alcotest.test_case "best fit beats worst fit on a packing-sensitive mix" `Quick
      (fun () ->
        let specs =
          [
            (0.0, 10.0, v [ 70 ]); (0.0, 10.0, v [ 50 ]); (1.0, 10.0, v [ 30 ]);
            (2.0, 10.0, v [ 50 ]);
          ]
        in
        let bf = Engine.run ~policy:(Policy.best_fit ()) (inst specs) in
        let wf = Engine.run ~policy:(Policy.worst_fit ()) (inst specs) in
        (* BF: 30 joins the 70 (fullest fitting), leaving room for the second
           50 beside the first. WF: 30 joins the 50, so the last 50 needs a
           third bin. *)
        check_int "bf bins" 2 bf.bins_opened;
        check_int "wf bins" 3 wf.bins_opened);
    Alcotest.test_case "clairvoyant flag exposes departures to the policy" `Quick
      (fun () ->
        let saw = ref [] in
        let probe =
          {
            Policy.name = "probe";
            describe = "records departure visibility";
            select =
              (fun ~item ~open_bins:_ ->
                saw := item.Policy.departure :: !saw;
                Policy.Fresh);
            on_place = (fun ~bin:_ ~now:_ -> ());
            on_close = (fun ~bin:_ ~now:_ -> ());
            strict_any_fit = false;
          }
        in
        let specs = [ (0.0, 4.0, v [ 10 ]) ] in
        ignore (Engine.run ~policy:probe (inst specs));
        Alcotest.(check (list (option (float 0.0)))) "hidden" [ None ] !saw;
        saw := [];
        ignore (Engine.run ~clairvoyant:true ~policy:probe (inst specs));
        Alcotest.(check (list (option (float 0.0)))) "visible" [ Some 4.0 ] !saw);
    Alcotest.test_case "a departure oracle feeds custom hints to the policy"
      `Quick (fun () ->
        let seen = ref [] in
        let probe =
          {
            Policy.name = "probe";
            describe = "records departure hints";
            select =
              (fun ~item ~open_bins:_ ->
                seen := item.Policy.departure :: !seen;
                Policy.Fresh);
            on_place = (fun ~bin:_ ~now:_ -> ());
            on_close = (fun ~bin:_ ~now:_ -> ());
            strict_any_fit = false;
          }
        in
        let specs = [ (0.0, 4.0, v [ 10 ]); (1.0, 5.0, v [ 10 ]) ] in
        let oracle (r : Item.t) = Some (r.Item.arrival +. 0.5) in
        ignore (Engine.run ~departure_oracle:oracle ~policy:probe (inst specs));
        Alcotest.(check (list (option (float 1e-9))))
          "hints" [ Some 1.5; Some 0.5 ] !seen);
    Alcotest.test_case "duration-aligned fit packs by departure when clairvoyant"
      `Quick (fun () ->
        (* Two long items in separate bins (too big to share), then a small
           item departing with the *later* one: DAF aligns it there. *)
        let specs =
          [
            (0.0, 10.0, v [ 60 ]); (0.0, 3.0, v [ 60 ]); (1.0, 10.0, v [ 20 ]);
          ]
        in
        let daf = Engine.run ~clairvoyant:true ~policy:(Policy.duration_aligned_fit ()) (inst specs) in
        Alcotest.(check (option int))
          "joined the bin departing at 10" (Some 0)
          (Packing.bin_of_item daf.packing 2))
  ]

let variant_policy_tests =
  [
    Alcotest.test_case "next-1 fit behaves exactly like next fit" `Quick (fun () ->
        let specs =
          [
            (0.0, 10.0, v [ 60 ]); (0.0, 10.0, v [ 60 ]); (1.0, 10.0, v [ 30 ]);
            (2.0, 10.0, v [ 40 ]); (3.0, 5.0, v [ 20 ]); (4.0, 9.0, v [ 70 ]);
          ]
        in
        let instance = inst specs in
        let nf = Engine.run ~policy:(Policy.next_fit ()) instance in
        let nf1 = Engine.run ~policy:(Policy.next_k_fit ~k:1 ()) instance in
        check_float "same cost" (Engine.cost nf) (Engine.cost nf1);
        Alcotest.(check (list (pair int int)))
          "same assignments"
          (List.map (fun (_, i, b) -> (i, b)) (Trace.placements nf.Engine.trace))
          (List.map (fun (_, i, b) -> (i, b)) (Trace.placements nf1.Engine.trace)));
    Alcotest.test_case "wide next-k fit matches first fit here" `Quick (fun () ->
        (* with k larger than the number of bins ever open, every open bin is
           a candidate, so NkF degenerates to First Fit *)
        let specs =
          [
            (0.0, 10.0, v [ 60 ]); (0.0, 10.0, v [ 60 ]); (1.0, 10.0, v [ 30 ]);
            (2.0, 10.0, v [ 40 ]); (3.0, 5.0, v [ 20 ]);
          ]
        in
        let instance = inst specs in
        let ff = Engine.run ~policy:(Policy.first_fit ()) instance in
        let nfk = Engine.run ~policy:(Policy.next_k_fit ~k:100 ()) instance in
        check_float "same cost" (Engine.cost ff) (Engine.cost nfk);
        check_int "same bins" ff.Engine.bins_opened nfk.Engine.bins_opened);
    Alcotest.test_case "next-2 fit saves a bin over next fit" `Quick (fun () ->
        (* the 40 fits the first candidate (60), which NF already released *)
        let specs =
          [
            (0.0, 10.0, v [ 60 ]); (0.0, 10.0, v [ 60 ]); (1.0, 10.0, v [ 30 ]);
            (2.0, 10.0, v [ 40 ]);
          ]
        in
        let instance = inst specs in
        let nf = Engine.run ~policy:(Policy.next_fit ()) instance in
        let nf2 = Engine.run ~policy:(Policy.next_k_fit ~k:2 ()) instance in
        check_int "nf bins" 3 nf.Engine.bins_opened;
        check_int "nf2 bins" 2 nf2.Engine.bins_opened);
    Alcotest.test_case "next_k_fit rejects k < 1" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Policy.next_k_fit ~k:0 ()); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "of_name parses nf<k>" `Quick (fun () ->
        (match Policy.of_name "nf4" with
        | Ok p -> Alcotest.(check string) "name" "nf4" p.Policy.name
        | Error e -> Alcotest.fail e);
        check_bool "nf0 invalid" true (Result.is_error (Policy.of_name "nf0")));
    Alcotest.test_case "harmonic fit separates size classes" `Quick (fun () ->
        (* a 60 (class 0) and a 30 (class 2) never share, even though they
           fit together *)
        let specs = [ (0.0, 10.0, v [ 60 ]); (0.0, 10.0, v [ 30 ]) ] in
        let instance = inst specs in
        let run = Engine.run ~policy:(Policy.harmonic_fit ~capacity:cap ()) instance in
        check_int "two bins" 2 run.Engine.bins_opened);
    Alcotest.test_case "harmonic fit shares within a class" `Quick (fun () ->
        let specs = [ (0.0, 10.0, v [ 30 ]); (0.0, 10.0, v [ 28 ]) ] in
        let instance = inst specs in
        let run = Engine.run ~policy:(Policy.harmonic_fit ~capacity:cap ()) instance in
        check_int "one bin" 1 run.Engine.bins_opened);
    Alcotest.test_case "harmonic fit packs validly on a real workload" `Quick
      (fun () ->
        let params =
          { Dvbp_workload.Uniform_model.d = 2; n = 150; mu = 8; span = 60; bin_size = 20 }
        in
        let instance =
          Dvbp_workload.Uniform_model.generate params ~rng:(Rng.create ~seed:8)
        in
        let capacity = instance.Instance.capacity in
        let run = Engine.run ~policy:(Policy.harmonic_fit ~capacity ()) instance in
        match Packing.validate instance run.Engine.packing with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
    Alcotest.test_case "harmonic fit rejects bad class count" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Policy.harmonic_fit ~num_classes:0 ~capacity:cap ()); false
           with Invalid_argument _ -> true));
  ]

let misbehaving_policy_tests =
  [
    Alcotest.test_case "strict policy opening needlessly is rejected" `Quick
      (fun () ->
        let always_fresh =
          {
            Policy.name = "always-fresh";
            describe = "violates the Any Fit law";
            select = (fun ~item:_ ~open_bins:_ -> Policy.Fresh);
            on_place = (fun ~bin:_ ~now:_ -> ());
            on_close = (fun ~bin:_ ~now:_ -> ());
            strict_any_fit = true;
          }
        in
        let specs = [ (0.0, 2.0, v [ 10 ]); (1.0, 2.0, v [ 10 ]) ] in
        check_bool "raises" true
          (try ignore (Engine.run ~policy:always_fresh (inst specs)); false
           with Engine.Policy_error _ -> true));
    Alcotest.test_case "non-strict policy may open needlessly" `Quick (fun () ->
        let always_fresh =
          {
            Policy.name = "spendthrift";
            describe = "one bin per item";
            select = (fun ~item:_ ~open_bins:_ -> Policy.Fresh);
            on_place = (fun ~bin:_ ~now:_ -> ());
            on_close = (fun ~bin:_ ~now:_ -> ());
            strict_any_fit = false;
          }
        in
        let specs = [ (0.0, 2.0, v [ 10 ]); (1.0, 2.0, v [ 10 ]) ] in
        let r = Engine.run ~policy:always_fresh (inst specs) in
        check_int "bins" 2 r.bins_opened);
    Alcotest.test_case "selecting an overfull bin is rejected" `Quick (fun () ->
        let stubborn =
          {
            Policy.name = "stubborn";
            describe = "always the first bin, fitting or not";
            select =
              (fun ~item:_ ~open_bins ->
                match Bin_registry.find open_bins (fun _ -> true) with
                | None -> Policy.Fresh
                | Some b -> Policy.Existing b);
            on_place = (fun ~bin:_ ~now:_ -> ());
            on_close = (fun ~bin:_ ~now:_ -> ());
            strict_any_fit = false;
          }
        in
        let specs = [ (0.0, 2.0, v [ 60 ]); (1.0, 2.0, v [ 60 ]) ] in
        check_bool "raises" true
          (try ignore (Engine.run ~policy:stubborn (inst specs)); false
           with Engine.Policy_error _ -> true));
  ]

let trace_tests =
  [
    Alcotest.test_case "trace is chronological" `Quick (fun () ->
        let specs =
          [ (0.0, 3.0, v [ 30 ]); (1.0, 2.0, v [ 80 ]); (2.0, 4.0, v [ 50 ]) ]
        in
        let r = run_ff specs in
        let times = List.map Trace.time_of (Trace.events r.trace) in
        let rec sorted = function
          | a :: b :: rest -> a <= b && sorted (b :: rest)
          | _ -> true
        in
        check_bool "sorted" true (sorted times));
    Alcotest.test_case "every bin: opened, then placed, finally closed" `Quick
      (fun () ->
        let specs =
          [ (0.0, 3.0, v [ 30 ]); (1.0, 2.0, v [ 80 ]); (2.0, 4.0, v [ 50 ]) ]
        in
        let r = run_ff specs in
        List.iter
          (fun (_, bin_id) ->
            match Trace.events_of_bin r.trace bin_id with
            | Trace.Opened _ :: rest ->
                (match List.rev rest with
                | Trace.Closed _ :: _ -> ()
                | _ -> Alcotest.fail "bin does not end closed")
            | _ -> Alcotest.fail "bin does not start opened")
          (Trace.openings r.trace));
    Alcotest.test_case "trace exports to csv" `Quick (fun () ->
        let r = run_ff [ (0.0, 2.0, v [ 40 ]); (1.0, 3.0, v [ 50 ]) ] in
        let csv = Trace.to_csv r.trace in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
        (* header + 2 opens-worth of events? one bin: open,place,place,depart,depart,close *)
        Alcotest.(check int) "rows" (1 + Trace.length r.trace) (List.length lines);
        Alcotest.(check string) "header" "kind,time,item_id,bin_id" (List.hd lines);
        Alcotest.(check bool) "has place row" true
          (List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "place") lines));
    Alcotest.test_case "placements match packing assignment" `Quick (fun () ->
        let specs =
          [ (0.0, 3.0, v [ 30 ]); (1.0, 2.0, v [ 80 ]); (2.0, 4.0, v [ 50 ]) ]
        in
        let r = run_ff specs in
        List.iter
          (fun (_, item_id, bin_id) ->
            Alcotest.(check (option int))
              "agrees" (Some bin_id)
              (Packing.bin_of_item r.packing item_id))
          (Trace.placements r.trace));
  ]

let edge_case_tests =
  [
    Alcotest.test_case "item filling a bin exactly" `Quick (fun () ->
        let r = run_ff [ (0.0, 1.0, v [ 100 ]); (0.0, 1.0, v [ 1 ]) ] in
        check_int "bins" 2 r.bins_opened);
    Alcotest.test_case "zero-size item shares any bin" `Quick (fun () ->
        let r = run_ff [ (0.0, 1.0, v [ 100 ]); (0.5, 1.0, v [ 0 ]) ] in
        check_int "bins" 1 r.bins_opened;
        check_float "cost" 1.0 (Engine.cost r));
    Alcotest.test_case "many simultaneous departures close in id order" `Quick
      (fun () ->
        let r =
          run_ff
            [ (0.0, 2.0, v [ 40 ]); (0.0, 2.0, v [ 40 ]); (0.0, 2.0, v [ 40 ]) ]
        in
        let departures =
          List.filter_map
            (function Trace.Departed { item_id; _ } -> Some item_id | _ -> None)
            (Trace.events r.trace)
        in
        Alcotest.(check (list int)) "ordered" [ 0; 1; 2 ] departures);
    Alcotest.test_case "an item spanning the whole horizon" `Quick (fun () ->
        let r =
          run_ff
            [ (0.0, 100.0, v [ 1 ]); (10.0, 11.0, v [ 99 ]); (50.0, 51.0, v [ 99 ]) ]
        in
        (* the two spikes share the long item's bin: 1+99 = 100 *)
        check_int "bins" 1 r.bins_opened;
        check_float "cost" 100.0 (Engine.cost r));
    Alcotest.test_case "chain of back-to-back items keeps one bin alive" `Quick
      (fun () ->
        let specs = List.init 10 (fun k -> (float_of_int k, float_of_int (k + 1), v [ 100 ])) in
        let r = run_ff specs in
        (* each item fills the bin; the previous departs exactly when the
           next arrives, so the bin closes and a new one opens every step *)
        check_int "bins" 10 r.bins_opened;
        check_float "cost" 10.0 (Engine.cost r);
        check_int "peak" 1 r.max_open_bins);
    Alcotest.test_case "fractional times work" `Quick (fun () ->
        let r = run_ff [ (0.25, 0.75, v [ 50 ]); (0.5, 1.25, v [ 60 ]) ] in
        check_int "bins" 2 r.bins_opened;
        check_float "cost" 1.25 (Engine.cost r));
    Alcotest.test_case "large instance smoke test" `Quick (fun () ->
        let params =
          { Dvbp_workload.Uniform_model.d = 5; n = 3000; mu = 50; span = 500; bin_size = 100 }
        in
        let instance =
          Dvbp_workload.Uniform_model.generate params ~rng:(Rng.create ~seed:99)
        in
        let r = Engine.run ~policy:(Policy.move_to_front ()) instance in
        check_bool "ran" true (Engine.cost r > 0.0);
        match Packing.validate instance r.packing with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  ]

let suites =
  [
    ("engine.basics", basic_tests);
    ("engine.edge_cases", edge_case_tests);
    ("engine.policy_differences", policy_difference_tests);
    ("engine.policy_variants", variant_policy_tests);
    ("engine.misbehaving_policies", misbehaving_policy_tests);
    ("engine.trace", trace_tests);
  ]
