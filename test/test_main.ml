(* Entry point for the full test suite. Each module contributes a list of
   named alcotest suites. *)

let () =
  Alcotest.run "dvbp"
    (Test_prelude.suites @ Test_parallel.suites @ Test_vec.suites @ Test_interval.suites
   @ Test_stats.suites @ Test_core.suites @ Test_engine.suites
   @ Test_lowerbound.suites @ Test_workload.suites @ Test_adversary.suites
   @ Test_registry.suites @ Test_analysis.suites @ Test_report.suites
   @ Test_experiments.suites @ Test_session.suites @ Test_golden.suites
   @ Test_props.suites @ Test_service.suites @ Test_sim.suites
   @ Test_cli.suites @ Test_printers.suites @ Test_obs.suites
   @ Test_tracestore.suites @ Test_reduce.suites @ Test_repack.suites)
