(* Tests for lib/reduce: the data-reduction pipeline and its certificate.

   The load-bearing guarantees (pinned by the qcheck properties below):
   - lift of a valid packing of the reduced instance is a valid packing
     of the original, with bit-identical cost;
   - a Lossless certificate means the reduced instance IS the original
     (physical equality), so any run on it is bit-identical;
   - constituents partition the original item set exactly. *)

open Dvbp_core
module Reduce = Dvbp_reduce.Reduce
module Engine = Dvbp_engine.Engine
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module W = Dvbp_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Random instances with deliberate duplicate (arrival, departure, size)
   groups so twin merging actually fires, plus lone items. *)
let instance_gen =
  QCheck2.Gen.(
    let* d = 1 -- 3 in
    let* groups = 1 -- 6 in
    let* specs =
      list_repeat groups
        (let* a = 0 -- 8 in
         let* dur = 1 -- 5 in
         let* size = array_repeat d (1 -- 9) in
         let* replicas = 1 -- 4 in
         return
           (List.init replicas (fun _ ->
                (float_of_int a, float_of_int (a + dur), size))))
    in
    let* gamma = oneofl [ 1.0; 1.3; 2.0 ] in
    let* policy = oneofl [ "ff"; "bf"; "wf"; "lf"; "mtf" ] in
    return (d, List.concat specs, gamma, policy))

let build d specs =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:d 10)
    (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)

let prop_lift_valid_and_cost_exact =
  QCheck2.Test.make
    ~name:"lift(pack(reduce inst)) validates against inst with bit-identical cost"
    ~count:300 instance_gen (fun (d, specs, gamma, policy) ->
      let inst = build d specs in
      let r = Reduce.apply ~config:{ Reduce.gamma; merge_twins = true } inst in
      let run = Engine.run ~policy:(Policy.of_name_exn policy) (Reduce.instance r) in
      let lifted = Reduce.lift r run.Engine.packing in
      (match Packing.validate inst lifted with
      | Ok () -> ()
      | Error es -> QCheck2.Test.fail_report (String.concat "; " es));
      (* bit-identical, not approximately equal: lift keeps the interval
         list, so the Kahan sums are the same sums *)
      Packing.cost lifted = Packing.cost run.Engine.packing)

let prop_lossless_is_physical_identity =
  QCheck2.Test.make
    ~name:"lossless certificate means the reduced instance is the original"
    ~count:300 instance_gen (fun (d, specs, gamma, policy) ->
      let inst = build d specs in
      let r = Reduce.apply ~config:{ Reduce.gamma; merge_twins = true } inst in
      let cert = Reduce.certificate r in
      if Reduce.Certificate.is_lossless cert then (
        (* physical equality is the whole point: every deterministic
           policy then runs bit-identically *)
        assert (Reduce.instance r == inst);
        let a = Engine.run ~policy:(Policy.of_name_exn policy) inst in
        let b = Engine.run ~policy:(Policy.of_name_exn policy) (Reduce.instance r) in
        Engine.cost a = Engine.cost b)
      else
        (* a non-lossless certificate must have something to show for it *)
        cert.Reduce.Certificate.rounded_coords > 0
        || cert.Reduce.Certificate.merged_items > 0)

let prop_constituents_partition =
  QCheck2.Test.make
    ~name:"constituents partition the original items exactly" ~count:300
    instance_gen (fun (d, specs, gamma, _) ->
      let inst = build d specs in
      let r = Reduce.apply ~config:{ Reduce.gamma; merge_twins = true } inst in
      let reduced = Reduce.instance r in
      let seen = Hashtbl.create 32 in
      List.iter
        (fun (it : Item.t) ->
          List.iter
            (fun (orig : Item.t) ->
              assert (not (Hashtbl.mem seen orig.Item.id));
              Hashtbl.replace seen orig.Item.id ())
            (Reduce.constituents r it.Item.id))
        reduced.Instance.items;
      Hashtbl.length seen = List.length inst.Instance.items)

let prop_certificate_accounting =
  QCheck2.Test.make ~name:"certificate counts are consistent" ~count:300
    instance_gen (fun (d, specs, gamma, _) ->
      let inst = build d specs in
      let r = Reduce.apply ~config:{ Reduce.gamma; merge_twins = true } inst in
      let c = Reduce.certificate r in
      c.Reduce.Certificate.original_items = List.length inst.Instance.items
      && c.Reduce.Certificate.reduced_items
         = List.length (Reduce.instance r).Instance.items
      && c.Reduce.Certificate.reduced_items <= c.Reduce.Certificate.original_items
      && Reduce.Certificate.size_inflation c >= 1.0
      && c.Reduce.Certificate.distinct_types <= c.Reduce.Certificate.reduced_items)

let prop_gamma_one_never_rounds =
  QCheck2.Test.make ~name:"gamma = 1.0 rounds no coordinate" ~count:200
    instance_gen (fun (d, specs, _, _) ->
      let inst = build d specs in
      let r = Reduce.apply ~config:{ Reduce.gamma = 1.0; merge_twins = true } inst in
      let c = Reduce.certificate r in
      c.Reduce.Certificate.rounded_coords = 0
      && Reduce.Certificate.size_inflation c = 1.0)

let config_tests =
  [
    Alcotest.test_case "config validates gamma" `Quick (fun () ->
        List.iter
          (fun gamma ->
            Alcotest.check_raises "bad gamma"
              (Invalid_argument
                 (Printf.sprintf
                    "Reduce.config: gamma must be a finite float >= 1.0 (got %g)"
                    gamma))
              (fun () -> ignore (Reduce.config ~gamma ())))
          [ 0.5; 0.0; -1.0 ];
        check_bool "nan rejected" true
          (match Reduce.config ~gamma:Float.nan () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        let c = Reduce.config ~gamma:1.5 ~merge_twins:false () in
        check_bool "fields" true (c.Reduce.gamma = 1.5 && not c.Reduce.merge_twins));
    Alcotest.test_case "default config is the exact reduction" `Quick (fun () ->
        check_bool "gamma 1" true (Reduce.default_config.Reduce.gamma = 1.0);
        check_bool "merge on" true Reduce.default_config.Reduce.merge_twins);
  ]

let twinned_tests =
  [
    Alcotest.test_case "twinned workload merges most of its groups" `Quick
      (fun () ->
        let inst =
          W.Twinned.generate W.Twinned.default ~rng:(Rng.create ~seed:7)
        in
        let r = Reduce.apply inst in
        let c = Reduce.certificate r in
        check_bool "shrinks a lot" true
          (c.Reduce.Certificate.reduced_items * 2
          < c.Reduce.Certificate.original_items);
        check_int "no rounding at gamma 1" 0 c.Reduce.Certificate.rounded_coords;
        check_bool "exact" true (Reduce.Certificate.size_inflation c = 1.0);
        (* the merge must be invisible after lifting *)
        let run = Engine.run ~policy:(Policy.of_name_exn "ff") (Reduce.instance r) in
        let lifted = Reduce.lift r run.Engine.packing in
        (match Packing.validate inst lifted with
        | Ok () -> ()
        | Error es -> Alcotest.fail (String.concat "; " es));
        check_bool "cost preserved" true
          (Packing.cost lifted = Packing.cost run.Engine.packing));
    Alcotest.test_case "merge respects the capacity" `Quick (fun () ->
        (* 5 twins of size 4 in a 10-capacity bin: multiplicity 2, so the
           group becomes ceil(5/2) = 3 super-items, none above capacity *)
        let inst =
          Instance.of_specs_exn
            ~capacity:(Vec.make ~dim:1 10)
            (List.init 5 (fun _ -> (0.0, 5.0, Vec.of_array [| 4 |])))
        in
        let r = Reduce.apply inst in
        let reduced = Reduce.instance r in
        check_int "super-items" 3 (List.length reduced.Instance.items);
        let zero = Vec.make ~dim:1 0 in
        List.iter
          (fun (it : Item.t) ->
            check_bool "fits a bin" true
              (Vec.fits ~cap:inst.Instance.capacity ~load:zero it.Item.size))
          reduced.Instance.items);
    Alcotest.test_case "certificate renders both shapes" `Quick (fun () ->
        let twin =
          Instance.of_specs_exn
            ~capacity:(Vec.make ~dim:1 10)
            [ (0.0, 5.0, Vec.of_array [| 2 |]); (0.0, 5.0, Vec.of_array [| 2 |]) ]
        in
        let merged = Reduce.certificate (Reduce.apply twin) in
        let lossless =
          Reduce.certificate
            (Reduce.apply ~config:{ Reduce.gamma = 1.0; merge_twins = false } twin)
        in
        let has s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        check_bool "merged line" true
          (has (Reduce.Certificate.render merged) "[exact merge]");
        check_bool "lossless line" true
          (has (Reduce.Certificate.render lossless) "[lossless]"));
  ]

let suites =
  [
    ( "reduce.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_lift_valid_and_cost_exact;
          prop_lossless_is_physical_identity;
          prop_constituents_partition;
          prop_certificate_accounting;
          prop_gamma_one_never_rounds;
        ] );
    ("reduce.config", config_tests);
    ("reduce.twins", twinned_tests);
  ]
