(* Tests for lib/engine/repack: the budgeted-migration policy family.

   The anchors:
   - budget 0 degenerates to the plain engine with bit-identical cost;
   - every committed ledger passes the Repack_audit (per-event budget,
     no self-moves), and the stats agree with the ledger;
   - two handcrafted scenarios pin each strategy's exact behaviour;
   - sweeps over repack competitors are bit-identical at any --jobs. *)

open Dvbp_core
module Engine = Dvbp_engine.Engine
module Repack = Dvbp_engine.Repack
module Audit = Dvbp_analysis.Repack_audit
module Runner = Dvbp_experiments.Runner
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Uniform_model = Dvbp_workload.Uniform_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let bases = [ "ff"; "bf"; "wf"; "lf"; "mtf" ]

let instance_gen =
  QCheck2.Gen.(
    let* d = 1 -- 3 in
    let* n = 1 -- 14 in
    let* specs =
      list_repeat n
        (let* a = 0 -- 8 in
         let* dur = 1 -- 5 in
         let* size = array_repeat d (1 -- 9) in
         return (float_of_int a, float_of_int (a + dur), size))
    in
    let* policy = oneofl bases in
    let* budget = 0 -- 4 in
    let* strategy =
      oneofl
        [ Repack.Empty_on_departure; Repack.Consolidate_on_arrival; Repack.Combined ]
    in
    return (d, specs, policy, budget, strategy))

let build d specs =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:d 10)
    (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)

let prop_budget_zero_is_plain_engine =
  QCheck2.Test.make ~name:"budget 0 = plain engine, bit-identical cost"
    ~count:300 instance_gen (fun (d, specs, policy, _, strategy) ->
      let inst = build d specs in
      let p () = Policy.of_name_exn policy in
      let plain = Engine.run ~policy:(p ()) inst in
      let r =
        Repack.run ~config:{ Repack.budget = 0; strategy } ~policy:(p ()) inst
      in
      r.Repack.cost = Engine.cost plain
      && r.Repack.bins_opened = plain.Engine.bins_opened
      && r.Repack.max_open_bins = plain.Engine.max_open_bins
      && r.Repack.stats.Repack.migrations = 0
      && r.Repack.ledger = [])

let prop_ledger_audits_clean =
  QCheck2.Test.make ~name:"every ledger passes the audit, stats match it"
    ~count:300 instance_gen (fun (d, specs, policy, budget, strategy) ->
      let inst = build d specs in
      let config = { Repack.budget; strategy } in
      let r = Repack.run ~config ~policy:(Policy.of_name_exn policy) inst in
      let report = Audit.audit ~config r.Repack.ledger in
      Audit.ok report
      && r.Repack.stats.Repack.migrations = List.length r.Repack.ledger
      && r.Repack.stats.Repack.migration_events = report.Audit.events)

let prop_strategy_scoping =
  QCheck2.Test.make ~name:"each strategy only commits its own reason"
    ~count:300 instance_gen (fun (d, specs, policy, budget, _) ->
      let inst = build d specs in
      let p () = Policy.of_name_exn policy in
      let reasons strategy =
        (Repack.run ~config:{ Repack.budget; strategy } ~policy:(p ()) inst)
          .Repack.ledger
        |> List.map (fun (m : Repack.migration) -> m.Repack.reason)
      in
      List.for_all (( = ) Repack.Drain) (reasons Repack.Empty_on_departure)
      && List.for_all (( = ) Repack.Make_room)
           (reasons Repack.Consolidate_on_arrival))

let prop_run_deterministic =
  QCheck2.Test.make ~name:"repack runs are deterministic" ~count:200
    instance_gen (fun (d, specs, policy, budget, strategy) ->
      let inst = build d specs in
      let go () =
        Repack.run
          ~config:{ Repack.budget; strategy }
          ~policy:(Policy.of_name_exn policy) inst
      in
      let a = go () and b = go () in
      a.Repack.cost = b.Repack.cost && a.Repack.ledger = b.Repack.ledger)

(* capacity 10, d = 1. A(6) and C(4) fill bin0; B(6) opens bin1; D(2)
   lands in bin1. C leaves at t=5 (draining bin0 fails: A does not fit
   next to B+D), B leaves at t=10 leaving D alone in bin1 — the drain
   moves D into bin0 and closes bin1 at t=10 instead of t=100. *)
let drain_instance () =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:1 10)
    [
      (0.0, 100.0, Vec.of_array [| 6 |]);
      (0.0, 5.0, Vec.of_array [| 4 |]);
      (0.0, 10.0, Vec.of_array [| 6 |]);
      (3.0, 100.0, Vec.of_array [| 2 |]);
    ]

(* capacity 10, d = 1. bin0 = A(6) + x(2), bin1 = B(3). Z(8) at t=1 fits
   nowhere, but evicting A from bin0 into bin1 makes room — budget 1
   saves the third bin. *)
let consolidate_instance () =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:1 10)
    [
      (0.0, 100.0, Vec.of_array [| 6 |]);
      (0.0, 100.0, Vec.of_array [| 2 |]);
      (0.0, 100.0, Vec.of_array [| 3 |]);
      (1.0, 100.0, Vec.of_array [| 8 |]);
    ]

let scenario_tests =
  [
    Alcotest.test_case "drain closes the emptied bin early" `Quick (fun () ->
        let inst = drain_instance () in
        let plain = Engine.run ~policy:(Policy.of_name_exn "ff") inst in
        Alcotest.(check (float 1e-9)) "plain keeps both bins open" 200.0
          (Engine.cost plain);
        let config = Repack.config ~budget:1 ~strategy:Repack.Empty_on_departure () in
        let r = Repack.run ~config ~policy:(Policy.of_name_exn "ff") inst in
        Alcotest.(check (float 1e-9)) "drained cost" 110.0 r.Repack.cost;
        check_int "one migration" 1 r.Repack.stats.Repack.migrations;
        check_int "one drained bin" 1 r.Repack.stats.Repack.drained_bins;
        match r.Repack.ledger with
        | [ m ] ->
            check_bool "reason" true (m.Repack.reason = Repack.Drain);
            check_int "item D" 3 m.Repack.item_id;
            check_int "from bin1" 1 m.Repack.from_bin;
            check_int "to bin0" 0 m.Repack.to_bin;
            Alcotest.(check (float 0.0)) "at the departure" 10.0 m.Repack.time
        | l -> Alcotest.failf "expected 1 ledger entry, got %d" (List.length l));
    Alcotest.test_case "consolidation avoids opening a bin" `Quick (fun () ->
        let inst = consolidate_instance () in
        let plain = Engine.run ~policy:(Policy.of_name_exn "ff") inst in
        check_int "plain opens three bins" 3 plain.Engine.bins_opened;
        let config =
          Repack.config ~budget:1 ~strategy:Repack.Consolidate_on_arrival ()
        in
        let r = Repack.run ~config ~policy:(Policy.of_name_exn "ff") inst in
        check_int "repack stays at two" 2 r.Repack.bins_opened;
        Alcotest.(check (float 1e-9)) "cost 2 bins * 100" 200.0 r.Repack.cost;
        check_int "one consolidation" 1 r.Repack.stats.Repack.consolidations;
        match r.Repack.ledger with
        | [ m ] ->
            check_bool "reason" true (m.Repack.reason = Repack.Make_room);
            check_int "item A" 0 m.Repack.item_id;
            check_int "from bin0" 0 m.Repack.from_bin;
            check_int "to bin1" 1 m.Repack.to_bin
        | l -> Alcotest.failf "expected 1 ledger entry, got %d" (List.length l));
    Alcotest.test_case "budget 0 never migrates even when it would pay" `Quick
      (fun () ->
        let config = Repack.config ~budget:0 () in
        let r =
          Repack.run ~config ~policy:(Policy.of_name_exn "ff") (drain_instance ())
        in
        Alcotest.(check (float 1e-9)) "plain cost" 200.0 r.Repack.cost;
        check_int "no migrations" 0 r.Repack.stats.Repack.migrations);
  ]

let config_tests =
  [
    Alcotest.test_case "config rejects out-of-range budgets" `Quick (fun () ->
        List.iter
          (fun budget ->
            check_bool "raises" true
              (match Repack.config ~budget () with
              | exception Invalid_argument _ -> true
              | _ -> false))
          [ -1; Repack.max_budget + 1 ]);
    Alcotest.test_case "unsupported bases are rejected by name" `Quick (fun () ->
        List.iter
          (fun name ->
            let policy = Policy.of_name_exn ~rng:(Rng.create ~seed:1) name in
            check_bool (name ^ " unsupported") false (Repack.supported_base policy);
            check_bool "create raises" true
              (match
                 Repack.create ~capacity:(Vec.make ~dim:1 10) ~policy
                   ~config:Repack.default_config ()
               with
              | exception Invalid_argument msg ->
                  (* the message must name the valid bases *)
                  let has s sub =
                    let n = String.length s and m = String.length sub in
                    let rec go i =
                      i + m <= n && (String.sub s i m = sub || go (i + 1))
                    in
                    go 0
                  in
                  has msg Repack.supported_base_names
              | _ -> false))
          [ "nf"; "nf3" ];
        List.iter
          (fun name ->
            check_bool (name ^ " supported") true
              (Repack.supported_base
                 (Policy.of_name_exn ~rng:(Rng.create ~seed:1) name)))
          [ "ff"; "bf"; "wf"; "lf"; "mtf"; "rf" ]);
    Alcotest.test_case "spec parsing round-trips and reports errors" `Quick
      (fun () ->
        (match Repack.spec_of_string "ff" with
        | Ok ("ff", None) -> ()
        | _ -> Alcotest.fail "bare name");
        (match Repack.spec_of_string "bf+el2" with
        | Ok ("bf", Some { Repack.budget = 2; strategy = Repack.Empty_on_departure })
          ->
            ()
        | _ -> Alcotest.fail "bf+el2");
        (match Repack.spec_of_string "mtf+both0" with
        | Ok ("mtf", Some { Repack.budget = 0; strategy = Repack.Combined }) -> ()
        | _ -> Alcotest.fail "mtf+both0");
        check_string "round trip" "wf+cons8"
          (Repack.spec_to_string ~base:"wf"
             { Repack.budget = 8; strategy = Repack.Consolidate_on_arrival });
        List.iter
          (fun bad ->
            check_bool (bad ^ " rejected") true
              (Result.is_error (Repack.spec_of_string bad)))
          [ "+el2"; "ff+zz2"; "ff+el"; "ff+el999"; "ff+el-1" ]);
    Alcotest.test_case "strategy names round-trip" `Quick (fun () ->
        List.iter
          (fun s ->
            match Repack.strategy_of_name (Repack.strategy_name s) with
            | Ok s' -> check_bool "same" true (s = s')
            | Error e -> Alcotest.fail e)
          [ Repack.Empty_on_departure; Repack.Consolidate_on_arrival; Repack.Combined ];
        check_bool "unknown rejected" true
          (Result.is_error (Repack.strategy_of_name "zz")));
  ]

let tiny_gen =
  let params = { Uniform_model.d = 2; n = 40; mu = 5; span = 40; bin_size = 20 } in
  fun ~rng -> Uniform_model.generate params ~rng

let competitor name =
  match Runner.competitor_of_name name with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let sweep_tests =
  [
    Alcotest.test_case "repack sweeps are bit-identical at any --jobs" `Quick
      (fun () ->
        let competitors = [ competitor "ff"; competitor "ff+both2" ] in
        let go jobs =
          Runner.ratio_samples ~jobs ~instances:6 ~seed:11 ~gen:tiny_gen
            ~competitors ()
        in
        let a = go 1 and b = go 4 in
        List.iter2
          (fun (la, ra) (lb, rb) ->
            check_string "label" la lb;
            check_bool "identical floats" true (ra = rb))
          a b);
    Alcotest.test_case "reduction_report is bit-identical at any --jobs" `Quick
      (fun () ->
        let competitors = [ competitor "ff" ] in
        let go jobs =
          Runner.reduction_report ~jobs ~instances:5 ~seed:13 ~gen:tiny_gen
            ~competitors ()
        in
        let a = go 1 and b = go 3 in
        check_int "lossless" a.Runner.lossless b.Runner.lossless;
        check_bool "shrink" true
          (a.Runner.mean_item_shrink = b.Runner.mean_item_shrink);
        check_bool "deltas" true (a.Runner.deltas = b.Runner.deltas));
    Alcotest.test_case "competitor_of_name rejects bad repack specs" `Quick
      (fun () ->
        check_bool "nf+el2" true
          (Result.is_error (Runner.competitor_of_name "nf+el2"));
        check_bool "ff+zz1" true
          (Result.is_error (Runner.competitor_of_name "ff+zz1")));
    Alcotest.test_case "frontier smoke: shapes and k=0 parity" `Quick (fun () ->
        let f =
          Dvbp_experiments.Migration_frontier.run ~instances:3 ~seed:5 ~ks:[ 0; 2 ]
            ~n:40 ~mu:10 ()
        in
        check_int "lb rows = 7 anyfit + 2 budgets" 9 (List.length f.lb_rows);
        check_int "opt rows" 9 (List.length f.opt_rows);
        let find label rows = List.assoc label rows in
        let ff = find "ff" f.Dvbp_experiments.Migration_frontier.lb_rows in
        let k0 = find "ff+both0" f.Dvbp_experiments.Migration_frontier.lb_rows in
        check_bool "k=0 equals plain ff" true
          (ff.Runner.mean = k0.Runner.mean && ff.Runner.std = k0.Runner.std);
        check_bool "render mentions best Any Fit" true
          (let s = Dvbp_experiments.Migration_frontier.render f in
           let sub = "best Any Fit" in
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0));
  ]

let suites =
  [
    ( "repack.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_budget_zero_is_plain_engine;
          prop_ledger_audits_clean;
          prop_strategy_scoping;
          prop_run_deterministic;
        ] );
    ("repack.scenarios", scenario_tests);
    ("repack.config", config_tests);
    ("repack.sweeps", sweep_tests);
  ]
