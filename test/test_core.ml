(* Unit tests for Dvbp_core: items, instances, bins, load measures,
   policy selection logic, and packing validation. *)

open Dvbp_core
module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval

let v = Vec.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let item ?(id = 0) a e size = Item.make ~id ~arrival:a ~departure:e ~size:(v size)

let item_tests =
  [
    Alcotest.test_case "duration and interval" `Quick (fun () ->
        let r = item 1.0 3.5 [ 2 ] in
        check_float "duration" 2.5 (Item.duration r);
        check_bool "interval" true (Interval.equal (Item.interval r) (Interval.make 1.0 3.5)));
    Alcotest.test_case "active_at half-open" `Quick (fun () ->
        let r = item 1.0 2.0 [ 1 ] in
        check_bool "at arrival" true (Item.active_at r 1.0);
        check_bool "at departure" false (Item.active_at r 2.0);
        check_bool "before" false (Item.active_at r 0.5));
    Alcotest.test_case "rejects zero duration" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (item 1.0 1.0 [ 1 ]); false with Invalid_argument _ -> true));
    Alcotest.test_case "rejects negative arrival" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (item (-1.0) 1.0 [ 1 ]); false with Invalid_argument _ -> true));
    Alcotest.test_case "compare_by_arrival breaks ties by id" `Quick (fun () ->
        let a = item ~id:3 0.0 1.0 [ 1 ] and b = item ~id:1 0.0 1.0 [ 1 ] in
        check_bool "b first" true (Item.compare_by_arrival b a < 0));
  ]

let cap2 = v [ 10; 10 ]

let instance_tests =
  [
    Alcotest.test_case "of_specs assigns sequence ids" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 1.0, v [ 1; 1 ]); (0.0, 2.0, v [ 2; 2 ]) ]
        in
        check_int "n" 2 (Instance.size inst);
        let ids = List.map (fun (r : Item.t) -> r.Item.id) inst.Instance.items in
        Alcotest.(check (list int)) "ids in order" [ 0; 1 ] ids);
    Alcotest.test_case "rejects oversized item" `Quick (fun () ->
        match Instance.of_specs ~capacity:cap2 [ (0.0, 1.0, v [ 11; 1 ]) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "rejects dimension mismatch" `Quick (fun () ->
        match Instance.of_specs ~capacity:cap2 [ (0.0, 1.0, v [ 1 ]) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "rejects empty instance" `Quick (fun () ->
        match Instance.make ~capacity:cap2 [] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "rejects duplicate ids" `Quick (fun () ->
        let r = item ~id:0 0.0 1.0 [ 1; 1 ] in
        match Instance.make ~capacity:cap2 [ r; r ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "mu ratio" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 1.0, v [ 1; 1 ]); (0.0, 5.0, v [ 1; 1 ]) ]
        in
        check_float "mu" 5.0 (Instance.mu inst));
    Alcotest.test_case "span with a gap" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 1.0, v [ 1; 1 ]); (3.0, 5.0, v [ 1; 1 ]) ]
        in
        check_float "span" 3.0 (Instance.span inst);
        check_float "horizon" 5.0 (Instance.horizon inst));
    Alcotest.test_case "total_utilisation" `Quick (fun () ->
        (* item 1: linf 0.5 for 2 time units; item 2: linf 0.2 for 1 unit *)
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 2.0, v [ 5; 2 ]); (0.0, 1.0, v [ 1; 2 ]) ]
        in
        check_float "util" 1.2 (Instance.total_utilisation inst));
    Alcotest.test_case "items sorted by arrival then id" `Quick (fun () ->
        let items =
          [
            Item.make ~id:0 ~arrival:5.0 ~departure:6.0 ~size:(v [ 1; 1 ]);
            Item.make ~id:1 ~arrival:0.0 ~departure:1.0 ~size:(v [ 1; 1 ]);
          ]
        in
        let inst = Instance.make_exn ~capacity:cap2 items in
        let ids = List.map (fun (r : Item.t) -> r.Item.id) inst.Instance.items in
        Alcotest.(check (list int)) "sorted" [ 1; 0 ] ids);
  ]

let transform_tests =
  let base =
    Instance.of_specs_exn ~capacity:cap2
      [ (0.0, 2.0, v [ 4; 2 ]); (1.0, 3.0, v [ 1; 1 ]) ]
  in
  [
    Alcotest.test_case "shift translates times, keeps sizes and ids" `Quick
      (fun () ->
        let shifted = Instance.shift base ~by:10.0 in
        check_float "span unchanged" (Instance.span base) (Instance.span shifted);
        check_float "horizon" 13.0 (Instance.horizon shifted);
        let ids i = List.map (fun (r : Item.t) -> r.Item.id) i.Instance.items in
        Alcotest.(check (list int)) "ids" (ids base) (ids shifted));
    Alcotest.test_case "shift below zero rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Instance.shift base ~by:(-1.0)); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "scale_sizes scales capacity too" `Quick (fun () ->
        let scaled = Instance.scale_sizes base ~factor:3 in
        check_bool "capacity" true
          (Vec.equal scaled.Instance.capacity (v [ 30; 30 ]));
        let first = List.hd scaled.Instance.items in
        check_bool "size" true (Vec.equal first.Item.size (v [ 12; 6 ])));
    Alcotest.test_case "scale_sizes rejects non-positive factor" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Instance.scale_sizes base ~factor:0); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "scale_time dilates durations" `Quick (fun () ->
        let dilated = Instance.scale_time base ~factor:2.0 in
        check_float "span" (2.0 *. Instance.span base) (Instance.span dilated);
        check_float "mu unchanged" (Instance.mu base) (Instance.mu dilated));
    Alcotest.test_case "merge concatenates and re-ids" `Quick (fun () ->
        let far = Instance.shift base ~by:20.0 in
        match Instance.merge [ base; far ] with
        | Error e -> Alcotest.fail e
        | Ok merged ->
            check_int "n" 4 (Instance.size merged);
            let ids = List.map (fun (r : Item.t) -> r.Item.id) merged.Instance.items in
            Alcotest.(check (list int)) "re-id" [ 0; 1; 2; 3 ] ids;
            check_float "span adds" (2.0 *. Instance.span base) (Instance.span merged));
    Alcotest.test_case "merge rejects capacity mismatch" `Quick (fun () ->
        let other =
          Instance.of_specs_exn ~capacity:(v [ 5; 5 ]) [ (0.0, 1.0, v [ 1; 1 ]) ]
        in
        check_bool "error" true (Result.is_error (Instance.merge [ base; other ])));
    Alcotest.test_case "merge rejects empty list" `Quick (fun () ->
        check_bool "error" true (Result.is_error (Instance.merge [])));
  ]

let load_measure_tests =
  [
    Alcotest.test_case "apply measures" `Quick (fun () ->
        let load = v [ 5; 8 ] in
        check_float "linf" 0.8 (Load_measure.apply Load_measure.Linf ~cap:cap2 load);
        check_float "l1" 1.3 (Load_measure.apply Load_measure.L1 ~cap:cap2 load);
        check_float "l2" (sqrt ((0.5 ** 2.0) +. (0.8 ** 2.0)))
          (Load_measure.apply (Load_measure.Lp 2.0) ~cap:cap2 load));
    Alcotest.test_case "names round-trip" `Quick (fun () ->
        List.iter
          (fun m ->
            match Load_measure.of_name (Load_measure.name m) with
            | Ok m' -> check_bool "round trip" true (m = m')
            | Error e -> Alcotest.fail e)
          Load_measure.all_standard);
    Alcotest.test_case "of_name aliases and errors" `Quick (fun () ->
        check_bool "max" true (Load_measure.of_name "max" = Ok Load_measure.Linf);
        check_bool "sum" true (Load_measure.of_name "sum" = Ok Load_measure.L1);
        check_bool "lp:3" true (Load_measure.of_name "lp:3" = Ok (Load_measure.Lp 3.0));
        check_bool "bogus" true (Result.is_error (Load_measure.of_name "bogus")));
  ]

let fresh_bin ?(id = 0) ?(now = 0.0) ?(touch = 0) () =
  Bin.create ~id ~capacity:cap2 ~now ~touch

let bin_tests =
  [
    Alcotest.test_case "place accumulates load" `Quick (fun () ->
        let b = fresh_bin () in
        Bin.place b (item ~id:0 0.0 1.0 [ 3; 4 ]) ~touch:1;
        Bin.place b (item ~id:1 0.0 1.0 [ 2; 1 ]) ~touch:2;
        check_bool "load" true (Vec.equal b.Bin.load (v [ 5; 5 ]));
        check_int "last_used" 2 b.Bin.last_used);
    Alcotest.test_case "place rejects overflow" `Quick (fun () ->
        let b = fresh_bin () in
        Bin.place b (item ~id:0 0.0 1.0 [ 9; 9 ]) ~touch:1;
        check_bool "raises" true
          (try Bin.place b (item ~id:1 0.0 1.0 [ 2; 0 ]) ~touch:2; false
           with Invalid_argument _ -> true));
    Alcotest.test_case "remove subtracts" `Quick (fun () ->
        let b = fresh_bin () in
        let r = item ~id:0 0.0 1.0 [ 3; 4 ] in
        Bin.place b r ~touch:1;
        Bin.remove b r;
        check_bool "empty" true (Bin.is_empty b);
        check_bool "zero load" true (Vec.is_zero b.Bin.load));
    Alcotest.test_case "remove unknown item rejected" `Quick (fun () ->
        let b = fresh_bin () in
        check_bool "raises" true
          (try Bin.remove b (item ~id:5 0.0 1.0 [ 1; 1 ]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "close lifecycle" `Quick (fun () ->
        let b = fresh_bin ~now:1.0 () in
        let r = item ~id:0 1.0 4.0 [ 1; 1 ] in
        Bin.place b r ~touch:1;
        check_bool "open" true (Bin.is_open b);
        Bin.remove b r;
        Bin.close b ~now:4.0;
        check_bool "closed" false (Bin.is_open b);
        check_bool "usage" true
          (Interval.equal (Bin.usage_interval b) (Interval.make 1.0 4.0)));
    Alcotest.test_case "close non-empty rejected" `Quick (fun () ->
        let b = fresh_bin () in
        Bin.place b (item ~id:0 0.0 1.0 [ 1; 1 ]) ~touch:1;
        check_bool "raises" true
          (try Bin.close b ~now:1.0; false with Invalid_argument _ -> true));
    Alcotest.test_case "place into closed bin rejected" `Quick (fun () ->
        let b = fresh_bin () in
        Bin.close b ~now:0.0;
        check_bool "raises" true
          (try Bin.place b (item ~id:0 0.0 1.0 [ 1; 1 ]) ~touch:1; false
           with Invalid_argument _ -> true));
  ]

(* Policy selection unit tests on hand-built bin lists. *)
let view size = { Policy.size = v size; arrival = 0.0; departure = None }

let three_bins ~loads =
  (* bins 0,1,2 with given loads; last_used = id for determinism *)
  List.mapi
    (fun i load ->
      let b = fresh_bin ~id:i ~touch:i () in
      if load <> [ 0; 0 ] then
        Bin.place b (item ~id:(100 + i) 0.0 1.0 load) ~touch:i;
      b)
    loads

let selected = function
  | Policy.Existing b -> Some b.Bin.id
  | Policy.Fresh -> None

(* wrap a hand-built bin list into the registry view policies consume *)
let reg bins = Bin_registry.of_list ~capacity:cap2 bins

let policy_tests =
  [
    Alcotest.test_case "first fit picks earliest fitting" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 9; 9 ]; [ 1; 1 ]; [ 0; 0 ] ] in
        let p = Policy.first_fit () in
        Alcotest.(check (option int)) "bin 1" (Some 1)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "first fit opens fresh when nothing fits" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 9; 9 ]; [ 8; 8 ]; [ 7; 7 ] ] in
        let p = Policy.first_fit () in
        Alcotest.(check (option int)) "fresh" None
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "last fit picks latest fitting" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 1; 1 ]; [ 1; 1 ]; [ 9; 9 ] ] in
        let p = Policy.last_fit () in
        Alcotest.(check (option int)) "bin 1" (Some 1)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "best fit picks most loaded fitting" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 2; 2 ]; [ 5; 1 ]; [ 3; 3 ] ] in
        let p = Policy.best_fit () in
        (* linf loads: 0.2, 0.5, 0.3 — all fit a (5,5) item *)
        Alcotest.(check (option int)) "bin 1" (Some 1)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "best fit skips bins that do not fit" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 2; 2 ]; [ 8; 8 ]; [ 3; 3 ] ] in
        let p = Policy.best_fit () in
        Alcotest.(check (option int)) "bin 2" (Some 2)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "best fit l1 measure changes the choice" `Quick (fun () ->
        (* linf: (0.5,0.5) vs (0.6,0.1): l∞ prefers bin 1 (0.6), l1 prefers bin 0 (1.0 vs 0.7) *)
        let bins = three_bins ~loads:[ [ 5; 5 ]; [ 6; 1 ]; [ 0; 0 ] ] in
        let p_inf = Policy.best_fit ~measure:Load_measure.Linf () in
        let p_l1 = Policy.best_fit ~measure:Load_measure.L1 () in
        Alcotest.(check (option int)) "linf" (Some 1)
          (selected (p_inf.Policy.select ~item:(view [ 2; 2 ]) ~open_bins:(reg bins)));
        Alcotest.(check (option int)) "l1" (Some 0)
          (selected (p_l1.Policy.select ~item:(view [ 2; 2 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "worst fit picks least loaded fitting" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 2; 2 ]; [ 5; 1 ]; [ 3; 3 ] ] in
        let p = Policy.worst_fit () in
        Alcotest.(check (option int)) "bin 0" (Some 0)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "mtf picks most recently used fitting" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 1; 1 ]; [ 1; 1 ]; [ 1; 1 ] ] in
        (* touching bin 0 with a weightless placement makes it most recent *)
        Bin.place (List.nth bins 0) (item ~id:300 0.0 1.0 [ 0; 0 ]) ~touch:99;
        let p = Policy.move_to_front () in
        Alcotest.(check (option int)) "bin 0" (Some 0)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "mtf skips recently used bin that does not fit" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 1; 1 ]; [ 9; 9 ]; [ 1; 1 ] ] in
        Bin.place (List.nth bins 1) (item ~id:301 0.0 1.0 [ 0; 0 ]) ~touch:99;
        let p = Policy.move_to_front () in
        Alcotest.(check (option int)) "bin 2" (Some 2)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "next fit with no current opens fresh" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 0; 0 ]; [ 0; 0 ] ] in
        let p = Policy.next_fit () in
        Alcotest.(check (option int)) "fresh" None
          (selected (p.Policy.select ~item:(view [ 1; 1 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "next fit sticks to current bin" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 1; 1 ]; [ 0; 0 ] ] in
        let p = Policy.next_fit () in
        p.Policy.on_place ~bin:(List.nth bins 1) ~now:0.0;
        Alcotest.(check (option int)) "bin 1" (Some 1)
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "next fit releases current when item misses" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 8; 8 ]; [ 0; 0 ] ] in
        let p = Policy.next_fit () in
        p.Policy.on_place ~bin:(List.nth bins 1) ~now:0.0;
        (* does not fit in bin 1 -> fresh even though bins 0 and 2 fit *)
        Alcotest.(check (option int)) "fresh" None
          (selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "next fit holds its bin by reference, not by id scan"
      `Quick (fun () ->
        (* the current bin is answered even when the candidate view is empty:
           proof there is no per-arrival rescan of the open bins for its id *)
        let b = fresh_bin ~id:7 ~touch:1 () in
        let p = Policy.next_fit () in
        p.Policy.on_place ~bin:b ~now:0.0;
        Alcotest.(check (option int)) "current via reference" (Some 7)
          (selected (p.Policy.select ~item:(view [ 1; 1 ]) ~open_bins:(reg [])));
        (* closing some other bin must not disturb the current one *)
        let other = fresh_bin ~id:8 ~touch:2 () in
        Bin.close other ~now:1.0;
        p.Policy.on_close ~bin:other ~now:1.0;
        Alcotest.(check (option int)) "still current" (Some 7)
          (selected (p.Policy.select ~item:(view [ 1; 1 ]) ~open_bins:(reg []))));
    Alcotest.test_case "next fit forgets a closed current bin" `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 1; 1 ]; [ 0; 0 ] ] in
        let p = Policy.next_fit () in
        p.Policy.on_place ~bin:(List.nth bins 1) ~now:0.0;
        p.Policy.on_close ~bin:(List.nth bins 1) ~now:1.0;
        Alcotest.(check (option int)) "fresh" None
          (selected (p.Policy.select ~item:(view [ 1; 1 ]) ~open_bins:(reg bins))));
    Alcotest.test_case "random fit always selects a fitting bin" `Quick (fun () ->
        let rng = Dvbp_prelude.Rng.create ~seed:7 in
        let p = Policy.random_fit ~rng () in
        let bins = three_bins ~loads:[ [ 9; 9 ]; [ 1; 1 ]; [ 8; 8 ] ] in
        for _ = 1 to 50 do
          match selected (p.Policy.select ~item:(view [ 5; 5 ]) ~open_bins:(reg bins)) with
          | Some 1 -> ()
          | other ->
              Alcotest.failf "expected bin 1, got %s"
                (match other with None -> "fresh" | Some i -> string_of_int i)
        done);
    Alcotest.test_case "of_name builds all standard policies" `Quick (fun () ->
        let rng = Dvbp_prelude.Rng.create ~seed:1 in
        List.iter
          (fun name ->
            match Policy.of_name ~rng name with
            | Ok p -> Alcotest.(check string) "name" name p.Policy.name
            | Error e -> Alcotest.fail e)
          Policy.standard_names);
    Alcotest.test_case "of_name rf without rng fails" `Quick (fun () ->
        check_bool "error" true (Result.is_error (Policy.of_name "rf")));
    Alcotest.test_case "of_name unknown fails" `Quick (fun () ->
        check_bool "error" true (Result.is_error (Policy.of_name "zzz")));
    Alcotest.test_case "hybrid first fit separates duration classes" `Quick
      (fun () ->
        let p = Policy.hybrid_first_fit () in
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 0; 0 ]; [ 0; 0 ] ] in
        (* a long item claims bin 0 for its class *)
        let long =
          { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 64.0 }
        in
        (match p.Policy.select ~item:long ~open_bins:(reg []) with
        | Policy.Fresh -> p.Policy.on_place ~bin:(List.nth bins 0) ~now:0.0
        | Policy.Existing _ -> Alcotest.fail "no bins yet");
        (* a short item refuses bin 0 even though it fits *)
        let short =
          { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 1.5 }
        in
        (match p.Policy.select ~item:short ~open_bins:(reg [ List.nth bins 0 ]) with
        | Policy.Fresh -> p.Policy.on_place ~bin:(List.nth bins 1) ~now:0.0
        | Policy.Existing b -> Alcotest.failf "shared bin %d across classes" b.Bin.id);
        (* a second short item joins the short bin *)
        let short2 =
          { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 1.9 }
        in
        match
          p.Policy.select ~item:short2
            ~open_bins:(reg [ List.nth bins 0; List.nth bins 1 ])
        with
        | Policy.Existing b -> Alcotest.(check int) "short bin" 1 b.Bin.id
        | Policy.Fresh -> Alcotest.fail "should reuse the short-class bin");
    Alcotest.test_case "hybrid first fit forgets closed bins" `Quick (fun () ->
        let p = Policy.hybrid_first_fit () in
        let bins = three_bins ~loads:[ [ 0; 0 ]; [ 0; 0 ]; [ 0; 0 ] ] in
        let it = { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 2.0 } in
        (match p.Policy.select ~item:it ~open_bins:(reg []) with
        | Policy.Fresh -> p.Policy.on_place ~bin:(List.nth bins 0) ~now:0.0
        | Policy.Existing _ -> Alcotest.fail "no bins yet");
        p.Policy.on_close ~bin:(List.nth bins 0) ~now:3.0;
        (* after the close the class tag is gone; bin 0 (hypothetically
           reopened) is no longer recognised *)
        match p.Policy.select ~item:it ~open_bins:(reg [ List.nth bins 0 ]) with
        | Policy.Fresh -> ()
        | Policy.Existing _ -> Alcotest.fail "stale class tag");
    Alcotest.test_case "hybrid first fit rejects bad class count" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Policy.hybrid_first_fit ~num_classes:0 ()); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "duration-aligned fit prefers matching departure" `Quick
      (fun () ->
        let bins = three_bins ~loads:[ [ 1; 1 ]; [ 1; 1 ]; [ 0; 0 ] ] in
        (* bin 0 holds an item departing at 10, bin 1 at 2 *)
        Bin.place (List.nth bins 0) (item ~id:200 0.0 10.0 [ 1; 1 ]) ~touch:5;
        Bin.place (List.nth bins 1) (item ~id:201 0.0 2.0 [ 1; 1 ]) ~touch:6;
        let p = Policy.duration_aligned_fit () in
        let it = { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 9.5 } in
        Alcotest.(check (option int)) "bin 0" (Some 0)
          (selected (p.Policy.select ~item:it ~open_bins:(reg bins))));
    Alcotest.test_case "duration-aligned slack breaks ties by load" `Quick
      (fun () ->
        (* both bins within the slack window; the fuller bin must win *)
        let bins = three_bins ~loads:[ [ 1; 1 ]; [ 5; 5 ]; [ 0; 0 ] ] in
        Bin.place (List.nth bins 0) (item ~id:210 0.0 9.0 [ 1; 1 ]) ~touch:5;
        Bin.place (List.nth bins 1) (item ~id:211 0.0 11.0 [ 1; 1 ]) ~touch:6;
        let p = Policy.duration_aligned_fit ~slack:5.0 () in
        let it = { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = Some 10.0 } in
        Alcotest.(check (option int)) "fuller bin" (Some 1)
          (selected (p.Policy.select ~item:it ~open_bins:(reg bins))));
    Alcotest.test_case "duration-aligned fit without departures acts like best fit"
      `Quick (fun () ->
        let bins = three_bins ~loads:[ [ 2; 2 ]; [ 5; 1 ]; [ 3; 3 ] ] in
        let p = Policy.duration_aligned_fit () in
        let it = { Policy.size = v [ 1; 1 ]; arrival = 0.0; departure = None } in
        Alcotest.(check (option int)) "most loaded" (Some 1)
          (selected (p.Policy.select ~item:it ~open_bins:(reg bins))));
  ]

let packing_tests =
  [
    Alcotest.test_case "cost sums bin intervals" `Quick (fun () ->
        let r0 = item ~id:0 0.0 2.0 [ 1; 1 ] and r1 = item ~id:1 1.0 4.0 [ 1; 1 ] in
        let p =
          Packing.make ~capacity:cap2
            [
              { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items = [ r0 ] };
              { Packing.bin_id = 1; interval = Interval.make 1.0 4.0; items = [ r1 ] };
            ]
        in
        check_float "cost" 5.0 (Packing.cost p);
        check_int "bins" 2 (Packing.num_bins p);
        Alcotest.(check (option int)) "assign" (Some 1) (Packing.bin_of_item p 1));
    Alcotest.test_case "max_concurrent_bins" `Quick (fun () ->
        let r0 = item ~id:0 0.0 2.0 [ 1; 1 ]
        and r1 = item ~id:1 1.0 4.0 [ 1; 1 ]
        and r2 = item ~id:2 2.0 3.0 [ 1; 1 ] in
        let p =
          Packing.make ~capacity:cap2
            [
              { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items = [ r0 ] };
              { Packing.bin_id = 1; interval = Interval.make 1.0 4.0; items = [ r1 ] };
              { Packing.bin_id = 2; interval = Interval.make 2.0 3.0; items = [ r2 ] };
            ]
        in
        (* [0,2) and [1,4) overlap; bin 0 closes exactly when bin 2 opens *)
        check_int "peak" 2 (Packing.max_concurrent_bins p));
    Alcotest.test_case "make rejects double assignment" `Quick (fun () ->
        let r0 = item ~id:0 0.0 2.0 [ 1; 1 ] in
        check_bool "raises" true
          (try
             ignore
               (Packing.make ~capacity:cap2
                  [
                    { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items = [ r0 ] };
                    { Packing.bin_id = 1; interval = Interval.make 0.0 2.0; items = [ r0 ] };
                  ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "validate accepts a correct packing" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 2.0, v [ 5; 5 ]); (0.0, 2.0, v [ 5; 5 ]) ]
        in
        let items = inst.Instance.items in
        let p =
          Packing.make ~capacity:cap2
            [ { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items } ]
        in
        match Packing.validate inst p with
        | Ok () -> ()
        | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
    Alcotest.test_case "validate flags capacity overflow" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 2.0, v [ 6; 6 ]); (0.0, 2.0, v [ 6; 6 ]) ]
        in
        let items = inst.Instance.items in
        let p =
          Packing.make ~capacity:cap2
            [ { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items } ]
        in
        check_bool "invalid" true (Result.is_error (Packing.validate inst p)));
    Alcotest.test_case "validate flags unpacked item" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 2.0, v [ 1; 1 ]); (0.0, 2.0, v [ 1; 1 ]) ]
        in
        let first = List.hd inst.Instance.items in
        let p =
          Packing.make ~capacity:cap2
            [ { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items = [ first ] } ]
        in
        check_bool "invalid" true (Result.is_error (Packing.validate inst p)));
    Alcotest.test_case "validate flags gap in bin usage" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:cap2
            [ (0.0, 1.0, v [ 1; 1 ]); (2.0, 3.0, v [ 1; 1 ]) ]
        in
        let items = inst.Instance.items in
        let p =
          Packing.make ~capacity:cap2
            [ { Packing.bin_id = 0; interval = Interval.make 0.0 3.0; items } ]
        in
        check_bool "invalid" true (Result.is_error (Packing.validate inst p)));
    Alcotest.test_case "to_csv lists every item with its bin" `Quick (fun () ->
        let r0 = item ~id:0 0.0 2.0 [ 1; 1 ] and r1 = item ~id:1 1.0 4.0 [ 9; 9 ] in
        let p =
          Packing.make ~capacity:cap2
            [
              { Packing.bin_id = 0; interval = Interval.make 0.0 2.0; items = [ r0 ] };
              { Packing.bin_id = 1; interval = Interval.make 1.0 4.0; items = [ r1 ] };
            ]
        in
        let csv = Packing.to_csv p in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
        check_int "rows" 3 (List.length lines);
        Alcotest.(check string) "header" "item_id,bin_id,arrival,departure,size_1,size_2"
          (List.hd lines);
        check_bool "item 1 row" true
          (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "1,1,") lines));
    Alcotest.test_case "validate flags wrong interval" `Quick (fun () ->
        let inst = Instance.of_specs_exn ~capacity:cap2 [ (0.0, 2.0, v [ 1; 1 ]) ] in
        let items = inst.Instance.items in
        let p =
          Packing.make ~capacity:cap2
            [ { Packing.bin_id = 0; interval = Interval.make 0.0 5.0; items } ]
        in
        check_bool "invalid" true (Result.is_error (Packing.validate inst p)));
  ]

let suites =
  [
    ("core.item", item_tests);
    ("core.instance", instance_tests);
    ("core.instance_transforms", transform_tests);
    ("core.load_measure", load_measure_tests);
    ("core.bin", bin_tests);
    ("core.policy", policy_tests);
    ("core.packing", packing_tests);
  ]
