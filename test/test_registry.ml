(* Unit tests for the prelude growable array and the open-bin registry —
   the data structures behind the allocation-free policy candidate view. *)

open Dvbp_core
module Vec = Dvbp_vec.Vec
module Dynarray = Dvbp_prelude.Dynarray

let v = Vec.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dynarray_tests =
  [
    Alcotest.test_case "push and get" `Quick (fun () ->
        let a = Dynarray.create ~dummy:0 () in
        check_bool "empty" true (Dynarray.is_empty a);
        for i = 0 to 99 do
          Dynarray.push a i
        done;
        check_int "length" 100 (Dynarray.length a);
        check_int "first" 0 (Dynarray.get a 0);
        check_int "last" 99 (Dynarray.get a 99));
    Alcotest.test_case "get out of bounds rejected" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2 ] in
        check_bool "raises" true
          (try ignore (Dynarray.get a 2); false with Invalid_argument _ -> true);
        check_bool "negative" true
          (try ignore (Dynarray.get a (-1)); false with Invalid_argument _ -> true));
    Alcotest.test_case "set replaces in place" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        Dynarray.set a 1 9;
        Alcotest.(check (list int)) "list" [ 1; 9; 3 ] (Dynarray.to_list a));
    Alcotest.test_case "truncate shrinks, grow rejected" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
        Dynarray.truncate a 2;
        Alcotest.(check (list int)) "kept prefix" [ 1; 2 ] (Dynarray.to_list a);
        check_bool "grow raises" true
          (try Dynarray.truncate a 3; false with Invalid_argument _ -> true));
    Alcotest.test_case "iter and fold in index order" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        let seen = ref [] in
        Dynarray.iter a (fun x -> seen := x :: !seen);
        Alcotest.(check (list int)) "iter" [ 3; 2; 1 ] !seen;
        check_int "fold" 6 (Dynarray.fold a ( + ) 0));
    Alcotest.test_case "find takes the first match" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 4; 6; 8 ] in
        Alcotest.(check (option int)) "even" (Some 4)
          (Dynarray.find a (fun x -> x mod 2 = 0));
        Alcotest.(check (option int)) "none" None (Dynarray.find a (fun x -> x > 10)));
    Alcotest.test_case "filter_in_place is stable" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
        Dynarray.filter_in_place a (fun x -> x mod 2 = 0);
        Alcotest.(check (list int)) "evens in order" [ 2; 4; 6 ] (Dynarray.to_list a);
        Dynarray.filter_in_place a (fun _ -> false);
        check_bool "emptied" true (Dynarray.is_empty a));
    Alcotest.test_case "clear then reuse" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        Dynarray.clear a;
        check_int "cleared" 0 (Dynarray.length a);
        Dynarray.push a 7;
        Alcotest.(check (list int)) "reused" [ 7 ] (Dynarray.to_list a));
  ]

(* Registry fixtures: bins of capacity (10,10); [close] empties then closes. *)
let cap2 = v [ 10; 10 ]

let bin ?(load = [ 0; 0 ]) id =
  let b = Bin.create ~id ~capacity:cap2 ~now:0.0 ~touch:id in
  if load <> [ 0; 0 ] then
    Bin.place b
      (Item.make ~id:(100 + id) ~arrival:0.0 ~departure:1.0 ~size:(v load))
      ~touch:id;
  b

let close (b : Bin.t) =
  List.iter (fun r -> Bin.remove b r) b.Bin.active_items;
  Bin.close b ~now:1.0

let ids bins = List.map (fun (b : Bin.t) -> b.Bin.id) bins

let registry_tests =
  [
    Alcotest.test_case "add and count" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        check_int "empty" 0 (Bin_registry.count t);
        Bin_registry.add t (bin 0);
        Bin_registry.add t (bin 1);
        check_int "two" 2 (Bin_registry.count t);
        Alcotest.(check (list int)) "ascending" [ 0; 1 ]
          (ids (Bin_registry.to_list t)));
    Alcotest.test_case "adding a closed bin rejected" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        let b = bin 0 in
        close b;
        check_bool "raises" true
          (try Bin_registry.add t b; false with Invalid_argument _ -> true));
    Alcotest.test_case "note_closed on an open bin rejected" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        let b = bin 0 in
        Bin_registry.add t b;
        check_bool "raises" true
          (try Bin_registry.note_closed t b; false with Invalid_argument _ -> true));
    Alcotest.test_case "closed bins vanish from the view" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        let bins = List.init 5 bin in
        List.iter (Bin_registry.add t) bins;
        let b2 = List.nth bins 2 in
        close b2;
        Bin_registry.note_closed t b2;
        check_int "count" 4 (Bin_registry.count t);
        Alcotest.(check (list int)) "view" [ 0; 1; 3; 4 ]
          (ids (Bin_registry.to_list t));
        check_bool "find skips closed" true
          (Bin_registry.find t (fun b -> b.Bin.id = 2) = None));
    Alcotest.test_case "order survives heavy closing (compaction)" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        let bins = List.init 20 bin in
        List.iter (Bin_registry.add t) bins;
        (* close all even bins: dead outnumbers live midway, forcing an
           in-place compaction; ascending order must survive *)
        List.iter
          (fun (b : Bin.t) ->
            if b.Bin.id mod 2 = 0 then begin
              close b;
              Bin_registry.note_closed t b
            end)
          bins;
        check_int "count" 10 (Bin_registry.count t);
        Alcotest.(check (list int)) "odd ids ascending"
          [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19 ]
          (ids (Bin_registry.to_list t)));
    Alcotest.test_case "find / rfind direction" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        List.iter (Bin_registry.add t) (List.init 4 bin);
        let id = function Some (b : Bin.t) -> Some b.Bin.id | None -> None in
        Alcotest.(check (option int)) "find" (Some 0)
          (id (Bin_registry.find t (fun _ -> true)));
        Alcotest.(check (option int)) "rfind" (Some 3)
          (id (Bin_registry.rfind t (fun _ -> true))));
    Alcotest.test_case "fitting primitives agree" `Quick (fun () ->
        let t = Bin_registry.create ~capacity:cap2 in
        (* loads 9,1,8,2: a (5,5) item fits bins 1 and 3 only *)
        List.iteri
          (fun i load -> Bin_registry.add t (bin ~load:[ load; load ] i))
          [ 9; 1; 8; 2 ];
        let size = v [ 5; 5 ] in
        let id = function Some (b : Bin.t) -> Some b.Bin.id | None -> None in
        check_int "count_fitting" 2 (Bin_registry.count_fitting t size);
        Alcotest.(check (option int)) "first" (Some 1)
          (id (Bin_registry.find_fitting t size));
        Alcotest.(check (option int)) "last" (Some 3)
          (id (Bin_registry.rfind_fitting t size));
        Alcotest.(check (option int)) "nth 0" (Some 1)
          (id (Bin_registry.nth_fitting t size 0));
        Alcotest.(check (option int)) "nth 1" (Some 3)
          (id (Bin_registry.nth_fitting t size 1));
        Alcotest.(check (option int)) "nth out of range" None
          (id (Bin_registry.nth_fitting t size 2));
        check_bool "exists" true (Bin_registry.exists_fitting t size);
        check_bool "exists big" false (Bin_registry.exists_fitting t (v [ 10; 10 ]));
        check_int "fold over fitting" (1 + 3)
          (Bin_registry.fold_fitting t size (fun acc b -> acc + b.Bin.id) 0));
  ]

let suites =
  [
    ("prelude.dynarray", dynarray_tests);
    ("core.bin_registry", registry_tests);
  ]
