(* Unit tests for the prelude growable array and the open-bin registry —
   the data structures behind the allocation-free policy candidate view. *)

open Dvbp_core
module Vec = Dvbp_vec.Vec
module Dynarray = Dvbp_prelude.Dynarray

let v = Vec.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dynarray_tests =
  [
    Alcotest.test_case "push and get" `Quick (fun () ->
        let a = Dynarray.create ~dummy:0 () in
        check_bool "empty" true (Dynarray.is_empty a);
        for i = 0 to 99 do
          Dynarray.push a i
        done;
        check_int "length" 100 (Dynarray.length a);
        check_int "first" 0 (Dynarray.get a 0);
        check_int "last" 99 (Dynarray.get a 99));
    Alcotest.test_case "get out of bounds rejected" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2 ] in
        check_bool "raises" true
          (try ignore (Dynarray.get a 2); false with Invalid_argument _ -> true);
        check_bool "negative" true
          (try ignore (Dynarray.get a (-1)); false with Invalid_argument _ -> true));
    Alcotest.test_case "set replaces in place" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        Dynarray.set a 1 9;
        Alcotest.(check (list int)) "list" [ 1; 9; 3 ] (Dynarray.to_list a));
    Alcotest.test_case "truncate shrinks, grow rejected" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
        Dynarray.truncate a 2;
        Alcotest.(check (list int)) "kept prefix" [ 1; 2 ] (Dynarray.to_list a);
        check_bool "grow raises" true
          (try Dynarray.truncate a 3; false with Invalid_argument _ -> true));
    Alcotest.test_case "iter and fold in index order" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        let seen = ref [] in
        Dynarray.iter a (fun x -> seen := x :: !seen);
        Alcotest.(check (list int)) "iter" [ 3; 2; 1 ] !seen;
        check_int "fold" 6 (Dynarray.fold a ( + ) 0));
    Alcotest.test_case "find takes the first match" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 4; 6; 8 ] in
        Alcotest.(check (option int)) "even" (Some 4)
          (Dynarray.find a (fun x -> x mod 2 = 0));
        Alcotest.(check (option int)) "none" None (Dynarray.find a (fun x -> x > 10)));
    Alcotest.test_case "filter_in_place is stable" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
        Dynarray.filter_in_place a (fun x -> x mod 2 = 0);
        Alcotest.(check (list int)) "evens in order" [ 2; 4; 6 ] (Dynarray.to_list a);
        Dynarray.filter_in_place a (fun _ -> false);
        check_bool "emptied" true (Dynarray.is_empty a));
    Alcotest.test_case "clear then reuse" `Quick (fun () ->
        let a = Dynarray.of_list ~dummy:0 [ 1; 2; 3 ] in
        Dynarray.clear a;
        check_int "cleared" 0 (Dynarray.length a);
        Dynarray.push a 7;
        Alcotest.(check (list int)) "reused" [ 7 ] (Dynarray.to_list a));
  ]

(* Registry fixtures: bins of capacity (10,10); [close] empties then closes. *)
let cap2 = v [ 10; 10 ]

let bin ?(load = [ 0; 0 ]) id =
  let b = Bin.create ~id ~capacity:cap2 ~now:0.0 ~touch:id in
  if load <> [ 0; 0 ] then
    Bin.place b
      (Item.make ~id:(100 + id) ~arrival:0.0 ~departure:1.0 ~size:(v load))
      ~touch:id;
  b

let close (b : Bin.t) =
  List.iter (fun r -> Bin.remove b r) b.Bin.active_items;
  Bin.close b ~now:1.0

let ids bins = List.map (fun (b : Bin.t) -> b.Bin.id) bins
let registry ?kernel () = Bin_registry.create ?kernel ~capacity:cap2 ()

let registry_tests =
  [
    Alcotest.test_case "add and count" `Quick (fun () ->
        let t = registry () in
        check_int "empty" 0 (Bin_registry.count t);
        Bin_registry.add t (bin 0);
        Bin_registry.add t (bin 1);
        check_int "two" 2 (Bin_registry.count t);
        Alcotest.(check (list int)) "ascending" [ 0; 1 ]
          (ids (Bin_registry.to_list t)));
    Alcotest.test_case "adding a closed bin rejected" `Quick (fun () ->
        let t = registry () in
        let b = bin 0 in
        close b;
        check_bool "raises" true
          (try Bin_registry.add t b; false with Invalid_argument _ -> true));
    Alcotest.test_case "note_closed on an open bin rejected" `Quick (fun () ->
        let t = registry () in
        let b = bin 0 in
        Bin_registry.add t b;
        check_bool "raises" true
          (try Bin_registry.note_closed t b; false with Invalid_argument _ -> true));
    Alcotest.test_case "closed bins vanish from the view" `Quick (fun () ->
        let t = registry () in
        let bins = List.init 5 bin in
        List.iter (Bin_registry.add t) bins;
        let b2 = List.nth bins 2 in
        close b2;
        Bin_registry.note_closed t b2;
        check_int "count" 4 (Bin_registry.count t);
        Alcotest.(check (list int)) "view" [ 0; 1; 3; 4 ]
          (ids (Bin_registry.to_list t));
        check_bool "find skips closed" true
          (Bin_registry.find t (fun b -> b.Bin.id = 2) = None));
    Alcotest.test_case "order survives heavy closing (compaction)" `Quick (fun () ->
        let t = registry () in
        let bins = List.init 20 bin in
        List.iter (Bin_registry.add t) bins;
        (* close all even bins: dead outnumbers live midway, forcing an
           in-place compaction; ascending order must survive *)
        List.iter
          (fun (b : Bin.t) ->
            if b.Bin.id mod 2 = 0 then begin
              close b;
              Bin_registry.note_closed t b
            end)
          bins;
        check_int "count" 10 (Bin_registry.count t);
        Alcotest.(check (list int)) "odd ids ascending"
          [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19 ]
          (ids (Bin_registry.to_list t)));
    Alcotest.test_case "find / rfind direction" `Quick (fun () ->
        let t = registry () in
        List.iter (Bin_registry.add t) (List.init 4 bin);
        let id = function Some (b : Bin.t) -> Some b.Bin.id | None -> None in
        Alcotest.(check (option int)) "find" (Some 0)
          (id (Bin_registry.find t (fun _ -> true)));
        Alcotest.(check (option int)) "rfind" (Some 3)
          (id (Bin_registry.rfind t (fun _ -> true))));
    Alcotest.test_case "fitting primitives agree" `Quick (fun () ->
        let t = registry () in
        (* loads 9,1,8,2: a (5,5) item fits bins 1 and 3 only *)
        List.iteri
          (fun i load -> Bin_registry.add t (bin ~load:[ load; load ] i))
          [ 9; 1; 8; 2 ];
        let size = v [ 5; 5 ] in
        let id = function Some (b : Bin.t) -> Some b.Bin.id | None -> None in
        check_int "count_fitting" 2 (Bin_registry.count_fitting t size);
        Alcotest.(check (option int)) "first" (Some 1)
          (id (Bin_registry.find_fitting t size));
        Alcotest.(check (option int)) "last" (Some 3)
          (id (Bin_registry.rfind_fitting t size));
        Alcotest.(check (option int)) "nth 0" (Some 1)
          (id (Bin_registry.nth_fitting t size 0));
        Alcotest.(check (option int)) "nth 1" (Some 3)
          (id (Bin_registry.nth_fitting t size 1));
        Alcotest.(check (option int)) "nth out of range" None
          (id (Bin_registry.nth_fitting t size 2));
        check_bool "exists" true (Bin_registry.exists_fitting t size);
        check_bool "exists big" false (Bin_registry.exists_fitting t (v [ 10; 10 ]));
        check_int "fold over fitting" (1 + 3)
          (Bin_registry.fold_fitting t size (fun acc b -> acc + b.Bin.id) 0));
  ]

(* ------------------------------------------------------------------ *)
(* SWAR fit kernel: selection boundary, forced fallback, and the
   differential property that both kernels are observationally
   identical — same bins returned, same scan statistics. *)

let kernel_of cap_list =
  Bin_registry.kernel_name (Bin_registry.create ~capacity:(v cap_list) ())

let kernel_selection_tests =
  [
    Alcotest.test_case "byte capacities up to d=6 select SWAR" `Quick (fun () ->
        let check_string = Alcotest.(check string) in
        check_string "d=1" "swar" (kernel_of [ 255 ]);
        check_string "d=2" "swar" (kernel_of [ 10; 10 ]);
        check_string "d=5 bin_size=100" "swar" (kernel_of [ 100; 100; 100; 100; 100 ]);
        check_string "d=6 at 255" "swar"
          (kernel_of [ 255; 255; 255; 255; 255; 255 ]));
    Alcotest.test_case "precondition boundary picks scalar" `Quick (fun () ->
        let check_string = Alcotest.(check string) in
        (* bin_size 256 exceeds a byte even at d=1 *)
        check_string "bin_size=256" "scalar" (kernel_of [ 256 ]);
        (* the 63-bit word narrows the payload at d=7 and d=8 *)
        check_string "d=7 at 127" "swar" (kernel_of (List.init 7 (fun _ -> 127)));
        check_string "d=7 at 128" "scalar" (kernel_of (List.init 7 (fun _ -> 128)));
        check_string "d=8 at 31" "swar" (kernel_of (List.init 8 (fun _ -> 31)));
        check_string "d=8 at 32" "scalar" (kernel_of (List.init 8 (fun _ -> 32)));
        check_string "d=9" "scalar" (kernel_of (List.init 9 (fun _ -> 1))));
    Alcotest.test_case "`Scalar forces the fallback kernel" `Quick (fun () ->
        Alcotest.(check string) "forced" "scalar"
          (Bin_registry.kernel_name (registry ~kernel:`Scalar ())));
    Alcotest.test_case "fitting primitives agree under forced scalar" `Quick
      (fun () ->
        (* the registry_tests fixture capacity is SWAR-eligible, so those
           suites pin the SWAR kernel; this one pins the fallback *)
        let t = registry ~kernel:`Scalar () in
        List.iteri
          (fun i load -> Bin_registry.add t (bin ~load:[ load; load ] i))
          [ 9; 1; 8; 2 ];
        let size = v [ 5; 5 ] in
        let id = function Some (b : Bin.t) -> Some b.Bin.id | None -> None in
        check_int "count_fitting" 2 (Bin_registry.count_fitting t size);
        Alcotest.(check (option int)) "first" (Some 1)
          (id (Bin_registry.find_fitting t size));
        Alcotest.(check (option int)) "last" (Some 3)
          (id (Bin_registry.rfind_fitting t size));
        check_bool "exists" true (Bin_registry.exists_fitting t size));
  ]

(* One generated scenario: a capacity, a bin population (initial load,
   an optional second placement after registration, a closed flag), and
   a batch of query sizes. Each twin registry gets its own freshly built
   bins (a bin can only live in one registry), driven through the exact
   same add / refresh / note_closed sequence, so compaction and the
   block-bound index evolve identically. *)
type diff_spec = {
  d : int;
  cap : int array;
  bins_raw : (int array * int array * bool * bool) list;
      (* load mode per dim, raw value per dim, place-second, close *)
  sizes_raw : (int array * int array) list;  (* size mode / raw per dim *)
}

let diff_gen =
  QCheck2.Gen.(
    let* d = 1 -- 8 in
    let maxp = Vec.max_packable ~lane_bits:(63 / d) in
    let* cap =
      array_repeat d
        (frequency [ (2, pure maxp); (1, pure 1); (4, 1 -- maxp) ])
    in
    let* nbins = 0 -- 40 in
    let* bins_raw =
      list_repeat nbins
        (let* mode = array_repeat d (0 -- 4) in
         let* raw = array_repeat d (0 -- 100_000) in
         let* second = bool in
         let* closed = frequency [ (3, pure false); (1, pure true) ] in
         pure (mode, raw, second, closed))
    in
    let* nq = 1 -- 8 in
    let* sizes_raw =
      list_repeat nq
        (let* mode = array_repeat d (0 -- 5) in
         let* raw = array_repeat d (0 -- 100_000) in
         pure (mode, raw))
    in
    pure { d; cap; bins_raw; sizes_raw })

(* mode 0/1 pin the extremes (empty bin → residual = cap, full bin →
   residual = 0); the rest spread uniformly *)
let load_of_mode cap_j mode raw =
  match mode with 0 -> 0 | 1 -> cap_j | _ -> raw mod (cap_j + 1)

(* query sizes also probe just-above-capacity (never fits) and far
   beyond the SWAR lane payload (the pack_size sentinel path) *)
let size_of_mode cap_j mode raw =
  match mode with
  | 0 -> 0
  | 1 -> cap_j
  | 2 -> cap_j + 1
  | 3 -> 300 + (raw mod 100)
  | _ -> raw mod (cap_j + 2)

let build_diff_registry ~kernel { d; cap; bins_raw; _ } =
  let capv = Vec.of_array cap in
  let t = Bin_registry.create ~kernel ~capacity:capv () in
  let bins =
    List.mapi
      (fun i (mode, raw, second, _) ->
        let b = Bin.create ~id:i ~capacity:capv ~now:0.0 ~touch:i in
        let load = Array.init d (fun j -> load_of_mode cap.(j) mode.(j) raw.(j)) in
        (if Array.exists (fun x -> x > 0) load then
           Bin.place b
             (Item.make ~id:(1000 + i) ~arrival:0.0 ~departure:1.0
                ~size:(Vec.of_array load))
             ~touch:i);
        Bin_registry.add t b;
        (* a placement after registration exercises the refresh path and
           the downward clamp of the block bounds *)
        let item2 =
          if second then begin
            let room = Array.init d (fun j -> (cap.(j) - load.(j)) / 2) in
            if Array.exists (fun x -> x > 0) room then begin
              let it =
                Item.make ~id:(2000 + i) ~arrival:0.0 ~departure:1.0
                  ~size:(Vec.of_array room)
              in
              Bin.place b it ~touch:(100 + i);
              Bin_registry.refresh t b;
              Some it
            end
            else None
          end
          else None
        in
        (b, item2))
      bins_raw
  in
  (* closes (with their compactions) interleave with the removals below *)
  List.iteri
    (fun i (_, _, _, closed) ->
      if closed then begin
        let b, _ = List.nth bins i in
        close b;
        Bin_registry.note_closed t b
      end)
    bins_raw;
  (* removing the second item grows the residual back — the upward clamp
     of the block bounds, and the stale-but-conservative lower bound *)
  List.iteri
    (fun i (_, _, _, closed) ->
      if not closed then
        match snd (List.nth bins i) with
        | Some it ->
            let b = fst (List.nth bins i) in
            Bin.remove b it;
            Bin_registry.refresh t b
        | None -> ())
    bins_raw;
  t

let id_of = function Some (b : Bin.t) -> b.Bin.id | None -> -1

let queries_agree swar scalar { d; cap; sizes_raw; _ } =
  List.for_all
    (fun (mode, raw) ->
      let size =
        Vec.of_array (Array.init d (fun j -> size_of_mode cap.(j) mode.(j) raw.(j)))
      in
      let agree f = f swar size = f scalar size in
      agree (fun t s -> id_of (Bin_registry.find_fitting t s))
      && agree (fun t s -> id_of (Bin_registry.rfind_fitting t s))
      && agree (fun t s -> Bin_registry.count_fitting t s)
      && agree (fun t s -> Bin_registry.exists_fitting t s)
      && agree (fun t s -> id_of (Bin_registry.nth_fitting t s 0))
      && agree (fun t s -> id_of (Bin_registry.nth_fitting t s 1))
      && agree (fun t s -> id_of (Bin_registry.recently_used_fitting t s))
      && List.for_all
           (fun m ->
             agree (fun t s -> id_of (Bin_registry.most_loaded_fitting t ~measure:m s))
             && agree (fun t s ->
                    id_of (Bin_registry.least_loaded_fitting t ~measure:m s)))
           [ Load_measure.Linf; Load_measure.L1; Load_measure.Lp 2.0 ]
      && agree (fun t s ->
             Bin_registry.fold_fitting t s (fun acc b -> (7 * acc) + b.Bin.id) 1))
    sizes_raw

let prop_kernels_agree =
  QCheck2.Test.make
    ~name:"SWAR and scalar kernels agree on every primitive and on scan_stats"
    ~count:300 diff_gen (fun spec ->
      let swar = build_diff_registry ~kernel:`Auto spec in
      let scalar = build_diff_registry ~kernel:`Scalar spec in
      (* every generated capacity is SWAR-eligible by construction *)
      Bin_registry.kernel_name swar = "swar"
      && Bin_registry.kernel_name scalar = "scalar"
      && Bin_registry.count swar = Bin_registry.count scalar
      && queries_agree swar scalar spec
      && Bin_registry.scan_stats swar = Bin_registry.scan_stats scalar)

let kernel_property_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_kernels_agree ]

let suites =
  [
    ("prelude.dynarray", dynarray_tests);
    ("core.bin_registry", registry_tests);
    ("core.fit_kernel", kernel_selection_tests);
    ("core.fit_kernel_props", kernel_property_tests);
  ]
