(* Tests for the binary trace store: format round trips, corruption
   rejection, seek-by-index correctness, streaming replay bit-identity
   against the in-memory path, and the loadgen streaming driver. *)

open Dvbp_tracestore
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module W = Dvbp_workload
module Instance = Dvbp_core.Instance
module Policy = Dvbp_core.Policy
module Session = Dvbp_engine.Session

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let with_tmp f =
  let path = Filename.temp_file "dvbp_test" ".dvbpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let gen_inst ?(d = 2) ?(n = 60) ?(seed = 11) () =
  W.Uniform_model.generate
    { W.Uniform_model.d; n; mu = 10; span = 50; bin_size = 20 }
    ~rng:(Rng.create ~seed)

let read_all ?time reader =
  let acc = ref [] in
  or_fail (Trace_reader.iter_from ?time reader (fun ev -> acc := ev :: !acc));
  List.rev !acc

(* feed a Binfmt event stream into a fresh session; the fingerprint is the
   bit-identity witness *)
let fingerprint_of_events ~capacity ~policy events =
  let session =
    Session.create ~record_trace:false ~capacity
      ~policy:(Policy.of_name_exn ~rng:(Rng.create ~seed:1) policy)
      ()
  in
  List.iter
    (fun (ev : Binfmt.event) ->
      ignore
        (Session.apply session
           (match ev.Binfmt.ev_kind with
           | `Arrive ->
               Session.Arrive
                 {
                   at = ev.Binfmt.ev_time;
                   id = Some ev.Binfmt.ev_id;
                   size = Vec.of_array ev.Binfmt.ev_size;
                 }
           | `Depart ->
               Session.Depart { at = ev.Binfmt.ev_time; item_id = ev.Binfmt.ev_id })))
    events;
  Session.fingerprint session

let fingerprint_of_reader ~policy reader =
  let capacity = (Trace_reader.header reader).Binfmt.capacity in
  let session =
    Session.create ~record_trace:false ~capacity
      ~policy:(Policy.of_name_exn ~rng:(Rng.create ~seed:1) policy)
      ()
  in
  let _stats = or_fail (Replay.into_session reader session) in
  Session.fingerprint session

(* byte surgery for the corruption tests *)
let flip_byte path off =
  let ic = open_in_bin path in
  seek_in ic off;
  let b = input_byte ic in
  close_in ic;
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc off;
  output_byte oc (b lxor 0xff);
  close_out oc

let truncate_to path len =
  let ic = open_in_bin path in
  let keep = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc keep;
  close_out oc

let file_len path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let roundtrip_tests =
  [
    Alcotest.test_case "compile then stream reproduces the event list" `Quick
      (fun () ->
        let inst = gen_inst () in
        let events = Compile.events_of_instance inst in
        with_tmp (fun path ->
            let summary = or_fail (Compile.of_instance ~path ~block_size:7 inst) in
            check_int "events" (List.length events) summary.Trace_writer.events;
            Trace_reader.with_file path (fun reader ->
                check_bool "same events" true (read_all reader = events);
                Ok ())
            |> or_fail));
    Alcotest.test_case "header records capacity, span, and count" `Quick
      (fun () ->
        let inst = gen_inst () in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path inst) in
            Trace_reader.with_file path (fun reader ->
                let h = Trace_reader.header reader in
                check_bool "capacity" true
                  (Vec.equal h.Binfmt.capacity inst.Instance.capacity);
                check_int "d" (Instance.dim inst) h.Binfmt.d;
                check_int "events" (2 * Instance.size inst) h.Binfmt.events;
                check_bool "span" true (h.Binfmt.t_min <= h.Binfmt.t_max);
                Ok ())
            |> or_fail));
    Alcotest.test_case "to_instance inverts of_instance up to id relabeling"
      `Quick (fun () ->
        let inst = gen_inst ~seed:21 () in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path inst) in
            let inst' =
              or_fail (Trace_reader.with_file path Compile.to_instance)
            in
            check_bool "capacity" true
              (Vec.equal inst.Instance.capacity inst'.Instance.capacity);
            (* ids are re-assigned in (arrival, id) order, so compare the
               id-insensitive content *)
            let shape (i : Instance.t) =
              List.sort compare
                (List.map
                   (fun (it : Dvbp_core.Item.t) ->
                     ( it.Dvbp_core.Item.arrival,
                       it.Dvbp_core.Item.departure,
                       Vec.to_array it.Dvbp_core.Item.size ))
                   i.Instance.items)
            in
            check_bool "same items" true (shape inst = shape inst')));
    Alcotest.test_case "ff/bf/mtf replay is bit-identical to in-memory" `Quick
      (fun () ->
        let inst = gen_inst ~n:200 ~seed:5 () in
        let events = Compile.events_of_instance inst in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path ~block_size:16 inst) in
            List.iter
              (fun policy ->
                let mem =
                  fingerprint_of_events ~capacity:inst.Instance.capacity ~policy
                    events
                in
                let streamed =
                  or_fail
                    (Trace_reader.with_file path (fun reader ->
                         Ok (fingerprint_of_reader ~policy reader)))
                in
                check_string (policy ^ " fingerprint") mem streamed)
              [ "ff"; "bf"; "mtf" ]));
    Alcotest.test_case "sharded concatenation is a valid ordered trace" `Quick
      (fun () ->
        with_tmp (fun path ->
            let gen k = gen_inst ~n:30 ~seed:(100 + k) () in
            let summary =
              or_fail (Compile.sharded ~path ~block_size:8 ~shards:3 ~gen ())
            in
            check_int "events" (3 * 2 * 30) summary.Trace_writer.events;
            Trace_reader.with_file path (fun reader ->
                let n = or_fail (Trace_reader.verify reader) in
                check_int "verified count" summary.Trace_writer.events n;
                Ok ())
            |> or_fail));
    Alcotest.test_case "sharded rejects mismatched capacities" `Quick (fun () ->
        with_tmp (fun path ->
            let gen k = gen_inst ~d:(1 + k) ~n:10 ~seed:k () in
            check_bool "error" true
              (Result.is_error (Compile.sharded ~path ~shards:2 ~gen ()))));
  ]

let qcheck_roundtrip =
  (* random instance -> compile -> stream back: events and the packing
     must both survive the trip bit-for-bit *)
  let gen =
    QCheck2.Gen.(
      let* d = 1 -- 3 in
      let* n = 1 -- 15 in
      let* specs =
        list_repeat n
          (let* a = 0 -- 8 in
           let* dur = 1 -- 5 in
           let* size = array_repeat d (1 -- 10) in
           return (float_of_int a, float_of_int (a + dur), size))
      in
      let* block_size = 1 -- 6 in
      let* policy = oneofl [ "ff"; "bf"; "mtf" ] in
      return (d, specs, block_size, policy))
  in
  QCheck2.Test.make ~count:60
    ~name:"compile/stream round trip (random instances)" gen
    (fun (d, specs, block_size, policy) ->
      let inst =
        Instance.of_specs_exn
          ~capacity:(Vec.make ~dim:d 10)
          (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)
      in
      let events = Compile.events_of_instance inst in
      with_tmp (fun path ->
          match Compile.of_instance ~path ~block_size inst with
          | Error e -> QCheck2.Test.fail_report e
          | Ok _ -> (
              match
                Trace_reader.with_file path (fun reader ->
                    let same_events = read_all reader = events in
                    let mem =
                      fingerprint_of_events ~capacity:inst.Instance.capacity
                        ~policy events
                    in
                    let streamed = fingerprint_of_reader ~policy reader in
                    Ok (same_events && mem = streamed))
              with
              | Ok ok -> ok
              | Error e -> QCheck2.Test.fail_report e)))

let corruption_tests =
  let compile_small path =
    or_fail (Compile.of_instance ~path ~block_size:5 (gen_inst ~n:25 ~seed:3 ()))
  in
  [
    Alcotest.test_case "non-trace file is sniffed out and rejected" `Quick
      (fun () ->
        with_tmp (fun path ->
            let oc = open_out_bin path in
            output_string oc "capacity,10\nitem,0,0.0,1.0,5\n";
            close_out oc;
            check_bool "sniff" false (Trace_reader.sniff_magic path);
            check_bool "open" true (Result.is_error (Trace_reader.open_file path))));
    Alcotest.test_case "truncated trailer rejected at open" `Quick (fun () ->
        with_tmp (fun path ->
            let _ = compile_small path in
            truncate_to path (file_len path - 7);
            check_bool "open" true (Result.is_error (Trace_reader.open_file path))));
    Alcotest.test_case "truncated to mid-block rejected at open" `Quick
      (fun () ->
        with_tmp (fun path ->
            let _ = compile_small path in
            truncate_to path (Binfmt.header_size ~d:2 + 3);
            check_bool "open" true (Result.is_error (Trace_reader.open_file path))));
    Alcotest.test_case "corrupt record fails read_block and verify" `Quick
      (fun () ->
        with_tmp (fun path ->
            let _ = compile_small path in
            (* a size byte inside the first record of block 0 *)
            flip_byte path (Binfmt.header_size ~d:2 + 14);
            let reader = or_fail (Trace_reader.open_file path) in
            Fun.protect
              ~finally:(fun () -> Trace_reader.close reader)
              (fun () ->
                (match Trace_reader.read_block reader 0 with
                | Error msg ->
                    check_bool "names the block" true (contains_sub msg "block 0")
                | Ok _ -> Alcotest.fail "corrupt block read back");
                check_bool "verify" true
                  (Result.is_error (Trace_reader.verify reader)))));
    Alcotest.test_case "corrupt header rejected at open" `Quick (fun () ->
        with_tmp (fun path ->
            let _ = compile_small path in
            flip_byte path 20;
            check_bool "open" true (Result.is_error (Trace_reader.open_file path))));
    Alcotest.test_case "corrupt index rejected at open" `Quick (fun () ->
        with_tmp (fun path ->
            let summary = compile_small path in
            (* the index sits between the last block and the 24-byte trailer *)
            let index_bytes =
              summary.Trace_writer.blocks * Binfmt.index_entry_size
            in
            flip_byte path (file_len path - Binfmt.trailer_size - index_bytes + 3);
            check_bool "open" true (Result.is_error (Trace_reader.open_file path))));
    Alcotest.test_case "verify passes on a clean trace" `Quick (fun () ->
        with_tmp (fun path ->
            let summary = compile_small path in
            Trace_reader.with_file path (fun reader ->
                check_int "count" summary.Trace_writer.events
                  (or_fail (Trace_reader.verify reader));
                Ok ())
            |> or_fail));
  ]

let seek_tests =
  [
    Alcotest.test_case "iter_from is exact at every block boundary" `Quick
      (fun () ->
        let inst = gen_inst ~n:40 ~seed:7 () in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path ~block_size:4 inst) in
            Trace_reader.with_file path (fun reader ->
                let all = read_all reader in
                check_int "blocks" 20 (Trace_reader.blocks reader);
                for b = 0 to Trace_reader.blocks reader - 1 do
                  let t0 = Trace_reader.block_first_time reader b in
                  let expected =
                    List.filter (fun ev -> ev.Binfmt.ev_time >= t0) all
                  in
                  check_bool
                    (Printf.sprintf "boundary of block %d" b)
                    true
                    (read_all ~time:t0 reader = expected);
                  check_bool "seek lands at or before" true
                    (Trace_reader.seek reader t0 <= b)
                done;
                Ok ())
            |> or_fail));
    Alcotest.test_case "iter_from between boundaries and past the end" `Quick
      (fun () ->
        let inst = gen_inst ~n:40 ~seed:8 () in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path ~block_size:4 inst) in
            Trace_reader.with_file path (fun reader ->
                let all = read_all reader in
                let h = Trace_reader.header reader in
                List.iter
                  (fun t0 ->
                    let expected =
                      List.filter (fun ev -> ev.Binfmt.ev_time >= t0) all
                    in
                    check_bool
                      (Printf.sprintf "from t=%g" t0)
                      true
                      (read_all ~time:t0 reader = expected))
                  [ h.Binfmt.t_min +. 0.5; 13.25; h.Binfmt.t_max; h.Binfmt.t_max +. 1.0 ];
                Ok ())
            |> or_fail));
  ]

let writer_tests =
  let arrive ~at ~id size = { Binfmt.ev_time = at; ev_kind = `Arrive; ev_id = id; ev_size = size } in
  [
    Alcotest.test_case "rejects out-of-order events" `Quick (fun () ->
        with_tmp (fun path ->
            let w = Trace_writer.create ~path ~capacity:(Vec.make ~dim:2 10) () in
            Trace_writer.add w (arrive ~at:2.0 ~id:0 [| 1; 1 |]);
            check_bool "raises" true
              (try
                 Trace_writer.add w (arrive ~at:1.0 ~id:1 [| 1; 1 |]);
                 false
               with Invalid_argument _ -> true);
            ignore (Trace_writer.close w)));
    Alcotest.test_case "rejects dimension mismatch" `Quick (fun () ->
        with_tmp (fun path ->
            let w = Trace_writer.create ~path ~capacity:(Vec.make ~dim:2 10) () in
            check_bool "raises" true
              (try
                 Trace_writer.add w (arrive ~at:0.0 ~id:0 [| 1 |]);
                 false
               with Invalid_argument _ -> true);
            ignore (Trace_writer.close w)));
    Alcotest.test_case "rejects absurd block sizes" `Quick (fun () ->
        with_tmp (fun path ->
            List.iter
              (fun block_size ->
                check_bool "raises" true
                  (try
                     ignore
                       (Trace_writer.create ~path ~capacity:(Vec.make ~dim:1 10)
                          ~block_size ());
                     false
                   with Invalid_argument _ -> true))
              [ 0; -3; Binfmt.max_block_size + 1 ]));
    Alcotest.test_case "counts events and sizes the file exactly" `Quick
      (fun () ->
        with_tmp (fun path ->
            let w = Trace_writer.create ~path ~capacity:(Vec.make ~dim:2 10) ~block_size:3 () in
            for i = 0 to 6 do
              Trace_writer.add w (arrive ~at:(float_of_int i) ~id:i [| 1; 2 |])
            done;
            check_int "event_count" 7 (Trace_writer.event_count w);
            let s = Trace_writer.close w in
            check_int "events" 7 s.Trace_writer.events;
            check_int "blocks" 3 s.Trace_writer.blocks;
            check_int "file bytes" (file_len path) s.Trace_writer.file_bytes));
  ]

let generator_tests =
  [
    Alcotest.test_case "new family defaults validate" `Quick (fun () ->
        check_bool "diurnal" true (Result.is_ok (W.Diurnal.validate W.Diurnal.default));
        check_bool "heavy_tail" true
          (Result.is_ok (W.Heavy_tail.validate W.Heavy_tail.default));
        check_bool "flash_crowd" true
          (Result.is_ok (W.Flash_crowd.validate W.Flash_crowd.default));
        check_bool "azure" true (Result.is_ok (W.Azure_mix.validate W.Azure_mix.default)));
    Alcotest.test_case "new families are deterministic per seed" `Quick
      (fun () ->
        let same gen =
          W.Trace_io.to_string (gen ~rng:(Rng.create ~seed:4))
          = W.Trace_io.to_string (gen ~rng:(Rng.create ~seed:4))
        in
        check_bool "diurnal" true (same (W.Diurnal.generate W.Diurnal.default));
        check_bool "heavy_tail" true (same (W.Heavy_tail.generate W.Heavy_tail.default));
        check_bool "flash_crowd" true
          (same (W.Flash_crowd.generate W.Flash_crowd.default));
        check_bool "azure" true (same (W.Azure_mix.generate W.Azure_mix.default)));
    Alcotest.test_case "diurnal keeps the base item count and dimension" `Quick
      (fun () ->
        let inst = W.Diurnal.generate W.Diurnal.default ~rng:(Rng.create ~seed:2) in
        check_int "n" W.Diurnal.default.W.Diurnal.base.W.Uniform_model.n
          (Instance.size inst);
        check_int "d" W.Diurnal.default.W.Diurnal.base.W.Uniform_model.d
          (Instance.dim inst));
    Alcotest.test_case "heavy-tail durations live in [1, max_duration]" `Quick
      (fun () ->
        let p = W.Heavy_tail.default in
        let inst = W.Heavy_tail.generate p ~rng:(Rng.create ~seed:6) in
        List.iter
          (fun (it : Dvbp_core.Item.t) ->
            let dur = Dvbp_core.Item.duration it in
            check_bool "lo" true (dur >= 1.0);
            check_bool "hi" true (dur <= p.W.Heavy_tail.max_duration))
          inst.Instance.items);
    Alcotest.test_case "heavy-tail rejects shape <= 1 and short spans" `Quick
      (fun () ->
        let p = W.Heavy_tail.default in
        check_bool "shape" true
          (Result.is_error (W.Heavy_tail.validate { p with W.Heavy_tail.shape = 1.0 }));
        check_bool "span" true
          (Result.is_error
             (W.Heavy_tail.validate
                {
                  p with
                  W.Heavy_tail.base =
                    { p.W.Heavy_tail.base with W.Uniform_model.span = 10 };
                })));
    Alcotest.test_case "flash crowd adds crowds * crowd_size items" `Quick
      (fun () ->
        let p = W.Flash_crowd.default in
        let inst = W.Flash_crowd.generate p ~rng:(Rng.create ~seed:9) in
        check_int "n"
          (p.W.Flash_crowd.base.W.Uniform_model.n
          + (p.W.Flash_crowd.crowds * p.W.Flash_crowd.crowd_size))
          (Instance.size inst));
    Alcotest.test_case "azure mix is 2-d with the server capacity" `Quick
      (fun () ->
        let p = { W.Azure_mix.default with W.Azure_mix.n = 200 } in
        let inst = W.Azure_mix.generate p ~rng:(Rng.create ~seed:10) in
        check_int "d" 2 (Instance.dim inst);
        check_bool "capacity" true
          (Vec.equal inst.Instance.capacity
             (Vec.of_list
                [ p.W.Azure_mix.server_cores; p.W.Azure_mix.server_memory_gb ]));
        (* demand vectors come straight from the catalogue *)
        List.iter
          (fun (it : Dvbp_core.Item.t) ->
            check_bool "known type" true
              (List.exists
                 (fun (t : W.Azure_mix.vm_type) ->
                   Vec.equal it.Dvbp_core.Item.size
                     (Vec.of_list [ t.W.Azure_mix.cores; t.W.Azure_mix.memory_gb ]))
                 p.W.Azure_mix.catalogue))
          inst.Instance.items);
  ]

let describe_tests =
  [
    Alcotest.test_case "every described family is selectable and builds" `Quick
      (fun () ->
        check_bool "names agree" true
          (List.map fst W.Describe.families
          = Dvbp_cli_lib.Workload_select.known_workloads);
        List.iter
          (fun (name, _) ->
            let source =
              {
                Dvbp_cli_lib.Workload_select.workload = name;
                trace = None;
                d = 2;
                mu = 10;
                n = 40;
                rho = 0.5;
                seed = 1;
              }
            in
            match Dvbp_cli_lib.Workload_select.build source with
            | Ok inst -> check_bool (name ^ " nonempty") true (Instance.size inst > 0)
            | Error e -> Alcotest.fail (name ^ ": " ^ e))
          W.Describe.families);
    Alcotest.test_case "render_families lists every family" `Quick (fun () ->
        let table = W.Describe.render_families () in
        List.iter
          (fun (name, _) ->
            check_bool (name ^ " listed") true (contains_sub table name))
          W.Describe.families);
  ]

let loadgen_tests =
  [
    Alcotest.test_case "run_stream replays a compiled trace end to end" `Quick
      (fun () ->
        let inst = gen_inst ~n:80 ~seed:15 () in
        with_tmp (fun path ->
            let summary = or_fail (Compile.of_instance ~path ~block_size:16 inst) in
            match Dvbp_service.Loadgen.run_stream ~policy:"mtf" ~seed:2 path with
            | Error e -> Alcotest.fail e
            | Ok r ->
                check_int "events" summary.Trace_writer.events
                  r.Dvbp_service.Loadgen.st_report.Dvbp_service.Loadgen.events;
                check_int "blocks" summary.Trace_writer.blocks
                  r.Dvbp_service.Loadgen.st_blocks;
                check_bool "resident window bounded" true
                  (r.Dvbp_service.Loadgen.st_resident_bytes_max > 0
                  && r.Dvbp_service.Loadgen.st_resident_bytes_max
                     < summary.Trace_writer.file_bytes)));
    Alcotest.test_case "run_stream rejects a CSV trace" `Quick (fun () ->
        with_tmp (fun path ->
            let oc = open_out_bin path in
            output_string oc "capacity,10\nitem,0,0.0,1.0,5\n";
            close_out oc;
            check_bool "error" true
              (Result.is_error
                 (Dvbp_service.Loadgen.run_stream ~policy:"mtf" ~seed:2 path))));
  ]

let replay_tests =
  [
    Alcotest.test_case "into_session reports counts and bounded residency"
      `Quick (fun () ->
        let inst = gen_inst ~n:120 ~seed:17 () in
        with_tmp (fun path ->
            let summary = or_fail (Compile.of_instance ~path ~block_size:8 inst) in
            Trace_reader.with_file path (fun reader ->
                let capacity = (Trace_reader.header reader).Binfmt.capacity in
                let session =
                  Session.create ~record_trace:false ~capacity
                    ~policy:(Policy.of_name_exn ~rng:(Rng.create ~seed:1) "ff")
                    ()
                in
                let stats = or_fail (Replay.into_session reader session) in
                check_int "events" summary.Trace_writer.events stats.Replay.events;
                check_int "arrivals" (Instance.size inst) stats.Replay.arrivals;
                check_int "departures" (Instance.size inst) stats.Replay.departures;
                check_int "blocks" summary.Trace_writer.blocks stats.Replay.blocks;
                check_bool "resident window < file" true
                  (stats.Replay.resident_bytes_max > 0
                  && stats.Replay.resident_bytes_max < summary.Trace_writer.file_bytes);
                Ok ())
            |> or_fail));
    Alcotest.test_case "into_session rejects a capacity mismatch" `Quick
      (fun () ->
        let inst = gen_inst ~d:2 ~n:10 () in
        with_tmp (fun path ->
            let _ = or_fail (Compile.of_instance ~path inst) in
            Trace_reader.with_file path (fun reader ->
                let session =
                  Session.create ~capacity:(Vec.make ~dim:3 10)
                    ~policy:(Policy.of_name_exn ~rng:(Rng.create ~seed:1) "ff")
                    ()
                in
                check_bool "error" true
                  (Result.is_error (Replay.into_session reader session));
                Ok ())
            |> or_fail));
  ]

let trace_io_regression_tests =
  (* the CSV parser must point at the offending line *and* field *)
  [
    Alcotest.test_case "bad capacity entry names line and field" `Quick
      (fun () ->
        match W.Trace_io.of_string "capacity,10,ten\n" with
        | Error msg ->
            check_bool "line 1" true (contains_sub msg "line 1");
            check_bool "field 3" true (contains_sub msg "field 3");
            check_bool "offender" true (contains_sub msg "\"ten\"")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "bad arrival names line and field" `Quick (fun () ->
        match W.Trace_io.of_string "capacity,10\nitem,0,noon,1.0,5\n" with
        | Error msg ->
            check_bool "line 2" true (contains_sub msg "line 2");
            check_bool "field 3" true (contains_sub msg "field 3");
            check_bool "offender" true (contains_sub msg "\"noon\"")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "bad size entry names its ordinal" `Quick (fun () ->
        match W.Trace_io.of_string "capacity,10,10\nitem,0,0.0,1.0,5,five\n" with
        | Error msg ->
            check_bool "line 2" true (contains_sub msg "line 2");
            check_bool "field 6" true (contains_sub msg "field 6")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "dimension mismatch vs capacity is reported" `Quick
      (fun () ->
        match W.Trace_io.of_string "capacity,10,10\nitem,0,0.0,1.0,5\n" with
        | Error msg ->
            check_bool "line 2" true (contains_sub msg "line 2");
            check_bool "counts" true
              (contains_sub msg "1 size entries" && contains_sub msg "2 dimensions")
        | Ok _ -> Alcotest.fail "expected error");
  ]

let suites =
  [
    ( "tracestore.roundtrip",
      roundtrip_tests @ [ QCheck_alcotest.to_alcotest qcheck_roundtrip ] );
    ("tracestore.corruption", corruption_tests);
    ("tracestore.seek", seek_tests);
    ("tracestore.writer", writer_tests);
    ("tracestore.replay", replay_tests);
    ("tracestore.loadgen", loadgen_tests);
    ("tracestore.families", generator_tests @ describe_tests);
    ("tracestore.trace_io", trace_io_regression_tests);
  ]
