(* Tests for the workload generators (Table 2 uniform model + scenario
   generators) and the CSV trace IO, including failure injection. *)

open Dvbp_core
open Dvbp_workload
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let uniform_tests =
  let p = { Uniform_model.d = 2; n = 200; mu = 10; span = 100; bin_size = 50 } in
  [
    Alcotest.test_case "respects all parameter ranges" `Quick (fun () ->
        let inst = Uniform_model.generate p ~rng:(Rng.create ~seed:1) in
        check_int "n" p.Uniform_model.n (Instance.size inst);
        check_int "d" 2 (Instance.dim inst);
        List.iter
          (fun (r : Item.t) ->
            let dur = Item.duration r in
            check_bool "duration low" true (dur >= 1.0);
            check_bool "duration high" true (dur <= float_of_int p.Uniform_model.mu);
            check_bool "arrival low" true (r.Item.arrival >= 0.0);
            check_bool "departs by span" true
              (r.Item.departure <= float_of_int p.Uniform_model.span);
            check_bool "integral times" true
              (Float.is_integer r.Item.arrival && Float.is_integer r.Item.departure);
            Array.iter
              (fun s -> check_bool "size in range" true (s >= 1 && s <= 50))
              (Vec.to_array r.Item.size))
          inst.Instance.items);
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let a = Uniform_model.generate p ~rng:(Rng.create ~seed:9) in
        let b = Uniform_model.generate p ~rng:(Rng.create ~seed:9) in
        check_bool "equal traces" true
          (Trace_io.to_string a = Trace_io.to_string b));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Uniform_model.generate p ~rng:(Rng.create ~seed:9) in
        let b = Uniform_model.generate p ~rng:(Rng.create ~seed:10) in
        check_bool "differ" true (Trace_io.to_string a <> Trace_io.to_string b));
    Alcotest.test_case "table2 presets" `Quick (fun () ->
        let q = Uniform_model.table2 ~d:5 ~mu:200 in
        check_int "n" 1000 q.Uniform_model.n;
        check_int "span" 1000 q.Uniform_model.span;
        check_int "bin" 100 q.Uniform_model.bin_size;
        check_int "d" 5 q.Uniform_model.d;
        check_int "mu" 200 q.Uniform_model.mu);
    Alcotest.test_case "rejects mu > span" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (Uniform_model.validate { p with Uniform_model.mu = 101; span = 100 })));
    Alcotest.test_case "rejects non-positive fields" `Quick (fun () ->
        check_bool "n" true
          (Result.is_error (Uniform_model.validate { p with Uniform_model.n = 0 }));
        check_bool "d" true
          (Result.is_error (Uniform_model.validate { p with Uniform_model.d = 0 }));
        check_bool "bin" true
          (Result.is_error (Uniform_model.validate { p with Uniform_model.bin_size = 0 })));
  ]

let gaming_tests =
  [
    Alcotest.test_case "sessions have preset demands" `Quick (fun () ->
        let p = { Cloud_gaming.default with Cloud_gaming.n = 100 } in
        let inst = Cloud_gaming.generate p ~rng:(Rng.create ~seed:2) in
        check_int "n" 100 (Instance.size inst);
        check_int "d" 3 (Instance.dim inst);
        let demands =
          List.map (fun pr -> pr.Cloud_gaming.demand) p.Cloud_gaming.presets
        in
        List.iter
          (fun (r : Item.t) ->
            check_bool "known preset" true
              (List.exists (fun demand -> Vec.equal r.Item.size (Vec.of_array demand)) demands))
          inst.Instance.items);
    Alcotest.test_case "durations truncated" `Quick (fun () ->
        let p = { Cloud_gaming.default with Cloud_gaming.n = 200; max_session = 40.0 } in
        let inst = Cloud_gaming.generate p ~rng:(Rng.create ~seed:3) in
        List.iter
          (fun (r : Item.t) ->
            (* duration is recovered as departure - arrival, so allow one
               ulp-scale slack around the clamp bounds *)
            check_bool "within bounds" true
              (Item.duration r >= 1.0 -. 1e-6 && Item.duration r <= 40.0 +. 1e-6))
          inst.Instance.items);
    Alcotest.test_case "rejects oversized preset" `Quick (fun () ->
        let bad =
          { Cloud_gaming.label = "impossible"; demand = [| 150; 10; 10 |]; weight = 1.0 }
        in
        let p = { Cloud_gaming.default with Cloud_gaming.presets = [ bad ] } in
        check_bool "error" true (Result.is_error (Cloud_gaming.validate p)));
    Alcotest.test_case "rejects bad rate" `Quick (fun () ->
        let p = { Cloud_gaming.default with Cloud_gaming.arrival_rate = 0.0 } in
        check_bool "error" true (Result.is_error (Cloud_gaming.validate p)));
  ]

let vm_tests =
  [
    Alcotest.test_case "flavours come from the catalogue" `Quick (fun () ->
        let p = { Vm_requests.default with Vm_requests.n = 100 } in
        let inst = Vm_requests.generate p ~rng:(Rng.create ~seed:4) in
        check_int "n" 100 (Instance.size inst);
        check_int "d" 4 (Instance.dim inst);
        let demands =
          List.map (fun f -> f.Vm_requests.demand) p.Vm_requests.flavours
        in
        List.iter
          (fun (r : Item.t) ->
            check_bool "known flavour" true
              (List.exists (fun demand -> Vec.equal r.Item.size (Vec.of_array demand)) demands))
          inst.Instance.items);
    Alcotest.test_case "lifetimes truncated" `Quick (fun () ->
        let p = { Vm_requests.default with Vm_requests.n = 300; max_lifetime = 48.0 } in
        let inst = Vm_requests.generate p ~rng:(Rng.create ~seed:5) in
        List.iter
          (fun (r : Item.t) ->
            check_bool "bounds" true
              (Item.duration r >= 1.0 -. 1e-6 && Item.duration r <= 48.0 +. 1e-6))
          inst.Instance.items);
    Alcotest.test_case "arrivals strictly ordered" `Quick (fun () ->
        let inst =
          Vm_requests.generate
            { Vm_requests.default with Vm_requests.n = 100 }
            ~rng:(Rng.create ~seed:6)
        in
        let rec increasing = function
          | (a : Item.t) :: (b : Item.t) :: rest ->
              a.Item.arrival <= b.Item.arrival && increasing (b :: rest)
          | _ -> true
        in
        check_bool "sorted" true (increasing inst.Instance.items));
    Alcotest.test_case "rejects heavy tail without a mean" `Quick (fun () ->
        let p = { Vm_requests.default with Vm_requests.pareto_shape = 1.0 } in
        check_bool "error" true (Result.is_error (Vm_requests.validate p)));
    Alcotest.test_case "rejects amplitude >= 1" `Quick (fun () ->
        let p = { Vm_requests.default with Vm_requests.diurnal_amplitude = 1.0 } in
        check_bool "error" true (Result.is_error (Vm_requests.validate p)));
  ]

let correlated_tests =
  let base = { Uniform_model.d = 3; n = 150; mu = 5; span = 50; bin_size = 20 } in
  [
    Alcotest.test_case "rho = 1 makes dimensions identical" `Quick (fun () ->
        let inst =
          Correlated.generate { Correlated.base; rho = 1.0 } ~rng:(Rng.create ~seed:7)
        in
        List.iter
          (fun (r : Item.t) ->
            let a = Vec.to_array r.Item.size in
            check_bool "all equal" true (Array.for_all (fun x -> x = a.(0)) a))
          inst.Instance.items);
    Alcotest.test_case "rho = 0 keeps sizes in range and varied" `Quick (fun () ->
        let inst =
          Correlated.generate { Correlated.base; rho = 0.0 } ~rng:(Rng.create ~seed:8)
        in
        List.iter
          (fun (r : Item.t) ->
            Array.iter
              (fun s -> check_bool "range" true (s >= 1 && s <= 20))
              (Vec.to_array r.Item.size))
          inst.Instance.items;
        (* with 150 independent 3-dim draws, some item must be non-constant *)
        check_bool "not all constant" true
          (List.exists
             (fun (r : Item.t) ->
               let a = Vec.to_array r.Item.size in
               Array.exists (fun x -> x <> a.(0)) a)
             inst.Instance.items));
    Alcotest.test_case "rejects rho out of range" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Correlated.validate { Correlated.base; rho = 1.5 })));
  ]

let bursty_tests =
  [
    Alcotest.test_case "produces baseline plus bursts" `Quick (fun () ->
        let p =
          {
            Bursty.base = { Uniform_model.d = 1; n = 100; mu = 5; span = 100; bin_size = 10 };
            bursts = 4;
            burst_size = 25;
            burst_width = 2.0;
          }
        in
        let inst = Bursty.generate p ~rng:(Rng.create ~seed:14) in
        check_int "n" (100 + (4 * 25)) (Instance.size inst));
    Alcotest.test_case "bursts create arrival clumps" `Quick (fun () ->
        let p =
          {
            Bursty.base = { Uniform_model.d = 1; n = 10; mu = 5; span = 1000; bin_size = 10 };
            bursts = 3;
            burst_size = 40;
            burst_width = 1.0;
          }
        in
        let inst = Bursty.generate p ~rng:(Rng.create ~seed:15) in
        (* some 1-wide window must contain at least one full burst *)
        let arrivals =
          List.map (fun (r : Item.t) -> r.Item.arrival) inst.Instance.items
          |> List.sort Float.compare
          |> Array.of_list
        in
        let n = Array.length arrivals in
        let clumped = ref false in
        for i = 0 to n - 40 do
          if arrivals.(i + 39) -. arrivals.(i) <= 1.0 then clumped := true
        done;
        check_bool "clump found" true !clumped);
    Alcotest.test_case "zero bursts degenerates to the baseline" `Quick (fun () ->
        let p =
          {
            Bursty.base = { Uniform_model.d = 1; n = 50; mu = 5; span = 100; bin_size = 10 };
            bursts = 0;
            burst_size = 10;
            burst_width = 1.0;
          }
        in
        let inst = Bursty.generate p ~rng:(Rng.create ~seed:16) in
        check_int "n" 50 (Instance.size inst));
    Alcotest.test_case "rejects bad parameters" `Quick (fun () ->
        let base = { Uniform_model.d = 1; n = 10; mu = 5; span = 100; bin_size = 10 } in
        check_bool "negative bursts" true
          (Result.is_error
             (Bursty.validate { Bursty.base; bursts = -1; burst_size = 1; burst_width = 1.0 }));
        check_bool "zero size" true
          (Result.is_error
             (Bursty.validate { Bursty.base; bursts = 1; burst_size = 0; burst_width = 1.0 }));
        check_bool "wide burst" true
          (Result.is_error
             (Bursty.validate
                { Bursty.base; bursts = 1; burst_size = 1; burst_width = 1000.0 })));
  ]

let trace_io_tests =
  [
    Alcotest.test_case "round trip preserves the instance" `Quick (fun () ->
        let p = { Uniform_model.d = 2; n = 50; mu = 8; span = 40; bin_size = 30 } in
        let inst = Uniform_model.generate p ~rng:(Rng.create ~seed:12) in
        match Trace_io.of_string (Trace_io.to_string inst) with
        | Error e -> Alcotest.fail e
        | Ok inst' ->
            check_bool "capacity" true
              (Vec.equal inst.Instance.capacity inst'.Instance.capacity);
            check_int "n" (Instance.size inst) (Instance.size inst');
            List.iter2
              (fun (a : Item.t) (b : Item.t) ->
                check_bool "item" true
                  (a.Item.id = b.Item.id && a.Item.arrival = b.Item.arrival
                  && a.Item.departure = b.Item.departure
                  && Vec.equal a.Item.size b.Item.size))
              inst.Instance.items inst'.Instance.items);
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let p = { Uniform_model.d = 1; n = 10; mu = 3; span = 20; bin_size = 10 } in
        let inst = Uniform_model.generate p ~rng:(Rng.create ~seed:13) in
        let path = Filename.temp_file "dvbp" ".csv" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            Trace_io.write_file path inst;
            match Trace_io.read_file path with
            | Ok inst' -> check_int "n" (Instance.size inst) (Instance.size inst')
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        let text = "# hello\n\ncapacity,10\n# mid\nitem,0,0.0,1.0,5\n\n" in
        match Trace_io.of_string text with
        | Ok inst -> check_int "n" 1 (Instance.size inst)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "missing capacity rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "item,0,0.0,1.0,5\n")));
    Alcotest.test_case "duplicate capacity rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "capacity,10\ncapacity,10\n")));
    Alcotest.test_case "malformed number rejected with line info" `Quick (fun () ->
        match Trace_io.of_string "capacity,10\nitem,0,zero,1.0,5\n" with
        | Error msg -> check_bool "mentions line 2" true (contains_sub msg "line 2")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "oversized item rejected via instance validation" `Quick
      (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "capacity,10\nitem,0,0.0,1.0,11\n")));
    Alcotest.test_case "negative size rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "capacity,10\nitem,0,0.0,1.0,-1\n")));
    Alcotest.test_case "departure before arrival rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "capacity,10\nitem,0,5.0,1.0,5\n")));
    Alcotest.test_case "duplicate ids rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (Trace_io.of_string "capacity,10\nitem,0,0.0,1.0,5\nitem,0,0.0,1.0,5\n")));
    Alcotest.test_case "unrecognised row rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.of_string "capacity,10\nwat,1,2\n")));
    Alcotest.test_case "missing file reported" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Trace_io.read_file "/nonexistent/dvbp.csv")));
    Alcotest.test_case "CRLF line endings accepted" `Quick (fun () ->
        match
          Trace_io.of_string
            "# dvbp-trace v1\r\ncapacity,10\r\nitem,0,0.0,1.0,5\r\nitem,1,0.5,2.0,3\r\n"
        with
        | Ok inst -> check_int "both items" 2 (Instance.size inst)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "trailing blank lines accepted" `Quick (fun () ->
        match Trace_io.of_string "capacity,10\nitem,0,0.0,1.0,5\n\n\n  \n" with
        | Ok inst -> check_int "one item" 1 (Instance.size inst)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "comment-only input is missing capacity, not a crash"
      `Quick (fun () ->
        match Trace_io.of_string "# just\n# comments\n" with
        | Error msg -> check_bool "names capacity" true (contains_sub msg "capacity")
        | Ok _ -> Alcotest.fail "expected error");
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"trace_io round trip (random instances)"
         QCheck2.Gen.(
           let* d = 1 -- 3 in
           let* n = 1 -- 15 in
           let* specs =
             list_repeat n
               (let* a7 = 0 -- 50 in
                let* dur3 = 1 -- 20 in
                let* size = array_repeat d (1 -- 10) in
                (* division-derived times exercise the %.17g float codec *)
                return
                  ( float_of_int a7 /. 7.0,
                    (float_of_int a7 /. 7.0) +. (float_of_int dur3 /. 3.0),
                    size ))
           in
           return (d, specs))
         (fun (d, specs) ->
           let inst =
             Instance.of_specs_exn
               ~capacity:(Vec.make ~dim:d 10)
               (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)
           in
           match Trace_io.of_string (Trace_io.to_string inst) with
           | Error e -> QCheck2.Test.fail_report e
           | Ok inst' ->
               Vec.equal inst.Instance.capacity inst'.Instance.capacity
               && List.equal
                    (fun (a : Item.t) (b : Item.t) ->
                      a.Item.id = b.Item.id
                      && Float.equal a.Item.arrival b.Item.arrival
                      && Float.equal a.Item.departure b.Item.departure
                      && Vec.equal a.Item.size b.Item.size)
                    inst.Instance.items inst'.Instance.items));
  ]

let arrival_tests =
  [
    Alcotest.test_case "uniform grid stays in range" `Quick (fun () ->
        let xs =
          Arrival_process.generate
            (Arrival_process.Uniform_grid { lo = 3; hi = 9 })
            ~n:200 ~rng:(Rng.create ~seed:20)
        in
        check_int "count" 200 (List.length xs);
        List.iter
          (fun x -> check_bool "in range" true (x >= 3.0 && x <= 9.0 && Float.is_integer x))
          xs);
    Alcotest.test_case "poisson arrivals are ordered with roughly the right rate"
      `Quick (fun () ->
        let n = 5000 in
        let xs =
          Arrival_process.generate (Arrival_process.Poisson { rate = 2.0 }) ~n
            ~rng:(Rng.create ~seed:21)
        in
        let rec sorted = function
          | a :: b :: rest -> a <= b && sorted (b :: rest)
          | _ -> true
        in
        check_bool "ordered" true (sorted xs);
        let last = List.nth xs (n - 1) in
        (* n arrivals at rate 2 take about n/2 time units *)
        check_bool "rate" true (Float.abs (last -. (float_of_int n /. 2.0)) < 150.0));
    Alcotest.test_case "modulated poisson clusters around the peaks" `Quick
      (fun () ->
        let period = 10.0 in
        let xs =
          Arrival_process.generate
            (Arrival_process.Modulated_poisson
               { base_rate = 5.0; amplitude = 0.9; period })
            ~n:20_000 ~rng:(Rng.create ~seed:22)
        in
        (* count arrivals in the rising half vs falling half of the cycle *)
        let peak_half, trough_half =
          List.fold_left
            (fun (p, t) x ->
              let phase = Float.rem x period /. period in
              if phase < 0.5 then (p + 1, t) else (p, t + 1))
            (0, 0) xs
        in
        check_bool "peak half busier" true (peak_half > trough_half));
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        check_bool "grid" true
          (Result.is_error
             (Arrival_process.validate (Arrival_process.Uniform_grid { lo = 2; hi = 1 })));
        check_bool "rate" true
          (Result.is_error (Arrival_process.validate (Arrival_process.Poisson { rate = 0.0 })));
        check_bool "amplitude" true
          (Result.is_error
             (Arrival_process.validate
                (Arrival_process.Modulated_poisson
                   { base_rate = 1.0; amplitude = 1.0; period = 1.0 }))));
  ]

let describe_tests =
  [
    Alcotest.test_case "summary of a hand-built instance" `Quick (fun () ->
        let capacity = Vec.of_list [ 10 ] in
        let inst =
          Instance.of_specs_exn ~capacity
            [ (0.0, 2.0, Vec.of_list [ 5 ]); (1.0, 5.0, Vec.of_list [ 10 ]) ]
        in
        let d = Describe.measure inst in
        check_int "items" 2 d.Describe.items;
        check_int "dims" 1 d.Describe.dimensions;
        Alcotest.(check (float 1e-9)) "mu" 2.0 d.Describe.mu;
        Alcotest.(check (float 1e-9)) "span" 5.0 d.Describe.span;
        Alcotest.(check (float 1e-9)) "mean dur" 3.0 d.Describe.mean_duration;
        Alcotest.(check (float 1e-9)) "mean rel size" 0.75 d.Describe.mean_relative_size;
        Alcotest.(check (float 1e-9)) "max rel size" 1.0 d.Describe.max_relative_size;
        check_int "peak" 2 d.Describe.peak_active;
        Alcotest.(check (float 1e-9)) "mean active" (6.0 /. 5.0) d.Describe.mean_active;
        Alcotest.(check (float 1e-9)) "util" (0.5 *. 2.0 +. 1.0 *. 4.0) d.Describe.utilisation);
    Alcotest.test_case "render lists the statistics" `Quick (fun () ->
        let inst =
          Instance.of_specs_exn ~capacity:(Vec.of_list [ 10 ])
            [ (0.0, 1.0, Vec.of_list [ 1 ]) ]
        in
        let out = Describe.render (Describe.measure inst) in
        check_bool "mu row" true (contains_sub out "mu (max/min duration)");
        check_bool "peak row" true (contains_sub out "peak active items"));
  ]

let suites =
  [
    ("workload.uniform", uniform_tests);
    ("workload.arrival_process", arrival_tests);
    ("workload.describe", describe_tests);
    ("workload.cloud_gaming", gaming_tests);
    ("workload.vm_requests", vm_tests);
    ("workload.correlated", correlated_tests);
    ("workload.bursty", bursty_tests);
    ("workload.trace_io", trace_io_tests);
  ]
