(* Unit tests for Dvbp_prelude: exact integer math, float helpers, list
   helpers and the splittable RNG. *)

open Dvbp_prelude

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let intmath_tests =
  [
    Alcotest.test_case "ceil_div exact" `Quick (fun () ->
        check_int "6/3" 2 (Intmath.ceil_div 6 3));
    Alcotest.test_case "ceil_div rounds up" `Quick (fun () ->
        check_int "7/3" 3 (Intmath.ceil_div 7 3);
        check_int "1/100" 1 (Intmath.ceil_div 1 100));
    Alcotest.test_case "ceil_div zero numerator" `Quick (fun () ->
        check_int "0/5" 0 (Intmath.ceil_div 0 5));
    Alcotest.test_case "ceil_div rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "negative a" (Invalid_argument "Intmath.ceil_div: negative numerator")
          (fun () -> ignore (Intmath.ceil_div (-1) 2));
        Alcotest.check_raises "zero b" (Invalid_argument "Intmath.ceil_div: non-positive denominator")
          (fun () -> ignore (Intmath.ceil_div 1 0)));
    Alcotest.test_case "gcd basics" `Quick (fun () ->
        check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
        check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
        check_int "gcd negative" 6 (Intmath.gcd (-12) 18));
    Alcotest.test_case "lcm basics" `Quick (fun () ->
        check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
        check_int "lcm 0 5" 0 (Intmath.lcm 0 5));
    Alcotest.test_case "pow basics" `Quick (fun () ->
        check_int "2^10" 1024 (Intmath.pow 2 10);
        check_int "x^0" 1 (Intmath.pow 99 0);
        check_int "x^1" 99 (Intmath.pow 99 1);
        check_int "0^3" 0 (Intmath.pow 0 3));
    Alcotest.test_case "pow rejects negative exponent" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Intmath.pow: negative exponent")
          (fun () -> ignore (Intmath.pow 2 (-1))));
    Alcotest.test_case "mul_checked overflow" `Quick (fun () ->
        check_int "small" 42 (Intmath.mul_checked 6 7);
        check_bool "overflow raises" true
          (try ignore (Intmath.mul_checked max_int 2); false
           with Failure _ -> true));
    Alcotest.test_case "sum_checked" `Quick (fun () ->
        check_int "sum" 10 (Intmath.sum_checked [ 1; 2; 3; 4 ]);
        check_bool "overflow raises" true
          (try ignore (Intmath.sum_checked [ max_int; 1 ]); false
           with Failure _ -> true));
  ]

let floatx_tests =
  [
    Alcotest.test_case "approx_equal near" `Quick (fun () ->
        check_bool "1 vs 1+1e-12" true (Floatx.approx_equal 1.0 (1.0 +. 1e-12));
        check_bool "1 vs 1.1" false (Floatx.approx_equal 1.0 1.1));
    Alcotest.test_case "approx_equal scales" `Quick (fun () ->
        check_bool "big numbers" true (Floatx.approx_equal 1e12 (1e12 +. 1.0)));
    Alcotest.test_case "kahan_sum accuracy" `Quick (fun () ->
        let xs = List.init 10_000 (fun _ -> 0.1) in
        Alcotest.(check (float 1e-9)) "10000 * 0.1" 1000.0 (Floatx.kahan_sum xs));
    Alcotest.test_case "kahan_sum empty" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "empty" 0.0 (Floatx.kahan_sum []));
    Alcotest.test_case "clamp" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-3.0));
        Alcotest.(check (float 0.0)) "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 2.0);
        Alcotest.(check (float 0.0)) "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5));
    Alcotest.test_case "clamp rejects inverted bounds" `Quick (fun () ->
        Alcotest.check_raises "lo>hi" (Invalid_argument "Floatx.clamp: lo > hi")
          (fun () -> ignore (Floatx.clamp ~lo:1.0 ~hi:0.0 0.5)));
  ]

let listx_tests =
  [
    Alcotest.test_case "sum_by" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "sum" 6.0
          (Listx.sum_by float_of_int [ 1; 2; 3 ]));
    Alcotest.test_case "max_by picks first among ties" `Quick (fun () ->
        Alcotest.(check (option (pair int int)))
          "ties" (Some (1, 5))
          (Listx.max_by snd [ (1, 5); (2, 5); (3, 4) ]));
    Alcotest.test_case "max_by empty" `Quick (fun () ->
        Alcotest.(check (option int)) "none" None (Listx.max_by Fun.id []));
    Alcotest.test_case "min_by picks first among ties" `Quick (fun () ->
        Alcotest.(check (option (pair int int)))
          "ties" (Some (2, 1))
          (Listx.min_by snd [ (1, 5); (2, 1); (3, 1) ]));
    Alcotest.test_case "range" `Quick (fun () ->
        Alcotest.(check (list int)) "1..4" [ 1; 2; 3; 4 ] (Listx.range 1 4);
        Alcotest.(check (list int)) "empty" [] (Listx.range 3 2));
    Alcotest.test_case "take" `Quick (fun () ->
        Alcotest.(check (list int)) "take 2" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
        Alcotest.(check (list int)) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]));
    Alcotest.test_case "group_consecutive" `Quick (fun () ->
        Alcotest.(check (list (list int)))
          "runs"
          [ [ 1; 1 ]; [ 2 ]; [ 1 ] ]
          (Listx.group_consecutive ( = ) [ 1; 1; 2; 1 ]));
    Alcotest.test_case "pairs" `Quick (fun () ->
        Alcotest.(check int) "count" 6 (List.length (Listx.pairs [ 1; 2; 3; 4 ])));
  ]

let rng_tests =
  [
    Alcotest.test_case "same seed same stream" `Quick (fun () ->
        let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
        let xs = List.init 20 (fun _ -> Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000) in
        Alcotest.(check (list int)) "equal" xs ys);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
        let xs = List.init 20 (fun _ -> Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000) in
        check_bool "differ" true (xs <> ys));
    Alcotest.test_case "split is deterministic and consumption-independent" `Quick
      (fun () ->
        let a = Rng.create ~seed:42 in
        ignore (Rng.int a 10);
        (* consuming the parent must not change children *)
        let c1 = Rng.split a ~key:7 in
        let b = Rng.create ~seed:42 in
        let c2 = Rng.split b ~key:7 in
        let xs = List.init 10 (fun _ -> Rng.int c1 1000) in
        let ys = List.init 10 (fun _ -> Rng.int c2 1000) in
        Alcotest.(check (list int)) "equal children" xs ys);
    Alcotest.test_case "split children with distinct keys differ" `Quick (fun () ->
        let a = Rng.create ~seed:42 in
        let c1 = Rng.split a ~key:1 and c2 = Rng.split a ~key:2 in
        let xs = List.init 10 (fun _ -> Rng.int c1 1000) in
        let ys = List.init 10 (fun _ -> Rng.int c2 1000) in
        check_bool "differ" true (xs <> ys));
    Alcotest.test_case "consuming one child never perturbs a sibling" `Quick
      (fun () ->
        (* the determinism contract of the parallel runner: instance i's
           stream depends only on the derivation path, not on how much any
           other instance has consumed *)
        let a = Rng.create ~seed:42 in
        let c1 = Rng.split a ~key:1 in
        for _ = 1 to 1000 do
          ignore (Rng.int c1 1000)
        done;
        let c2 = Rng.split a ~key:2 in
        let b = Rng.create ~seed:42 in
        let c2' = Rng.split b ~key:2 in
        let xs = List.init 10 (fun _ -> Rng.int c2 1000) in
        let ys = List.init 10 (fun _ -> Rng.int c2' 1000) in
        Alcotest.(check (list int)) "sibling unaffected" xs ys);
    Alcotest.test_case "splits off a shared parent are domain-safe" `Quick
      (fun () ->
        (* split only reads the parent's immutable path, so concurrent
           splits from worker domains equal their sequential counterparts *)
        let a = Rng.create ~seed:42 in
        let draw key =
          let c = Rng.split a ~key in
          List.init 5 (fun _ -> Rng.int c 1000)
        in
        let expected = List.init 8 draw in
        let ds = List.init 8 (fun key -> Domain.spawn (fun () -> draw key)) in
        let got = List.map Domain.join ds in
        List.iter2
          (fun xs ys -> Alcotest.(check (list int)) "same stream" xs ys)
          expected got);
    Alcotest.test_case "int_incl bounds" `Quick (fun () ->
        let r = Rng.create ~seed:3 in
        for _ = 1 to 200 do
          let x = Rng.int_incl r ~lo:5 ~hi:9 in
          check_bool "in range" true (x >= 5 && x <= 9)
        done);
    Alcotest.test_case "int_incl degenerate range" `Quick (fun () ->
        let r = Rng.create ~seed:3 in
        check_int "singleton" 7 (Rng.int_incl r ~lo:7 ~hi:7));
    Alcotest.test_case "int_incl rejects inverted" `Quick (fun () ->
        let r = Rng.create ~seed:3 in
        Alcotest.check_raises "lo>hi" (Invalid_argument "Rng.int_incl: lo > hi")
          (fun () -> ignore (Rng.int_incl r ~lo:2 ~hi:1)));
    Alcotest.test_case "exponential positive with right mean" `Quick (fun () ->
        let r = Rng.create ~seed:11 in
        let n = 20_000 in
        let acc = ref 0.0 in
        for _ = 1 to n do
          let x = Rng.exponential r ~mean:4.0 in
          check_bool "positive" true (x >= 0.0);
          acc := !acc +. x
        done;
        let mean = !acc /. float_of_int n in
        check_bool "mean near 4" true (Float.abs (mean -. 4.0) < 0.2));
    Alcotest.test_case "pareto respects scale" `Quick (fun () ->
        let r = Rng.create ~seed:11 in
        for _ = 1 to 200 do
          check_bool "x >= scale" true (Rng.pareto r ~shape:2.0 ~scale:3.0 >= 3.0)
        done);
    Alcotest.test_case "seed_path records derivation" `Quick (fun () ->
        let a = Rng.create ~seed:42 in
        let c = Rng.split (Rng.split a ~key:3) ~key:17 in
        Alcotest.(check string) "path" "42/3/17" (Rng.seed_path c));
    Alcotest.test_case "pick rejects empty" `Quick (fun () ->
        let r = Rng.create ~seed:1 in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
          (fun () -> ignore (Rng.pick r [||])));
  ]

let heap_tests =
  [
    Alcotest.test_case "pops in ascending order" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare () in
        List.iter (Heap.add h) [ 5; 1; 4; 1; 3 ];
        Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (Heap.drain h);
        check_bool "empty after drain" true (Heap.is_empty h));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare () in
        Heap.add h 2;
        Heap.add h 1;
        Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek_min h);
        check_int "size" 2 (Heap.size h));
    Alcotest.test_case "empty heap pops None" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare () in
        Alcotest.(check (option int)) "pop" None (Heap.pop_min h);
        Alcotest.(check (option int)) "peek" None (Heap.peek_min h));
    Alcotest.test_case "of_list heapifies" `Quick (fun () ->
        let h = Heap.of_list ~cmp:Int.compare [ 9; 2; 7; 2; 8 ] in
        Alcotest.(check (list int)) "sorted" [ 2; 2; 7; 8; 9 ] (Heap.drain h));
    Alcotest.test_case "custom comparison (max-heap)" `Quick (fun () ->
        let h = Heap.of_list ~cmp:(fun a b -> Int.compare b a) [ 1; 3; 2 ] in
        Alcotest.(check (option int)) "max first" (Some 3) (Heap.pop_min h));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"heap drain equals list sort" ~count:300
         QCheck2.Gen.(list (int_bound 1000))
         (fun xs ->
           let h = Heap.of_list ~cmp:Int.compare xs in
           Heap.drain h = List.sort Int.compare xs));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"interleaved add/pop maintains order" ~count:200
         QCheck2.Gen.(list (pair bool (int_bound 100)))
         (fun ops ->
           let h = Heap.create ~cmp:Int.compare () in
           let model = ref [] in
           List.for_all
             (fun (is_pop, x) ->
               if is_pop then (
                 let expected =
                   match !model with [] -> None | sorted -> Some (List.hd sorted)
                 in
                 let got = Heap.pop_min h in
                 (match !model with [] -> () | _ :: rest -> model := rest);
                 got = expected)
               else (
                 Heap.add h x;
                 model := List.sort Int.compare (x :: !model);
                 true))
             ops));
  ]


let int_table_tests =
  let module T = Dvbp_prelude.Int_table in
  [
    Alcotest.test_case "replace, find, mem" `Quick (fun () ->
        let t = T.create ~dummy:"-" () in
        T.replace t 3 "three";
        T.replace t 0 "zero";
        Alcotest.(check string) "find 3" "three" (T.find t 3);
        Alcotest.(check (option string)) "find_opt 0" (Some "zero") (T.find_opt t 0);
        Alcotest.(check bool) "mem 3" true (T.mem t 3);
        Alcotest.(check bool) "mem 7" false (T.mem t 7);
        Alcotest.(check (option string)) "absent" None (T.find_opt t 7);
        Alcotest.check_raises "find absent" Not_found (fun () ->
            ignore (T.find t 7));
        Alcotest.(check int) "length" 2 (T.length t));
    Alcotest.test_case "replace overwrites without growing" `Quick (fun () ->
        let t = T.create ~dummy:0 () in
        T.replace t 5 1;
        T.replace t 5 2;
        Alcotest.(check int) "value" 2 (T.find t 5);
        Alcotest.(check int) "length" 1 (T.length t));
    Alcotest.test_case "negative keys rejected" `Quick (fun () ->
        let t = T.create ~dummy:0 () in
        Alcotest.check_raises "replace" (Invalid_argument "Int_table.replace: negative key")
          (fun () -> T.replace t (-1) 0));
    Alcotest.test_case "grows past the size hint" `Quick (fun () ->
        let t = T.create ~expected:4 ~dummy:(-1) () in
        for k = 0 to 999 do T.replace t (7 * k) k done;
        Alcotest.(check int) "length" 1000 (T.length t);
        for k = 0 to 999 do
          Alcotest.(check int) (string_of_int k) k (T.find t (7 * k))
        done);
    Alcotest.test_case "fold visits every binding once" `Quick (fun () ->
        let t = T.create ~dummy:0 () in
        for k = 0 to 99 do T.replace t k (k * k) done;
        let count = T.fold t (fun _ _ acc -> acc + 1) 0 in
        let sum = T.fold t (fun k v acc -> Alcotest.(check int) "v" (k * k) v; acc + k) 0 in
        Alcotest.(check int) "count" 100 count;
        Alcotest.(check int) "sum of keys" 4950 sum);
  ]

let suites =
  [
    ("prelude.heap", heap_tests);
    ("prelude.intmath", intmath_tests);
    ("prelude.floatx", floatx_tests);
    ("prelude.listx", listx_tests);
    ("prelude.rng", rng_tests);
    ("prelude.int_table", int_table_tests);
  ]
