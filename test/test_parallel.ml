(* Tests for the multicore execution layer: pool lifecycle (lazy spawn,
   reuse across calls, clamping, shutdown), exception propagation out of
   worker domains, and the determinism contract of the combinators —
   results must be a pure function of the inputs, independent of the
   number of domains. *)

open Dvbp_parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

let pool_tests =
  [
    Alcotest.test_case "size clamps to >= 1 and spawn is lazy" `Quick (fun () ->
        let p = Domain_pool.create ~jobs:0 () in
        check_int "clamped" 1 (Domain_pool.jobs p);
        check_int "no workers" 0 (Domain_pool.spawned p);
        let p = Domain_pool.create ~jobs:(-3) () in
        check_int "clamped negative" 1 (Domain_pool.jobs p);
        let p = Domain_pool.create ~jobs:3 () in
        check_int "target" 3 (Domain_pool.jobs p);
        (* nothing spawned until a parallel run actually happens *)
        check_int "lazy" 0 (Domain_pool.spawned p);
        Domain_pool.shutdown p);
    Alcotest.test_case "workers are spawned once and reused across runs" `Quick
      (fun () ->
        let p = Domain_pool.create ~jobs:3 () in
        let hits = Atomic.make 0 in
        for _ = 1 to 5 do
          Domain_pool.run p (fun () -> Atomic.incr hits)
        done;
        check_int "every member ran each time" 15 (Atomic.get hits);
        check_int "spawned exactly target-1 workers" 2 (Domain_pool.spawned p);
        (* a bigger one-off request grows the pool, again only once *)
        Domain_pool.run ~jobs:4 p (fun () -> ());
        Domain_pool.run ~jobs:4 p (fun () -> ());
        check_int "grown once" 3 (Domain_pool.spawned p);
        Domain_pool.shutdown p);
    Alcotest.test_case "size-1 pool runs inline without domains" `Quick (fun () ->
        let p = Domain_pool.create ~jobs:1 () in
        let self_hits = ref 0 in
        Domain_pool.run p (fun () -> incr self_hits);
        check_int "ran once, in the caller" 1 !self_hits;
        check_int "no domains" 0 (Domain_pool.spawned p);
        Domain_pool.shutdown p);
    Alcotest.test_case "worker exception propagates to the caller" `Quick
      (fun () ->
        let p = Domain_pool.create ~jobs:4 () in
        let raised =
          try
            Parallel.chunked_for ~pool:p ~n:64 (fun i ->
                if i = 13 then raise (Boom i));
            None
          with Boom i -> Some i
        in
        Alcotest.(check (option int)) "Boom surfaced" (Some 13) raised;
        (* the pool survives a failed run *)
        let ok = Atomic.make 0 in
        Parallel.chunked_for ~pool:p ~n:10 (fun _ -> Atomic.incr ok);
        check_int "pool usable after failure" 10 (Atomic.get ok);
        Domain_pool.shutdown p);
    Alcotest.test_case "shutdown joins and further use is rejected" `Quick
      (fun () ->
        let p = Domain_pool.create ~jobs:2 () in
        Domain_pool.run p (fun () -> ());
        Domain_pool.shutdown p;
        Domain_pool.shutdown p;
        (* idempotent *)
        check_bool "run after shutdown raises" true
          (try
             Domain_pool.run p (fun () -> ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "DVBP_JOBS-style validation" `Quick (fun () ->
        (* default_jobs reads the environment; we only pin that whatever it
           returns is a sane size, since the test environment owns the var *)
        check_bool "default >= 1" true (Domain_pool.default_jobs () >= 1));
  ]

let combinator_tests =
  [
    Alcotest.test_case "chunked_for covers every index exactly once" `Quick
      (fun () ->
        let p = Domain_pool.create ~jobs:4 () in
        let n = 1003 in
        let marks = Array.make n 0 in
        (* distinct slots: no two tasks share an index, so no atomics needed *)
        Parallel.chunked_for ~pool:p ~chunk:7 ~n (fun i -> marks.(i) <- marks.(i) + 1);
        Array.iteri (fun i m -> check_int (Printf.sprintf "index %d" i) 1 m) marks;
        Domain_pool.shutdown p);
    Alcotest.test_case "chunked_for rejects bad arguments" `Quick (fun () ->
        check_bool "negative n" true
          (try Parallel.chunked_for ~n:(-1) (fun _ -> ()); false
           with Invalid_argument _ -> true);
        check_bool "chunk < 1" true
          (try Parallel.chunked_for ~chunk:0 ~n:3 (fun _ -> ()); false
           with Invalid_argument _ -> true);
        (* n = 0 is a no-op, not an error *)
        Parallel.chunked_for ~n:0 (fun _ -> Alcotest.fail "body on empty range"));
    Alcotest.test_case "map_array applies f exactly once per element" `Quick
      (fun () ->
        let p = Domain_pool.create ~jobs:3 () in
        let calls = Atomic.make 0 in
        let out =
          Parallel.map_array ~pool:p
            (fun x -> Atomic.incr calls; x * x)
            (Array.init 100 Fun.id)
        in
        check_int "calls" 100 (Atomic.get calls);
        Alcotest.(check (array int)) "values" (Array.init 100 (fun i -> i * i)) out;
        Domain_pool.shutdown p);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"map_array equals Array.map for any size and jobs"
         ~count:60
         QCheck2.Gen.(pair (int_range 0 200) (int_range 1 5))
         (fun (n, jobs) ->
           let a = Array.init n (fun i -> (31 * i) + n) in
           let f x = (x * x) - (3 * x) in
           Parallel.map_array ~jobs f a = Array.map f a));
  ]

let suites =
  [ ("parallel.pool", pool_tests); ("parallel.combinators", combinator_tests) ]
