(* Deterministic simulation testing of the crash–recovery path.

   Everything here runs the real service code — [Server], [Journal],
   [Snapshot], [Recovery] — over [Sim_fs], an in-memory filesystem that
   tracks synced vs. unsynced bytes and un-dirsynced directory entries and
   injects power cuts from a seeded rng:

   - sim.fs          the simulated filesystem's own fault semantics;
   - sim.sweep       exhaustive crash-point sweep: crash at *every* I/O
                     boundary x every crash mode, recover, replay the rest,
                     demand a bit-identical final state — plus a sensitivity
                     smoke proving the sweep fails when the journal's
                     torn-record guard is sabotaged, and the
                     crash-after-rename-before-dirsync regression;
   - sim.statemachine qcheck: random ARRIVE/DEPART/SNAPSHOT/crash/recover
                     schedules checked against a pure in-memory model;
   - sim.corruption  byte-flip properties for the journal record codec;
   - sim.hygiene     ".tmp" leftovers are never read and always overwritten;
   - sim.env         DVBP_SIM_BUDGET validation.

   All qcheck tests run with a fixed rng, so CI is deterministic; a failure
   prints the generated schedule (fault seed included), which reproduces the
   counterexample by itself. *)

open Dvbp_sim
module Io = Dvbp_service.Io
module Journal = Dvbp_service.Journal
module Snapshot = Dvbp_service.Snapshot
module Recovery = Dvbp_service.Recovery
module Server = Dvbp_service.Server
module Loadgen = Dvbp_service.Loadgen
module Metrics = Dvbp_service.Metrics
module Session = Dvbp_engine.Session
module Tenant = Dvbp_service.Tenant
module Uniform_model = Dvbp_workload.Uniform_model
module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng

let v = Vec.of_list
let cap = v [ 100; 100 ]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let ok_or_fail = function Ok x -> x | Error e -> Alcotest.fail e

(* read once, before the sim.env tests mutate the variable *)
let budget = Sim_env.budget ()

let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xD5B9 |]) t

let with_tmp_dir f =
  let dir = Filename.temp_file "dvbp_sim" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let all_modes = [ Sim_fs.Lose_unsynced; Sim_fs.Keep_unsynced; Sim_fs.Torn ]

(* ------------------------------------------------------------------ *)
(* sim.fs: the simulated filesystem's fault semantics                  *)
(* ------------------------------------------------------------------ *)

let write_file io path content =
  let o = io.Io.open_out ~append:false path in
  o.Io.write content;
  o.Io.fsync ();
  o.Io.close ();
  io.Io.fsync_dir (Filename.dirname path)

let fs_tests =
  [
    Alcotest.test_case "buffered, flushed and fsynced bytes at a power cut" `Quick
      (fun () ->
        (* three files, one per durability level *)
        let scenario mode =
          let fs = Sim_fs.create () in
          let io = Sim_fs.io fs in
          let open_at path = io.Io.open_out ~append:false path in
          let buffered = open_at "d/buffered" in
          buffered.Io.write "abc";
          let flushed = open_at "d/flushed" in
          flushed.Io.write "abc";
          flushed.Io.flush ();
          let synced = open_at "d/synced" in
          synced.Io.write "abc";
          synced.Io.fsync ();
          synced.Io.write "tail";
          synced.Io.flush ();
          io.Io.fsync_dir "d";
          Sim_fs.crash fs ~mode;
          ( Option.get (Sim_fs.contents fs "d/buffered"),
            Option.get (Sim_fs.contents fs "d/flushed"),
            Option.get (Sim_fs.contents fs "d/synced") )
        in
        let b, f, s = scenario Sim_fs.Lose_unsynced in
        check_string "lose: buffer gone" "" b;
        check_string "lose: flushed gone" "" f;
        check_string "lose: synced prefix survives" "abc" s;
        let b, f, s = scenario Sim_fs.Keep_unsynced in
        check_string "keep: buffer still gone" "" b;
        check_string "keep: flushed survives" "abc" f;
        check_string "keep: everything flushed survives" "abctail" s;
        let _, _, s = scenario Sim_fs.Torn in
        check_bool "torn: result is a prefix no shorter than the synced part"
          true
          (String.length s >= 3
          && s = String.sub "abctail" 0 (String.length s)));
    Alcotest.test_case "un-dirsynced rename rolls back; dirsynced rename holds"
      `Quick (fun () ->
        let make () =
          let fs = Sim_fs.create () in
          let io = Sim_fs.io fs in
          write_file io "d/a" "old";
          write_file io "d/a.tmp" "new";
          io.Io.rename ~src:"d/a.tmp" ~dst:"d/a";
          (fs, io)
        in
        let fs, _ = make () in
        Sim_fs.crash fs ~mode:Sim_fs.Lose_unsynced;
        check_bool "rollback restores the old destination" true
          (Sim_fs.contents fs "d/a" = Some "old");
        check_bool "rollback resurrects the tmp" true
          (Sim_fs.contents fs "d/a.tmp" = Some "new");
        let fs, _ = make () in
        Sim_fs.crash fs ~mode:Sim_fs.Keep_unsynced;
        check_bool "kept rename installs the new content" true
          (Sim_fs.contents fs "d/a" = Some "new");
        check_bool "kept rename leaves no tmp" true (not (Sim_fs.exists fs "d/a.tmp"));
        let fs, io = make () in
        io.Io.fsync_dir "d";
        Sim_fs.crash fs ~mode:Sim_fs.Lose_unsynced;
        check_bool "dirsynced rename survives even lose-unsynced" true
          (Sim_fs.contents fs "d/a" = Some "new"));
    Alcotest.test_case "un-dirsynced creation vanishes at lose-unsynced" `Quick
      (fun () ->
        let fs = Sim_fs.create () in
        let io = Sim_fs.io fs in
        let o = io.Io.open_out ~append:false "d/fresh" in
        o.Io.write "x";
        o.Io.fsync ();
        o.Io.close ();
        Sim_fs.crash fs ~mode:Sim_fs.Lose_unsynced;
        check_bool "creation rolled back" true (not (Sim_fs.exists fs "d/fresh")));
    Alcotest.test_case "plan_crash fires at the boundary; dead until reboot" `Quick
      (fun () ->
        let fs = Sim_fs.create () in
        let io = Sim_fs.io fs in
        write_file io "d/f" "hello";
        let at = Sim_fs.ops fs in
        Sim_fs.plan_crash fs ~at_op:at;
        check_bool "boundary raises Crash" true
          (try
             ignore (io.Io.open_out ~append:false "d/g");
             false
           with Sim_fs.Crash -> true);
        check_bool "reads raise too once dead" true
          (try
             ignore (io.Io.read_file "d/f");
             false
           with Sim_fs.Crash -> true);
        Sim_fs.crash fs ~mode:Sim_fs.Keep_unsynced;
        check_bool "alive again after reboot" true (io.Io.read_file "d/f" = Ok "hello");
        check_bool "the planted file never came to exist" true
          (not (Sim_fs.exists fs "d/g")));
    Alcotest.test_case "handles are invalidated by a crash" `Quick (fun () ->
        let fs = Sim_fs.create () in
        let io = Sim_fs.io fs in
        let o = io.Io.open_out ~append:false "d/f" in
        o.Io.write "x";
        Sim_fs.crash fs ~mode:Sim_fs.Keep_unsynced;
        check_bool "stale handle is a hard error" true
          (try
             o.Io.write "y";
             false
           with Failure _ -> true));
    Alcotest.test_case "atomic_replace is all-or-nothing at every boundary" `Quick
      (fun () ->
        let count =
          let fs = Sim_fs.create () in
          let io = Sim_fs.io fs in
          Io.atomic_replace io ~path:"d/f" "old";
          let before = Sim_fs.ops fs in
          Io.atomic_replace io ~path:"d/f" "new";
          Sim_fs.ops fs - before
        in
        check_bool "a replace spans several boundaries" true (count >= 5);
        for k = 0 to count - 1 do
          List.iter
            (fun mode ->
              let fs = Sim_fs.create ~seed:(100 + k) () in
              let io = Sim_fs.io fs in
              Io.atomic_replace io ~path:"d/f" "old";
              Sim_fs.plan_crash fs ~at_op:(Sim_fs.ops fs + k);
              (try Io.atomic_replace io ~path:"d/f" "new"
               with Sim_fs.Crash -> ());
              Sim_fs.crash fs ~mode;
              match Sim_fs.contents fs "d/f" with
              | Some "old" | Some "new" -> ()
              | Some other ->
                  Alcotest.failf "partial content %S at boundary %d (%s)" other k
                    (Sim_fs.mode_name mode)
              | None ->
                  Alcotest.failf "file vanished at boundary %d (%s)" k
                    (Sim_fs.mode_name mode))
            all_modes
        done);
  ]

(* ------------------------------------------------------------------ *)
(* sim.sweep: exhaustive crash-point sweep + sensitivity + dirsync     *)
(* ------------------------------------------------------------------ *)

(* Sabotage the torn-final-record guard from outside the journal: report
   every unterminated file as terminated, so a torn tail parses as a
   terminated corrupt record and recovery gives up instead of healing. The
   sweep must notice — this is the "known bug" sensitivity smoke. *)
let defeat_torn_guard io =
  {
    io with
    Io.read_file =
      (fun path ->
        match io.Io.read_file path with
        | Ok s when String.length s > 0 && s.[String.length s - 1] <> '\n' ->
            Ok (s ^ "\n")
        | r -> r);
  }

(* Simulate the backend bug satellite S1 fixed: no parent-directory fsync
   after tmp-write-then-rename, so every rename stays rollback-able. *)
let no_dirsync io = { io with Io.fsync_dir = (fun _ -> ()) }

(* The crash-after-rename-before-dirsync window, made deterministic: keep
   every journal-side op (segment creates, seal renames, truncate removes)
   but roll back the snapshot's rename. *)
let dirsync_window_mode =
  Sim_fs.Directed
    {
      keep_rename = (fun ~dst -> not (Filename.check_suffix dst ".snap"));
      keep_create = (fun ~path:_ -> true);
      keep_remove = (fun ~path:_ -> true);
      tear = (fun ~path:_ ~synced:_ ~length -> length);
    }

(* Run the canonical workload to completion (snapshots included) on a fresh
   simulated fs, returning the fs and the backend used. *)
let completed_run ~wrap n =
  let fs = Sim_fs.create ~seed:9 () in
  let io = wrap (Sim_fs.io fs) in
  let config =
    {
      Server.policy = "mtf";
      seed = 7;
      capacity = cap;
      journal = Some "sim/j.log";
      snapshot = Some "sim/s.snap";
      snapshot_every = Some 4;
      fsync_every = 2;
      jobs = 1;
      segment_bytes = None;
      retain_segments = None;
    }
  in
  let inst =
    Uniform_model.generate
      { Uniform_model.d = 2; n; mu = 10; span = 60; bin_size = 100 }
      ~rng:(Rng.create ~seed:3)
  in
  let server = ok_or_fail (Server.create ~io config) in
  List.iter (fun l -> ignore (Server.handle_line server l)) (Loadgen.script inst);
  check_bool "at least one snapshot+truncate happened" true
    ((Server.metrics server).Server.snapshots >= 1);
  Server.close server;
  (fs, io)

let sweep_tests =
  [
    Alcotest.test_case
      "every boundary x every mode recovers bit-identically (mtf)" `Slow
      (fun () ->
        let o = Sweep.run ~policy:"mtf" ~n:(10 * budget) () in
        Printf.printf "%s\n" (Sweep.render o);
        check_bool "covered at least one boundary" true (o.Sweep.boundaries > 0);
        check_bool "covered some events" true (o.Sweep.events > 0);
        check_int "scenarios = boundaries x modes" (o.Sweep.boundaries * 3)
          o.Sweep.scenarios;
        (match o.Sweep.failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "%d failures, first at boundary %d (%s): %s"
              (List.length o.Sweep.failures) f.Sweep.boundary f.Sweep.mode
              f.Sweep.message));
    Alcotest.test_case
      "every boundary x every mode recovers bit-identically (rf, seeded rng)"
      `Slow (fun () ->
        let o = Sweep.run ~policy:"rf" ~seed:23 ~n:8 () in
        Printf.printf "%s\n" (Sweep.render o);
        check_bool "covered at least one boundary" true (o.Sweep.boundaries > 0);
        check_bool "no failures" true (o.Sweep.failures = []));
    Alcotest.test_case
      "group-commit sweep: batched, multi-tenant recovery is bit-identical"
      `Slow (fun () ->
        (* the same exhaustive crash sweep, but lines driven through
           handle_batch (group commit) with the workload spread over three
           tenants — every boundary inside append_batch's write+fsync is
           crashed too *)
        let o = Sweep.run ~batch:4 ~tenants:3 ~n:(6 * budget) () in
        Printf.printf "batched %s\n" (Sweep.render o);
        check_bool "covered at least one boundary" true (o.Sweep.boundaries > 0);
        check_bool "no failures" true (o.Sweep.failures = []));
    Alcotest.test_case
      "group-commit sweep: jobs=4 shards recover bit-identically too" `Slow
      (fun () ->
        let o = Sweep.run ~batch:4 ~tenants:3 ~jobs:4 ~n:(4 * budget) () in
        Printf.printf "sharded %s\n" (Sweep.render o);
        check_bool "no failures" true (o.Sweep.failures = []));
    Alcotest.test_case
      "segmented compaction sweep: every seal/retire boundary recovers, > 133 \
       boundaries" `Slow (fun () ->
        (* tiny segments + an aggressive retention trigger: seals, segment
           opens, snapshot writes and retires all land inside the swept
           window, and compaction interleaves with traffic exactly as the
           event loop interleaves it *)
        let o =
          Sweep.run ~segment_bytes:112 ~retain_segments:1 ~n:16 ()
        in
        Printf.printf "segmented %s\n" (Sweep.render o);
        Printf.printf "segmented sweep boundary count: %d\n%!" o.Sweep.boundaries;
        check_bool
          (Printf.sprintf "swept %d boundaries, need strictly more than 133"
             o.Sweep.boundaries)
          true
          (o.Sweep.boundaries > 133);
        (match o.Sweep.failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "%d failures, first at boundary %d (%s): %s"
              (List.length o.Sweep.failures) f.Sweep.boundary f.Sweep.mode
              f.Sweep.message));
    Alcotest.test_case
      "segmented group-commit sweep: compaction under batches is bit-identical"
      `Slow (fun () ->
        let o =
          Sweep.run ~segment_bytes:112 ~retain_segments:1 ~batch:4 ~tenants:2
            ~n:(8 * budget) ()
        in
        Printf.printf "segmented batched %s\n" (Sweep.render o);
        check_bool "no failures" true (o.Sweep.failures = []));
    Alcotest.test_case "sensitivity smoke: sabotaged torn-record guard is caught"
      `Slow (fun () ->
        let o = Sweep.run ~wrap:defeat_torn_guard ~n:10 () in
        Printf.printf "sabotaged %s\n" (Sweep.render o);
        check_bool "the sweep must fail when the guard is defeated" true
          (o.Sweep.failures <> []);
        check_bool "and only in the mode that tears mid-record" true
          (List.for_all (fun f -> f.Sweep.mode = "torn") o.Sweep.failures));
    Alcotest.test_case "sensitivity smoke: defeated seal-footer check is caught"
      `Slow (fun () ->
        (* With the seal invariant sabotaged — no footer, no pre-rename
           fsync, lenient sealed reads — a power cut after a seal rename
           tears records out of a "sealed" segment silently, the chain
           breaks, and (with no snapshot to fall back on) recovery cannot
           reach event 0. The sweep must demonstrably fail: a sweep that
           still passes would mean the seal check verifies nothing. *)
        Dvbp_service.Log.defeat_seal_check := true;
        Fun.protect
          ~finally:(fun () -> Dvbp_service.Log.defeat_seal_check := false)
          (fun () ->
            let o =
              Sweep.run ~segment_bytes:112 ~snapshot:false ~fsync_every:8 ~n:10 ()
            in
            Printf.printf "seal-sabotaged %s\n" (Sweep.render o);
            check_bool "the sweep must fail when the seal check is defeated" true
              (o.Sweep.failures <> [])));
    Alcotest.test_case
      "dirsync window: without the parent-dir fsync the snapshot can outrun \
       its journal" `Quick (fun () ->
        (* with the fixed backend protocol the window is closed ... *)
        let fs, io = completed_run ~wrap:(fun io -> io) 16 in
        Sim_fs.crash fs ~mode:dirsync_window_mode;
        let st =
          ok_or_fail (Recovery.recover ~io ~snapshot:"sim/s.snap" ~journal:"sim/j.log" ())
        in
        check_bool "recovery succeeds and saw the snapshot" true
          (st.Recovery.from_snapshot > 0);
        (* ... and with fsync_dir stubbed out (the pre-fix behaviour) the
           same power cut strands a truncated journal with no snapshot *)
        let fs, io = completed_run ~wrap:no_dirsync 16 in
        Sim_fs.crash fs ~mode:dirsync_window_mode;
        check_bool "the truncated journal survived" true
          (Journal.exists ~io "sim/j.log");
        check_bool "the snapshot rename was rolled back" true
          (not (Sim_fs.exists fs "sim/s.snap"));
        match Recovery.recover ~io ~snapshot:"sim/s.snap" ~journal:"sim/j.log" () with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.fail
              "recovery accepted a truncated journal whose snapshot vanished");
    Alcotest.test_case
      "metrics survive crash/recovery without double-counting replayed events"
      `Quick (fun () ->
        (* Engine counters are pulled from the live session, so after a
           power cut and journal replay each recovered event is counted
           exactly once — not once at first placement plus once at replay. *)
        let fs = Sim_fs.create ~seed:5 () in
        let io = Sim_fs.io fs in
        let config =
          {
            Server.policy = "mtf";
            seed = 7;
            capacity = cap;
            journal = Some "sim/j.log";
            snapshot = None;
            snapshot_every = None;
            fsync_every = 1;
            jobs = 1;
            segment_bytes = None;
            retain_segments = None;
          }
        in
        let m1 = Metrics.create () in
        let server = ok_or_fail (Server.create ~io ~metrics:m1 config) in
        let expect line reply =
          let got, _ = Server.handle_line server line in
          check_string line reply got
        in
        expect "ARRIVE 0 0 60,10" "PLACED 0 1";
        expect "ARRIVE 1 1 50,50" "PLACED 1 1";
        expect "ARRIVE 2 2 30,20" "PLACED 1 0";
        expect "DEPART 3 0" "OK";
        (* power cut, no clean shutdown; fsync_every=1 made every record
           durable *)
        Sim_fs.crash fs ~mode:Sim_fs.Lose_unsynced;
        let st = ok_or_fail (Recovery.recover ~io ~journal:"sim/j.log" ()) in
        check_int "all four events replayed" 4 st.Recovery.from_journal;
        let m2 = Metrics.create () in
        let server = ok_or_fail (Server.resume ~io ~metrics:m2 config st) in
        let reply, _ = Server.handle_line server "ARRIVE 4 3 10,10" in
        check_string "resumed session keeps serving" "PLACED 1 0" reply;
        let rows =
          ok_or_fail (Dvbp_obs.Prom.parse (Metrics.render_text m2))
        in
        let value ?labels name =
          match Dvbp_obs.Prom.find rows ?labels name with
          | Some r -> int_of_float r.Dvbp_obs.Prom.value
          | None -> Alcotest.failf "metric %s missing" name
        in
        let engine = value ~labels:[ ("policy", "mtf") ] in
        (* 3 replayed placements + 1 new one: counted once each *)
        check_int "placements once" 4 (engine "dvbp_engine_placements_total");
        check_int "departures once" 1 (engine "dvbp_engine_departures_total");
        check_int "bins opened once" 2 (engine "dvbp_engine_bins_opened_total");
        (* the events counter carries on from genesis; per-process request
           counters start over *)
        check_int "events from genesis" 5 (value "dvbp_server_events_total");
        check_int "this process placed one" 1 (value "dvbp_server_placements_total");
        check_int "this process saw one arrive" 1
          (value ~labels:[ ("kind", "arrive") ] "dvbp_server_requests_total");
        Server.close server);
  ]

(* ------------------------------------------------------------------ *)
(* sim.statemachine: qcheck model-checked serve/crash/recover schedules *)
(* ------------------------------------------------------------------ *)

type cmd =
  | Arrive of int * int * int  (* time step, size1, size2 *)
  | Depart of int * int  (* time step, index among live items *)
  | Snap
  | Compact  (* synchronous compaction pass: snapshot + retire sealed *)
  | Crash_now of int  (* crash mode index, power cut between requests *)
  | Crash_at of int * int  (* ops ahead, crash mode index: mid-request cut *)

let mode_of_int = function
  | 0 -> Sim_fs.Lose_unsynced
  | 1 -> Sim_fs.Keep_unsynced
  | _ -> Sim_fs.Torn

let show_cmd = function
  | Arrive (dt, a, b) -> Printf.sprintf "Arrive(+%d,%dx%d)" dt a b
  | Depart (dt, i) -> Printf.sprintf "Depart(+%d,#%d)" dt i
  | Snap -> "Snapshot"
  | Compact -> "Compact"
  | Crash_now m -> Printf.sprintf "Crash_now(%s)" (Sim_fs.mode_name (mode_of_int m))
  | Crash_at (k, m) ->
      Printf.sprintf "Crash_at(+%dops,%s)" k (Sim_fs.mode_name (mode_of_int m))

let sm_journal = "sm/j.log"
let sm_snapshot = "sm/s.snap"
let sm_fsync_every = 3

(* Run one generated schedule against a server over [Sim_fs], mirroring it
   in a pure model. Crashes power-cut the fs, recovery is checked against
   the model (prefix-of-acked history, bounded loss, exact state agreement),
   then the model is rebased onto the surviving history and the schedule
   continues on a resumed server. Raises [Failure] on any mismatch.

   [batch = Some b] drives requests through {!Server.handle_batch}, [b]
   lines at a time (the group-commit path). Acks then carry a stronger
   promise — a reply is only released after the whole batch is fsynced —
   so the durability check tightens from "lose at most the fsync window"
   to "lose {e nothing} acked", under every crash mode. *)
let run_case ?batch (fs_seed, cmds) =
  let fs = Sim_fs.create ~seed:fs_seed () in
  let io = Sim_fs.io fs in
  let config =
    {
      Server.policy = "mtf";
      seed = 5;
      capacity = cap;
      journal = Some sm_journal;
      snapshot = Some sm_snapshot;
      snapshot_every = None;
      fsync_every = sm_fsync_every;
      jobs = 1;
      (* records are ~40 bytes, so segments seal every few events and the
         Compact action has sealed files to retire *)
      segment_bytes = Some 128;
      retain_segments = None;
    }
  in
  let server =
    ref (match Server.create ~io config with Ok s -> s | Error e -> failwith e)
  in
  let model = ref Ref_model.initial in
  let applied = ref [] in
  (* acked events, newest first *)
  let clock = ref 0 in
  let next_id = ref 0 in
  let pending_mode = ref Sim_fs.Lose_unsynced in
  let live_items () =
    List.concat_map snd (Ref_model.find !model Tenant.default).Ref_model.open_bins
  in
  let recover_after mode =
    Sim_fs.crash fs ~mode;
    (* also clears any planted-but-unfired crash *)
    let acked = List.rev !applied in
    let la = List.length acked in
    if not (Journal.exists ~io sm_journal) then begin
      (* only reachable while the journal's genesis creation is still
         un-dirsynced: nothing durable ever existed, start over *)
      io.Io.remove sm_snapshot;
      (match Server.create ~io config with
      | Ok s -> server := s
      | Error e -> failwith ("fresh restart: " ^ e));
      model := Ref_model.initial;
      applied := []
    end
    else
      match Recovery.recover ~io ~snapshot:sm_snapshot ~journal:sm_journal () with
      | Error e -> failwith ("recovery failed: " ^ e)
      | Ok st ->
          let history = st.Recovery.history in
          let lh = List.length history in
          (* durability: what survived is a prefix of what was attempted —
             the acked events plus un-acked in-flight records (at most one
             on the streaming path; up to a whole unreleased batch on the
             group-commit path) *)
          let slack = match batch with Some b -> b | None -> 1 in
          let rec agree i xs ys =
            match (xs, ys) with
            | _, [] -> ()
            | [], extra ->
                if List.length extra > slack then
                  failwith
                    (Printf.sprintf "recovered %d events but only %d were acked"
                       lh la)
            | x :: xs, y :: ys ->
                if not (Journal.equal_event x y) then
                  failwith
                    (Printf.sprintf "recovered history diverges at event %d" i)
                else agree (i + 1) xs ys
          in
          agree 0 acked history;
          (match batch with
          | Some _ ->
              (* batch-ack invariant: a group-commit reply is released only
                 after its fsync, so no crash mode may lose an acked event *)
              if lh < la then
                failwith
                  (Printf.sprintf "group commit lost %d acked events" (la - lh))
          | None ->
              if lh < la && la - lh > sm_fsync_every then
                failwith
                  (Printf.sprintf
                     "lost %d acked events, more than the fsync window of %d"
                     (la - lh) sm_fsync_every);
              (match mode with
              | Sim_fs.Keep_unsynced ->
                  if lh < la then
                    failwith "keep-unsynced crash lost an acked (flushed) event"
              | _ -> ()));
          let m = Ref_model.of_events history in
          (match Ref_model.agrees_with m st.Recovery.sessions with
          | Ok () -> ()
          | Error e -> failwith ("recovered session: " ^ e));
          (match Server.resume ~io config st with
          | Ok s -> server := s
          | Error e -> failwith ("resume: " ^ e));
          model := m;
          applied := List.rev history
  in
  (* group-commit driver: queue lines and submit them [b] at a time; a
     crash mid-batch releases no replies, so the whole in-flight batch
     goes un-acked (its events may still have reached the journal — the
     recovery slack above) *)
  let pending_batch = Queue.create () in
  let flush_batch () =
    if not (Queue.is_empty pending_batch) then begin
      let items = Array.of_seq (Queue.to_seq pending_batch) in
      Queue.clear pending_batch;
      match Server.handle_batch !server (Array.map fst items) with
      | replies -> Array.iteri (fun i (reply, _quit) -> snd items.(i) reply) replies
      | exception Sim_fs.Crash -> recover_after !pending_mode
    end
  in
  let exec line on_reply =
    match batch with
    | Some b ->
        Queue.add (line, on_reply) pending_batch;
        if Queue.length pending_batch >= b then flush_batch ()
    | None -> (
        match Server.handle_line !server line with
        | reply, _quit -> on_reply reply
        | exception Sim_fs.Crash -> recover_after !pending_mode)
  in
  List.iter
    (fun cmd ->
      match cmd with
      | Arrive (dt, s1, s2) ->
          clock := !clock + dt;
          let t = !clock in
          let id = !next_id in
          incr next_id;
          exec
            (Printf.sprintf "ARRIVE %d %d %d,%d" t id s1 s2)
            (fun reply ->
              match String.split_on_char ' ' reply with
              | [ "PLACED"; b; o ] ->
                  let e =
                    Journal.Arrive
                      {
                        tenant = Tenant.default;
                        time = float_of_int t;
                        item_id = id;
                        size = v [ s1; s2 ];
                        bin_id = int_of_string b;
                        opened_new_bin = o = "1";
                      }
                  in
                  model := Ref_model.apply !model e;
                  applied := e :: !applied
              | _ -> failwith ("unexpected reply to ARRIVE: " ^ reply))
      | Depart (dt, idx) -> (
          clock := !clock + dt;
          let t = !clock in
          match live_items () with
          | [] ->
              (* no live item: a bogus departure must be an ERR, not an event *)
              exec
                (Printf.sprintf "DEPART %d %d" t 999_999)
                (fun reply ->
                  if String.length reply < 3 || String.sub reply 0 3 <> "ERR" then
                    failwith ("expected ERR for a bogus DEPART, got " ^ reply))
          | live ->
              let id = List.nth live (idx mod List.length live) in
              exec
                (Printf.sprintf "DEPART %d %d" t id)
                (fun reply ->
                  if reply = "OK" then begin
                    let e =
                      Journal.Depart
                        { tenant = Tenant.default; time = float_of_int t; item_id = id }
                    in
                    model := Ref_model.apply !model e;
                    applied := e :: !applied
                  end
                  else if
                    (* batch mode picks the victim before earlier queued
                       lines apply: a double departure inside one batch is
                       refused, which is itself the isolation contract *)
                    not
                      (batch <> None
                      && (String.length reply >= 3 && String.sub reply 0 3 = "ERR"))
                  then failwith ("unexpected reply to DEPART: " ^ reply)))
      | Snap ->
          exec "SNAPSHOT" (fun reply ->
              if String.length reply < 2 || String.sub reply 0 2 <> "OK" then
                failwith ("unexpected reply to SNAPSHOT: " ^ reply))
      | Compact -> (
          (* not a protocol line: drain queued requests first so the
             snapshot covers everything acked, then run a whole pass *)
          flush_batch ();
          match Server.compact !server with
          | Ok _ -> ()
          | Error e -> failwith ("compact: " ^ e)
          | exception Sim_fs.Crash -> recover_after !pending_mode)
      | Crash_now m ->
          flush_batch ();
          recover_after (mode_of_int m)
      | Crash_at (ahead, m) ->
          pending_mode := mode_of_int m;
          Sim_fs.plan_crash fs ~at_op:(Sim_fs.ops fs + ahead))
    cmds;
  flush_batch ();
  (* defuse any unfired planted crash, then check the live session *)
  Sim_fs.plan_crash fs ~at_op:max_int;
  (match Ref_model.agrees_with !model (Server.sessions !server) with
  | Ok () -> ()
  | Error e -> failwith ("live session: " ^ e));
  (* end with one more power cut: the final state must recover too *)
  recover_after Sim_fs.Torn;
  Server.close !server;
  true

let sm_gen =
  QCheck2.Gen.(
    let* fs_seed = 0 -- 9999 in
    let* n = 5 -- 40 in
    let* cmds =
      list_repeat n
        (frequency
           [
             ( 6,
               let* dt = 1 -- 3 in
               let* s1 = 1 -- 60 in
               let* s2 = 1 -- 60 in
               return (Arrive (dt, s1, s2)) );
             ( 3,
               let* dt = 1 -- 3 in
               let* idx = 0 -- 7 in
               return (Depart (dt, idx)) );
             (1, return Snap);
             (1, return Compact);
             ( 1,
               let* m = 0 -- 2 in
               return (Crash_now m) );
             ( 1,
               let* m = 0 -- 2 in
               let* ahead = 1 -- 30 in
               return (Crash_at (ahead, m)) );
           ])
    in
    return (fs_seed, cmds))

let sm_print (fs_seed, cmds) =
  Printf.sprintf "fs_seed=%d schedule=[%s]" fs_seed
    (String.concat "; " (List.map show_cmd cmds))

let prop_state_machine =
  QCheck2.Test.make
    ~name:"random serve/crash/recover schedules agree with the pure model"
    ~count:(200 * budget) ~print:sm_print sm_gen
    (fun case -> run_case case)

let sm_batch_gen =
  QCheck2.Gen.(
    let* b = 2 -- 7 in
    let* case = sm_gen in
    return (b, case))

let prop_state_machine_batch =
  QCheck2.Test.make
    ~name:"group-commit schedules: every batch-acked event survives any crash"
    ~count:(120 * budget)
    ~print:(fun (b, case) -> Printf.sprintf "batch=%d %s" b (sm_print case))
    sm_batch_gen
    (fun (b, case) -> run_case ~batch:b case)

let statemachine_tests = [ qcheck prop_state_machine; qcheck prop_state_machine_batch ]

(* ------------------------------------------------------------------ *)
(* sim.corruption: the record codec rejects single-byte corruption     *)
(* ------------------------------------------------------------------ *)

let event_gen =
  QCheck2.Gen.(
    let* half_t = 0 -- 80 in
    let time = float_of_int half_t /. 2.0 in
    let* id = 0 -- 50 in
    let* tenant = oneofl [ Tenant.default; "t1"; "acme-2"; "a.b_c" ] in
    let* is_arrive = bool in
    if is_arrive then
      let* d = 1 -- 3 in
      let* sizes = list_repeat d (1 -- 100) in
      let* bin_id = 0 -- 20 in
      let* opened_new_bin = bool in
      return
        (Journal.Arrive
           { tenant; time; item_id = id; size = v sizes; bin_id; opened_new_bin })
    else return (Journal.Depart { tenant; time; item_id = id }))

(* The checksum field is parsed case-insensitively ("0x" prefix hex), so a
   flip inside it can yield a cosmetically different record that decodes to
   the *same* event — harmless. What must never happen is decoding to a
   different event: the 16-bit rolling checksum has odd byte weights, so any
   single-byte change of the body is detected unconditionally. *)
let prop_byte_flip =
  QCheck2.Test.make
    ~name:"a flipped byte is rejected (or decodes to the identical event)"
    ~count:(400 * budget)
    QCheck2.Gen.(triple event_gen (0 -- 10_000) (1 -- 255))
    (fun (e, pos, mask) ->
      let line = Journal.encode_event e in
      let pos = pos mod String.length line in
      let b = Bytes.of_string line in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      match Journal.decode_event (Bytes.to_string b) with
      | Error _ -> true
      | Ok e' -> Journal.equal_event e e')

let corruption_tests =
  [
    qcheck prop_byte_flip;
    Alcotest.test_case
      "terminated corrupt record stays a hard error under the sim backend"
      `Quick (fun () ->
        let fs = Sim_fs.create () in
        let io = Sim_fs.io fs in
        let header = { Journal.policy = "mtf"; seed = 1; capacity = cap; base = 0 } in
        let w = Journal.create ~io ~path:"sim/j.log" header in
        Journal.append w
          (Journal.Arrive
             { tenant = Tenant.default; time = 0.0; item_id = 0;
               size = v [ 30; 20 ]; bin_id = 0; opened_new_bin = true });
        Journal.append w
          (Journal.Depart { tenant = Tenant.default; time = 2.0; item_id = 0 });
        Journal.close w;
        (* the records live in the active segment — the file the torn-tail
           heuristics apply to *)
        let seg0 = "sim/j.log.000000.seg.open" in
        let content = Option.get (Sim_fs.contents fs seg0) in
        let len = String.length content in
        check_bool "journal is newline-terminated" true (content.[len - 1] = '\n');
        (* flip the last body byte of the final record, keep the terminator:
           a terminated corrupt line must be a hard error, not healed *)
        let b = Bytes.of_string content in
        let pos = len - 8 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
        write_file io seg0 (Bytes.to_string b);
        (match Journal.read_file ~io "sim/j.log" with
        | Error e ->
            check_bool "error names the checksum" true
              (String.length e > 0)
        | Ok _ -> Alcotest.fail "terminated corrupt record was accepted");
        (* whereas the same corruption *unterminated* is a torn tail: healed
           by dropping the final record *)
        write_file io seg0 (String.sub content 0 (len - 5));
        let r = ok_or_fail (Journal.read_file ~io "sim/j.log") in
        check_bool "torn tail dropped" true r.Journal.dropped_torn;
        check_int "only the intact record survives" 1 (List.length r.Journal.events));
    Alcotest.test_case
      "a sealed segment never heals: torn tail inside it is a hard error"
      `Quick (fun () ->
        (* Build a journal whose tiny segment size forces at least one
           seal, then truncate bytes off a *sealed* file. The active
           segment's healing heuristics must not apply: content fsynced
           before the seal rename means a short sealed file is corruption,
           and reading has to fail loudly. *)
        let fs = Sim_fs.create () in
        let io = Sim_fs.io fs in
        let header = { Journal.policy = "mtf"; seed = 1; capacity = cap; base = 0 } in
        let w = Journal.create ~io ~segment_bytes:64 ~path:"sim/j.log" header in
        for i = 0 to 3 do
          Journal.append w
            (Journal.Arrive
               { tenant = Tenant.default; time = float_of_int i; item_id = i;
                 size = v [ 10; 10 ]; bin_id = 0; opened_new_bin = (i = 0) })
        done;
        Journal.close w;
        check_bool "at least one segment sealed" true (Journal.sealed_segments w >= 1);
        let sealed = "sim/j.log.000000.seg" in
        let content = Option.get (Sim_fs.contents fs sealed) in
        ignore (ok_or_fail (Journal.read_file ~io "sim/j.log"));
        (* drop the footer line: complete records, missing seal *)
        let no_footer =
          let cut = String.rindex_from content (String.length content - 2) '\n' in
          String.sub content 0 (cut + 1)
        in
        write_file io sealed no_footer;
        (match Journal.read_file ~io "sim/j.log" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "sealed segment without its footer was accepted");
        (* tear mid-record: must also be a hard error, never healed *)
        write_file io sealed (String.sub content 0 (String.length content - 9));
        (match Journal.read_file ~io "sim/j.log" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "torn sealed segment was healed"));
  ]

(* ------------------------------------------------------------------ *)
(* sim.hygiene: ".tmp" leftovers                                       *)
(* ------------------------------------------------------------------ *)

let hygiene_tests =
  [
    Alcotest.test_case "a completed run leaves no .tmp files (sim backend)"
      `Quick (fun () ->
        let fs, _ = completed_run ~wrap:(fun io -> io) 16 in
        List.iter
          (fun (path, _) ->
            check_bool (path ^ " is not a leftover tmp") false
              (Filename.check_suffix path ".tmp"))
          (Sim_fs.dump fs));
    Alcotest.test_case "Snapshot.write leaves no .tmp file (real backend)"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "s.snap" in
            let session = Dvbp_engine.Session.create ~capacity:cap
                ~policy:(ok_or_fail (Dvbp_core.Policy.of_name
                                        ~rng:(Rng.create ~seed:1) "mtf")) () in
            let snap =
              {
                Snapshot.policy = "mtf";
                seed = 1;
                capacity = cap;
                digests =
                  [ Snapshot.digest_of_session ~tenant:Tenant.default session ];
                history = [];
              }
            in
            Snapshot.write ~path snap;
            check_bool "snapshot written" true (Sys.file_exists path);
            check_bool "no tmp leftover" false (Sys.file_exists (path ^ ".tmp"))));
    Alcotest.test_case
      "stale .tmp files from an earlier crash are overwritten, never read"
      `Quick (fun () ->
        (* a completed run, then garbage tmps appear (as a crash between
           tmp-write and rename would leave them) *)
        let fs, io = completed_run ~wrap:(fun io -> io) 16 in
        let before =
          ok_or_fail (Recovery.recover ~io ~snapshot:"sim/s.snap" ~journal:"sim/j.log" ())
        in
        write_file io "sim/s.snap.tmp" "GARBAGE";
        write_file io "sim/j.log.tmp" "GARBAGE";
        let after =
          ok_or_fail (Recovery.recover ~io ~snapshot:"sim/s.snap" ~journal:"sim/j.log" ())
        in
        check_int "recovery never reads the tmps: same history"
          (List.length before.Recovery.history)
          (List.length after.Recovery.history);
        check_string "same recovered state"
          (Session.fingerprint (Recovery.session before))
          (Session.fingerprint (Recovery.session after));
        (* resume serving and snapshot again: the stale tmps are overwritten
           harmlessly and renamed away *)
        let server = ok_or_fail (Server.resume ~io
          { Server.policy = "mtf"; seed = 7; capacity = cap;
            journal = Some "sim/j.log"; snapshot = Some "sim/s.snap";
            snapshot_every = Some 4; fsync_every = 2; jobs = 1;
            segment_bytes = None; retain_segments = None } after) in
        let reply, _ = Server.handle_line server "SNAPSHOT" in
        check_bool "snapshot succeeds over stale tmps" true
          (String.length reply >= 2 && String.sub reply 0 2 = "OK");
        Server.close server;
        check_bool "stale snapshot tmp is gone" true
          (Sim_fs.contents fs "sim/s.snap.tmp" <> Some "GARBAGE");
        (* the stray journal tmp is inert under the segmented layout: it is
           never classified as a segment, so the chain reads clean past it *)
        let r = ok_or_fail (Journal.read_file ~io "sim/j.log") in
        check_int "journal chain unaffected by the stray tmp" 0
          (List.length r.Journal.events));
  ]

(* ------------------------------------------------------------------ *)
(* sim.env: DVBP_SIM_BUDGET validation                                 *)
(* ------------------------------------------------------------------ *)

let env_tests =
  [
    Alcotest.test_case "DVBP_SIM_BUDGET parses like DVBP_JOBS" `Quick (fun () ->
        check_int "plain integer" 4 (Sim_env.parse "4");
        check_int "whitespace tolerated" 2 (Sim_env.parse " 2 ");
        List.iter
          (fun bad ->
            check_bool (Printf.sprintf "%S rejected" bad) true
              (try
                 ignore (Sim_env.parse bad);
                 false
               with Invalid_argument _ -> true))
          [ "0"; "-3"; "1.5"; "many"; "" ]);
    Alcotest.test_case "budget reads the environment, defaulting to 1" `Quick
      (fun () ->
        let original = Sys.getenv_opt Sim_env.var in
        Fun.protect
          ~finally:(fun () ->
            (* putenv cannot unset: leave a valid value behind *)
            Unix.putenv Sim_env.var (Option.value original ~default:"1"))
          (fun () ->
            Unix.putenv Sim_env.var "3";
            check_int "set to 3" 3 (Sim_env.budget ());
            Unix.putenv Sim_env.var "nope";
            check_bool "invalid value is loud" true
              (try
                 ignore (Sim_env.budget ());
                 false
               with Invalid_argument _ -> true)));
  ]

let suites =
  [
    ("sim.fs", fs_tests);
    ("sim.sweep", sweep_tests);
    ("sim.statemachine", statemachine_tests);
    ("sim.corruption", corruption_tests);
    ("sim.hygiene", hygiene_tests);
    ("sim.env", env_tests);
  ]
