(* Tests for the CLI support library: workload selection/dispatch and the
   run-and-report path. *)

open Dvbp_cli_lib
module Instance = Dvbp_core.Instance

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let source ?(workload = "uniform") ?trace ?(d = 2) ?(mu = 5) ?(n = 50)
    ?(rho = 0.5) ?(seed = 1) () =
  { Workload_select.workload; trace; d; mu; n; rho; seed }

let select_tests =
  [
    Alcotest.test_case "every known workload builds" `Quick (fun () ->
        List.iter
          (fun workload ->
            match Workload_select.build (source ~workload ()) with
            | Ok inst -> check_bool workload true (Instance.size inst > 0)
            | Error e -> Alcotest.failf "%s: %s" workload e)
          Workload_select.known_workloads);
    Alcotest.test_case "uniform respects n and d" `Quick (fun () ->
        match Workload_select.build (source ~n:77 ~d:3 ()) with
        | Ok inst ->
            check_int "n" 77 (Instance.size inst);
            check_int "d" 3 (Instance.dim inst)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "unknown workload is a clean error" `Quick (fun () ->
        match Workload_select.build (source ~workload:"nonsense" ()) with
        | Error msg -> check_bool "mentions known list" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "generator validation surfaces as Error" `Quick (fun () ->
        check_bool "n=0" true
          (Result.is_error (Workload_select.build (source ~n:0 ())));
        check_bool "mu>span" true
          (Result.is_error (Workload_select.build (source ~mu:100_000 ()))));
    Alcotest.test_case "trace overrides workload" `Quick (fun () ->
        let path = Filename.temp_file "dvbp_cli" ".csv" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc "capacity,10\nitem,0,0.0,1.0,5\n");
            match Workload_select.build (source ~workload:"nonsense" ~trace:path ()) with
            | Ok inst -> check_int "one item" 1 (Instance.size inst)
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "missing trace file is a clean error" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (Workload_select.build (source ~trace:"/nonexistent.csv" ()))));
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let get () =
          match Workload_select.build (source ~seed:9 ()) with
          | Ok i -> Dvbp_workload.Trace_io.to_string i
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check string) "same" (get ()) (get ()));
  ]

let report_tests =
  [
    Alcotest.test_case "run_one succeeds for every policy name" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:20 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        List.iter
          (fun policy ->
            match Run_report.run_one ~policy ~seed:1 inst ~gantt:false with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" policy e)
          ("daf" :: "hff" :: Dvbp_core.Policy.standard_names));
    Alcotest.test_case "run_one exports assignments on request" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:10 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        let path = Filename.temp_file "dvbp_assign" ".csv" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            (match Run_report.run_one ~export:path ~policy:"ff" ~seed:1 inst ~gantt:false with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let lines =
              In_channel.with_open_text path In_channel.input_all
              |> String.split_on_char '\n'
              |> List.filter (fun l -> l <> "")
            in
            (* header + one row per item *)
            check_int "rows" (1 + Instance.size inst) (List.length lines)));
    Alcotest.test_case "run_one with trajectory plot succeeds" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:15 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        match Run_report.run_one ~trajectory:true ~policy:"mtf" ~seed:1 inst ~gantt:false with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "run_one rejects unknown policies" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:5 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        check_bool "error" true
          (Result.is_error (Run_report.run_one ~policy:"zzz" ~seed:1 inst ~gantt:false)));
    Alcotest.test_case "run_one --reduce and --repack paths succeed" `Quick
      (fun () ->
        let inst =
          match Workload_select.build (source ~n:20 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        (match
           Run_report.run_one
             ~reduce:{ Dvbp_reduce.Reduce.gamma = 1.2; merge_twins = true }
             ~policy:"ff" ~seed:1 inst ~gantt:false
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        match
          Run_report.run_one ~repack:Dvbp_engine.Repack.default_config
            ~policy:"ff" ~seed:1 inst ~gantt:false
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "run_one --repack rejections name the flag" `Quick
      (fun () ->
        let inst =
          match Workload_select.build (source ~n:5 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        let repack = Dvbp_engine.Repack.default_config in
        let expect flag = function
          | Error msg -> check_bool (flag ^ " named") true (contains_sub msg flag)
          | Ok () -> Alcotest.failf "%s: expected an error" flag
        in
        expect "--gantt" (Run_report.run_one ~repack ~policy:"ff" ~seed:1 inst ~gantt:true);
        expect "--export"
          (Run_report.run_one ~repack ~export:"/dev/null" ~policy:"ff" ~seed:1 inst
             ~gantt:false);
        expect "--trajectory"
          (Run_report.run_one ~repack ~trajectory:true ~policy:"ff" ~seed:1 inst
             ~gantt:false);
        expect "--reduce"
          (Run_report.run_one ~repack ~reduce:Dvbp_reduce.Reduce.default_config
             ~policy:"ff" ~seed:1 inst ~gantt:false);
        (match Run_report.run_one ~repack ~policy:"nf" ~seed:1 inst ~gantt:false with
        | Error msg ->
            check_bool "names supported bases" true
              (contains_sub msg Dvbp_engine.Repack.supported_base_names)
        | Ok () -> Alcotest.fail "nf: expected an error"));
  ]

(* The service subcommands return [Error msg] on every bad input — the
   binary maps that to one line on stderr and a non-zero exit — so the
   error paths are all unit-testable here. *)

let serve_opts ?(policy = "mtf") ?(seed = 7) ?(capacity = "100,100") ?journal
    ?snapshot ?snapshot_every ?(fsync_every = 64) ?(jobs = 1) ?segment_bytes
    ?retain_segments ?listen ?(resume = false) ?metrics_dump () =
  {
    Service_cli.policy;
    seed;
    capacity;
    journal;
    snapshot;
    snapshot_every;
    fsync_every;
    jobs;
    segment_bytes;
    retain_segments;
    listen;
    resume;
    metrics_dump;
  }

let with_tmp_dir f =
  let dir = Filename.temp_file "dvbp_cli_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* runs [Service_cli.serve] over temp files carrying the request script *)
let serve_script opts script =
  with_tmp_dir (fun dir ->
      let inp = Filename.concat dir "in.txt" in
      let outp = Filename.concat dir "out.txt" in
      Out_channel.with_open_text inp (fun oc -> Out_channel.output_string oc script);
      let result =
        In_channel.with_open_text inp (fun ic ->
            Out_channel.with_open_text outp (fun oc -> Service_cli.serve opts ic oc))
      in
      Result.map
        (fun () -> In_channel.with_open_text outp In_channel.input_all)
        result)

let service_tests =
  [
    Alcotest.test_case "parse_capacity accepts well-formed vectors" `Quick
      (fun () ->
        (match Service_cli.parse_capacity " 10 , 20 " with
        | Ok v -> check_bool "parsed" true (Dvbp_vec.Vec.to_array v = [| 10; 20 |])
        | Error e -> Alcotest.fail e);
        match Service_cli.parse_capacity "100" with
        | Ok v -> check_int "dim 1" 1 (Dvbp_vec.Vec.dim v)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "parse_capacity rejects malformed vectors" `Quick
      (fun () ->
        List.iter
          (fun s ->
            check_bool s true (Result.is_error (Service_cli.parse_capacity s)))
          [ ""; " "; "0"; "-3"; "ten"; "1,,2"; "10,0"; "1,2,x" ]);
    Alcotest.test_case "serve surfaces a bad capacity flag" `Quick (fun () ->
        match serve_script (serve_opts ~capacity:"1,zap" ()) "QUIT\n" with
        | Error msg -> check_bool "names the flag" true (contains_sub msg "--capacity")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "serve surfaces an unknown policy" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (serve_script (serve_opts ~policy:"zzz" ()) "QUIT\n")));
    Alcotest.test_case "serve rejects --resume without --journal" `Quick (fun () ->
        match serve_script (serve_opts ~resume:true ()) "QUIT\n" with
        | Error msg -> check_bool "names journal" true (contains_sub msg "journal")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "serve rejects snapshot-every without snapshot path"
      `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (serve_script (serve_opts ~snapshot_every:5 ()) "QUIT\n")));
    Alcotest.test_case "serve answers the protocol end to end" `Quick (fun () ->
        match serve_script (serve_opts ()) "ARRIVE 0 0 60,10\nSTATS\nQUIT\n" with
        | Ok out ->
            check_bool "placed" true (contains_sub out "PLACED 0 1");
            check_bool "stats" true (contains_sub out "placements=1");
            check_bool "bye" true (contains_sub out "BYE")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "serve --resume continues a journaled session" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let opts = serve_opts ~journal () in
            (match serve_script opts "ARRIVE 0 0 60,10\nQUIT\n" with
            | Ok out -> check_bool "placed" true (contains_sub out "PLACED 0 1")
            | Error e -> Alcotest.fail e);
            match
              serve_script { opts with Service_cli.resume = true }
                "ARRIVE 1 1 30,30\nSTATS\nQUIT\n"
            with
            | Ok out ->
                (* the recovered mtf state reuses bin 0 rather than opening *)
                check_bool "resumed placement" true (contains_sub out "PLACED 0 0");
                check_bool "both events" true (contains_sub out "events=2")
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "recover reports a missing journal" `Quick (fun () ->
        match Service_cli.recover ~journal:"/nonexistent/j.log" ~snapshot:None with
        | Error msg -> check_bool "names the path" true (contains_sub msg "j.log")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "recover renders a journaled session" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            (match serve_script (serve_opts ~journal ()) "ARRIVE 0 0 60,10\nQUIT\n" with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e);
            match Service_cli.recover ~journal ~snapshot:None with
            | Ok out ->
                check_bool "policy" true (contains_sub out "mtf");
                check_bool "open bin" true (contains_sub out "bin 0")
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "recover rejects a corrupt journal" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            Out_channel.with_open_text journal (fun oc ->
                Out_channel.output_string oc "not a journal at all\n");
            check_bool "error" true
              (Result.is_error (Service_cli.recover ~journal ~snapshot:None))));
    Alcotest.test_case "serve rejects retain-segments without snapshot path"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            check_bool "error" true
              (Result.is_error
                 (serve_script
                    (serve_opts ~journal ~retain_segments:1 ())
                    "QUIT\n"))));
    Alcotest.test_case "compact reports a missing journal" `Quick (fun () ->
        match
          Service_cli.compact ~journal:"/nonexistent/j.log"
            ~snapshot:"/nonexistent/s.snap" ()
        with
        | Error msg -> check_bool "names the path" true (contains_sub msg "j.log")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "compact retires the sealed chain behind a snapshot"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let journal = Filename.concat dir "j.log" in
            let snapshot = Filename.concat dir "s.snap" in
            (* tiny segments: every journaled event seals its own segment *)
            (match
               serve_script
                 (serve_opts ~journal ~segment_bytes:64 ())
                 "ARRIVE 0 0 60,10\nARRIVE 1 1 50,50\nDEPART 2 0\nQUIT\n"
             with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e);
            (match Service_cli.compact ~journal ~snapshot () with
            | Error e -> Alcotest.fail e
            | Ok out ->
                check_bool "events covered" true (contains_sub out "3 events");
                check_bool "segments retired" true
                  (contains_sub out "3 sealed segments retired"));
            (* the compacted state still recovers: snapshot plus tail *)
            match Service_cli.recover ~journal ~snapshot:(Some snapshot) with
            | Ok out -> check_bool "recovers" true (contains_sub out "mtf")
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "loadgen --emit prints the protocol script" `Quick
      (fun () ->
        let opts =
          {
            Service_cli.source = source ~n:5 ();
            lg_policy = "mtf";
            lg_seed = 7;
            lg_journal = None;
            lg_snapshot = None;
            lg_snapshot_every = None;
            lg_fsync_every = None;
            lg_clients = 0;
            lg_jobs = 1;
            lg_window = 256;
            lg_connect = None;
            emit = true;
          }
        in
        match Service_cli.loadgen opts with
        | Ok out ->
            check_bool "arrives" true (contains_sub out "ARRIVE");
            check_bool "departs" true (contains_sub out "DEPART")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "loadgen surfaces workload and policy errors" `Quick
      (fun () ->
        let opts =
          {
            Service_cli.source = source ~trace:"/nonexistent.csv" ();
            lg_policy = "mtf";
            lg_seed = 7;
            lg_journal = None;
            lg_snapshot = None;
            lg_snapshot_every = None;
            lg_fsync_every = None;
            lg_clients = 0;
            lg_jobs = 1;
            lg_window = 256;
            lg_connect = None;
            emit = false;
          }
        in
        check_bool "bad trace" true (Result.is_error (Service_cli.loadgen opts));
        check_bool "bad policy" true
          (Result.is_error
             (Service_cli.loadgen
                { opts with Service_cli.source = source ~n:5 (); lg_policy = "zzz" })));
  ]

let suites =
  [
    ("cli.workload_select", select_tests);
    ("cli.run_report", report_tests);
    ("cli.service", service_tests);
  ]
