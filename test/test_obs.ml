(* Tests for the dependency-free observability library: histogram bucket
   boundaries (exact at powers of two), quantile monotonicity and clamping,
   merge associativity, the registry's render/parse round trip, the noop
   sink, and span ring buffering under a fake clock. *)

module H = Dvbp_obs.Histogram
module R = Dvbp_obs.Registry
module Prom = Dvbp_obs.Prom

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let observe_all h vs = List.iter (H.observe h) vs

let histogram_tests =
  [
    Alcotest.test_case "empty histogram snapshots to zeros, never NaN" `Quick (fun () ->
        let s = H.snapshot (H.create ()) in
        check_int "n" 0 s.H.n;
        check_float "total" 0.0 s.H.total;
        check_float "mean" 0.0 s.H.mean;
        check_float "p50" 0.0 s.H.p50;
        check_float "p99" 0.0 s.H.p99;
        check_float "max" 0.0 s.H.max_v;
        check_bool "no NaN anywhere" false
          (List.exists Float.is_nan [ s.H.total; s.H.mean; s.H.min_v; s.H.max_v; s.H.p50; s.H.p90; s.H.p99 ]));
    Alcotest.test_case "powers of two are bucket-exact at every quantile" `Quick
      (fun () ->
        (* covers negative exponents (sub-second latencies), 1.0, and large *)
        List.iter
          (fun k ->
            let x = Float.ldexp 1.0 k in
            let h = H.create () in
            for _ = 1 to 17 do H.observe h x done;
            List.iter
              (fun q ->
                Alcotest.(check (float 0.0))
                  (Printf.sprintf "2^%d at q=%g" k q)
                  x (H.quantile h q))
              [ 0.0; 0.01; 0.5; 0.9; 0.99; 1.0 ])
          [ -20; -10; -3; -1; 0; 1; 7; 20 ]);
    Alcotest.test_case "relative bucket error is within 1/8" `Quick (fun () ->
        let h = H.create () in
        (* single value: every quantile clamps to [min,max] = the value *)
        H.observe h 3.7e-4;
        check_float "single value exact via clamping" 3.7e-4 (H.quantile h 0.5);
        (* two distinct values: the p50 bucket lower bound is within 12.5%
           below the smaller value *)
        let h2 = H.create () in
        H.observe h2 10.0;
        H.observe h2 1000.0;
        let p50 = H.quantile h2 0.5 in
        check_bool "p50 lower-bounds the rank-1 value within an eighth" true
          (p50 <= 10.0 && p50 >= 10.0 *. 0.875));
    Alcotest.test_case "zero, negative and NaN land in the zero bucket" `Quick
      (fun () ->
        let h = H.create () in
        observe_all h [ 0.0; -5.0; Float.nan ];
        check_int "all counted" 3 (H.count h);
        check_int "zero bucket holds them" 3 (H.bucket_counts h).(0);
        check_float "p50 of nonpositives is 0" 0.0 (H.quantile h 0.5);
        (* min saw the raw -5 (NaN excluded) *)
        check_float "min" (-5.0) (H.min_value h));
    Alcotest.test_case "count/sum/min/max are exact" `Quick (fun () ->
        let h = H.create () in
        observe_all h [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ];
        check_int "count" 8 (H.count h);
        check_float "sum" 31.0 (H.sum h);
        check_float "min" 1.0 (H.min_value h);
        check_float "max" 9.0 (H.max_value h);
        check_float "mean" (31.0 /. 8.0) (H.snapshot h).H.mean);
    Alcotest.test_case "quantiles clamp to the observed range" `Quick (fun () ->
        let h = H.create () in
        observe_all h [ 5.0; 5.5; 5.9 ];
        List.iter
          (fun q ->
            let x = H.quantile h q in
            check_bool (Printf.sprintf "q=%g in range" q) true (x >= 5.0 && x <= 5.9))
          [ 0.0; 0.25; 0.5; 0.75; 0.99; 1.0 ]);
    Alcotest.test_case "merge equals feeding one histogram" `Quick (fun () ->
        let a = H.create () and b = H.create () and all = H.create () in
        let xs = [ 0.001; 0.5; 2.0; 2.0; 64.0 ] and ys = [ 0.25; 3.0; 1e6 ] in
        observe_all a xs;
        observe_all b ys;
        observe_all all (xs @ ys);
        let m = H.merge a b in
        check_int "count" (H.count all) (H.count m);
        check_float "sum" (H.sum all) (H.sum m);
        check_float "min" (H.min_value all) (H.min_value m);
        check_float "max" (H.max_value all) (H.max_value m);
        check_bool "buckets" true (H.bucket_counts all = H.bucket_counts m))
  ]

(* qcheck generators: positive latency-like floats, plus integer-valued
   floats for the associativity law (float addition over ints is exact, so
   sums compare with =) *)
let pos_float_gen =
  QCheck2.Gen.(
    let* mag = -30 -- 25 in
    let* m = float_range 1.0 2.0 in
    return (Float.ldexp m mag))

let obs_list_gen = QCheck2.Gen.(list_size (0 -- 40) pos_float_gen)
let int_obs_list_gen = QCheck2.Gen.(list_size (0 -- 30) (map float_of_int (0 -- 1_000_000)))

let of_list vs =
  let h = H.create () in
  observe_all h vs;
  h

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"quantile is monotone in q" ~count:300 obs_list_gen
        (fun vs ->
          let h = of_list vs in
          let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
          let xs = List.map (H.quantile h) qs in
          let rec mono = function
            | a :: (b :: _ as rest) -> a <= b && mono rest
            | _ -> true
          in
          mono xs);
      QCheck2.Test.make ~name:"merge is associative and commutative" ~count:200
        QCheck2.Gen.(triple int_obs_list_gen int_obs_list_gen int_obs_list_gen)
        (fun (xs, ys, zs) ->
          let a = of_list xs and b = of_list ys and c = of_list zs in
          let l = H.merge (H.merge a b) c and r = H.merge a (H.merge b c) in
          let com = H.merge b a and com' = H.merge a b in
          H.snapshot l = H.snapshot r
          && H.bucket_counts l = H.bucket_counts r
          && H.snapshot com = H.snapshot com'
          && H.bucket_counts com = H.bucket_counts com');
      QCheck2.Test.make ~name:"merge with empty is identity" ~count:200 obs_list_gen
        (fun vs ->
          let h = of_list vs in
          let m = H.merge h (H.create ()) in
          H.snapshot m = H.snapshot h && H.bucket_counts m = H.bucket_counts h);
      QCheck2.Test.make ~name:"quantile(1) is the exact max, quantile(0) the min"
        ~count:300 obs_list_gen (fun vs ->
          let h = of_list vs in
          match vs with
          | [] -> H.quantile h 1.0 = 0.0 && H.quantile h 0.0 = 0.0
          | _ ->
              H.quantile h 1.0 = List.fold_left Float.max neg_infinity vs
              && H.quantile h 0.0 = List.fold_left Float.min infinity vs);
    ]

let find_exn rows ?labels name =
  match Prom.find rows ?labels name with
  | Some r -> r
  | None -> Alcotest.failf "metric %s not found" name

let registry_tests =
  [
    Alcotest.test_case "render/parse round trip with labels" `Quick (fun () ->
        let r = R.create () in
        let c = R.Counter.make r "test_requests_total" ~help:"requests" in
        R.Counter.add c 41;
        R.Counter.incr c;
        let g = R.Gauge.make r "test_temp" ~labels:[ ("room", "a b") ] in
        R.Gauge.set g 1.5;
        R.Counter.pull r "test_pulled_total" (fun () -> 7);
        let h = R.Histo.make r "test_lat_seconds" ~labels:[ ("kind", "x") ] in
        R.Histo.observe h 2.0;
        R.Histo.observe h 2.0;
        let text = R.render r in
        let rows = Result.get_ok (Prom.parse text) in
        check_float "counter" 42.0 (find_exn rows "test_requests_total").Prom.value;
        check_float "gauge label" 1.5
          (find_exn rows ~labels:[ ("room", "a b") ] "test_temp").Prom.value;
        check_float "pull counter" 7.0 (find_exn rows "test_pulled_total").Prom.value;
        check_float "summary count" 2.0
          (find_exn rows ~labels:[ ("kind", "x") ] "test_lat_seconds_count").Prom.value;
        check_float "summary sum" 4.0
          (find_exn rows ~labels:[ ("kind", "x") ] "test_lat_seconds_sum").Prom.value;
        check_float "p50 exact at a power of two" 2.0
          (find_exn rows ~labels:[ ("kind", "x"); ("quantile", "0.5") ] "test_lat_seconds")
            .Prom.value);
    Alcotest.test_case "duplicate and invalid registrations are refused" `Quick
      (fun () ->
        let r = R.create () in
        let _ = R.Counter.make r "dup_total" in
        check_bool "duplicate raises" true
          (match R.Counter.make r "dup_total" with
          | _ -> false
          | exception Invalid_argument _ -> true);
        check_bool "same name, different labels is fine" true
          (match R.Counter.make r "dup_total" ~labels:[ ("k", "v") ] with
          | _ -> true
          | exception Invalid_argument _ -> false);
        check_bool "bad name raises" true
          (match R.Counter.make r "9bad" with
          | _ -> false
          | exception Invalid_argument _ -> true));
    Alcotest.test_case "noop registry records and renders nothing" `Quick (fun () ->
        let r = R.noop () in
        check_bool "is_noop" true (R.is_noop r);
        let c = R.Counter.make r "ignored_total" in
        R.Counter.incr c;
        check_int "instrument still usable" 1 (R.Counter.value c);
        let start = R.Span.enter r "s" in
        R.Span.exit r "s" start;
        check_bool "no spans" true (R.Span.recent r = []);
        Alcotest.(check string) "empty render" "" (R.render ~spans:true r);
        check_float "clock never consulted" 0.0 (R.now r));
    Alcotest.test_case "span ring keeps the most recent spans, fake clock" `Quick
      (fun () ->
        let time = ref 0.0 in
        let r = R.create ~clock:(fun () -> !time) () in
        for i = 1 to R.Span.capacity + 5 do
          time := float_of_int i;
          let t0 = R.Span.enter r (Printf.sprintf "op%d" i) in
          time := !time +. 0.25;
          R.Span.exit r (Printf.sprintf "op%d" i) t0
        done;
        let spans = R.Span.recent r in
        check_int "ring capacity" R.Span.capacity (List.length spans);
        let first = List.hd spans and last = List.nth spans (List.length spans - 1) in
        Alcotest.(check string) "oldest surviving" "op6" first.R.Span.sp_name;
        Alcotest.(check string) "newest" (Printf.sprintf "op%d" (R.Span.capacity + 5))
          last.R.Span.sp_name;
        check_float "duration from the fake clock" 0.25 last.R.Span.sp_dur;
        (* spans render as comments and parse back *)
        let text = R.render ~spans:true r in
        let parsed = Prom.parse_spans text in
        check_int "parsed spans" R.Span.capacity (List.length parsed);
        check_bool "sample parse unaffected by span comments" true
          (Result.is_ok (Prom.parse text)));
    Alcotest.test_case "parse rejects malformed lines" `Quick (fun () ->
        check_bool "garbage" true (Result.is_error (Prom.parse "!!!\n"));
        check_bool "missing value" true (Result.is_error (Prom.parse "name_only\n"));
        check_bool "unterminated labels" true
          (Result.is_error (Prom.parse "m{k=\"v\" 1\n"));
        check_bool "non-numeric value" true (Result.is_error (Prom.parse "m wat\n")));
  ]

let suites =
  [
    ("obs / histogram", histogram_tests);
    ("obs / histogram laws", qcheck_tests);
    ("obs / registry", registry_tests);
  ]
