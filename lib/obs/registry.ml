type value =
  | V_counter of int ref
  | V_counter_fn of (unit -> int)
  | V_gauge of float ref
  | V_gauge_fn of (unit -> float)
  | V_histo of Histogram.t

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_value : value;
}

type span = { sp_name : string; sp_start : float; sp_dur : float }

let span_capacity = 64

type t = {
  nop : bool;
  clock : unit -> float;
  mutable metrics : metric list; (* reverse registration order *)
  spans : span option array;
  mutable span_total : int;
}

let create ?(clock = Sys.time) () =
  { nop = false; clock; metrics = []; spans = Array.make span_capacity None; span_total = 0 }

let noop () =
  { nop = true; clock = (fun () -> 0.0); metrics = []; spans = [||]; span_total = 0 }

let is_noop t = t.nop
let now t = if t.nop then 0.0 else t.clock ()

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let register t ~help ~labels name v =
  if not t.nop then begin
    if not (valid_name name) then invalid_arg ("Registry: invalid metric name " ^ name);
    if List.exists (fun m -> m.m_name = name && m.m_labels = labels) t.metrics then
      invalid_arg ("Registry: duplicate metric " ^ name);
    t.metrics <- { m_name = name; m_labels = labels; m_help = help; m_value = v } :: t.metrics
  end

module Counter = struct
  type registry = t
  type t = int ref

  let make (r : registry) ?(help = "") ?(labels = []) name =
    let c = ref 0 in
    register r ~help ~labels name (V_counter c);
    c

  let pull (r : registry) ?(help = "") ?(labels = []) name f =
    register r ~help ~labels name (V_counter_fn f)

  let incr c = incr c
  let add c n = c := !c + n
  let value c = !c
end

module Gauge = struct
  type registry = t
  type t = float ref

  let make (r : registry) ?(help = "") ?(labels = []) name =
    let g = ref 0.0 in
    register r ~help ~labels name (V_gauge g);
    g

  let pull (r : registry) ?(help = "") ?(labels = []) name f =
    register r ~help ~labels name (V_gauge_fn f)

  let set g v = g := v
  let add g v = g := !g +. v
  let value g = !g
end

module Histo = struct
  type registry = t
  type t = Histogram.t

  let make (r : registry) ?(help = "") ?(labels = []) name =
    let h = Histogram.create () in
    register r ~help ~labels name (V_histo h);
    h

  let observe = Histogram.observe
  let snapshot = Histogram.snapshot
end

module Span = struct
  type registry = t
  type nonrec span = span = { sp_name : string; sp_start : float; sp_dur : float }

  let capacity = span_capacity
  let enter (r : registry) _name = now r

  let exit (r : registry) name start =
    if not r.nop then begin
      let dur = r.clock () -. start in
      r.spans.(r.span_total mod span_capacity) <-
        Some { sp_name = name; sp_start = start; sp_dur = dur };
      r.span_total <- r.span_total + 1
    end

  let recent (r : registry) =
    if r.nop then []
    else begin
      let n = min r.span_total span_capacity in
      let first = r.span_total - n in
      let out = ref [] in
      for i = n - 1 downto 0 do
        match r.spans.((first + i) mod span_capacity) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      !out
    end
end

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let fmt_float v = Printf.sprintf "%.12g" v

let type_of_value = function
  | V_counter _ | V_counter_fn _ -> "counter"
  | V_gauge _ | V_gauge_fn _ -> "gauge"
  | V_histo _ -> "summary"

let render ?(spans = false) t =
  if t.nop then ""
  else begin
    let buf = Buffer.create 4096 in
    let last_name = ref "" in
    let emit_header m =
      if m.m_name <> !last_name then begin
        if m.m_help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.m_name m.m_help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.m_name (type_of_value m.m_value));
        last_name := m.m_name
      end
    in
    List.iter
      (fun m ->
        emit_header m;
        let labels = render_labels m.m_labels in
        match m.m_value with
        | V_counter c -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" m.m_name labels !c)
        | V_counter_fn f -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" m.m_name labels (f ()))
        | V_gauge g ->
            Buffer.add_string buf (Printf.sprintf "%s%s %s\n" m.m_name labels (fmt_float !g))
        | V_gauge_fn f ->
            Buffer.add_string buf (Printf.sprintf "%s%s %s\n" m.m_name labels (fmt_float (f ())))
        | V_histo h ->
            let s = Histogram.snapshot h in
            let qlabels q = render_labels (m.m_labels @ [ ("quantile", q) ]) in
            if s.Histogram.n > 0 then begin
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.m_name (qlabels "0.5") (fmt_float s.Histogram.p50));
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.m_name (qlabels "0.9") (fmt_float s.Histogram.p90));
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.m_name (qlabels "0.99") (fmt_float s.Histogram.p99));
              Buffer.add_string buf
                (Printf.sprintf "%s_max%s %s\n" m.m_name labels (fmt_float s.Histogram.max_v))
            end;
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" m.m_name labels s.Histogram.n);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" m.m_name labels (fmt_float s.Histogram.total)))
      (List.rev t.metrics);
    if spans then
      List.iter
        (fun (s : span) ->
          Buffer.add_string buf
            (Printf.sprintf "# span name=%s start=%.6f dur=%.6f\n" s.sp_name s.sp_start s.sp_dur))
        (Span.recent t);
    Buffer.contents buf
  end
