type row = { name : string; labels : (string * string) list; value : float }

exception Bad of string

let is_name_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then raise (Bad "missing metric name");
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let rec pairs () =
      if !i < n && line.[!i] = '}' then incr i
      else begin
        let k0 = !i in
        while !i < n && line.[!i] <> '=' do incr i done;
        if !i >= n then raise (Bad "unterminated labels");
        let key = String.sub line k0 (!i - k0) in
        incr i;
        if !i >= n || line.[!i] <> '"' then raise (Bad "expected opening quote");
        incr i;
        let buf = Buffer.create 16 in
        let rec scan () =
          if !i >= n then raise (Bad "unterminated label value")
          else
            match line.[!i] with
            | '"' -> incr i
            | '\\' ->
                if !i + 1 >= n then raise (Bad "bad escape");
                Buffer.add_char buf (match line.[!i + 1] with 'n' -> '\n' | c -> c);
                i := !i + 2;
                scan ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                scan ()
        in
        scan ();
        labels := (key, Buffer.contents buf) :: !labels;
        if !i < n && line.[!i] = ',' then begin
          incr i;
          pairs ()
        end
        else if !i < n && line.[!i] = '}' then incr i
        else raise (Bad "expected , or } after label")
      end
    in
    pairs ()
  end;
  while !i < n && line.[!i] = ' ' do incr i done;
  if !i >= n then raise (Bad "missing value");
  let vstr = String.trim (String.sub line !i (n - !i)) in
  match float_of_string_opt vstr with
  | Some v -> { name; labels = List.rev !labels; value = v }
  | None -> raise (Bad ("unparseable value " ^ vstr))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc rest
        else begin
          match parse_sample line with
          | row -> go (row :: acc) rest
          | exception Bad msg -> Error (Printf.sprintf "%s: %s" msg line)
        end
  in
  go [] lines

let find rows ?(labels = []) name =
  List.find_opt
    (fun r ->
      r.name = name
      && List.for_all (fun (k, v) -> List.assoc_opt k r.labels = Some v) labels)
    rows

type span = { sp_name : string; sp_start : float; sp_dur : float }

let parse_spans text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let prefix = "# span " in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then begin
           let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
           try
             Scanf.sscanf rest "name=%s start=%f dur=%f" (fun sp_name sp_start sp_dur ->
                 Some { sp_name; sp_start; sp_dur })
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
         end
         else None)
