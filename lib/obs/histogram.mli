(** Fixed-bucket log-linear histogram for latency-like quantities.

    Values are non-negative floats (a latency in seconds, a byte count).
    The bucket layout is fixed at creation — no resizing, no allocation
    per observation beyond the [frexp] pair — and log-linear: every
    power-of-two octave [[2{^k}, 2{^k+1})] is split into 8 linear
    sub-buckets, covering [2{^-34} .. 2{^30}] (values outside clamp to
    the edge buckets; zero, negative and NaN observations land in a
    dedicated zero bucket). Relative quantile error is therefore bounded
    by one sub-bucket width, 1/8 of the value, and a value that is
    {e exactly} a power of two sits exactly on a bucket boundary: a
    histogram holding only [2.0 ** k] reports every quantile as
    [2.0 ** k], bit-for-bit.

    Count, sum, min and max are tracked exactly on the side, so means and
    maxima in rendered snapshots are not subject to bucket rounding.
    Quantiles are monotone in the requested rank and clamped to the
    observed [[min, max]] range. {!merge} is pointwise and associative.

    The structure is single-domain; wrap observations in your own lock if
    several domains share one histogram. *)

type t

val create : unit -> t
(** An empty histogram (513 buckets, ~4 KB). *)

val observe : t -> float -> unit
(** Records one value. Zero, negative and NaN values are counted in the
    zero bucket ([min]/[max]/[sum] still see the raw value, except NaN,
    which only bumps the count). *)

val observe_n : t -> float -> int -> unit
(** [observe_n t v k] records [k] copies of [v] in one bucket update —
    what a group-commit batch wants when all [k] requests shared one
    commit wait. Equivalent to calling {!observe} [k] times; [k <= 0] is
    a no-op. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Smallest observed value; [0.] when empty. *)

val max_value : t -> float
(** Largest observed value, exact; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: the lower bound of the bucket
    holding the value of rank [ceil (q * count)], clamped to the observed
    [[min, max]]. Monotone in [q]; [0.] when empty; [q <= 0]/[q >= 1]
    return the exact min/max. *)

type snapshot = {
  n : int;
  total : float;  (** exact sum of observations *)
  mean : float;  (** [total / n]; [0.] when empty *)
  min_v : float;
  max_v : float;  (** exact extremes; [0.] when empty *)
  p50 : float;
  p90 : float;
  p99 : float;  (** bucketed quantiles (see {!quantile}) *)
}

val snapshot : t -> snapshot
(** All-zero (never NaN) when the histogram is empty. *)

val merge : t -> t -> t
(** Pointwise union, as if every observation of both histograms had been
    fed to one fresh histogram. Associative and commutative: bucket
    counts, [count], [min] and [max] exactly; [sum] up to float-addition
    reassociation. *)

val bucket_counts : t -> int array
(** A copy of the raw bucket counts (index 0 is the zero bucket), for
    tests and serialisation. *)
