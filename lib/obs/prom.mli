(** Parser for the Prometheus-style text rendered by {!Registry.render}.

    This is the read side of the exposition format: the `dvbp metrics`
    subcommand and the test suite use it to turn a `METRICS` reply or a
    [--metrics-dump] file back into structured rows. It understands
    exactly what {!Registry.render} emits — [name{label="v"} value]
    sample lines, [#]-prefixed comments (including [# span ...] trace
    lines) and blank lines — and reports the first malformed line as
    [Error]. It is not a general OpenMetrics parser. *)

type row = {
  name : string;
  labels : (string * string) list;
  value : float;
}

val parse : string -> (row list, string) result
(** Parses sample lines in order, skipping blank lines and comments.
    Label values are unescaped. [Error msg] names the offending line. *)

val find : row list -> ?labels:(string * string) list -> string -> row option
(** First row with the given name whose labels include every pair in
    [labels]. *)

type span = { sp_name : string; sp_start : float; sp_dur : float }

val parse_spans : string -> span list
(** Extracts [# span name=... start=... dur=...] comment lines;
    malformed span comments are skipped. *)
