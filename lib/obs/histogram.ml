(* Bucket layout: slot 0 holds zero/negative/NaN observations; slots
   1 .. octaves*subs cover the frexp-exponent range (min_e, max_e], each
   octave split into [subs] linear sub-buckets. With frexp giving
   v = m * 2^e, m in [0.5, 1), the sub-bucket is the top three mantissa
   bits below the leading one — so a value exactly 2^k (m = 0.5) is the
   first sub-bucket of its octave and its bucket lower bound is 2^k
   itself. *)

let subs = 8
let min_e = -34 (* exponents <= min_e clamp into the first octave *)
let max_e = 30 (* exponents > max_e clamp into the last octave *)
let octaves = max_e - min_e
let nbuckets = 1 + (octaves * subs)

type t = {
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0.0; lo = infinity; hi = neg_infinity }

let index v =
  if not (v > 0.0) then 0 (* zero, negative, NaN *)
  else if v = infinity then nbuckets - 1
  else begin
    let m, e = Float.frexp v in
    if e <= min_e then 1
    else if e > max_e then nbuckets - 1
    else begin
      (* m in [0.5, 1): (m - 0.5) * 16 in [0, 8) *)
      let s = int_of_float ((m -. 0.5) *. 16.0) in
      let s = if s < 0 then 0 else if s >= subs then subs - 1 else s in
      1 + ((e - 1 - min_e) * subs) + s
    end
  end

(* lower bound of bucket [i >= 1]: (0.5 + s/16) * 2^e *)
let lower_bound i =
  let o = (i - 1) / subs and s = (i - 1) mod subs in
  Float.ldexp (0.5 +. (float_of_int s /. 16.0)) (min_e + 1 + o)

let observe t v =
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.n <- t.n + 1;
  if not (Float.is_nan v) then begin
    t.total <- t.total +. v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v
  end

let observe_n t v k =
  if k > 0 then begin
    t.counts.(index v) <- t.counts.(index v) + k;
    t.n <- t.n + k;
    if not (Float.is_nan v) then begin
      t.total <- t.total +. (v *. float_of_int k);
      if v < t.lo then t.lo <- v;
      if v > t.hi then t.hi <- v
    end
  end

let count t = t.n
let sum t = t.total
let min_value t = if t.n = 0 || t.lo = infinity then 0.0 else t.lo
let max_value t = if t.n = 0 || t.hi = neg_infinity then 0.0 else t.hi

let quantile t q =
  if t.n = 0 then 0.0
  else if q <= 0.0 then min_value t
  else if q >= 1.0 then max_value t
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let idx = ref 0 and cum = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let rep = if !idx = 0 then 0.0 else lower_bound !idx in
    let lo = min_value t and hi = max_value t in
    if rep < lo then lo else if rep > hi then hi else rep
  end

type snapshot = {
  n : int;
  total : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let snapshot (t : t) =
  {
    n = t.n;
    total = t.total;
    mean = (if t.n = 0 then 0.0 else t.total /. float_of_int t.n);
    min_v = min_value t;
    max_v = max_value t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
  }

let merge a b =
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    n = a.n + b.n;
    total = a.total +. b.total;
    lo = Float.min a.lo b.lo;
    hi = Float.max a.hi b.hi;
  }

let bucket_counts t = Array.copy t.counts
