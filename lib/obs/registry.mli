(** Metrics registry: typed counters, gauges, histograms and span traces.

    A {!t} owns a set of named instruments and renders them as
    Prometheus-style text exposition (see {!render} and {!Prom} for the
    matching parser). Instruments come in two flavours:

    - {e push} instruments ({!Counter.make}, {!Gauge.make},
      {!Histo.make}) own their state and are updated through the
      registry API;
    - {e pull} instruments ({!Counter.pull}, {!Gauge.pull}) wrap a
      closure sampled at render time, so hot code can keep plain [int]
      fields and pay nothing per event — the registry only reads them
      when a scrape happens.

    A registry created with {!noop} registers nothing and renders
    nothing; instruments made against it are still safe to update (they
    are ordinary values), so instrumented code needs no [if] guards.
    Sweeps and batch experiments pass the noop registry and opt out
    entirely.

    Span tracing ({!Span}) records [enter]/[exit] pairs with the
    registry clock into a fixed ring of recent spans, rendered as
    comment lines so the exposition stays parseable.

    The registry is single-domain, like the rest of the service layer. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A live registry. [clock] (default [Sys.time]) timestamps spans; the
    service layer passes [Unix.gettimeofday] to keep [lib/obs] free of
    dependencies. *)

val noop : unit -> t
(** A registry that records and renders nothing. *)

val is_noop : t -> bool

val now : t -> float
(** The registry clock; [0.] on a noop registry (never calls the
    clock). *)

module Counter : sig
  type registry := t
  type t

  val make : registry -> ?help:string -> ?labels:(string * string) list -> string -> t
  (** A monotone integer counter. Re-registering an existing
      name+labels pair raises [Invalid_argument]; names must match
      [[a-zA-Z_][a-zA-Z0-9_]*]. *)

  val pull :
    registry -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> int) -> unit
  (** Registers a counter whose value is sampled from the closure at
      render time. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type registry := t
  type t

  val make : registry -> ?help:string -> ?labels:(string * string) list -> string -> t

  val pull :
    registry -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> float) -> unit

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histo : sig
  type registry := t

  type t = Histogram.t
  (** Histogram instruments are plain {!Histogram.t} values, so they can
      be observed, merged and snapshotted directly. *)

  val make : registry -> ?help:string -> ?labels:(string * string) list -> string -> t
  (** Registered histograms render as summaries: [name{quantile="0.5"}]
      lines plus [name_count], [name_sum] and [name_max]. *)

  val observe : t -> float -> unit
  val snapshot : t -> Histogram.snapshot
end

module Span : sig
  type registry := t

  type span = { sp_name : string; sp_start : float; sp_dur : float }

  val enter : registry -> string -> float
  (** Start timestamp for a span (reads the registry clock; [0.] and no
      clock read on noop). *)

  val exit : registry -> string -> float -> unit
  (** [exit r name start] records a completed span into the ring
      (capacity {!capacity}, oldest evicted first). No-op on noop. *)

  val recent : registry -> span list
  (** Completed spans, oldest first. *)

  val capacity : int
end

val render : ?spans:bool -> t -> string
(** Prometheus-style text: [# HELP]/[# TYPE] comment pairs then
    [name{label="v"} value] lines, instruments in registration order.
    With [~spans:true], recent spans are appended as
    [# span name=... start=... dur=...] comment lines. Empty string on a
    noop registry. *)
