module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item

let events_of_instance ?(time_offset = 0.0) ?(id_offset = 0) (inst : Instance.t) =
  let zero = Array.make (Instance.dim inst) 0 in
  let evs =
    List.concat_map
      (fun (it : Item.t) ->
        [
          {
            Binfmt.ev_time = it.Item.arrival +. time_offset;
            ev_kind = `Arrive;
            ev_id = it.Item.id + id_offset;
            ev_size = Vec.to_array it.Item.size;
          };
          {
            Binfmt.ev_time = it.Item.departure +. time_offset;
            ev_kind = `Depart;
            ev_id = it.Item.id + id_offset;
            ev_size = zero;
          };
        ])
      inst.Instance.items
  in
  List.sort Binfmt.compare_event evs

let of_instance ~path ?block_size (inst : Instance.t) =
  match
    let w = Trace_writer.create ~path ~capacity:inst.Instance.capacity ?block_size () in
    List.iter (Trace_writer.add w) (events_of_instance inst);
    Trace_writer.close w
  with
  | summary -> Ok summary
  | exception Invalid_argument m -> Error m
  | exception Sys_error m -> Error m

let sharded ~path ?block_size ~shards ~gen () =
  if shards <= 0 then invalid_arg "Compile.sharded: shards must be positive";
  match
    let first = gen 0 in
    let capacity = first.Instance.capacity in
    let w = Trace_writer.create ~path ~capacity ?block_size () in
    let feed inst ~time_offset ~id_offset =
      if not (Vec.equal inst.Instance.capacity capacity) then
        invalid_arg "Compile.sharded: shards disagree on capacity";
      List.iter (Trace_writer.add w)
        (events_of_instance ~time_offset ~id_offset inst);
      (time_offset +. Instance.horizon inst +. 1.0, id_offset + Instance.size inst)
    in
    let rec go k (time_offset, id_offset) =
      if k = shards then ()
      else
        let inst = if k = 0 then first else gen k in
        go (k + 1) (feed inst ~time_offset ~id_offset)
    in
    go 0 (0.0, 0);
    Trace_writer.close w
  with
  | summary -> Ok summary
  | exception Invalid_argument m -> Error m
  | exception Sys_error m -> Error m

let to_instance reader =
  let pending = Hashtbl.create 1024 in
  let rows = ref [] in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  let res =
    Trace_reader.iter_from reader (fun ev ->
        if !err = None then
          match ev.Binfmt.ev_kind with
          | `Arrive ->
              if Hashtbl.mem pending ev.Binfmt.ev_id then
                fail
                  (Printf.sprintf "item %d arrives twice without departing"
                     ev.Binfmt.ev_id)
              else
                Hashtbl.replace pending ev.Binfmt.ev_id
                  (ev.Binfmt.ev_time, ev.Binfmt.ev_size)
          | `Depart -> (
              match Hashtbl.find_opt pending ev.Binfmt.ev_id with
              | None ->
                  fail
                    (Printf.sprintf "item %d departs without arriving"
                       ev.Binfmt.ev_id)
              | Some (arrival, size) ->
                  Hashtbl.remove pending ev.Binfmt.ev_id;
                  rows :=
                    (arrival, ev.Binfmt.ev_id, ev.Binfmt.ev_time, size) :: !rows))
  in
  match (res, !err) with
  | Error m, _ -> Error m
  | Ok (), Some m -> Error m
  | Ok (), None ->
      if Hashtbl.length pending > 0 then
        Error
          (Printf.sprintf "%d items never depart (open-ended trace)"
             (Hashtbl.length pending))
      else
        let specs =
          !rows
          |> List.sort (fun (a1, i1, _, _) (a2, i2, _, _) ->
                 match Float.compare a1 a2 with 0 -> Int.compare i1 i2 | c -> c)
          |> List.map (fun (a, _, e, s) -> (a, e, Vec.of_array s))
        in
        Instance.of_specs
          ~capacity:(Trace_reader.header reader).Binfmt.capacity specs
