(** Streaming reader for the binary trace format ({!Binfmt}).

    Opening a trace reads only the header, the block index, and the
    trailer; event data is then streamed one block at a time through a
    single reusable buffer, so replay memory is O(block), independent of
    the trace length. The block index makes seeking by timestamp a binary
    search plus at most one extra block scan. *)

type t

val sniff_magic : string -> bool
(** [true] iff the file starts with the binary-trace magic. Used to pick
    between the CSV and binary paths without committing to a parse. *)

val open_file : string -> (t, string) result
(** Validates magic, version, header CRC, trailer magic, index CRC, and
    the index/header event-count agreement before returning. *)

val with_file : string -> (t -> ('a, string) result) -> ('a, string) result

val header : t -> Binfmt.header
val blocks : t -> int
val block_first_time : t -> int -> float

val resident_bytes_max : t -> int
(** Upper bound on the reader's resident heap: one block buffer plus the
    decoded index and header. *)

val seek : t -> float -> int
(** [seek t t0] is the first block index from which a scan is guaranteed
    to encounter every event with time >= [t0]. *)

val read_block : t -> int -> (Binfmt.event list, string) result
(** Reads and CRC-checks one block. Fails on truncation or corruption. *)

val iter_from : ?time:float -> t -> (Binfmt.event -> unit) -> (unit, string) result
(** Streams events in file order, skipping those before [time]
    (default: all events). Stops with [Error] on a corrupt block. *)

val verify : t -> (int, string) result
(** Full scan: every record CRC, the global [(time, kind)] sort order,
    and the header event count. Returns the event count on success. *)

val close : t -> unit
