(** Streaming writer for the binary trace format ({!Binfmt}).

    Events are fed one at a time in {!Binfmt.compare_event} order (the
    writer enforces the [(time, kind)] monotonicity; feeding out of order
    raises) and staged into fixed-size blocks, so compiling a trace needs
    O(block) memory plus one 20-byte index entry per block. The header is
    written up front with placeholder totals and patched on {!close}, when
    the event count and time span are known. *)

type summary = {
  events : int;
  blocks : int;
  t_min : float;
  t_max : float;
  file_bytes : int;
}

type t

val create :
  path:string -> capacity:Dvbp_vec.Vec.t -> ?block_size:int -> unit -> t
(** Opens [path] for writing (truncating) and writes the placeholder
    header. [block_size] (default {!Binfmt.default_block_size}) is the
    number of records per block.
    @raise Invalid_argument on a non-positive or oversized block size.
    @raise Sys_error on IO failure. *)

val add : t -> Binfmt.event -> unit
(** Appends one event.
    @raise Invalid_argument on a closed writer, a dimension mismatch, a
    non-finite time, an id or size coordinate outside [u32], or an event
    that sorts before the previous one. *)

val event_count : t -> int

val close : t -> summary
(** Flushes the final (possibly short) block, writes the index and
    trailer, patches the header, and closes the file.
    @raise Invalid_argument if already closed. *)
