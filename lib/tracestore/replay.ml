module Vec = Dvbp_vec.Vec
module Session = Dvbp_engine.Session
module Registry = Dvbp_obs.Registry

type stats = {
  events : int;
  arrivals : int;
  departures : int;
  blocks : int;
  wall_seconds : float;
  events_per_sec : float;
  resident_bytes_max : int;
}

type probe = {
  mutable p_events : int;
  mutable p_blocks : int;
  mutable p_resident : int;
  mutable p_resident_max : int;
  mutable p_eps : float;
}

let probe ?registry () =
  let p =
    { p_events = 0; p_blocks = 0; p_resident = 0; p_resident_max = 0; p_eps = 0.0 }
  in
  (match registry with
  | None -> ()
  | Some reg ->
      Registry.Counter.pull reg "dvbp_trace_replay_events_total"
        ~help:"Events streamed out of binary traces" (fun () -> p.p_events);
      Registry.Counter.pull reg "dvbp_trace_replay_blocks_total"
        ~help:"Trace blocks read during replay" (fun () -> p.p_blocks);
      Registry.Gauge.pull reg "dvbp_trace_resident_bytes"
        ~help:"Resident window of the current trace reader (bytes)" (fun () ->
          float_of_int p.p_resident);
      Registry.Gauge.pull reg "dvbp_trace_resident_bytes_max"
        ~help:"Largest trace-reader resident window seen (bytes)" (fun () ->
          float_of_int p.p_resident_max);
      Registry.Gauge.pull reg "dvbp_trace_replay_events_per_sec"
        ~help:"Throughput of the last completed trace replay" (fun () -> p.p_eps));
  p

let touch p ?(events = 0) ?(blocks = 0) reader =
  let r = Trace_reader.resident_bytes_max reader in
  p.p_resident <- r;
  p.p_resident_max <- max p.p_resident_max r;
  p.p_events <- p.p_events + events;
  p.p_blocks <- p.p_blocks + blocks

let set_throughput p eps =
  p.p_eps <- eps;
  p.p_resident <- 0

let note_reader probe reader =
  match probe with None -> () | Some p -> touch p reader

let into_session ?probe:p ?(clock = Sys.time) reader session =
  note_reader p reader;
  let d = (Trace_reader.header reader).Binfmt.d in
  let sd = Vec.dim (Session.capacity session) in
  if d <> sd then
    Error (Printf.sprintf "trace dimension %d but session capacity has d=%d" d sd)
  else begin
    let arrivals = ref 0 and departures = ref 0 and blocks = Trace_reader.blocks reader in
    let t0 = clock () in
    let feed (ev : Binfmt.event) =
      (match ev.Binfmt.ev_kind with
      | `Arrive ->
          incr arrivals;
          ignore
            (Session.apply session
               (Session.Arrive
                  {
                    at = ev.Binfmt.ev_time;
                    id = Some ev.Binfmt.ev_id;
                    size = Vec.of_array ev.Binfmt.ev_size;
                  }))
      | `Depart ->
          incr departures;
          ignore
            (Session.apply session
               (Session.Depart { at = ev.Binfmt.ev_time; item_id = ev.Binfmt.ev_id })));
      match p with
      | None -> ()
      | Some pr -> pr.p_events <- pr.p_events + 1
    in
    match Trace_reader.iter_from reader feed with
    | Error _ as e -> e
    | exception Session.Session_error m -> Error ("replay: " ^ m)
    | Ok () ->
        let wall = Float.max 1e-9 (clock () -. t0) in
        let events = !arrivals + !departures in
        let eps = float_of_int events /. wall in
        (match p with
        | None -> ()
        | Some pr ->
            pr.p_blocks <- pr.p_blocks + blocks;
            pr.p_eps <- eps;
            pr.p_resident <- 0);
        Ok
          {
            events;
            arrivals = !arrivals;
            departures = !departures;
            blocks;
            wall_seconds = wall;
            events_per_sec = eps;
            resident_bytes_max = Trace_reader.resident_bytes_max reader;
          }
  end
