module Vec = Dvbp_vec.Vec

let header_magic = "DVBPTRC1"
let trailer_magic = "DVBPTIDX"
let version = 1
let default_block_size = 512
let max_block_size = 1 lsl 20
let trailer_size = 24
let index_entry_size = 20

type event = {
  ev_time : float;
  ev_kind : [ `Depart | `Arrive ];
  ev_id : int;
  ev_size : int array;  (** length [d]; all zeros on departures *)
}

type header = {
  d : int;
  block_size : int;
  events : int;
  t_min : float;
  t_max : float;
  capacity : Vec.t;
}

type index_entry = { blk_offset : int; blk_first_time : float; blk_records : int }

let record_width ~d = 17 + (4 * d)
let header_size ~d = 48 + (4 * d)

let compare_event a b =
  (* departures precede arrivals at equal instants (half-open intervals),
     ties broken by id — the session's replay order *)
  match Float.compare a.ev_time b.ev_time with
  | 0 -> (
      let ka = match a.ev_kind with `Depart -> 0 | `Arrive -> 1 in
      let kb = match b.ev_kind with `Depart -> 0 | `Arrive -> 1 in
      match Int.compare ka kb with 0 -> Int.compare a.ev_id b.ev_id | c -> c)
  | c -> c

(* {2 little-endian scalar codecs} *)

let put_u32 b pos v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Binfmt: u32 out of range";
  Bytes.set_int32_le b pos (Int32.of_int v)

let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
let put_u64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)

let get_u64 b pos =
  let v = Bytes.get_int64_le b pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Binfmt: u64 out of int range";
  Int64.to_int v

let put_f64 b pos v = Bytes.set_int64_le b pos (Int64.bits_of_float v)
let get_f64 b pos = Int64.float_of_bits (Bytes.get_int64_le b pos)

(* {2 records} *)

let encode_record ~d buf pos (ev : event) =
  if Array.length ev.ev_size <> d then
    invalid_arg
      (Printf.sprintf "Binfmt.encode_record: event has %d size entries, trace has d=%d"
         (Array.length ev.ev_size) d);
  let w = record_width ~d in
  Bytes.set buf pos (Char.chr (match ev.ev_kind with `Depart -> 0 | `Arrive -> 1));
  put_f64 buf (pos + 1) ev.ev_time;
  put_u32 buf (pos + 9) ev.ev_id;
  Array.iteri (fun j s -> put_u32 buf (pos + 13 + (4 * j)) s) ev.ev_size;
  put_u32 buf (pos + w - 4) (Crc32.bytes ~pos ~len:(w - 4) buf)

let decode_record ~d buf pos =
  let w = record_width ~d in
  let stored = get_u32 buf (pos + w - 4) in
  let computed = Crc32.bytes ~pos ~len:(w - 4) buf in
  if stored <> computed then
    Error (Printf.sprintf "record CRC mismatch (stored %08x, computed %08x)" stored computed)
  else
    match Char.code (Bytes.get buf pos) with
    | (0 | 1) as k ->
        Ok
          {
            ev_time = get_f64 buf (pos + 1);
            ev_kind = (if k = 0 then `Depart else `Arrive);
            ev_id = get_u32 buf (pos + 9);
            ev_size = Array.init d (fun j -> get_u32 buf (pos + 13 + (4 * j)));
          }
    | k -> Error (Printf.sprintf "bad record kind byte %d" k)

(* {2 header} *)

let encode_header (h : header) =
  let d = h.d in
  let buf = Bytes.create (header_size ~d) in
  Bytes.blit_string header_magic 0 buf 0 8;
  put_u32 buf 8 version;
  put_u32 buf 12 d;
  put_u32 buf 16 h.block_size;
  put_u64 buf 20 h.events;
  put_f64 buf 28 h.t_min;
  put_f64 buf 36 h.t_max;
  Array.iteri (fun j c -> put_u32 buf (44 + (4 * j)) c) (Vec.to_array h.capacity);
  put_u32 buf (44 + (4 * d)) (Crc32.bytes ~len:(44 + (4 * d)) buf);
  buf

let decode_header buf =
  if Bytes.length buf < 48 then Error "file too short for a trace header"
  else if Bytes.sub_string buf 0 8 <> header_magic then
    Error
      (Printf.sprintf "bad magic %S (not a dvbp binary trace)" (Bytes.sub_string buf 0 8))
  else
    let v = get_u32 buf 8 in
    if v <> version then Error (Printf.sprintf "unsupported trace version %d" v)
    else
      let d = get_u32 buf 12 in
      if d <= 0 || d > 1024 then Error (Printf.sprintf "implausible dimension count %d" d)
      else if Bytes.length buf < header_size ~d then
        Error "file too short for the capacity vector"
      else
        let stored = get_u32 buf (44 + (4 * d)) in
        let computed = Crc32.bytes ~len:(44 + (4 * d)) buf in
        if stored <> computed then
          Error
            (Printf.sprintf "header CRC mismatch (stored %08x, computed %08x)" stored
               computed)
        else
          let block_size = get_u32 buf 16 in
          if block_size <= 0 || block_size > max_block_size then
            Error (Printf.sprintf "implausible block size %d" block_size)
          else
            let capacity = Array.init d (fun j -> get_u32 buf (44 + (4 * j))) in
            if Array.exists (fun c -> c <= 0) capacity then
              Error "non-positive capacity entry"
            else
              Ok
                {
                  d;
                  block_size;
                  events = get_u64 buf 20;
                  t_min = get_f64 buf 28;
                  t_max = get_f64 buf 36;
                  capacity = Vec.of_array capacity;
                }

(* {2 index + trailer} *)

let encode_index entries =
  let buf = Bytes.create (List.length entries * index_entry_size) in
  List.iteri
    (fun i e ->
      let pos = i * index_entry_size in
      put_u64 buf pos e.blk_offset;
      put_f64 buf (pos + 8) e.blk_first_time;
      put_u32 buf (pos + 16) e.blk_records)
    entries;
  buf

let decode_index buf ~blocks =
  if Bytes.length buf <> blocks * index_entry_size then
    Error "index size disagrees with the trailer block count"
  else
    Ok
      (Array.init blocks (fun i ->
           let pos = i * index_entry_size in
           {
             blk_offset = get_u64 buf pos;
             blk_first_time = get_f64 buf (pos + 8);
             blk_records = get_u32 buf (pos + 16);
           }))

let encode_trailer ~index_offset ~blocks ~index_crc =
  let buf = Bytes.create trailer_size in
  put_u64 buf 0 index_offset;
  put_u32 buf 8 blocks;
  put_u32 buf 12 index_crc;
  Bytes.blit_string trailer_magic 0 buf 16 8;
  buf

let decode_trailer buf =
  if Bytes.length buf <> trailer_size then Error "short trailer"
  else if Bytes.sub_string buf 16 8 <> trailer_magic then
    Error "missing index trailer magic (truncated or not a dvbp binary trace)"
  else Ok (get_u64 buf 0, get_u32 buf 8, get_u32 buf 12)
