(** Compiling problem instances to binary traces, and back.

    The forward direction turns an in-memory {!Dvbp_core.Instance} into the
    event stream the engine replays — one arrival and one departure per
    item, sorted by [(time, kind, id)] with departures first at equal
    instants — and writes it through {!Trace_writer}. {!sharded} chains
    several generated instances into one long trace with bounded memory:
    each shard is materialised, compiled, and dropped before the next is
    generated, with times shifted past the previous shard's horizon and
    ids offset so the concatenation is itself a valid event stream. *)

val events_of_instance :
  ?time_offset:float -> ?id_offset:int -> Dvbp_core.Instance.t -> Binfmt.event list
(** The instance's sorted event stream. Departure events carry a zero
    size vector. *)

val of_instance :
  path:string ->
  ?block_size:int ->
  Dvbp_core.Instance.t ->
  (Trace_writer.summary, string) result

val sharded :
  path:string ->
  ?block_size:int ->
  shards:int ->
  gen:(int -> Dvbp_core.Instance.t) ->
  unit ->
  (Trace_writer.summary, string) result
(** [sharded ~path ~shards ~gen ()] compiles [gen 0 .. gen (shards-1)]
    into one trace. Every shard must use the same capacity vector.
    Compile memory is O(largest shard), not O(total trace). *)

val to_instance : Trace_reader.t -> (Dvbp_core.Instance.t, string) result
(** Materialises the whole trace as an instance. Ids are re-assigned in
    [(arrival, id)] order — the arrival/departure/size content round-trips
    exactly, the original item ids only when they already followed arrival
    order. Use only when the trace is known to be small — this is the
    CSV-equivalent convenience path, not replay. *)
