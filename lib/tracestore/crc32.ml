(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Kept dependency-free: the trace store must be readable by tools that
   link nothing but the stdlib. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get bytes i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  update 0 b ~pos ~len

let string s = bytes (Bytes.unsafe_of_string s)
