(** CRC-32 (IEEE 802.3) checksums for the binary trace format.

    The standard reflected polynomial [0xEDB88320] with initial value and
    final xor [0xFFFFFFFF] — byte-compatible with [zlib]'s [crc32], so
    traces can be checked with external tooling. Values fit in 32 bits and
    are returned as non-negative [int]s. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] extends a running checksum over
    [b.(pos .. pos+len-1)]. Start from [0].
    @raise Invalid_argument on an out-of-bounds range. *)

val bytes : ?pos:int -> ?len:int -> bytes -> int
(** Checksum of a byte range ([pos] defaults to [0], [len] to the rest). *)

val string : string -> int
