(** Streaming replay: drive a {!Dvbp_engine.Session} straight from a
    binary trace, one event at a time, never materialising the instance.

    Replay memory is the reader's resident window (one block buffer plus
    the index) — independent of the number of events — plus whatever the
    session itself keeps for active items. A {!probe} exposes progress and
    the resident window through [lib/obs] pull instruments
    ([dvbp_trace_replay_events_total], [dvbp_trace_replay_blocks_total],
    [dvbp_trace_resident_bytes{,_max}],
    [dvbp_trace_replay_events_per_sec]). *)

type stats = {
  events : int;
  arrivals : int;
  departures : int;
  blocks : int;
  wall_seconds : float;
  events_per_sec : float;
  resident_bytes_max : int;
}

type probe

val probe : ?registry:Dvbp_obs.Registry.t -> unit -> probe
(** A progress probe; when [registry] is given, the replay gauges and
    counters are registered against it as pull instruments. *)

val touch : probe -> ?events:int -> ?blocks:int -> Trace_reader.t -> unit
(** For external drivers (the service loadgen) that stream a reader
    themselves: bump the event/block counters and refresh the resident
    window from [reader]. *)

val set_throughput : probe -> float -> unit
(** Record the throughput of a completed replay and zero the resident
    window (the reader is done). *)

val into_session :
  ?probe:probe ->
  ?clock:(unit -> float) ->
  Trace_reader.t ->
  Dvbp_engine.Session.t ->
  (stats, string) result
(** Streams every event into the session via {!Dvbp_engine.Session.apply}.
    The caller opens the reader (positioned at the start) and is
    responsible for {!Dvbp_engine.Session.finish} afterwards. [clock]
    (default [Sys.time]) times the replay for the throughput figure —
    pass a wall clock for end-to-end numbers. Fails on a corrupt block,
    a dimension mismatch, or a session error (non-monotone events,
    duplicate ids). *)
