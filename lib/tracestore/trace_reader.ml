module Vec = Dvbp_vec.Vec

type t = {
  ic : in_channel;
  header : Binfmt.header;
  index : Binfmt.index_entry array;
  rw : int;
  buf : Bytes.t;  (* one block's worth of records *)
  mutable resident_max : int;
  mutable closed : bool;
}

let sniff_magic path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let ok =
        try
          let m = really_input_string ic 8 in
          m = Binfmt.header_magic
        with End_of_file -> false
      in
      close_in_noerr ic;
      ok

let read_exact ic ~pos ~len =
  let buf = Bytes.create len in
  seek_in ic pos;
  really_input ic buf 0 len;
  buf

let open_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic -> (
      let close_err m =
        close_in_noerr ic;
        Error (Printf.sprintf "%s: %s" path m)
      in
      let file_len = in_channel_length ic in
      if file_len < 48 + Binfmt.trailer_size then
        close_err "file too short to be a binary trace"
      else
        match
          (* the capacity vector length is only known after the fixed
             header prefix, so read a generous prefix first *)
          Binfmt.decode_header
            (read_exact ic ~pos:0 ~len:(min file_len (Binfmt.header_size ~d:1024)))
        with
        | Error m -> close_err m
        | Ok header -> (
            match
              Binfmt.decode_trailer
                (read_exact ic ~pos:(file_len - Binfmt.trailer_size)
                   ~len:Binfmt.trailer_size)
            with
            | Error m -> close_err m
            | Ok (index_offset, blocks, index_crc) ->
                let index_len = blocks * Binfmt.index_entry_size in
                if
                  index_offset < Binfmt.header_size ~d:header.Binfmt.d
                  || index_offset + index_len + Binfmt.trailer_size > file_len
                then close_err "index offset out of bounds (truncated trace?)"
                else
                  let index_bytes = read_exact ic ~pos:index_offset ~len:index_len in
                  if Crc32.bytes index_bytes <> index_crc then
                    close_err "index CRC mismatch"
                  else (
                    match Binfmt.decode_index index_bytes ~blocks with
                    | Error m -> close_err m
                    | Ok index ->
                        let rw = Binfmt.record_width ~d:header.Binfmt.d in
                        let total =
                          Array.fold_left
                            (fun acc e -> acc + e.Binfmt.blk_records)
                            0 index
                        in
                        if total <> header.Binfmt.events then
                          close_err
                            (Printf.sprintf
                               "index records (%d) disagree with header event \
                                count (%d)"
                               total header.Binfmt.events)
                        else
                          Ok
                            {
                              ic;
                              header;
                              index;
                              rw;
                              buf =
                                Bytes.create (header.Binfmt.block_size * rw);
                              resident_max =
                                (header.Binfmt.block_size * rw)
                                + index_len
                                + Binfmt.header_size ~d:header.Binfmt.d;
                              closed = false;
                            })))

let header t = t.header
let blocks t = Array.length t.index
let resident_bytes_max t = t.resident_max

let block_first_time t i =
  if i < 0 || i >= Array.length t.index then
    invalid_arg "Trace_reader.block_first_time: block index out of range";
  t.index.(i).Binfmt.blk_first_time

(* First block that could contain an event with time >= t0: binary-search
   for the first block whose first_time >= t0, then step back one block —
   an event with time >= t0 may sit mid-block after earlier events. *)
let seek t t0 =
  let n = Array.length t.index in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.index.(mid).Binfmt.blk_first_time >= t0 then hi := mid else lo := mid + 1
  done;
  max 0 (!lo - 1)

let read_block t i =
  if t.closed then invalid_arg "Trace_reader.read_block: reader is closed";
  if i < 0 || i >= Array.length t.index then
    invalid_arg "Trace_reader.read_block: block index out of range";
  let e = t.index.(i) in
  let len = e.Binfmt.blk_records * t.rw in
  match
    seek_in t.ic e.Binfmt.blk_offset;
    really_input t.ic t.buf 0 len
  with
  | exception End_of_file -> Error (Printf.sprintf "block %d truncated" i)
  | exception Sys_error m -> Error (Printf.sprintf "block %d: %s" i m)
  | () ->
      let rec decode acc r =
        if r = e.Binfmt.blk_records then Ok (List.rev acc)
        else
          match Binfmt.decode_record ~d:t.header.Binfmt.d t.buf (r * t.rw) with
          | Error m -> Error (Printf.sprintf "block %d record %d: %s" i r m)
          | Ok ev -> decode (ev :: acc) (r + 1)
      in
      decode [] 0

let iter_from ?(time = Float.neg_infinity) t f =
  let n = Array.length t.index in
  let rec go i =
    if i >= n then Ok ()
    else
      match read_block t i with
      | Error m -> Error m
      | Ok evs ->
          List.iter (fun ev -> if ev.Binfmt.ev_time >= time then f ev) evs;
          go (i + 1)
  in
  go (if time = Float.neg_infinity then 0 else seek t time)

let verify t =
  let n = Array.length t.index in
  let last = ref (Float.neg_infinity, 0) in
  let seen = ref 0 in
  let rec go i =
    if i >= n then
      if !seen <> t.header.Binfmt.events then
        Error
          (Printf.sprintf "decoded %d events but the header claims %d" !seen
             t.header.Binfmt.events)
      else Ok !seen
    else
      match read_block t i with
      | Error m -> Error m
      | Ok evs -> (
          match
            List.find_map
              (fun ev ->
                let k = match ev.Binfmt.ev_kind with `Depart -> 0 | `Arrive -> 1 in
                let lt, lk = !last in
                if ev.Binfmt.ev_time < lt || (ev.Binfmt.ev_time = lt && k < lk)
                then
                  Some
                    (Printf.sprintf "block %d: event out of (time, kind) order" i)
                else begin
                  last := (ev.Binfmt.ev_time, k);
                  incr seen;
                  None
                end)
              evs
          with
          | Some m -> Error m
          | None -> go (i + 1))
  in
  go 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_in_noerr t.ic
  end

let with_file path f =
  match open_file path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
