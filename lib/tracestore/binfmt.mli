(** Byte-level layout of the binary trace format (DESIGN.md §11).

    A compiled trace is

    {v
    [header][block 0][block 1]...[block B-1][index][trailer]
    v}

    - {b header} ([48 + 4d] bytes, CRC'd): magic ["DVBPTRC1"], version,
      dimension count [d], block size (records per block), event count,
      time span [t_min..t_max], and the capacity vector;
    - {b records} are fixed width ([17 + 4d] bytes, one CRC each): kind
      byte (0 = depart, 1 = arrive), IEEE-754 time, item id, and [d]
      [u32] size coordinates (zero on departures);
    - {b blocks} group [block_size] consecutive records (the last block
      may be short) — the unit of streaming reads and of seeking;
    - {b index}: one 20-byte entry per block (file offset, first record
      timestamp, record count), CRC'd as a whole;
    - {b trailer} (24 bytes at EOF): index offset, block count, index
      CRC, magic ["DVBPTIDX"].

    All scalars are little-endian. Records are sorted by
    [(time, kind, id)] with departures before arrivals at equal
    instants — exactly the replay order {!Dvbp_engine.Session} expects. *)

type event = {
  ev_time : float;
  ev_kind : [ `Depart | `Arrive ];
  ev_id : int;
  ev_size : int array;  (** length [d]; all zeros on departures *)
}

type header = {
  d : int;
  block_size : int;  (** records per block *)
  events : int;
  t_min : float;
  t_max : float;
  capacity : Dvbp_vec.Vec.t;
}

type index_entry = { blk_offset : int; blk_first_time : float; blk_records : int }

val header_magic : string
val trailer_magic : string
val version : int
val default_block_size : int
val max_block_size : int
val trailer_size : int
val index_entry_size : int

val record_width : d:int -> int
val header_size : d:int -> int

val compare_event : event -> event -> int
(** The canonical record order: [(time, kind, id)], departures first. *)

val encode_record : d:int -> bytes -> int -> event -> unit
(** Writes one record (including its CRC) at the given offset.
    @raise Invalid_argument on a dimension mismatch or out-of-range id or
    size coordinate (all must fit in [u32]). *)

val decode_record : d:int -> bytes -> int -> (event, string) result
(** Validates the record CRC and kind byte before decoding. *)

val encode_header : header -> bytes
val decode_header : bytes -> (header, string) result
(** Validates magic, version, CRC and field plausibility. The buffer may
    be longer than the header. *)

val encode_index : index_entry list -> bytes
val decode_index : bytes -> blocks:int -> (index_entry array, string) result

val encode_trailer : index_offset:int -> blocks:int -> index_crc:int -> bytes
val decode_trailer : bytes -> (int * int * int, string) result
(** [(index_offset, blocks, index_crc)]. *)
