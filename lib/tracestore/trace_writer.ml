module Vec = Dvbp_vec.Vec

type summary = {
  events : int;
  blocks : int;
  t_min : float;
  t_max : float;
  file_bytes : int;
}

type t = {
  oc : out_channel;
  d : int;
  capacity : Vec.t;
  block_size : int;
  rw : int;  (* record width *)
  block : Bytes.t;  (* staging buffer for the current block *)
  mutable in_block : int;  (* records staged *)
  mutable block_first : float;
  mutable index_rev : Binfmt.index_entry list;
  mutable offset : int;  (* file offset of the next block *)
  mutable events : int;
  mutable t_min : float;
  mutable t_max : float;
  mutable last : float * int;  (* (time, kind) of the last event, for ordering *)
  mutable closed : bool;
}

let create ~path ~capacity ?(block_size = Binfmt.default_block_size) () =
  if block_size <= 0 || block_size > Binfmt.max_block_size then
    invalid_arg
      (Printf.sprintf "Trace_writer: block_size must lie in [1, %d], got %d"
         Binfmt.max_block_size block_size);
  let d = Vec.dim capacity in
  let oc = open_out_bin path in
  (* placeholder header — event count and span are patched on close *)
  let header =
    {
      Binfmt.d;
      block_size;
      events = 0;
      t_min = 0.0;
      t_max = 0.0;
      capacity;
    }
  in
  output_bytes oc (Binfmt.encode_header header);
  {
    oc;
    d;
    capacity;
    block_size;
    rw = Binfmt.record_width ~d;
    block = Bytes.create (block_size * Binfmt.record_width ~d);
    in_block = 0;
    block_first = 0.0;
    index_rev = [];
    offset = Binfmt.header_size ~d;
    events = 0;
    t_min = Float.infinity;
    t_max = Float.neg_infinity;
    last = (Float.neg_infinity, 0);
    closed = false;
  }

let flush_block t =
  if t.in_block > 0 then begin
    let len = t.in_block * t.rw in
    output_bytes t.oc (Bytes.sub t.block 0 len);
    t.index_rev <-
      {
        Binfmt.blk_offset = t.offset;
        blk_first_time = t.block_first;
        blk_records = t.in_block;
      }
      :: t.index_rev;
    t.offset <- t.offset + len;
    t.in_block <- 0
  end

let add t (ev : Binfmt.event) =
  if t.closed then invalid_arg "Trace_writer.add: writer is closed";
  if Array.length ev.Binfmt.ev_size <> t.d then
    invalid_arg
      (Printf.sprintf "Trace_writer.add: event has %d size entries, trace has d=%d"
         (Array.length ev.Binfmt.ev_size) t.d);
  if not (Float.is_finite ev.Binfmt.ev_time) then
    invalid_arg "Trace_writer.add: non-finite event time";
  let kind = match ev.Binfmt.ev_kind with `Depart -> 0 | `Arrive -> 1 in
  let last_t, last_k = t.last in
  if ev.Binfmt.ev_time < last_t || (ev.Binfmt.ev_time = last_t && kind < last_k) then
    invalid_arg
      (Printf.sprintf
         "Trace_writer.add: events out of order (%.17g kind %d after %.17g kind %d)"
         ev.Binfmt.ev_time kind last_t last_k);
  if t.in_block = 0 then t.block_first <- ev.Binfmt.ev_time;
  Binfmt.encode_record ~d:t.d t.block (t.in_block * t.rw) ev;
  t.in_block <- t.in_block + 1;
  t.events <- t.events + 1;
  t.t_min <- Float.min t.t_min ev.Binfmt.ev_time;
  t.t_max <- Float.max t.t_max ev.Binfmt.ev_time;
  t.last <- (ev.Binfmt.ev_time, kind);
  if t.in_block = t.block_size then flush_block t

let event_count t = t.events

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush_block t;
    let index = List.rev t.index_rev in
    let index_bytes = Binfmt.encode_index index in
    let index_offset = t.offset in
    output_bytes t.oc index_bytes;
    output_bytes t.oc
      (Binfmt.encode_trailer ~index_offset ~blocks:(List.length index)
         ~index_crc:(Crc32.bytes index_bytes));
    (* patch the header now that the event count and span are known *)
    let t_min = if t.events = 0 then 0.0 else t.t_min in
    let t_max = if t.events = 0 then 0.0 else t.t_max in
    seek_out t.oc 0;
    output_bytes t.oc
      (Binfmt.encode_header
         {
           Binfmt.d = t.d;
           block_size = t.block_size;
           events = t.events;
           t_min;
           t_max;
           capacity = t.capacity;
         });
    close_out t.oc;
    {
      events = t.events;
      blocks = List.length index;
      t_min;
      t_max;
      file_bytes = index_offset + Bytes.length index_bytes + Binfmt.trailer_size;
    }
  end
  else
    invalid_arg "Trace_writer.close: already closed"
