(** Runtime bins (servers) during a simulation.

    A bin is opened when it receives its first item, stays open while it
    contains an active item, and is closed — permanently, per the paper's
    §2.1 convention — when its last item departs. Mutation is owned by the
    engine; policies only read bins.

    [last_used] is a monotonic touch counter maintained by the engine
    (bumped when the bin is opened and on every placement); Move To Front's
    most-recently-used order is exactly descending [last_used]. *)

type t = private {
  id : int;  (** opening order: bin [i] opened no later than bin [i+1] *)
  capacity : Dvbp_vec.Vec.t;
  opened_at : float;
  mutable load : Dvbp_vec.Vec.t;  (** total size of currently active items *)
  mutable active_items : Item.t list;  (** most recently placed first *)
  mutable placed : Item.t list;  (** every item ever placed, placement order *)
  mutable closed_at : float option;
  mutable last_used : int;
  mutable measure_key : Load_measure.t option;
      (** one-entry {!load_measure} cache key; [None] after any load change *)
  mutable measure_val : float;
  mutable registry_slot : int;
      (** slot index owned by {!Bin_registry}; [-1] while unregistered *)
}

val create : id:int -> capacity:Dvbp_vec.Vec.t -> now:float -> touch:int -> t
(** A fresh, empty, open bin. *)

val fits : t -> Dvbp_vec.Vec.t -> bool
(** Exact test: current load plus the size stays within capacity. *)

val is_open : t -> bool
val is_empty : t -> bool

val place : t -> Item.t -> touch:int -> unit
(** Adds the item (engine-only). @raise Invalid_argument if it does not fit
    or the bin is closed. *)

val remove : t -> Item.t -> unit
(** Removes a departing item and subtracts its size (engine-only).
    @raise Invalid_argument if the item is not active in this bin. *)

val close : t -> now:float -> unit
(** Marks the bin closed (engine-only). @raise Invalid_argument if non-empty
    or already closed. *)

val set_registry_slot : t -> int -> unit
(** Records the bin's slot in its registry ({!Bin_registry}-only). *)

val usage_interval : t -> Dvbp_interval.Interval.t
(** [\[opened_at, closed_at)]. @raise Invalid_argument while still open. *)

val load_measure : Load_measure.t -> t -> float
(** Capacity-relative scalar load of the bin's current contents. Cached:
    repeated calls with the same measure between load changes are O(1). *)

val pp : Format.formatter -> t -> unit
