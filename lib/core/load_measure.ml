module Vec = Dvbp_vec.Vec

type t = Linf | L1 | Lp of float

let apply t ~cap v =
  match t with
  | Linf -> Vec.linf ~cap v
  | L1 -> Vec.l1 ~cap v
  | Lp p -> Vec.lp ~p ~cap v

let equal a b =
  match (a, b) with
  | Linf, Linf | L1, L1 -> true
  | Lp p, Lp q -> Float.equal p q
  | (Linf | L1 | Lp _), _ -> false

let name = function
  | Linf -> "linf"
  | L1 -> "l1"
  | Lp p -> Printf.sprintf "l%g" p

let of_name s =
  match String.lowercase_ascii s with
  | "linf" | "max" -> Ok Linf
  | "l1" | "sum" -> Ok L1
  | s -> (
      let parse_p p_str =
        match float_of_string_opt p_str with
        | Some p when p >= 1.0 -> Ok (Lp p)
        | _ -> Error (Printf.sprintf "Load_measure: bad exponent %S" p_str)
      in
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "lp" ->
          parse_p (String.sub s (i + 1) (String.length s - i - 1))
      | _ ->
          if String.length s > 1 && s.[0] = 'l' then
            parse_p (String.sub s 1 (String.length s - 1))
          else Error (Printf.sprintf "Load_measure: unknown measure %S" s))

let all_standard = [ Linf; L1; Lp 2.0 ]
