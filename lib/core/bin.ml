module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval

type t = {
  id : int;
  capacity : Vec.t;
  opened_at : float;
  mutable load : Vec.t;
  mutable active_items : Item.t list;
  mutable placed : Item.t list;
  mutable closed_at : float option;
  mutable last_used : int;
  (* one-entry load-measure cache, invalidated whenever [load] changes:
     Best/Worst Fit probe the same bin against many items between
     mutations, and recomputing L∞/L1/Lp per candidate per item dominated
     their select cost *)
  mutable measure_key : Load_measure.t option;
  mutable measure_val : float;
  (* slot index owned by Bin_registry (-1 while unregistered): lets the
     registry re-mirror this bin's residual capacity without a lookup *)
  mutable registry_slot : int;
}

let create ~id ~capacity ~now ~touch =
  {
    id;
    capacity;
    opened_at = now;
    load = Vec.zero ~dim:(Vec.dim capacity);
    active_items = [];
    placed = [];
    closed_at = None;
    last_used = touch;
    measure_key = None;
    measure_val = 0.0;
    registry_slot = -1;
  }

let fits t size = Vec.fits_trusted ~cap:t.capacity ~load:t.load size
let is_open t = match t.closed_at with None -> true | Some _ -> false
let is_empty t = match t.active_items with [] -> true | _ :: _ -> false

let place t (r : Item.t) ~touch =
  if not (is_open t) then invalid_arg "Bin.place: bin is closed";
  if not (fits t r.Item.size) then
    invalid_arg
      (Printf.sprintf "Bin.place: item %d does not fit in bin %d" r.Item.id t.id);
  (* the bin owns its load vector exclusively, so accumulate in place *)
  Vec.add_into ~into:t.load r.Item.size;
  t.measure_key <- None;
  t.active_items <- r :: t.active_items;
  t.placed <- r :: t.placed;
  t.last_used <- touch

(* top-level so each [remove] does not allocate a closure for the scan *)
let rec drop_item item_id bin_id = function
  | [] ->
      invalid_arg
        (Printf.sprintf "Bin.remove: item %d is not active in bin %d" item_id
           bin_id)
  | (x : Item.t) :: rest ->
      if x.Item.id = item_id then rest else x :: drop_item item_id bin_id rest

let remove t (r : Item.t) =
  t.active_items <- drop_item r.Item.id t.id t.active_items;
  Vec.sub_into ~into:t.load r.Item.size;
  t.measure_key <- None

let set_registry_slot t slot = t.registry_slot <- slot

let close t ~now =
  if not (is_open t) then invalid_arg "Bin.close: already closed";
  if not (is_empty t) then invalid_arg "Bin.close: bin still has active items";
  t.closed_at <- Some now

let usage_interval t =
  match t.closed_at with
  | None -> invalid_arg "Bin.usage_interval: bin still open"
  | Some hi -> Interval.make t.opened_at hi

let load_measure m t =
  match t.measure_key with
  | Some k when Load_measure.equal k m -> t.measure_val
  | _ ->
      let v = Load_measure.apply m ~cap:t.capacity t.load in
      t.measure_key <- Some m;
      t.measure_val <- v;
      v

let pp ppf t =
  Format.fprintf ppf "bin#%d load=%a items=[%a] opened=%g%a" t.id Vec.pp t.load
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (r : Item.t) -> Format.fprintf ppf "%d" r.Item.id))
    t.active_items t.opened_at
    (fun ppf -> function
      | None -> Format.fprintf ppf " (open)"
      | Some c -> Format.fprintf ppf " closed=%g" c)
    t.closed_at
