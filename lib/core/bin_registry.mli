(** The open-bin registry: the engine's record of currently open bins and
    the allocation-free candidate view policies select from.

    Bins are kept in ascending open order (ascending {!Bin.t.id}) in a
    growable array ({!Dvbp_prelude.Dynarray}). Opening appends in O(1);
    closing is an O(1) tombstone (the bin's own [closed_at] marks it dead)
    with in-place compaction once a quarter of the slots are dead, so every
    traversal is O(live) amortised and allocates nothing. The open count
    is tracked incrementally — no [List.length] scans.

    The registry also mirrors each open bin's residual capacity
    ([capacity - load]) into one packed int array, so the per-arrival fit
    scan reads contiguous memory instead of dereferencing every bin
    record. When the capacity is byte-sized and [dim <= 8] it additionally
    keeps a SWAR mirror — all residuals of a slot in one native int, one
    lane per dimension — and every fit test becomes a single masked
    subtract (see DESIGN.md §7.3 for the word layout). The kernel is
    chosen once at {!create}; both kernels visit slots in the same order,
    so results and {!scan_stats} are bit-identical. The mirror is the
    engine's responsibility: after mutating a bin's load it must call
    {!refresh} (the session does, in its place and remove steps).

    The engine owns the mutators ({!add}, {!note_closed}, {!refresh});
    policies and the conformance replayer only use the read-only view
    below, which never yields a closed bin. *)

type t

val create : ?kernel:[ `Auto | `Scalar ] -> capacity:Dvbp_vec.Vec.t -> unit -> t
(** An empty registry for bins of the given capacity (used only to build
    the internal dummy slot filler). [kernel] (default [`Auto]) selects
    the fit-scan kernel: [`Auto] uses the SWAR word-at-a-time kernel
    whenever [dim <= 8] and every capacity component is at most
    [Vec.max_packable ~lane_bits:(63 / dim)] (255 up to [d = 6], 127 at
    [d = 7], 31 at [d = 8]) and the scalar per-dimension loop otherwise;
    [`Scalar] forces the scalar loop (differential tests, benchmarks). *)

val kernel_name : t -> string
(** ["swar"] or ["scalar"] — which fit kernel {!create} chose. *)

(** {1 Engine-only mutation} *)

val add : t -> Bin.t -> unit
(** Registers a freshly opened bin. Bins must be added in opening order.
    @raise Invalid_argument if the bin is closed. *)

val note_closed : t -> Bin.t -> unit
(** Tells the registry a registered bin was just closed ({!Bin.close} has
    already run). O(1) amortised. @raise Invalid_argument if still open. *)

val refresh : t -> Bin.t -> unit
(** Re-mirrors the bin's residual capacity after its load changed.
    Must be called after every {!Bin.place}/{!Bin.remove} on a registered
    bin. @raise Invalid_argument if the bin is not registered (and open). *)

(** {1 The candidate view (read-only, allocation-free)} *)

val count : t -> int
(** Number of open bins, tracked incrementally. O(1). *)

val iter : t -> (Bin.t -> unit) -> unit
(** Open bins in ascending open order. *)

val find : t -> (Bin.t -> bool) -> Bin.t option
(** First open bin satisfying the predicate; early exit. *)

val rfind : t -> (Bin.t -> bool) -> Bin.t option
(** Latest-opened bin satisfying the predicate; scans descending. *)

val fold : t -> ('acc -> Bin.t -> 'acc) -> 'acc -> 'acc
(** Over open bins in ascending open order. *)

val find_fitting : t -> Dvbp_vec.Vec.t -> Bin.t option
(** First open bin the size fits — First Fit's whole select. *)

val rfind_fitting : t -> Dvbp_vec.Vec.t -> Bin.t option
(** Latest-opened open bin the size fits — Last Fit's whole select. *)

val fold_fitting : t -> Dvbp_vec.Vec.t -> ('acc -> Bin.t -> 'acc) -> 'acc -> 'acc
(** Folds over the open bins the size fits, ascending, without building a
    candidate list. *)

val most_loaded_fitting :
  t -> measure:Load_measure.t -> Dvbp_vec.Vec.t -> Bin.t option
(** Fitting bin with the largest load measure (earliest wins ties) — Best
    Fit's whole select. The measure is evaluated from the packed residual
    mirror, bit-identical to scoring each bin with {!Bin.load_measure}. *)

val least_loaded_fitting :
  t -> measure:Load_measure.t -> Dvbp_vec.Vec.t -> Bin.t option
(** Fitting bin with the smallest load measure — Worst Fit's select. *)

val recently_used_fitting : t -> Dvbp_vec.Vec.t -> Bin.t option
(** Fitting bin with the largest {!Bin.t.last_used} — Move To Front's
    select ([last_used] values are unique, so the argmax is unambiguous). *)

val exists_fitting : t -> Dvbp_vec.Vec.t -> bool
(** Used by the engine to enforce the strict Any Fit law. *)

val count_fitting : t -> Dvbp_vec.Vec.t -> int

val nth_fitting : t -> Dvbp_vec.Vec.t -> int -> Bin.t option
(** [nth_fitting t size k] is the [k]-th (0-based, ascending) open bin the
    size fits — Random Fit's selection pass. *)

val to_list : t -> Bin.t list
(** Open bins, ascending open order. Allocates; for observers and tests. *)

(** {1 Scan statistics (observability)} *)

type scan_stats = {
  scans : int;  (** fit scans performed (one per [*_fitting] call) *)
  candidates : int;  (** total slots examined across all scans *)
  memo_hits : int;  (** {!exists_fitting} calls answered by the miss memo *)
}

val scan_stats : t -> scan_stats
(** Cumulative fit-scan tallies since {!create}. Maintained with two int
    stores per scan; never read on the hot path (scraped by the metrics
    layer at render time). *)

val of_list :
  ?kernel:[ `Auto | `Scalar ] -> capacity:Dvbp_vec.Vec.t -> Bin.t list -> t
(** Builds a registry holding exactly these bins (test helper). [kernel]
    as in {!create}. *)
