module Vec = Dvbp_vec.Vec
module Dynarray = Dvbp_prelude.Dynarray

(* Alongside the bin array, the registry keeps the packed residual
   capacities ([capacity - load], [dim] coordinates per slot) of every
   slot in one flat int array. The fit scan — one test per open bin per
   arrival, the hottest loop in a simulation — then reads a few KB of
   contiguous memory instead of chasing each bin's record and load
   vector through the heap.

   On top of that scalar mirror, when the capacity is small enough
   (byte-sized components, dim <= 8) the registry maintains a second,
   SWAR mirror: ALL [dim] residuals of a slot in ONE native int, one
   [lane = 63/dim]-bit lane per dimension. Each lane is

        bit lane-1   bit lane-2    bits lane-3 .. 0
       [ guard = 1 ][ slack = 0 ][ residual (payload) ]

   and a whole slot's fit test is one masked subtract:

        ((word - item_word) land guard_mask) = guard_mask

   where [item_word] packs the item's coordinates into the payload bits
   of the same lanes. Within a lane the subtraction computes
   [2^(lane-1) + r_j - s_j]; both r_j and s_j fit in [lane - 2] payload
   bits, so the lane's value stays in (0, 2^lane) — no borrow ever
   crosses a lane boundary — and its guard bit survives iff
   [r_j >= s_j]. Dead slots (tombstones of closed bins) store the poison
   word whose every lane is [2^(lane-1) - 1] (guard clear, payload and
   slack bits all set): subtracting any payload-bounded item leaves each
   lane in [2^(lane-2), 2^(lane-1) - 1] — still borrow-free, guard still
   clear — so tombstones fail the test for free, for every item
   including the all-zero one. That slack bit is what makes the poison
   airtight: with only a guard above the payload, [0 - s] wraps and sets
   the guard for any positive [s].

   The kernel is chosen once at [create] (see [swar_lane_bits]); when the
   precondition fails (dim > 8, or a capacity component above the lane
   payload) every scan falls back to the per-dimension scalar loop over
   [free]. Both kernels walk slots in the same order and are counted by
   the same [note_scan] bookkeeping, so results AND scan statistics are
   bit-identical — pinned by the differential tests in test_registry.ml.

   The price of the mirrors is that the engine must call {!refresh}
   after mutating a bin's load; the session does this in exactly two
   places (place, remove).

   Finally the registry keeps a per-dimension tightest-residual index
   over blocks of [block_slots] slots: [blk_lo] ([blk_hi]) holds, per
   block and dimension, a lower (upper) bound on every live slot's
   residual. Bounds are clamped outward in {!write_free}, so a stale
   bound is always conservative, and rebuilt tight on compaction. The
   fused BF/WF argmax scans turn them into per-block score bounds
   (monotone measures only) and stop as soon as the best score seen can
   no longer be strictly beaten by any remaining block — the early exit
   never changes the selected bin, because ties already keep the
   earliest candidate. *)

let block_shift = 5
let block_slots = 1 lsl block_shift (* 32 *)

(* Lane width of the SWAR word for this dimension, or 0 when the kernel
   is unavailable. The packability of the capacity itself is delegated
   to the bounds-checked {!Vec.pack_u8} codec, so the precondition lives
   in exactly one place: dim <= 8 and every component at most
   [Vec.max_packable ~lane_bits:(63 / dim)] — the full u8 range 255 for
   dim <= 6, then 127 at dim = 7 and 31 at dim = 8, where the 63-bit
   word runs out of payload bits. *)
let swar_lane_bits capacity =
  let dim = Vec.dim capacity in
  if dim > 8 then 0
  else
    let lane = 63 / dim in
    match Vec.pack_u8 ~lane_bits:lane capacity with
    | (_ : int) -> lane
    | exception Invalid_argument _ -> 0

(* Per-dimension lookup tables for the fill ratio fl((c_j - f) / c_j),
   indexed by the residual [f] in [0, c_j]. Built once at [create] when
   the capacity components are small (they always are under the SWAR
   precondition); each entry is computed with exactly the float
   operations {!measure_of_slot} would otherwise perform, so a lookup is
   bit-identical to the division it replaces. An empty table (component
   above the build threshold) or an out-of-range index (the block-bound
   sentinels [max_int] / [-1]) falls back to the live computation. *)
let ratio_table_max_component = 65535

let build_ratio_tables (cap : int array) =
  Array.map
    (fun c ->
      if c < 0 || c > ratio_table_max_component then [||]
      else
        Array.init (c + 1) (fun f -> float_of_int (c - f) /. float_of_int c))
    cap

let[@inline] ratio_at (rat : float array array) (cap : int array) j f =
  let rj = Array.unsafe_get rat j in
  if f >= 0 && f < Array.length rj then Array.unsafe_get rj f
  else
    let c = Array.unsafe_get cap j in
    float_of_int (c - f) /. float_of_int c

type t = {
  dim : int;
  cap : int array;  (* the shared bin capacity, for measure evaluation *)
  rat : float array array;  (* fill-ratio tables, one per dimension *)
  bins : Bin.t Dynarray.t;  (* ascending open order; closed bins = tombstones *)
  mutable free : int array;  (* packed residuals, [dim] per slot *)
  (* SWAR kernel parameters, fixed at [create]; [lane = 0] means scalar *)
  swar : bool;
  lane : int;
  gmask : int;  (* one guard bit per lane *)
  pmax : int;  (* largest packable coordinate; above it nothing fits *)
  dead_word : int;  (* the tombstone poison: every lane 2^(lane-1) - 1 *)
  mutable packed : int array;  (* one SWAR word per slot (swar only) *)
  (* per-slot load-measure caches, refreshed by {!write_free} with the
     exact float operations of {!measure_of_slot}: the BF/WF argmax
     reads one float per fitting candidate instead of recomputing the
     measure from [dim] residuals. Dead slots keep a stale score that no
     scan ever reads (their fit test always fails). Lp is not cached —
     its exponent is a per-call parameter. *)
  mutable linf : float array;
  mutable l1 : float array;
  (* tightest-residual block index: per block of [block_slots] slots and
     per dimension, a conservative lower/upper bound on the residuals of
     the block's live slots *)
  mutable blk_lo : int array;
  mutable blk_hi : int array;
  mutable suffix : float array;  (* per-scan scratch for suffix score bounds *)
  mutable live : int;
  mutable dead : int;
  (* Proof memo for the strict Any Fit law: when a whole-registry scan
     proves that [miss_size] fits nowhere, the engine's follow-up
     [exists_fitting] (same size, no mutation in between — [stamp] is
     bumped on every mutation) is answered without rescanning. A fresh
     open would otherwise pay the full scan twice: once in the policy's
     select, once in the conformance check. *)
  mutable stamp : int;
  mutable miss_size : int array;  (* compared physically *)
  mutable miss_stamp : int;
  (* Observability tallies (two int stores per fit scan, never read on
     the hot path; scraped by [scan_stats]). *)
  mutable stat_scans : int;
  mutable stat_candidates : int;
  mutable stat_memo_hits : int;
}

type scan_stats = { scans : int; candidates : int; memo_hits : int }

let[@inline] blocks_for slots = (slots + block_slots - 1) lsr block_shift

let create ?(kernel = `Auto) ~capacity () =
  (* the dummy bin fills unused backing slots; it is never traversed *)
  let dummy = Bin.create ~id:(-1) ~capacity ~now:0.0 ~touch:0 in
  let dim = Vec.dim capacity in
  let lane = match kernel with `Scalar -> 0 | `Auto -> swar_lane_bits capacity in
  let swar = lane > 0 in
  let gmask = ref 0 and dead_word = ref 0 in
  if swar then
    for j = 0 to dim - 1 do
      gmask := !gmask lor (1 lsl ((lane * j) + lane - 1));
      dead_word := !dead_word lor (((1 lsl (lane - 1)) - 1) lsl (lane * j))
    done;
  let slots = 8 in
  {
    dim;
    cap = (capacity :> int array);
    rat = build_ratio_tables (capacity :> int array);
    bins = Dynarray.create ~dummy ();
    free = Array.make (dim * slots) (-1);
    swar;
    lane;
    gmask = !gmask;
    pmax = (if swar then Vec.max_packable ~lane_bits:lane else 0);
    dead_word = !dead_word;
    packed = (if swar then Array.make slots !dead_word else [||]);
    linf = Array.make slots 0.0;
    l1 = Array.make slots 0.0;
    blk_lo = Array.make (blocks_for slots * dim) max_int;
    blk_hi = Array.make (blocks_for slots * dim) (-1);
    suffix = [||];
    live = 0;
    dead = 0;
    stamp = 0;
    miss_size = [||];
    miss_stamp = -1;
    stat_scans = 0;
    stat_candidates = 0;
    stat_memo_hits = 0;
  }

let count t = t.live
let kernel_name t = if t.swar then "swar" else "scalar"

let scan_stats t =
  { scans = t.stat_scans; candidates = t.stat_candidates; memo_hits = t.stat_memo_hits }

let[@inline] note_scan t examined =
  t.stat_scans <- t.stat_scans + 1;
  t.stat_candidates <- t.stat_candidates + examined

(* Re-mirrors slot [slot] from the bin record: the scalar residuals, the
   SWAR word, the cached Linf/L1 scores, and the block bounds (clamped
   outward only — a residual that shrank back leaves a stale,
   conservative bound behind). The score accumulation mirrors
   {!measure_of_slot} operation for operation, so a cached score and a
   recomputed one are the same float. *)
let[@inline] write_free t slot (b : Bin.t) =
  let cap = (b.Bin.capacity :> int array)
  and load = (b.Bin.load :> int array) in
  let free = t.free and blk_lo = t.blk_lo and blk_hi = t.blk_hi in
  let rat = t.rat in
  let d = t.dim in
  let base = slot * d in
  let bbase = (slot lsr block_shift) * d in
  let best = ref 0.0 and sum = ref 0.0 in
  if t.swar then begin
    let lane = t.lane in
    let word = ref t.gmask in
    for j = 0 to d - 1 do
      let r = Array.unsafe_get cap j - Array.unsafe_get load j in
      Array.unsafe_set free (base + j) r;
      if r < Array.unsafe_get blk_lo (bbase + j) then
        Array.unsafe_set blk_lo (bbase + j) r;
      if r > Array.unsafe_get blk_hi (bbase + j) then
        Array.unsafe_set blk_hi (bbase + j) r;
      let ratio = ratio_at rat cap j r in
      if ratio > !best then best := ratio;
      sum := !sum +. ratio;
      word := !word lor (r lsl (lane * j))
    done;
    Array.unsafe_set t.packed slot !word
  end
  else
    for j = 0 to d - 1 do
      let r = Array.unsafe_get cap j - Array.unsafe_get load j in
      Array.unsafe_set free (base + j) r;
      if r < Array.unsafe_get blk_lo (bbase + j) then
        Array.unsafe_set blk_lo (bbase + j) r;
      if r > Array.unsafe_get blk_hi (bbase + j) then
        Array.unsafe_set blk_hi (bbase + j) r;
      let ratio = ratio_at rat cap j r in
      if ratio > !best then best := ratio;
      sum := !sum +. ratio
    done;
  Array.unsafe_set t.linf slot !best;
  Array.unsafe_set t.l1 slot !sum

let[@inline] kill_slot t slot =
  t.free.(slot * t.dim) <- -1;
  if t.swar then t.packed.(slot) <- t.dead_word

let ensure_free_capacity t slots =
  let need = slots * t.dim in
  if Array.length t.free < need then begin
    let grown = max need (2 * Array.length t.free) in
    let bigger = Array.make grown (-1) in
    Array.blit t.free 0 bigger 0 (Array.length t.free);
    t.free <- bigger;
    let grown_slots = (grown + t.dim - 1) / t.dim in
    if t.swar then begin
      let bigger = Array.make grown_slots t.dead_word in
      Array.blit t.packed 0 bigger 0 (Array.length t.packed);
      t.packed <- bigger
    end;
    let linf = Array.make grown_slots 0.0 and l1 = Array.make grown_slots 0.0 in
    Array.blit t.linf 0 linf 0 (Array.length t.linf);
    Array.blit t.l1 0 l1 0 (Array.length t.l1);
    t.linf <- linf;
    t.l1 <- l1
  end;
  let bneed = blocks_for slots * t.dim in
  if Array.length t.blk_lo < bneed then begin
    let grown = max bneed (2 * Array.length t.blk_lo) in
    let lo = Array.make grown max_int and hi = Array.make grown (-1) in
    Array.blit t.blk_lo 0 lo 0 (Array.length t.blk_lo);
    Array.blit t.blk_hi 0 hi 0 (Array.length t.blk_hi);
    t.blk_lo <- lo;
    t.blk_hi <- hi
  end

let ensure_suffix t n =
  if Array.length t.suffix < n then t.suffix <- Array.make (max n 16) 0.0

let[@inline] bump t = t.stamp <- t.stamp + 1

let[@inline] record_miss t (size : int array) =
  t.miss_size <- size;
  t.miss_stamp <- t.stamp

let[@inline] proven_miss t (size : int array) =
  t.miss_stamp = t.stamp && t.miss_size == size

let add t b =
  if not (Bin.is_open b) then invalid_arg "Bin_registry.add: bin is closed";
  bump t;
  Dynarray.push t.bins b;
  let slot = Dynarray.length t.bins - 1 in
  ensure_free_capacity t (slot + 1);
  write_free t slot b;
  Bin.set_registry_slot b slot;
  t.live <- t.live + 1

let refresh t (b : Bin.t) =
  let slot = b.Bin.registry_slot in
  if slot < 0 then invalid_arg "Bin_registry.refresh: bin is not registered";
  bump t;
  write_free t slot b

let compact t =
  Dynarray.filter_in_place t.bins Bin.is_open;
  (* reset the block bounds so the rebuild below leaves them tight *)
  Array.fill t.blk_lo 0 (Array.length t.blk_lo) max_int;
  Array.fill t.blk_hi 0 (Array.length t.blk_hi) (-1);
  for i = 0 to Dynarray.length t.bins - 1 do
    let b = Dynarray.unsafe_get t.bins i in
    write_free t i b;
    Bin.set_registry_slot b i
  done;
  t.dead <- 0

let note_closed t b =
  if Bin.is_open b then invalid_arg "Bin_registry.note_closed: bin still open";
  let slot = b.Bin.registry_slot in
  if slot < 0 then invalid_arg "Bin_registry.note_closed: bin is not registered";
  bump t;
  kill_slot t slot;
  Bin.set_registry_slot b (-1);
  t.live <- t.live - 1;
  t.dead <- t.dead + 1;
  (* Closed bins cost one failing residual test per scan until compaction.
     Compacting once a quarter of the slots are dead keeps scan length
     within 1.25x of the live count while still amortising the O(n)
     sweep over at least live/4 closes. *)
  if 4 * t.dead > t.live then compact t

let[@inline] alive (b : Bin.t) =
  match b.Bin.closed_at with None -> true | Some _ -> false

(* Predicate traversals (class-constrained policies, observers): these
   walk the bin records themselves, skipping tombstones. *)

let iter t f =
  let bins = t.bins in
  for i = 0 to Dynarray.length bins - 1 do
    let b = Dynarray.unsafe_get bins i in
    if alive b then f b
  done

let find t p =
  let bins = t.bins in
  let n = Dynarray.length bins in
  let rec go i =
    if i >= n then None
    else
      let b = Dynarray.unsafe_get bins i in
      if alive b && p b then Some b else go (i + 1)
  in
  go 0

let rfind t p =
  let bins = t.bins in
  let rec go i =
    if i < 0 then None
    else
      let b = Dynarray.unsafe_get bins i in
      if alive b && p b then Some b else go (i - 1)
  in
  go (Dynarray.length bins - 1)

let fold t f init =
  let bins = t.bins in
  let n = Dynarray.length bins in
  let rec go acc i =
    if i >= n then acc
    else
      let b = Dynarray.unsafe_get bins i in
      go (if alive b then f acc b else acc) (i + 1)
  in
  go init 0

(* Fit scans. Two interchangeable inner kernels, selected once per scan:

   - scalar: a direct while-loop over the per-dimension residual mirror.
     The per-slot test is branchless — [size] fits iff every
     [free_j - size_j] is non-negative, i.e. iff OR-ing the differences
     leaves the sign bit clear. An early-exit comparison loop looks
     cheaper but its exit point varies per slot, and the resulting branch
     mispredictions dominated the scan; a dead slot's [-1] poison
     residual drives the OR negative just like any other miss.

   - swar: one masked subtract per slot over the packed-word mirror (see
     the module header). The item's word is packed once per scan.

   Both walk the same slot order and return the same indices, so every
   caller's result and candidate count are kernel-independent. *)

let[@inline] coerce_size t (size : Vec.t) =
  if Vec.dim size <> t.dim then
    invalid_arg "Bin_registry: size dimension does not match capacity";
  (size :> int array)

(* The item's SWAR word, or -1 when some coordinate exceeds the lane
   payload — capacities are bounded by [pmax], so such an item fits
   nowhere and the caller answers "miss" with full-scan statistics,
   exactly like the scalar kernel scanning every slot. *)
let[@inline] pack_size t (size : int array) =
  let d = t.dim and lane = t.lane and pmax = t.pmax in
  let word = ref 0 and j = ref 0 and ok = ref true in
  while !ok && !j < d do
    let s = Array.unsafe_get size !j in
    if s > pmax then ok := false
    else begin
      word := !word lor (s lsl (lane * !j));
      incr j
    end
  done;
  if !ok then !word else -1

(* first slot index in [i0, stop) whose residuals fit [size], else [stop] *)
let[@inline] scan_up (free : int array) (size : int array) d stop i0 =
  let i = ref i0 and base = ref (i0 * d) and found = ref false in
  while (not !found) && !i < stop do
    let acc = ref 0 in
    for j = 0 to d - 1 do
      acc :=
        !acc lor (Array.unsafe_get free (!base + j) - Array.unsafe_get size j)
    done;
    if !acc >= 0 then found := true
    else begin
      incr i;
      base := !base + d
    end
  done;
  !i

(* SWAR twin of [scan_up]: one word per slot, [iw] packed once by the
   caller. *)
let[@inline] scan_up_swar (packed : int array) iw gmask stop i0 =
  let i = ref i0 and found = ref false in
  while (not !found) && !i < stop do
    if (Array.unsafe_get packed !i - iw) land gmask = gmask then found := true
    else incr i
  done;
  !i

let find_fitting t size =
  let size = coerce_size t size in
  let n = Dynarray.length t.bins in
  let i =
    if t.swar then begin
      let iw = pack_size t size in
      if iw < 0 then n else scan_up_swar t.packed iw t.gmask n 0
    end
    else scan_up t.free size t.dim n 0
  in
  note_scan t (if i < n then i + 1 else n);
  if i < n then Some (Dynarray.unsafe_get t.bins i)
  else begin
    record_miss t size;
    None
  end

(* last slot index in [0, top] whose residuals fit, else -1 *)
let[@inline] scan_down (free : int array) (size : int array) d top =
  let i = ref top and base = ref (top * d) and found = ref false in
  while (not !found) && !i >= 0 do
    let acc = ref 0 in
    for j = 0 to d - 1 do
      acc :=
        !acc lor (Array.unsafe_get free (!base + j) - Array.unsafe_get size j)
    done;
    if !acc >= 0 then found := true
    else begin
      decr i;
      base := !base - d
    end
  done;
  !i

let[@inline] scan_down_swar (packed : int array) iw gmask top =
  let i = ref top and found = ref false in
  while (not !found) && !i >= 0 do
    if (Array.unsafe_get packed !i - iw) land gmask = gmask then found := true
    else decr i
  done;
  !i

let rfind_fitting t size =
  let size = coerce_size t size in
  let n = Dynarray.length t.bins in
  let i =
    if t.swar then begin
      let iw = pack_size t size in
      if iw < 0 then -1 else scan_down_swar t.packed iw t.gmask (n - 1)
    end
    else scan_down t.free size t.dim (n - 1)
  in
  note_scan t (if i >= 0 then n - i else n);
  if i >= 0 then Some (Dynarray.unsafe_get t.bins i)
  else begin
    record_miss t size;
    None
  end

(* Load measure of the slot at [base], computed from the packed
   residuals. The residual is exactly [cap - load] (integer arithmetic),
   so recovering the load and applying the same float operations in the
   same order yields the bit-identical value {!Bin.load_measure} returns
   — argmax/argmin ties therefore break exactly as they would when
   scoring the bin records. The fill ratio comes from the per-dimension
   table when the residual indexes it (every live slot does); the
   fallback division computes the very same value, so the two paths are
   interchangeable bit for bit. *)
let measure_of_slot t (m : Load_measure.t) (free : int array) base =
  let d = t.dim and cap = t.cap and rat = t.rat in
  match m with
  | Load_measure.Linf ->
      let best = ref 0.0 in
      for j = 0 to d - 1 do
        let r = ratio_at rat cap j (Array.unsafe_get free (base + j)) in
        if r > !best then best := r
      done;
      !best
  | Load_measure.L1 ->
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        acc := !acc +. ratio_at rat cap j (Array.unsafe_get free (base + j))
      done;
      !acc
  | Load_measure.Lp p ->
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        acc :=
          !acc +. (ratio_at rat cap j (Array.unsafe_get free (base + j)) ** p)
      done;
      !acc ** (1.0 /. p)

(* The block-bound pruning is sound only for measures that are monotone
   in every residual under the float operations actually performed:
   integer subtraction is exact, [fl(l / c)] is monotone in [l], and max
   and same-order summation preserve weak monotonicity. [x ** p] makes
   no such promise, so Lp scans never prune. *)
let bound_supported = function
  | Load_measure.Linf | Load_measure.L1 -> true
  | Load_measure.Lp _ -> false

(* Argmax/argmin of the load measure over the fitting bins, fused into
   the mirror scan (best-fit/worst-fit never touch the bin records until
   the winner is known). Strict improvement replaces, so ties keep the
   earliest-opened bin.

   Per-block early exit: evaluating the measure on a block's [blk_lo]
   ([blk_hi]) residual bounds gives an upper (lower) bound on every live
   slot's score in that block — the measures are monotone decreasing in
   each residual — and a right-to-left pass turns those into suffix
   bounds. Once some fitting bin is in hand and its score meets the
   suffix bound, no remaining slot can STRICTLY beat it, and a
   non-strict tie would lose to the earlier candidate anyway, so the
   scan stops — same winner, fewer slots examined. Both kernels share
   this logic, so candidate counts stay kernel-independent. *)
let extremal_loaded_fitting t (measure : Load_measure.t) size ~largest =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let n = Dynarray.length t.bins in
  let nblocks = blocks_for n in
  let prune = nblocks > 1 && bound_supported measure in
  (* The suffix score bounds are built lazily, at the first block
     boundary reached with a candidate in hand — a scan that finds no
     fitting bin (the common case once bins saturate) never consults
     them, so it never pays for the build. Values are identical
     whenever consulted, so examined counts and winners match the eager
     build exactly. *)
  let suffix_built = ref false in
  let build_suffix () =
    suffix_built := true;
    ensure_suffix t (nblocks + 1);
    let s = t.suffix in
    s.(nblocks) <- (if largest then neg_infinity else infinity);
    for b = nblocks - 1 downto 0 do
      let bound =
        measure_of_slot t measure
          (if largest then t.blk_lo else t.blk_hi)
          (b * d)
      in
      s.(b) <-
        (if largest then Float.max bound s.(b + 1) else Float.min bound s.(b + 1))
    done
  in
  let swar = t.swar and packed = t.packed and gmask = t.gmask in
  (* cached per-slot scores where the measure has a cache (Linf, L1);
     an empty array routes Lp through the live computation *)
  let scores =
    match measure with
    | Load_measure.Linf -> t.linf
    | Load_measure.L1 -> t.l1
    | Load_measure.Lp _ -> [||]
  in
  let cached = Array.length scores > 0 in
  let best = ref (-1) and best_score = ref 0.0 in
  let examined = ref n in
  let iw = if swar then pack_size t size else 0 in
  if swar && iw < 0 then ()
  else begin
    let b = ref 0 and stop = ref false in
    while (not !stop) && !b lsl block_shift < n do
      let lo = !b lsl block_shift in
      if
        prune && !best >= 0
        &&
        (if not !suffix_built then build_suffix ();
         let s = Array.unsafe_get t.suffix !b in
         if largest then !best_score >= s else !best_score <= s)
      then begin
        examined := lo;
        stop := true
      end
      else begin
        let hi = Int.min n (lo + block_slots) in
        let i = ref lo in
        while !i < hi do
          let next =
            if swar then scan_up_swar packed iw gmask hi !i
            else scan_up free size d hi !i
          in
          if next < hi then begin
            let score =
              if cached then Array.unsafe_get scores next
              else measure_of_slot t measure free (next * d)
            in
            if
              !best < 0
              || (if largest then score > !best_score else score < !best_score)
            then begin
              best := next;
              best_score := score
            end
          end;
          i := next + 1
        done;
        incr b
      end
    done
  end;
  note_scan t !examined;
  if !best < 0 then begin
    record_miss t size;
    None
  end
  else Some (Dynarray.unsafe_get t.bins !best)

let most_loaded_fitting t ~measure size =
  extremal_loaded_fitting t measure size ~largest:true

let least_loaded_fitting t ~measure size =
  extremal_loaded_fitting t measure size ~largest:false

(* Most-recently-used fitting bin (move-to-front). [last_used] values are
   unique (the session's touch counter increments per use), so comparing
   them as ints selects the same bin as the old float argmax. No block
   pruning here — the argmax key lives in the bin records, not the
   residual mirror. *)
let recently_used_fitting t size =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  let best = ref (-1) and best_touch = ref (-1) in
  let swar = t.swar and packed = t.packed and gmask = t.gmask in
  let iw = if swar then pack_size t size else 0 in
  if swar && iw < 0 then ()
  else begin
    let i = ref 0 in
    while !i < n do
      let next =
        if swar then scan_up_swar packed iw gmask n !i
        else scan_up free size d n !i
      in
      if next < n then begin
        let touch = (Dynarray.unsafe_get bins next).Bin.last_used in
        if touch > !best_touch then begin
          best := next;
          best_touch := touch
        end
      end;
      i := next + 1
    done
  end;
  note_scan t n;
  if !best < 0 then begin
    record_miss t size;
    None
  end
  else Some (Dynarray.unsafe_get bins !best)

let fold_fitting t size f init =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  let acc = ref init in
  let swar = t.swar and packed = t.packed and gmask = t.gmask in
  let iw = if swar then pack_size t size else 0 in
  if swar && iw < 0 then ()
  else begin
    let i = ref 0 in
    while !i < n do
      let next =
        if swar then scan_up_swar packed iw gmask n !i
        else scan_up free size d n !i
      in
      if next < n then acc := f !acc (Dynarray.unsafe_get bins next);
      i := next + 1
    done
  end;
  note_scan t n;
  !acc

let exists_fitting t size =
  let size = coerce_size t size in
  if proven_miss t size then begin
    t.stat_memo_hits <- t.stat_memo_hits + 1;
    false
  end
  else begin
    let n = Dynarray.length t.bins in
    let i =
      if t.swar then begin
        let iw = pack_size t size in
        if iw < 0 then n else scan_up_swar t.packed iw t.gmask n 0
      end
      else scan_up t.free size t.dim n 0
    in
    note_scan t (if i < n then i + 1 else n);
    if i < n then true
    else begin
      record_miss t size;
      false
    end
  end

let count_fitting t size =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let n = Dynarray.length t.bins in
  let c = ref 0 in
  let swar = t.swar and packed = t.packed and gmask = t.gmask in
  let iw = if swar then pack_size t size else 0 in
  if swar && iw < 0 then ()
  else begin
    let i = ref 0 in
    while !i < n do
      let next =
        if swar then scan_up_swar packed iw gmask n !i
        else scan_up free size d n !i
      in
      if next < n then incr c;
      i := next + 1
    done
  end;
  note_scan t n;
  if !c = 0 then record_miss t size;
  !c

let nth_fitting t size k =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  if k < 0 then None
  else begin
    let remaining = ref k and i = ref 0 and result = ref None in
    let swar = t.swar and packed = t.packed and gmask = t.gmask in
    let iw = if swar then pack_size t size else 0 in
    if swar && iw < 0 then i := n
    else
      while !result == None && !i < n do
        let next =
          if swar then scan_up_swar packed iw gmask n !i
          else scan_up free size d n !i
        in
        if next < n then
          if !remaining = 0 then result := Some (Dynarray.unsafe_get bins next)
          else decr remaining;
        i := next + 1
      done;
    note_scan t (min !i n);
    !result
  end

let to_list t = List.rev (fold t (fun acc b -> b :: acc) [])

let of_list ?kernel ~capacity bins =
  let t = create ?kernel ~capacity () in
  List.iter
    (fun b ->
      Dynarray.push t.bins b;
      let slot = Dynarray.length t.bins - 1 in
      ensure_free_capacity t (slot + 1);
      if Bin.is_open b then begin
        write_free t slot b;
        Bin.set_registry_slot b slot;
        t.live <- t.live + 1
      end
      else begin
        kill_slot t slot;
        t.dead <- t.dead + 1
      end)
    bins;
  t
