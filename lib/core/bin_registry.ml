module Vec = Dvbp_vec.Vec
module Dynarray = Dvbp_prelude.Dynarray

(* Alongside the bin array, the registry keeps the packed residual
   capacities ([capacity - load], [dim] coordinates per slot) of every
   slot in one flat int array. The fit scan — one test per open bin per
   arrival, the hottest loop in a simulation — then reads a few KB of
   contiguous memory instead of chasing each bin's record and load
   vector through the heap. Dead slots have their first residual set to
   [-1], which no non-negative size fits, so the scan needs no separate
   liveness test. The price is that the engine must call {!refresh}
   after mutating a bin's load; the session does this in exactly two
   places (place, remove). *)
type t = {
  dim : int;
  cap : int array;  (* the shared bin capacity, for measure evaluation *)
  bins : Bin.t Dynarray.t;  (* ascending open order; closed bins = tombstones *)
  mutable free : int array;  (* packed residuals, [dim] per slot *)
  mutable live : int;
  mutable dead : int;
  (* Proof memo for the strict Any Fit law: when a whole-registry scan
     proves that [miss_size] fits nowhere, the engine's follow-up
     [exists_fitting] (same size, no mutation in between — [stamp] is
     bumped on every mutation) is answered without rescanning. A fresh
     open would otherwise pay the full scan twice: once in the policy's
     select, once in the conformance check. *)
  mutable stamp : int;
  mutable miss_size : int array;  (* compared physically *)
  mutable miss_stamp : int;
  (* Observability tallies (two int stores per fit scan, never read on
     the hot path; scraped by [scan_stats]). *)
  mutable stat_scans : int;
  mutable stat_candidates : int;
  mutable stat_memo_hits : int;
}

type scan_stats = { scans : int; candidates : int; memo_hits : int }

let create ~capacity =
  (* the dummy bin fills unused backing slots; it is never traversed *)
  let dummy = Bin.create ~id:(-1) ~capacity ~now:0.0 ~touch:0 in
  let dim = Vec.dim capacity in
  {
    dim;
    cap = (capacity :> int array);
    bins = Dynarray.create ~dummy ();
    free = Array.make (dim * 8) (-1);
    live = 0;
    dead = 0;
    stamp = 0;
    miss_size = [||];
    miss_stamp = -1;
    stat_scans = 0;
    stat_candidates = 0;
    stat_memo_hits = 0;
  }

let count t = t.live

let scan_stats t =
  { scans = t.stat_scans; candidates = t.stat_candidates; memo_hits = t.stat_memo_hits }

let[@inline] note_scan t examined =
  t.stat_scans <- t.stat_scans + 1;
  t.stat_candidates <- t.stat_candidates + examined

let[@inline] write_free t slot (b : Bin.t) =
  let cap = (b.Bin.capacity :> int array)
  and load = (b.Bin.load :> int array) in
  let free = t.free in
  let base = slot * t.dim in
  for j = 0 to t.dim - 1 do
    Array.unsafe_set free (base + j)
      (Array.unsafe_get cap j - Array.unsafe_get load j)
  done

let[@inline] kill_slot t slot = t.free.(slot * t.dim) <- -1

let ensure_free_capacity t slots =
  let need = slots * t.dim in
  if Array.length t.free < need then begin
    let bigger = Array.make (max need (2 * Array.length t.free)) (-1) in
    Array.blit t.free 0 bigger 0 (Array.length t.free);
    t.free <- bigger
  end

let[@inline] bump t = t.stamp <- t.stamp + 1

let[@inline] record_miss t (size : int array) =
  t.miss_size <- size;
  t.miss_stamp <- t.stamp

let[@inline] proven_miss t (size : int array) =
  t.miss_stamp = t.stamp && t.miss_size == size

let add t b =
  if not (Bin.is_open b) then invalid_arg "Bin_registry.add: bin is closed";
  bump t;
  Dynarray.push t.bins b;
  let slot = Dynarray.length t.bins - 1 in
  ensure_free_capacity t (slot + 1);
  write_free t slot b;
  Bin.set_registry_slot b slot;
  t.live <- t.live + 1

let refresh t (b : Bin.t) =
  let slot = b.Bin.registry_slot in
  if slot < 0 then invalid_arg "Bin_registry.refresh: bin is not registered";
  bump t;
  write_free t slot b

let compact t =
  Dynarray.filter_in_place t.bins Bin.is_open;
  for i = 0 to Dynarray.length t.bins - 1 do
    let b = Dynarray.unsafe_get t.bins i in
    write_free t i b;
    Bin.set_registry_slot b i
  done;
  t.dead <- 0

let note_closed t b =
  if Bin.is_open b then invalid_arg "Bin_registry.note_closed: bin still open";
  let slot = b.Bin.registry_slot in
  if slot < 0 then invalid_arg "Bin_registry.note_closed: bin is not registered";
  bump t;
  kill_slot t slot;
  Bin.set_registry_slot b (-1);
  t.live <- t.live - 1;
  t.dead <- t.dead + 1;
  (* Closed bins cost one failing residual test per scan until compaction.
     Compacting once a quarter of the slots are dead keeps scan length
     within 1.25x of the live count while still amortising the O(n)
     sweep over at least live/4 closes. *)
  if 4 * t.dead > t.live then compact t

let[@inline] alive (b : Bin.t) =
  match b.Bin.closed_at with None -> true | Some _ -> false

(* Predicate traversals (class-constrained policies, observers): these
   walk the bin records themselves, skipping tombstones. *)

let iter t f =
  let bins = t.bins in
  for i = 0 to Dynarray.length bins - 1 do
    let b = Dynarray.unsafe_get bins i in
    if alive b then f b
  done

let find t p =
  let bins = t.bins in
  let n = Dynarray.length bins in
  let rec go i =
    if i >= n then None
    else
      let b = Dynarray.unsafe_get bins i in
      if alive b && p b then Some b else go (i + 1)
  in
  go 0

let rfind t p =
  let bins = t.bins in
  let rec go i =
    if i < 0 then None
    else
      let b = Dynarray.unsafe_get bins i in
      if alive b && p b then Some b else go (i - 1)
  in
  go (Dynarray.length bins - 1)

let fold t f init =
  let bins = t.bins in
  let n = Dynarray.length bins in
  let rec go acc i =
    if i >= n then acc
    else
      let b = Dynarray.unsafe_get bins i in
      go (if alive b then f acc b else acc) (i + 1)
  in
  go init 0

(* Fit scans: direct while-loops over the packed residual array. The
   per-slot test is branchless: [size] fits iff every [free_j - size_j]
   is non-negative, i.e. iff OR-ing the differences leaves the sign bit
   clear. An early-exit comparison loop looks cheaper but its exit point
   varies per slot, and the resulting branch mispredictions dominated
   the scan; a dead slot's [-1] poison residual drives the OR negative
   just like any other miss. *)

let[@inline] coerce_size t (size : Vec.t) =
  if Vec.dim size <> t.dim then
    invalid_arg "Bin_registry: size dimension does not match capacity";
  (size :> int array)

(* first slot index >= [i0] whose residuals fit [size], or [n] *)
let[@inline] scan_up (free : int array) (size : int array) d n i0 =
  let i = ref i0 and base = ref (i0 * d) and found = ref false in
  while (not !found) && !i < n do
    let acc = ref 0 in
    for j = 0 to d - 1 do
      acc :=
        !acc lor (Array.unsafe_get free (!base + j) - Array.unsafe_get size j)
    done;
    if !acc >= 0 then found := true
    else begin
      incr i;
      base := !base + d
    end
  done;
  !i

let find_fitting t size =
  let size = coerce_size t size in
  let n = Dynarray.length t.bins in
  let i = scan_up t.free size t.dim n 0 in
  note_scan t (if i < n then i + 1 else n);
  if i < n then Some (Dynarray.unsafe_get t.bins i)
  else begin
    record_miss t size;
    None
  end

let rfind_fitting t size =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let i = ref (Dynarray.length bins - 1) and found = ref false in
  let base = ref (!i * d) in
  while (not !found) && !i >= 0 do
    let acc = ref 0 in
    for j = 0 to d - 1 do
      acc :=
        !acc lor (Array.unsafe_get free (!base + j) - Array.unsafe_get size j)
    done;
    if !acc >= 0 then found := true
    else begin
      decr i;
      base := !base - d
    end
  done;
  note_scan t (if !found then Dynarray.length bins - !i else Dynarray.length bins);
  if !found then Some (Dynarray.unsafe_get bins !i)
  else begin
    record_miss t size;
    None
  end

(* Load measure of the slot at [base], computed from the packed
   residuals. The residual is exactly [cap - load] (integer arithmetic),
   so recovering the load and applying the same float operations in the
   same order yields the bit-identical value {!Bin.load_measure} returns
   — argmax/argmin ties therefore break exactly as they would when
   scoring the bin records. *)
let measure_of_slot (m : Load_measure.t) (free : int array) (cap : int array) d
    base =
  match m with
  | Load_measure.Linf ->
      let best = ref 0.0 in
      for j = 0 to d - 1 do
        let c = Array.unsafe_get cap j in
        let l = c - Array.unsafe_get free (base + j) in
        let r = float_of_int l /. float_of_int c in
        if r > !best then best := r
      done;
      !best
  | Load_measure.L1 ->
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        let c = Array.unsafe_get cap j in
        let l = c - Array.unsafe_get free (base + j) in
        acc := !acc +. (float_of_int l /. float_of_int c)
      done;
      !acc
  | Load_measure.Lp p ->
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        let c = Array.unsafe_get cap j in
        let l = c - Array.unsafe_get free (base + j) in
        acc := !acc +. ((float_of_int l /. float_of_int c) ** p)
      done;
      !acc ** (1.0 /. p)

(* Argmax/argmin of the load measure over the fitting bins, fused into
   the packed-residual scan (best-fit/worst-fit never touch the bin
   records until the winner is known). Strict improvement replaces, so
   ties keep the earliest-opened bin. The Linf case is unrolled into the
   loop: it is every standard policy's measure, and keeping the score in
   registers avoids boxing a float per candidate. *)
let extremal_loaded_fitting t (measure : Load_measure.t) size ~largest =
  let size = coerce_size t size in
  let d = t.dim and free = t.free and cap = t.cap in
  let n = Dynarray.length t.bins in
  let best = ref (-1) and best_score = ref 0.0 in
  (match measure with
  | Load_measure.Linf ->
      let i = ref 0 in
      while !i < n do
        let next = scan_up free size d n !i in
        if next < n then begin
          let base = next * d in
          let score = ref 0.0 in
          for j = 0 to d - 1 do
            let c = Array.unsafe_get cap j in
            let l = c - Array.unsafe_get free (base + j) in
            let r = float_of_int l /. float_of_int c in
            if r > !score then score := r
          done;
          if
            !best < 0
            || (if largest then !score > !best_score else !score < !best_score)
          then begin
            best := next;
            best_score := !score
          end
        end;
        i := next + 1
      done
  | _ ->
      let i = ref 0 in
      while !i < n do
        let next = scan_up free size d n !i in
        if next < n then begin
          let score = measure_of_slot measure free cap d (next * d) in
          if
            !best < 0
            || (if largest then score > !best_score else score < !best_score)
          then begin
            best := next;
            best_score := score
          end
        end;
        i := next + 1
      done);
  note_scan t n;
  if !best < 0 then begin
    record_miss t size;
    None
  end
  else Some (Dynarray.unsafe_get t.bins !best)

let most_loaded_fitting t ~measure size =
  extremal_loaded_fitting t measure size ~largest:true

let least_loaded_fitting t ~measure size =
  extremal_loaded_fitting t measure size ~largest:false

(* Most-recently-used fitting bin (move-to-front). [last_used] values are
   unique (the session's touch counter increments per use), so comparing
   them as ints selects the same bin as the old float argmax. *)
let recently_used_fitting t size =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  let best = ref (-1) and best_touch = ref (-1) in
  let i = ref 0 in
  while !i < n do
    let next = scan_up free size d n !i in
    if next < n then begin
      let touch = (Dynarray.unsafe_get bins next).Bin.last_used in
      if touch > !best_touch then begin
        best := next;
        best_touch := touch
      end
    end;
    i := next + 1
  done;
  note_scan t n;
  if !best < 0 then begin
    record_miss t size;
    None
  end
  else Some (Dynarray.unsafe_get bins !best)

let fold_fitting t size f init =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  let acc = ref init and i = ref 0 in
  while !i < n do
    let next = scan_up free size d n !i in
    if next < n then acc := f !acc (Dynarray.unsafe_get bins next);
    i := next + 1
  done;
  note_scan t n;
  !acc

let exists_fitting t size =
  let size = coerce_size t size in
  if proven_miss t size then begin
    t.stat_memo_hits <- t.stat_memo_hits + 1;
    false
  end
  else begin
    let n = Dynarray.length t.bins in
    let i = scan_up t.free size t.dim n 0 in
    note_scan t (if i < n then i + 1 else n);
    if i < n then true
    else begin
      record_miss t size;
      false
    end
  end

let count_fitting t size =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let n = Dynarray.length t.bins in
  let c = ref 0 and i = ref 0 in
  while !i < n do
    let next = scan_up free size d n !i in
    if next < n then incr c;
    i := next + 1
  done;
  note_scan t n;
  if !c = 0 then record_miss t size;
  !c

let nth_fitting t size k =
  let size = coerce_size t size in
  let d = t.dim and free = t.free in
  let bins = t.bins in
  let n = Dynarray.length bins in
  if k < 0 then None
  else begin
    let remaining = ref k and i = ref 0 and result = ref None in
    while !result == None && !i < n do
      let next = scan_up free size d n !i in
      if next < n then
        if !remaining = 0 then result := Some (Dynarray.unsafe_get bins next)
        else decr remaining;
      i := next + 1
    done;
    note_scan t (min !i n);
    !result
  end

let to_list t = List.rev (fold t (fun acc b -> b :: acc) [])

let of_list ~capacity bins =
  let t = create ~capacity in
  List.iter
    (fun b ->
      Dynarray.push t.bins b;
      let slot = Dynarray.length t.bins - 1 in
      ensure_free_capacity t (slot + 1);
      if Bin.is_open b then begin
        write_free t slot b;
        Bin.set_registry_slot b slot;
        t.live <- t.live + 1
      end
      else begin
        kill_slot t slot;
        t.dead <- t.dead + 1
      end)
    bins;
  t
