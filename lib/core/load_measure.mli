(** Scalar load measures for multi-dimensional bins.

    For [d >= 2] there is no unique notion of "most loaded" bin; §2.2 of the
    paper lists the natural choices for Best Fit. All are capacity-relative
    so a value of [1.0] means "full in that measure". *)

type t =
  | Linf  (** max load: [‖s(R)‖∞] — the measure used in the paper's experiments *)
  | L1  (** sum of loads: [‖s(R)‖₁] *)
  | Lp of float  (** [‖s(R)‖_p] for [p >= 1] *)

val apply : t -> cap:Dvbp_vec.Vec.t -> Dvbp_vec.Vec.t -> float
(** Evaluates the measure on a load vector. *)

val equal : t -> t -> bool

val name : t -> string
(** ["linf"], ["l1"], ["l2.0"], ... *)

val of_name : string -> (t, string) result
(** Parses the same names; ["lp:<p>"] also accepted. *)

val all_standard : t list
(** [Linf; L1; Lp 2.0] — the ablation set from §2.2. *)
