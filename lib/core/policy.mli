(** Online packing policies (Algorithm 1 of the paper and variants).

    A policy answers one question — given the currently open bins and an
    arriving item, which bin receives it — plus two notifications that let
    stateful policies (Next Fit's current bin) track the bin lifecycle.

    Policies are values with private mutable state; build a fresh policy per
    simulation run. The engine passes the open bins as a read-only
    {!Bin_registry.t} candidate view — bins in opening order (ascending
    {!Bin.t.id}), traversed allocation-free with the registry's
    [find]/[rfind]/[fold_fitting] primitives — and owns all bin mutation.

    {b Non-clairvoyance.} The arriving item is presented as an {!item_view}
    whose [departure] field is [None] unless the engine runs in clairvoyant
    mode, so non-clairvoyant policies cannot accidentally peek at departure
    times (§2.1: the algorithm has no knowledge of when the item departs). *)

type item_view = {
  size : Dvbp_vec.Vec.t;
  arrival : float;
  departure : float option;  (** [Some _] only in clairvoyant mode *)
}

type decision =
  | Existing of Bin.t  (** pack into this open bin *)
  | Fresh  (** open a new bin *)

type t = {
  name : string;
  describe : string;
  select : item:item_view -> open_bins:Bin_registry.t -> decision;
  on_place : bin:Bin.t -> now:float -> unit;
      (** called after every placement, including into a fresh bin *)
  on_close : bin:Bin.t -> now:float -> unit;
      (** called when a bin closes *)
  strict_any_fit : bool;
      (** true when the policy's open-bin list [L] is {e all} open bins, so
          it must never return {!Fresh} while some open bin fits (checked by
          tests); Next Fit keeps [|L| <= 1] and is exempt *)
}

(** {1 The paper's Any Fit policies} *)

val first_fit : unit -> t
(** Earliest-opened bin that fits. *)

val last_fit : unit -> t
(** Latest-opened bin that fits. *)

val best_fit : ?measure:Load_measure.t -> unit -> t
(** Most-loaded fitting bin (default measure {!Load_measure.Linf}, as in the
    paper's experiments); ties go to the earliest-opened bin. *)

val worst_fit : ?measure:Load_measure.t -> unit -> t
(** Least-loaded fitting bin; ties to the earliest-opened bin. *)

val move_to_front : unit -> t
(** Most-recently-used fitting bin (a fresh bin counts as used when it is
    opened, and every placement moves the receiving bin to the front). *)

val next_fit : unit -> t
(** Keeps a single current bin; when an item does not fit, the current bin
    is released (never receives again) and a fresh bin becomes current. Not
    a strict Any Fit policy: released bins stay open but are outside its
    list [L]. *)

val random_fit : rng:Dvbp_prelude.Rng.t -> unit -> t
(** Uniformly random fitting bin. *)

(** {1 Classical bin-packing variants (non-clairvoyant extensions)} *)

val next_k_fit : k:int -> unit -> t
(** Next-K Fit: keeps the [k] most recently opened bins as candidates and
    packs First-Fit among them; when an item misses all [k], the oldest
    candidate is released and a fresh bin becomes a candidate. [k = 1] is
    exactly {!next_fit}; [k → ∞] approaches {!first_fit}. Interpolates the
    §7 packing-vs-alignment trade-off. Not strict Any Fit for finite [k].
    @raise Invalid_argument if [k < 1]. *)

val harmonic_fit :
  ?num_classes:int -> capacity:Dvbp_vec.Vec.t -> unit -> t
(** Harmonic-style fit: items are classed by their capacity-relative [L∞]
    size ([class j] holds sizes in [(1/(j+1), 1/j]], the last class catches
    everything smaller), and each bin only accepts items of its class, First
    Fit within the class (default 6 classes). A size-classified counterpart
    to the duration-classified {!hybrid_first_fit}; non-clairvoyant. Not a
    strict Any Fit policy. [capacity] must match the instance's.
    @raise Invalid_argument if [num_classes < 1]. *)

(** {1 Clairvoyant extensions (§8 future work)} *)

val duration_aligned_fit : ?slack:float -> unit -> t
(** Clairvoyant heuristic: among fitting bins, prefer the bin whose latest
    remaining departure is closest to the arriving item's departure (within
    a [slack] window, default [0.0] meaning pure nearest), breaking ties by
    higher load. Falls back to Best Fit ordering when run non-clairvoyantly.
    Exercises the paper's §8 direction of using departure information. *)

val hybrid_first_fit : ?num_classes:int -> unit -> t
(** Clairvoyant First-Fit-by-duration-classes, the classification scheme of
    the clairvoyant MinUsageTime DBP literature (Li–Tang–Cai): items are
    classed by [⌊log₂ duration⌋] (clamped to [num_classes], default 16) and
    each class keeps its own First Fit bin pool, so short jobs never pin a
    bin holding long jobs. Not a strict Any Fit policy — it refuses bins of
    other classes. Falls back to plain First Fit on items with no departure
    information. *)

(** {1 Registry} *)

val standard_names : string list
(** The seven policies of the paper's experiments, in the paper's order:
    ["mtf"; "ff"; "bf"; "nf"; "wf"; "lf"; "rf"]. *)

val of_name : ?rng:Dvbp_prelude.Rng.t -> ?measure:Load_measure.t -> string -> (t, string) result
(** Builds a fresh policy from its short or long name (e.g. ["mtf"] or
    ["move-to-front"]). [rng] is required for ["rf"]; [measure] applies to
    ["bf"]/["wf"]. Extensions: ["daf"] (duration-aligned fit). *)

val of_name_exn : ?rng:Dvbp_prelude.Rng.t -> ?measure:Load_measure.t -> string -> t
