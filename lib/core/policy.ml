module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng

type item_view = { size : Vec.t; arrival : float; departure : float option }
type decision = Existing of Bin.t | Fresh

type t = {
  name : string;
  describe : string;
  select : item:item_view -> open_bins:Bin_registry.t -> decision;
  on_place : bin:Bin.t -> now:float -> unit;
  on_close : bin:Bin.t -> now:float -> unit;
  strict_any_fit : bool;
}

let no_place ~bin:_ ~now:_ = ()
let no_close ~bin:_ ~now:_ = ()

let of_choice = function Some b -> Existing b | None -> Fresh

let first_fit () =
  let select ~item ~open_bins =
    of_choice (Bin_registry.find_fitting open_bins item.size)
  in
  {
    name = "ff";
    describe = "First Fit: earliest-opened bin that fits";
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let last_fit () =
  let select ~item ~open_bins =
    of_choice (Bin_registry.rfind_fitting open_bins item.size)
  in
  {
    name = "lf";
    describe = "Last Fit: latest-opened bin that fits";
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let best_fit ?(measure = Load_measure.Linf) () =
  let select ~item ~open_bins =
    of_choice (Bin_registry.most_loaded_fitting open_bins ~measure item.size)
  in
  {
    name = "bf";
    describe =
      Printf.sprintf "Best Fit (%s): most-loaded bin that fits" (Load_measure.name measure);
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let worst_fit ?(measure = Load_measure.Linf) () =
  let select ~item ~open_bins =
    of_choice (Bin_registry.least_loaded_fitting open_bins ~measure item.size)
  in
  {
    name = "wf";
    describe =
      Printf.sprintf "Worst Fit (%s): least-loaded bin that fits" (Load_measure.name measure);
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let move_to_front () =
  let select ~item ~open_bins =
    of_choice (Bin_registry.recently_used_fitting open_bins item.size)
  in
  {
    name = "mtf";
    describe = "Move To Front: most-recently-used bin that fits";
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let random_fit ~rng () =
  let select ~item ~open_bins =
    (* one counting pass, one draw, one selection pass — the draw consumes
       the same random stream as the old [Rng.pick] over an array *)
    match Bin_registry.count_fitting open_bins item.size with
    | 0 -> Fresh
    | n -> (
        match Bin_registry.nth_fitting open_bins item.size (Rng.int rng n) with
        | Some b -> Existing b
        | None -> assert false)
  in
  {
    name = "rf";
    describe = "Random Fit: uniformly random bin that fits";
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let next_fit () =
  (* the current bin is held by direct reference — no id rescan of the
     open bins; [on_close] drops it the moment the engine closes it *)
  let current = ref None in
  let select ~item ~open_bins:_ =
    match !current with
    | Some b when Bin.is_open b && Bin.fits b item.size -> Existing b
    | Some _ | None -> Fresh
  in
  let on_place ~bin ~now:_ = current := Some bin in
  let on_close ~bin ~now:_ =
    match !current with
    | Some (b : Bin.t) when b.Bin.id = bin.Bin.id -> current := None
    | Some _ | None -> ()
  in
  {
    name = "nf";
    describe = "Next Fit: single current bin, released when an item misses";
    select;
    on_place;
    on_close;
    strict_any_fit = false;
  }

let next_k_fit ~k () =
  if k < 1 then invalid_arg "Policy.next_k_fit: k < 1";
  (* candidate bins by direct reference, oldest first; length <= k *)
  let candidates = ref [] in
  let select ~item ~open_bins:_ =
    of_choice (List.find_opt (fun b -> Bin.fits b item.size) !candidates)
  in
  let on_place ~bin ~now:_ =
    if not (List.exists (fun (b : Bin.t) -> b.Bin.id = bin.Bin.id) !candidates)
    then begin
      (* fresh bin becomes a candidate; drop the oldest beyond k *)
      let extended = !candidates @ [ bin ] in
      let overflow = List.length extended - k in
      candidates :=
        if overflow > 0 then
          List.filteri (fun i _ -> i >= overflow) extended
        else extended
    end
  in
  let on_close ~bin ~now:_ =
    candidates := List.filter (fun (b : Bin.t) -> b.Bin.id <> bin.Bin.id) !candidates
  in
  {
    name = Printf.sprintf "nf%d" k;
    describe =
      Printf.sprintf "Next-%d Fit: first fit among the %d most recent bins" k k;
    select;
    on_place;
    on_close;
    strict_any_fit = false;
  }

let harmonic_fit ?(num_classes = 6) ~capacity () =
  if num_classes < 1 then invalid_arg "Policy.harmonic_fit: num_classes < 1";
  let bin_class : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let pending_class = ref 0 in
  let select ~item ~open_bins =
    (* harmonic class j holds relative L∞ sizes in (1/(j+2), 1/(j+1)];
       class 0 is (1/2, 1], the last class catches the rest *)
    let cls =
      let rel = Vec.linf ~cap:capacity item.size in
      if rel <= 0.0 then num_classes - 1
      else Int.min (num_classes - 1) (Int.max 0 (int_of_float (1.0 /. rel) - 1))
    in
    pending_class := cls;
    of_choice
      (Bin_registry.find open_bins (fun (b : Bin.t) ->
           Hashtbl.find_opt bin_class b.Bin.id = Some cls && Bin.fits b item.size))
  in
  let on_place ~bin ~now:_ =
    if not (Hashtbl.mem bin_class bin.Bin.id) then
      Hashtbl.replace bin_class bin.Bin.id !pending_class
  in
  let on_close ~bin ~now:_ = Hashtbl.remove bin_class bin.Bin.id in
  {
    name = "hf";
    describe =
      Printf.sprintf "Harmonic Fit: first fit within %d size classes" num_classes;
    select;
    on_place;
    on_close;
    strict_any_fit = false;
  }

(* Latest departure among a bin's active items; the bin stays busy at least
   until then, so aligning the new item with it avoids a lone long tail. *)
let latest_departure (b : Bin.t) =
  List.fold_left
    (fun acc (r : Item.t) -> Float.max acc r.Item.departure)
    neg_infinity b.Bin.active_items

let duration_aligned_fit ?(slack = 0.0) () =
  let select ~item ~open_bins =
    match item.departure with
    | None ->
        of_choice
          (Bin_registry.most_loaded_fitting open_bins ~measure:Load_measure.Linf
             item.size)
    | Some dep ->
        (* lexicographic min of (gap, -load): smaller gap first, then the
           fuller bin; ties keep the earliest-opened candidate *)
        let best = ref None and best_gap = ref 0.0 and best_neg = ref 0.0 in
        Bin_registry.fold_fitting open_bins item.size
          (fun () b ->
            let gap = Float.abs (latest_departure b -. dep) in
            let gap = if gap <= slack then 0.0 else gap in
            let neg = -.Bin.load_measure Load_measure.Linf b in
            match !best with
            | Some _ when not (gap < !best_gap || (gap = !best_gap && neg < !best_neg))
              -> ()
            | _ ->
                best := Some b;
                best_gap := gap;
                best_neg := neg)
          ();
        of_choice !best
  in
  {
    name = "daf";
    describe = "Duration-Aligned Fit (clairvoyant): nearest-departure bin that fits";
    select;
    on_place = no_place;
    on_close = no_close;
    strict_any_fit = true;
  }

let hybrid_first_fit ?(num_classes = 16) () =
  if num_classes < 1 then invalid_arg "Policy.hybrid_first_fit: num_classes < 1";
  (* class of a duration: ⌊log2⌋, clamped to [0, num_classes-1]; items with
     unknown departure share a dedicated extra class *)
  let unknown_class = num_classes in
  let class_of = function
    | None -> unknown_class
    | Some duration ->
        let c = int_of_float (Float.floor (Float.log2 (Float.max 1.0 duration))) in
        Int.min (num_classes - 1) (Int.max 0 c)
  in
  let bin_class : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let pending_class = ref unknown_class in
  let select ~item ~open_bins =
    let duration = Option.map (fun dep -> dep -. item.arrival) item.departure in
    let cls = class_of duration in
    pending_class := cls;
    of_choice
      (Bin_registry.find open_bins (fun (b : Bin.t) ->
           Hashtbl.find_opt bin_class b.Bin.id = Some cls && Bin.fits b item.size))
  in
  let on_place ~bin ~now:_ =
    if not (Hashtbl.mem bin_class bin.Bin.id) then
      Hashtbl.replace bin_class bin.Bin.id !pending_class
  in
  let on_close ~bin ~now:_ = Hashtbl.remove bin_class bin.Bin.id in
  {
    name = "hff";
    describe =
      Printf.sprintf
        "Hybrid First Fit (clairvoyant): First Fit within %d duration classes"
        num_classes;
    select;
    on_place;
    on_close;
    strict_any_fit = false;
  }

let standard_names = [ "mtf"; "ff"; "bf"; "nf"; "wf"; "lf"; "rf" ]

let of_name ?rng ?measure name =
  match String.lowercase_ascii name with
  | "ff" | "first-fit" | "firstfit" -> Ok (first_fit ())
  | "lf" | "last-fit" | "lastfit" -> Ok (last_fit ())
  | "bf" | "best-fit" | "bestfit" -> Ok (best_fit ?measure ())
  | "wf" | "worst-fit" | "worstfit" -> Ok (worst_fit ?measure ())
  | "mtf" | "move-to-front" | "movetofront" -> Ok (move_to_front ())
  | "nf" | "next-fit" | "nextfit" -> Ok (next_fit ())
  | "daf" | "duration-aligned" -> Ok (duration_aligned_fit ())
  | "hff" | "hybrid-first-fit" -> Ok (hybrid_first_fit ())
  | s
    when String.length s > 2
         && String.sub s 0 2 = "nf"
         && Option.is_some (int_of_string_opt (String.sub s 2 (String.length s - 2)))
    -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some k when k >= 1 -> Ok (next_k_fit ~k ())
      | Some _ | None -> Error (Printf.sprintf "Policy.of_name: bad Next-K Fit %S" s))
  | "rf" | "random-fit" | "randomfit" -> (
      match rng with
      | Some rng -> Ok (random_fit ~rng ())
      | None -> Error "Policy.of_name: \"rf\" needs an rng")
  | other -> Error (Printf.sprintf "Policy.of_name: unknown policy %S" other)

let of_name_exn ?rng ?measure name =
  match of_name ?rng ?measure name with
  | Ok p -> p
  | Error msg -> invalid_arg msg
