(** Immutable result of a packing run: the paper's [P_{A,R}].

    Records which items each bin received and each bin's usage interval; the
    objective [cost(A, R) = Σ_i span(R_i)] (eq. (1) of the paper) is
    {!cost}. A full validity checker replays the item intervals to certify
    the packing against the instance. *)

type bin_record = {
  bin_id : int;
  interval : Dvbp_interval.Interval.t;  (** the bin's usage period *)
  items : Item.t list;  (** items in placement order *)
}

type t = private {
  capacity : Dvbp_vec.Vec.t;
  bins : bin_record list;  (** ascending [bin_id] *)
  assignment : int Dvbp_prelude.Int_table.t;
      (** item id → bin id; internal index for {!bin_of_item} — treat as
          read-only *)
}

val make : capacity:Dvbp_vec.Vec.t -> bin_record list -> t
(** Sorts bins by id and derives the assignment map.
    @raise Invalid_argument on duplicate bin ids or an item assigned twice. *)

val cost : t -> float
(** Total usage time of all bins — the objective being minimised. *)

val num_bins : t -> int

val bin_of_item : t -> int -> int option
(** The bin that received the given item id. *)

val bin : t -> int -> bin_record
(** Bin record by id. @raise Not_found. *)

val max_concurrent_bins : t -> int
(** Largest number of simultaneously open bins (a capacity-planning figure;
    also the paper's notion of "bins used at time t" maximised over t). *)

val validate : Instance.t -> t -> (unit, string list) result
(** Certifies the packing:
    - every instance item is assigned to exactly one bin;
    - no bin exceeds capacity in any dimension at any instant;
    - every bin's recorded interval equals the span of its items' activity
      (single usage period, per §2.1);
    - bin ids are consecutive from 0 in order of opening time.
    Returns all violations found. *)

val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** One row per item: [item_id,bin_id,arrival,departure,size_1,...] in bin
    order — the assignment in a form external tooling can consume. *)
