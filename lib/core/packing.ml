module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Floatx = Dvbp_prelude.Floatx
module Int_table = Dvbp_prelude.Int_table

type bin_record = { bin_id : int; interval : Interval.t; items : Item.t list }

type t = {
  capacity : Vec.t;
  bins : bin_record list;
  assignment : int Int_table.t;
}

let make ~capacity bins =
  let bins = List.sort (fun a b -> Int.compare a.bin_id b.bin_id) bins in
  let rec check_distinct = function
    | a :: (b :: _ as rest) ->
        if a.bin_id = b.bin_id then invalid_arg "Packing.make: duplicate bin ids";
        check_distinct rest
    | [ _ ] | [] -> ()
  in
  check_distinct bins;
  let n_items = List.fold_left (fun acc b -> acc + List.length b.items) 0 bins in
  (* pre-sized open-addressing index: building a balanced map (and later a
     stdlib hash table) here was a measurable slice of every simulation's
     finish step *)
  let assignment = Int_table.create ~expected:n_items ~dummy:0 () in
  List.iter
    (fun b ->
      List.iter
        (fun (r : Item.t) ->
          if Int_table.mem assignment r.Item.id then
            invalid_arg
              (Printf.sprintf "Packing.make: item %d assigned twice" r.Item.id)
          else Int_table.replace assignment r.Item.id b.bin_id)
        b.items)
    bins;
  { capacity; bins; assignment }

let cost t =
  Floatx.kahan_sum (List.map (fun b -> Interval.length b.interval) t.bins)

let num_bins t = List.length t.bins
let bin_of_item t item_id =
  if item_id < 0 then None else Int_table.find_opt t.assignment item_id

let bin t id = List.find (fun b -> b.bin_id = id) t.bins

let max_concurrent_bins t =
  (* Sweep: +1 at each open, -1 at each close; closes at time [x] precede
     opens at [x] because usage intervals are half-open. *)
  let events =
    List.concat_map
      (fun b ->
        [ (b.interval.Interval.lo, 1); (b.interval.Interval.hi, -1) ])
      t.bins
  in
  let events =
    List.sort
      (fun (ta, da) (tb, db) ->
        match Float.compare ta tb with 0 -> Int.compare da db | c -> c)
      events
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, delta) ->
        let cur = cur + delta in
        (cur, Int.max peak cur))
      (0, 0) events
  in
  peak

(* Per-bin capacity check: the load only changes at arrivals/departures of
   the bin's own items, and only arrivals can push it up, so it suffices to
   check the instant just after each arrival. *)
let check_bin_capacity ~capacity b =
  let arrivals = List.map (fun (r : Item.t) -> r.Item.arrival) b.items in
  List.concat_map
    (fun t0 ->
      let active = List.filter (fun r -> Item.active_at r t0) b.items in
      let load =
        Vec.sum ~dim:(Vec.dim capacity) (List.map (fun (r : Item.t) -> r.Item.size) active)
      in
      if Vec.le load capacity then []
      else
        [ Printf.sprintf "bin %d over capacity at t=%g: load %s > cap %s" b.bin_id
            t0 (Vec.to_string load) (Vec.to_string capacity) ])
    arrivals

let check_bin_interval b =
  let spanned =
    Interval_set.of_intervals (List.map Item.interval b.items)
  in
  match (Interval_set.intervals spanned, b.items) with
  | [], _ -> [ Printf.sprintf "bin %d has no items" b.bin_id ]
  | [ single ], _ ->
      if
        Floatx.approx_equal single.Interval.lo b.interval.Interval.lo
        && Floatx.approx_equal single.Interval.hi b.interval.Interval.hi
      then []
      else
        [ Printf.sprintf "bin %d interval %s does not match item span %s" b.bin_id
            (Interval.to_string b.interval)
            (Interval.to_string single) ]
  | _ :: _ :: _, _ ->
      [ Printf.sprintf
          "bin %d has a gap in its usage period (bins must not be reused)"
          b.bin_id ]

let validate (instance : Instance.t) t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if not (Vec.equal instance.Instance.capacity t.capacity) then
    err "capacity mismatch: instance %s vs packing %s"
      (Vec.to_string instance.Instance.capacity)
      (Vec.to_string t.capacity);
  (* Assignment is total and consistent with the recorded bin contents. *)
  List.iter
    (fun (r : Item.t) ->
      match bin_of_item t r.Item.id with
      | None -> err "item %d is not packed in any bin" r.Item.id
      | Some _ -> ())
    instance.Instance.items;
  let n_instance = List.length instance.Instance.items in
  let n_packed = List.fold_left (fun acc b -> acc + List.length b.items) 0 t.bins in
  if n_packed <> n_instance then
    err "packing holds %d items but the instance has %d" n_packed n_instance;
  (* Bin ids consecutive from 0 and opening times monotone. *)
  List.iteri
    (fun i b -> if b.bin_id <> i then err "bin ids not consecutive: expected %d, got %d" i b.bin_id)
    t.bins;
  let rec check_monotone = function
    | a :: (b : bin_record) :: rest ->
        if a.interval.Interval.lo > b.interval.Interval.lo then
          err "bin %d opened after bin %d despite smaller id" a.bin_id b.bin_id;
        check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone t.bins;
  List.iter
    (fun b ->
      List.iter (fun e -> errors := e :: !errors) (check_bin_capacity ~capacity:t.capacity b);
      List.iter (fun e -> errors := e :: !errors) (check_bin_interval b))
    t.bins;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let to_csv t =
  let d = Vec.dim t.capacity in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "item_id,bin_id,arrival,departure";
  for j = 1 to d do
    Buffer.add_string buf (Printf.sprintf ",size_%d" j)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun b ->
      List.iter
        (fun (r : Item.t) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%.17g,%.17g" r.Item.id b.bin_id r.Item.arrival
               r.Item.departure);
          Array.iter
            (fun s -> Buffer.add_string buf (Printf.sprintf ",%d" s))
            (Vec.to_array r.Item.size);
          Buffer.add_char buf '\n')
        b.items)
    t.bins;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>packing: %d bins, cost %.4f@,%a@]" (num_bins t) (cost t)
    (Format.pp_print_list (fun ppf b ->
         Format.fprintf ppf "bin#%d %a: [%a]" b.bin_id Interval.pp b.interval
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              (fun ppf (r : Item.t) -> Format.fprintf ppf "%d" r.Item.id))
           b.items))
    t.bins
