(** The [dvbp trace] subcommand family: compile, inspect, verify and
    replay binary traces. Lives in the library so every path (including
    the error messages) is unit-testable without spawning the binary. *)

type compile_opts = {
  co_source : Workload_select.source;
      (** what to compile: a generator family ([--from-model]) or an
          existing CSV trace *)
  co_out : string;
  co_block_size : int option;
  co_shards : int;
      (** > 1 chains that many re-seeded copies of the source end to end
          with O(shard) compile memory *)
}

val compile : compile_opts -> (string, string) result
val info : string -> (string, string) result
val verify : string -> (string, string) result

val replay :
  policy:string -> seed:int -> string -> (string, string) result
(** Streams the trace through an in-process engine session and reports
    replay throughput, the resident window and the packing outcome. *)
