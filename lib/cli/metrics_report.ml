module Prom = Dvbp_obs.Prom
module Table = Dvbp_report.Table

let strip_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then Some (String.sub name 0 (nl - sl))
  else None

let labels_string labels =
  match labels with
  | [] -> "-"
  | _ -> String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)

let fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Summary families render as several exposition rows (quantile samples
   plus _count/_sum/_max); fold each back into one table row. A family is
   recognised by its _count/_sum pair so empty histograms (which emit no
   quantile samples) still fold. *)
let summary_bases rows =
  List.filter_map
    (fun (r : Prom.row) ->
      match strip_suffix r.Prom.name "_count" with
      | Some base
        when List.exists (fun (s : Prom.row) -> s.Prom.name = base ^ "_sum") rows ->
          Some base
      | _ -> None)
    rows

let of_text text =
  match Prom.parse text with
  | Error e -> Error (Printf.sprintf "unparseable metrics: %s" e)
  | Ok rows ->
      let bases = summary_bases rows in
      let is_summary_row (r : Prom.row) =
        List.mem r.Prom.name bases
        || List.exists
             (fun suffix ->
               match strip_suffix r.Prom.name suffix with
               | Some base -> List.mem base bases
               | None -> false)
             [ "_count"; "_sum"; "_max" ]
      in
      let scalars = List.filter (fun r -> not (is_summary_row r)) rows in
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "counters and gauges:\n";
      Buffer.add_string buf
        (Table.render
           ~header:[ "metric"; "labels"; "value" ]
           ~rows:
             (List.map
                (fun (r : Prom.row) ->
                  [ r.Prom.name; labels_string r.Prom.labels; fmt r.Prom.value ])
                scalars));
      (* one summary row per (family, labels-of-_count-row) *)
      let summary_rows =
        List.filter_map
          (fun (r : Prom.row) ->
            match strip_suffix r.Prom.name "_count" with
            | Some base when List.mem base bases ->
                let labels = r.Prom.labels in
                let pick name extra_labels =
                  Prom.find rows ~labels:(labels @ extra_labels) name
                in
                let count = r.Prom.value in
                let sum =
                  match pick (base ^ "_sum") [] with Some s -> s.Prom.value | None -> 0.0
                in
                let mean = if count > 0.0 then sum /. count else 0.0 in
                let q v =
                  match pick base [ ("quantile", v) ] with
                  | Some s -> fmt s.Prom.value
                  | None -> "-"
                in
                let mx =
                  match pick (base ^ "_max") [] with
                  | Some s -> fmt s.Prom.value
                  | None -> "-"
                in
                Some
                  [
                    base; labels_string labels; fmt count; fmt mean; q "0.5"; q "0.9";
                    q "0.99"; mx;
                  ]
            | _ -> None)
          rows
      in
      if summary_rows <> [] then begin
        Buffer.add_string buf "\nlatency summaries (seconds):\n";
        Buffer.add_string buf
          (Table.render
             ~header:[ "metric"; "labels"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
             ~rows:summary_rows)
      end;
      (* group-commit effectiveness: how many journal records each fsync
         amortises. 1.0 means no batching; the group-commit loop should
         push this well below the per-event floor. *)
      (let scalar name =
         match Prom.find rows ~labels:[] name with
         | Some r -> Some r.Prom.value
         | None -> None
       in
       match
         (scalar "dvbp_journal_records_appended_total", scalar "dvbp_journal_fsyncs_total")
       with
       | Some records, Some fsyncs when records > 0.0 ->
           Buffer.add_string buf "\ngroup commit:\n";
           Buffer.add_string buf
             (Table.render
                ~header:[ "derived metric"; "value" ]
                ~rows:
                  [
                    [ "journal records per fsync";
                      (if fsyncs > 0.0 then Printf.sprintf "%.1f" (records /. fsyncs)
                       else "inf (no fsync yet)") ];
                    [ "fsyncs per journaled event";
                      Printf.sprintf "%.4f" (fsyncs /. records) ];
                  ])
       | _ -> ());
      (match Prom.parse_spans text with
      | [] -> ()
      | spans ->
          Buffer.add_string buf "\nrecent spans:\n";
          Buffer.add_string buf
            (Table.render
               ~header:[ "span"; "start"; "duration_s" ]
               ~rows:
                 (List.map
                    (fun (s : Prom.span) ->
                      [ s.Prom.sp_name; Printf.sprintf "%.6f" s.Prom.sp_start;
                        Printf.sprintf "%.6f" s.Prom.sp_dur ])
                    spans)));
      Ok (Buffer.contents buf)

let of_file path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "metrics dump %s does not exist" path)
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_text text
  end
