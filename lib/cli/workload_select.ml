module Rng = Dvbp_prelude.Rng
module W = Dvbp_workload

type source = {
  workload : string;
  trace : string option;
  d : int;
  mu : int;
  n : int;
  rho : float;
  seed : int;
}

let known_workloads = List.map fst W.Describe.families

(* A --trace file may be CSV or the compiled binary format; sniff the
   magic rather than trusting an extension. The binary path materialises
   the instance (fine for describe/run/opt on modest traces) — streaming
   replay lives in Loadgen/Replay and never comes through here. *)
let read_trace path =
  if Dvbp_tracestore.Trace_reader.sniff_magic path then
    Dvbp_tracestore.Trace_reader.with_file path Dvbp_tracestore.Compile.to_instance
  else W.Trace_io.read_file path

let build s =
  match s.trace with
  | Some path -> read_trace path
  | None -> (
      let rng = Rng.create ~seed:s.seed in
      let uniform_params =
        { (W.Uniform_model.table2 ~d:s.d ~mu:s.mu) with W.Uniform_model.n = s.n }
      in
      try
        match s.workload with
        | "uniform" -> Ok (W.Uniform_model.generate uniform_params ~rng)
        | "gaming" ->
            Ok (W.Cloud_gaming.generate
                  { W.Cloud_gaming.default with W.Cloud_gaming.n = s.n } ~rng)
        | "vm" ->
            Ok (W.Vm_requests.generate
                  { W.Vm_requests.default with W.Vm_requests.n = s.n } ~rng)
        | "correlated" ->
            Ok (W.Correlated.generate
                  { W.Correlated.base = uniform_params; rho = s.rho } ~rng)
        | "bursty" ->
            Ok (W.Bursty.generate
                  { W.Bursty.default with W.Bursty.base = uniform_params } ~rng)
        | "diurnal" ->
            Ok (W.Diurnal.generate
                  { W.Diurnal.default with W.Diurnal.base = uniform_params } ~rng)
        | "heavytail" ->
            Ok (W.Heavy_tail.generate
                  { W.Heavy_tail.default with W.Heavy_tail.base = uniform_params }
                  ~rng)
        | "flashcrowd" ->
            Ok (W.Flash_crowd.generate
                  { W.Flash_crowd.default with W.Flash_crowd.base = uniform_params }
                  ~rng)
        | "twinned" ->
            Ok (W.Twinned.generate
                  { W.Twinned.default with W.Twinned.base = uniform_params } ~rng)
        | "azure" ->
            Ok (W.Azure_mix.generate
                  { W.Azure_mix.default with W.Azure_mix.n = s.n } ~rng)
        | other ->
            Error
              (Printf.sprintf "unknown workload %S (known: %s)" other
                 (String.concat ", " known_workloads))
      with Invalid_argument msg -> Error msg)
