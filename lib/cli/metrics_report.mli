(** Pretty-printer behind [dvbp metrics]: turns a Prometheus-style dump
    (the [METRICS] reply or a [--metrics-dump] file) into operator-facing
    tables — one for counters and gauges, one folding each latency-summary
    family ([name{quantile=..}] plus [_count]/[_sum]/[_max]) into a single
    count/mean/p50/p90/p99/max row, and one listing recent spans. *)

val of_text : string -> (string, string) result
(** Renders dump text; [Error] names the first unparseable line. *)

val of_file : string -> (string, string) result
(** {!of_text} over a file's contents; a missing file is a clean error. *)
