(* Shared bits of the CLI: run one named policy on an instance and print a
   cost report (plus optional Gantt), with optional instance reduction
   (--reduce) or budgeted-migration repacking (--repack). *)

module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Repack = Dvbp_engine.Repack
module Reduce = Dvbp_reduce.Reduce
module Bounds = Dvbp_lowerbound.Bounds
module An = Dvbp_analysis

let print_instance_line instance =
  Printf.printf "instance: n=%d d=%d mu=%.2f span=%.2f\n"
    (Core.Instance.size instance)
    (Core.Instance.dim instance)
    (Core.Instance.mu instance)
    (Core.Instance.span instance)

(* The repack engine keeps no final assignment (bins close and are
   summarised as they go), so packing-shaped outputs are rejected up
   front with the offending flag named. *)
let repack_rejects ~gantt ~export ~trajectory ~reduce =
  if gantt then Error "--gantt is not available with --repack (no final assignment is kept)"
  else if export <> None then
    Error "--export is not available with --repack (no final assignment is kept)"
  else if trajectory then
    Error "--trajectory is not available with --repack (no live trace is kept)"
  else if reduce <> None then
    Error
      "--reduce cannot be combined with --repack (repacking keeps no final \
       assignment to lift back to the original instance)"
  else Ok ()

let run_repack ~config ~policy ~seed instance =
  match Core.Policy.of_name ~rng:(Rng.create ~seed) policy with
  | Error e -> Error e
  | Ok p when not (Repack.supported_base p) ->
      Error
        (Printf.sprintf "--repack: policy %s does not support migration (supported bases: %s)"
           p.Core.Policy.name Repack.supported_base_names)
  | Ok p ->
      let r = Repack.run ~config ~policy:p instance in
      let lb = Bounds.height_integral instance in
      print_instance_line instance;
      Printf.printf "policy %s: cost=%.4f bins=%d peak=%d cost/LB=%.4f\n"
        (Repack.spec_to_string ~base:p.Core.Policy.name config)
        r.Repack.cost r.Repack.bins_opened r.Repack.max_open_bins
        (r.Repack.cost /. lb);
      let s = r.Repack.stats in
      Printf.printf
        "repack: %d migrations over %d events, %d bins drained, %d consolidations, \
         %d budget-exhausted declines\n"
        s.Repack.migrations s.Repack.migration_events s.Repack.drained_bins
        s.Repack.consolidations s.Repack.budget_exhausted;
      print_endline (An.Repack_audit.render (An.Repack_audit.audit ~config r.Repack.ledger));
      Ok ()

let run_one ?export ?(trajectory = false) ?reduce ?repack ~policy ~seed instance
    ~gantt =
  match repack with
  | Some config -> (
      match repack_rejects ~gantt ~export ~trajectory ~reduce with
      | Error _ as e -> e
      | Ok () -> run_repack ~config ~policy ~seed instance)
  | None ->
  if reduce <> None && trajectory then
    Error
      "--trajectory is not available with --reduce (the live trace is over \
       the reduced instance, not the original)"
  else
  let clairvoyant = policy = "daf" || policy = "hff" in
  match Core.Policy.of_name ~rng:(Rng.create ~seed) policy with
  | Error e -> Error e
  | Ok p ->
      let reduction = Option.map (fun config -> Reduce.apply ~config instance) reduce in
      let run_instance =
        match reduction with Some r -> Reduce.instance r | None -> instance
      in
      let run = Engine.run ~clairvoyant ~policy:p run_instance in
      (* Lift a reduced run's packing back to the original instance: the
         report below (cost, diagnostics, validation, Gantt, export) is
         entirely about the original-instance packing. *)
      let packing =
        match reduction with
        | Some r -> Reduce.lift r run.Engine.packing
        | None -> run.Engine.packing
      in
      let cost = Core.Packing.cost packing in
      let lb = Bounds.height_integral instance in
      print_instance_line instance;
      (match reduction with
      | Some r ->
          let cert = Reduce.certificate r in
          print_endline (Reduce.Certificate.render cert);
          if not (Reduce.Certificate.is_lossless cert) then begin
            let raw = Engine.run ~clairvoyant ~policy:p instance in
            let raw_cost = Engine.cost raw in
            Printf.printf "reduce: raw cost=%.4f reduced-then-lifted=%.4f (%+.2f%%)\n"
              raw_cost cost
              (100.0 *. (cost -. raw_cost) /. raw_cost)
          end
      | None -> ());
      Printf.printf "policy %s%s: cost=%.4f bins=%d peak=%d cost/LB=%.4f\n"
        p.Core.Policy.name
        (if clairvoyant then " (clairvoyant)" else "")
        cost run.Engine.bins_opened run.Engine.max_open_bins (cost /. lb);
      let m = An.Diagnostics.measure packing in
      Format.printf "diagnostics: %a@." An.Diagnostics.pp m;
      (match Core.Packing.validate instance packing with
      | Ok () -> print_endline "packing: valid"
      | Error es ->
          print_endline "packing: INVALID";
          List.iter print_endline es);
      if gantt then print_string (An.Gantt.render packing);
      if trajectory then begin
        let points = An.Online_monitor.trajectory instance run.Engine.trace in
        let series =
          {
            Dvbp_report.Ascii_plot.label = "cost/LB so far";
            marker = '*';
            points =
              List.filter_map
                (fun (p : An.Online_monitor.point) ->
                  if p.An.Online_monitor.lower_bound_so_far > 0.0 then
                    Some
                      ( p.An.Online_monitor.time,
                        p.An.Online_monitor.cost_so_far
                        /. p.An.Online_monitor.lower_bound_so_far )
                  else None)
                points;
          }
        in
        print_string
          (Dvbp_report.Ascii_plot.render ~x_label:"time" ~y_label:"ratio" [ series ]);
        Printf.printf "peak momentary ratio: %.4f\n" (An.Online_monitor.peak_ratio points)
      end;
      (match export with
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Core.Packing.to_csv packing));
          Printf.printf "assignments written to %s\n" path
      | None -> ());
      Ok ()
