(** One-shot "run a policy and report" used by the [dvbp run] and
    [dvbp adversary] subcommands: simulate, print cost / lower-bound /
    diagnostics, certify the packing, optionally draw a Gantt chart. *)

val run_one :
  ?export:string ->
  ?trajectory:bool ->
  ?reduce:Dvbp_reduce.Reduce.config ->
  ?repack:Dvbp_engine.Repack.config ->
  policy:string ->
  seed:int ->
  Dvbp_core.Instance.t ->
  gantt:bool ->
  (unit, string) result
(** Prints the report to stdout. [policy] accepts every
    {!Dvbp_core.Policy.of_name} name; clairvoyant policies (["daf"],
    ["hff"]) run with departures visible. [export] writes the final
    assignment as CSV to the given path; [trajectory] (default false) also
    plots the live cost / observable-lower-bound ratio over time.

    [reduce] preprocesses the instance ({!Dvbp_reduce.Reduce.apply}),
    runs the policy on the reduced instance and lifts the packing back:
    the printed certificate states losslessness, and when rounding
    changed anything a raw-vs-reduced cost delta is printed too. The
    report (validation, Gantt, export) is always about the
    original-instance packing.

    [repack] runs the budgeted-migration engine
    ({!Dvbp_engine.Repack.run}) instead of the plain one, printing the
    migration statistics and a ledger audit line. It keeps no final
    assignment, so [gantt]/[export]/[trajectory] (and [reduce]) are
    rejected with an error naming the offending flag; so are base
    policies without migration support. *)
