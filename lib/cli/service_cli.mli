(** CLI glue for the durable placement service: [dvbp serve] / [dvbp
    recover] / [dvbp loadgen].

    Kept in the library (rather than the binary) so that every error path —
    malformed capacity strings, bad flag values, missing journals — is unit
    testable: each action returns [Error msg] instead of printing and
    exiting, and the binary maps that to a one-line stderr message and a
    non-zero exit. *)

val parse_capacity : string -> (Dvbp_vec.Vec.t, string) result
(** Parses ["100,100"]-style capacity vectors: one or more comma-separated
    strictly positive integers. *)

type serve_opts = {
  policy : string;
  seed : int;
  capacity : string;  (** unparsed, e.g. ["100,100"] *)
  journal : string option;
  snapshot : string option;
  snapshot_every : int option;
  fsync_every : int;
  jobs : int;  (** tenant shards for the batch path (domains) *)
  segment_bytes : int option;
      (** journal segment roll threshold (bytes, default 1 MiB) *)
  retain_segments : int option;
      (** arm online compaction: snapshot + retire once more than this
          many sealed segments accumulate *)
  listen : string option;
      (** unix socket path: serve many concurrent clients through the
          {!Dvbp_service.Event_loop} instead of stdin/stdout *)
  resume : bool;  (** recover from the journal first, then keep serving *)
  metrics_dump : string option;
      (** write the final [METRICS] exposition here on exit *)
}

val serve : serve_opts -> in_channel -> out_channel -> (unit, string) result
(** Runs the blocking request loop until QUIT/EOF. With [resume], an
    existing journal (plus snapshot, if present) is recovered and served
    from; without it the journal is started fresh. With [metrics_dump],
    the final metrics snapshot is written to that file when the loop
    ends (readable back with [dvbp metrics]).

    With [listen], the channels are ignored: a unix-domain listener is
    bound at that path and the multi-client event loop serves group-commit
    batches until the process is killed (each client may QUIT its own
    connection; the listener itself stays up). *)

val recover : journal:string -> snapshot:string option -> (string, string) result
(** Recovers and verifies (placement-by-placement — see {!Dvbp_service.Recovery});
    returns the rendered state summary. *)

val compact :
  journal:string -> snapshot:string -> ?segment_bytes:int -> unit -> (string, string) result
(** [dvbp compact]: offline whole-pass compaction. Recovers the state,
    writes a fresh snapshot at the recovered frontier, and retires every
    sealed segment the snapshot covers; the active segment keeps its tail.
    Returns a one-line summary (events covered, segments retired). *)

type loadgen_opts = {
  source : Workload_select.source;  (** what to replay *)
  lg_policy : string;
  lg_seed : int;  (** policy rng seed (workload generation uses [source.seed]) *)
  lg_journal : string option;
  lg_snapshot : string option;
  lg_snapshot_every : int option;
  lg_fsync_every : int option;  (** [None] = library default *)
  lg_clients : int;
      (** [0] = classic single-client pipe driver; [n > 0] = [n] concurrent
          clients (tenants [t0..t{n-1}]) against one event-loop server *)
  lg_jobs : int;  (** server-side tenant shards (multi-client mode) *)
  lg_window : int;  (** per-client pipelining depth (multi-client mode) *)
  lg_connect : string option;
      (** drive an external [dvbp serve --listen] server at this socket
          path instead of an in-process one; server death mid-run is
          tolerated (kill-smoke mode) *)
  emit : bool;  (** print the protocol script instead of driving a server *)
}

val loadgen : loadgen_opts -> (string, string) result
(** Either the protocol script ([emit]) or the throughput/latency report of
    a live run against an in-process or external server. *)
