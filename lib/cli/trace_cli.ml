module T = Dvbp_tracestore
module W = Dvbp_workload
module Registry = Dvbp_obs.Registry
module Session = Dvbp_engine.Session
module Policy = Dvbp_core.Policy
module Rng = Dvbp_prelude.Rng

let ( let* ) = Result.bind

type compile_opts = {
  co_source : Workload_select.source;
  co_out : string;
  co_block_size : int option;
  co_shards : int;
}

exception Shard_failed of string

(* [shards = 1] is the plain path; above that, shard [k] regenerates the
   model with [seed + k] and the compiler chains the instances end to end
   (time-shifted, ids offset) — compile memory stays O(one shard) however
   long the output trace is. *)
let compile (o : compile_opts) =
  if o.co_shards <= 0 then Error "--shards must be positive"
  else
    let gen k =
      match
        Workload_select.build
          { o.co_source with Workload_select.seed = o.co_source.Workload_select.seed + k }
      with
      | Ok inst -> inst
      | Error e -> raise (Shard_failed e)
    in
    let* summary =
      match
        if o.co_shards = 1 then
          let* inst = Workload_select.build o.co_source in
          T.Compile.of_instance ~path:o.co_out ?block_size:o.co_block_size inst
        else
          T.Compile.sharded ~path:o.co_out ?block_size:o.co_block_size
            ~shards:o.co_shards ~gen ()
      with
      | r -> r
      | exception Shard_failed e -> Error e
    in
    Ok
      (Printf.sprintf
         "compiled %s: %d events in %d blocks, t in [%g, %g], %d bytes\n"
         o.co_out summary.T.Trace_writer.events summary.T.Trace_writer.blocks
         summary.T.Trace_writer.t_min summary.T.Trace_writer.t_max
         summary.T.Trace_writer.file_bytes)

let info path =
  T.Trace_reader.with_file path @@ fun r ->
  let h = T.Trace_reader.header r in
  let capacity =
    String.concat ","
      (List.map string_of_int
         (Array.to_list (Dvbp_vec.Vec.to_array h.T.Binfmt.capacity)))
  in
  Ok
    (Dvbp_report.Table.render
       ~header:[ "field"; "value" ]
       ~rows:
         [
           [ "format"; Printf.sprintf "%s v%d" T.Binfmt.header_magic T.Binfmt.version ];
           [ "dimensions"; string_of_int h.T.Binfmt.d ];
           [ "capacity"; capacity ];
           [ "events"; string_of_int h.T.Binfmt.events ];
           [ "blocks"; string_of_int (T.Trace_reader.blocks r) ];
           [ "block size (records)"; string_of_int h.T.Binfmt.block_size ];
           [ "record width (bytes)"; string_of_int (T.Binfmt.record_width ~d:h.T.Binfmt.d) ];
           [ "time span"; Printf.sprintf "[%g, %g]" h.T.Binfmt.t_min h.T.Binfmt.t_max ];
           [
             "reader resident window";
             Printf.sprintf "%d bytes" (T.Trace_reader.resident_bytes_max r);
           ];
         ])

let verify path =
  T.Trace_reader.with_file path @@ fun r ->
  let* events = T.Trace_reader.verify r in
  Ok
    (Printf.sprintf "%s: ok — %d events in %d blocks, every CRC and the sort \
                     order check out\n"
       path events (T.Trace_reader.blocks r))

(* Stream the trace through an engine session (no server in the way) and
   report replay throughput — the single-process half of what
   [loadgen --trace] measures end to end. *)
let replay ~policy ~seed path =
  T.Trace_reader.with_file path @@ fun r ->
  let h = T.Trace_reader.header r in
  let* p = Policy.of_name ~rng:(Rng.create ~seed) policy in
  let session =
    Session.create ~record_trace:false ~capacity:h.T.Binfmt.capacity ~policy:p ()
  in
  let registry = Registry.create () in
  let probe = T.Replay.probe ~registry () in
  let* stats = T.Replay.into_session ~probe ~clock:Unix.gettimeofday r session in
  let packing = Session.finish session ~at:(Session.now session) in
  Ok
    (Printf.sprintf
       "replayed %d events (%d arrivals) in %.3f s -> %.0f events/s\n\
        %d blocks, resident window <= %d bytes\n\
        policy %s: cost %.4f, %d bins opened, peak %d open\n"
       stats.T.Replay.events stats.T.Replay.arrivals stats.T.Replay.wall_seconds
       stats.T.Replay.events_per_sec stats.T.Replay.blocks
       stats.T.Replay.resident_bytes_max policy
       (Dvbp_core.Packing.cost packing)
       (Session.bins_opened session)
       (Session.max_open_bins session))
