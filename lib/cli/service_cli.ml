module Vec = Dvbp_vec.Vec
module Service = Dvbp_service

let ( let* ) = Result.bind

let parse_capacity s =
  let fields = String.split_on_char ',' (String.trim s) in
  let rec go = function
    | [] -> Ok []
    | f :: rest -> (
        match int_of_string_opt (String.trim f) with
        | Some x when x > 0 ->
            let* xs = go rest in
            Ok (x :: xs)
        | Some x -> Error (Printf.sprintf "capacity entries must be positive, got %d" x)
        | None -> Error (Printf.sprintf "bad capacity entry %S" f))
  in
  match go fields with
  | Error _ as e -> e
  | Ok [] -> Error "empty capacity"
  | Ok cs -> Ok (Vec.of_list cs)

type serve_opts = {
  policy : string;
  seed : int;
  capacity : string;
  journal : string option;
  snapshot : string option;
  snapshot_every : int option;
  fsync_every : int;
  resume : bool;
  metrics_dump : string option;
}

let server_config (o : serve_opts) =
  let* capacity =
    Result.map_error (fun e -> "--capacity: " ^ e) (parse_capacity o.capacity)
  in
  Ok
    {
      Service.Server.policy = o.policy;
      seed = o.seed;
      capacity;
      journal = o.journal;
      snapshot = o.snapshot;
      snapshot_every = o.snapshot_every;
      fsync_every = o.fsync_every;
    }

let journal_has_content = Option.fold ~none:false ~some:Sys.file_exists

let serve (o : serve_opts) ic oc =
  let* config = server_config o in
  let metrics = Service.Metrics.create () in
  let* server =
    if o.resume && journal_has_content o.journal then
      let journal = Option.get o.journal in
      let* state = Service.Recovery.recover ?snapshot:o.snapshot ~journal () in
      Service.Server.resume ~metrics config state
    else if o.resume && o.journal = None then
      Error "--resume requires --journal"
    else Service.Server.create ~metrics config
  in
  Service.Server.serve server ic oc;
  (match o.metrics_dump with
  | None -> ()
  | Some path ->
      let out = open_out path in
      output_string out (Service.Metrics.render_text metrics);
      output_char out '\n';
      close_out out);
  Ok ()

let recover ~journal ~snapshot =
  let* () =
    if Sys.file_exists journal then Ok ()
    else Error (Printf.sprintf "journal %s does not exist" journal)
  in
  let* state = Service.Recovery.recover ?snapshot ~journal () in
  Ok (Service.Recovery.render state)

type loadgen_opts = {
  source : Workload_select.source;
  lg_policy : string;
  lg_seed : int;
  lg_journal : string option;
  lg_snapshot : string option;
  lg_snapshot_every : int option;
  emit : bool;
}

let loadgen (o : loadgen_opts) =
  let* instance = Workload_select.build o.source in
  if o.emit then Ok (String.concat "\n" (Service.Loadgen.script instance) ^ "\n")
  else
    let* report =
      Service.Loadgen.run ~policy:o.lg_policy ~seed:o.lg_seed
        ?journal:o.lg_journal ?snapshot:o.lg_snapshot
        ?snapshot_every:o.lg_snapshot_every instance
    in
    Ok (Service.Loadgen.render report)
