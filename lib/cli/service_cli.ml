module Vec = Dvbp_vec.Vec
module Service = Dvbp_service

let ( let* ) = Result.bind

let parse_capacity s =
  let fields = String.split_on_char ',' (String.trim s) in
  let rec go = function
    | [] -> Ok []
    | f :: rest -> (
        match int_of_string_opt (String.trim f) with
        | Some x when x > 0 ->
            let* xs = go rest in
            Ok (x :: xs)
        | Some x -> Error (Printf.sprintf "capacity entries must be positive, got %d" x)
        | None -> Error (Printf.sprintf "bad capacity entry %S" f))
  in
  match go fields with
  | Error _ as e -> e
  | Ok [] -> Error "empty capacity"
  | Ok cs -> Ok (Vec.of_list cs)

type serve_opts = {
  policy : string;
  seed : int;
  capacity : string;
  journal : string option;
  snapshot : string option;
  snapshot_every : int option;
  fsync_every : int;
  jobs : int;
  segment_bytes : int option;
  retain_segments : int option;
  listen : string option;
  resume : bool;
  metrics_dump : string option;
}

let server_config (o : serve_opts) =
  let* capacity =
    Result.map_error (fun e -> "--capacity: " ^ e) (parse_capacity o.capacity)
  in
  Ok
    {
      Service.Server.policy = o.policy;
      seed = o.seed;
      capacity;
      journal = o.journal;
      snapshot = o.snapshot;
      snapshot_every = o.snapshot_every;
      fsync_every = o.fsync_every;
      jobs = o.jobs;
      segment_bytes = o.segment_bytes;
      retain_segments = o.retain_segments;
    }

(* a journal "exists" in either form: legacy single file or segment chain *)
let journal_has_content =
  Option.fold ~none:false ~some:(fun path -> Service.Journal.exists path)

(* --listen: a unix-domain event loop accepting many concurrent clients
   (group commit across all of them); without it, the classic blocking
   stdin/stdout conversation. *)
let serve (o : serve_opts) ic oc =
  let* config = server_config o in
  let metrics = Service.Metrics.create () in
  let* server =
    if o.resume && journal_has_content o.journal then
      let journal = Option.get o.journal in
      let* state = Service.Recovery.recover ?snapshot:o.snapshot ~journal () in
      Service.Server.resume ~metrics config state
    else if o.resume && o.journal = None then
      Error "--resume requires --journal"
    else Service.Server.create ~metrics config
  in
  let* () =
    match o.listen with
    | None ->
        Service.Server.serve server ic oc;
        Ok ()
    | Some path -> (
        match
          let () = if Sys.file_exists path then Sys.remove path in
          let fd = Unix.socket ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64;
          fd
        with
        | exception Unix.Unix_error (e, fn, _) ->
            Service.Server.close server;
            Error
              (Printf.sprintf "--listen %s: %s: %s" path fn (Unix.error_message e))
        | listen_fd ->
            Fun.protect
              ~finally:(fun () ->
                (try Unix.close listen_fd with Unix.Unix_error _ -> ());
                if Sys.file_exists path then Sys.remove path)
              (fun () ->
                Service.Event_loop.serve ~listen:listen_fd ~stop_when_drained:false
                  server);
            Ok ())
  in
  (match o.metrics_dump with
  | None -> ()
  | Some path ->
      let out = open_out path in
      output_string out (Service.Metrics.render_text metrics);
      output_char out '\n';
      close_out out);
  Ok ()

let recover ~journal ~snapshot =
  let* () =
    if Service.Journal.exists journal then Ok ()
    else Error (Printf.sprintf "journal %s does not exist" journal)
  in
  let* state = Service.Recovery.recover ?snapshot ~journal () in
  Ok (Service.Recovery.render state)

(* [dvbp compact]: offline whole-pass compaction — recover the state the
   journal (and any prior snapshot) describes, write a fresh snapshot at
   the recovered frontier, retire every sealed segment it covers. The
   active segment keeps its tail, so a serve --resume afterwards appends
   where the journal left off. *)
let compact ~journal ~snapshot ?segment_bytes () =
  let* () =
    if Service.Journal.exists journal then Ok ()
    else Error (Printf.sprintf "journal %s does not exist" journal)
  in
  let* state = Service.Recovery.recover ~snapshot ~journal () in
  let config =
    {
      Service.Server.policy = state.Service.Recovery.policy;
      seed = state.Service.Recovery.seed;
      capacity = state.Service.Recovery.capacity;
      journal = Some journal;
      snapshot = Some snapshot;
      snapshot_every = None;
      fsync_every = 64;
      jobs = 1;
      segment_bytes;
      retain_segments = None;
    }
  in
  let* server = Service.Server.resume config state in
  let outcome = Service.Server.compact server in
  Service.Server.close server;
  let* path, retired = outcome in
  Ok
    (Printf.sprintf "compacted: snapshot %s covers %d events, %d sealed segment%s retired"
       path
       (List.length state.Service.Recovery.history)
       retired
       (if retired = 1 then "" else "s"))

type loadgen_opts = {
  source : Workload_select.source;
  lg_policy : string;
  lg_seed : int;
  lg_journal : string option;
  lg_snapshot : string option;
  lg_snapshot_every : int option;
  lg_fsync_every : int option;
  lg_clients : int;  (* 0 = classic single-client pipe driver *)
  lg_jobs : int;
  lg_window : int;
  lg_connect : string option;  (* drive an external --listen server *)
  emit : bool;
}

(* A binary --trace streams through {!Service.Loadgen.run_stream} (bounded
   memory, any length); everything else materialises an instance first.
   [--emit] still materialises even a binary trace — it has to print the
   whole script anyway. *)
let loadgen_stream (o : loadgen_opts) path =
  if o.lg_clients > 1 then
    Error "--clients > 1 is not supported when streaming a binary trace"
  else
    let* report =
      Service.Loadgen.run_stream ~policy:o.lg_policy ~seed:o.lg_seed
        ?journal:o.lg_journal ?snapshot:o.lg_snapshot
        ?snapshot_every:o.lg_snapshot_every ?fsync_every:o.lg_fsync_every
        ?connect:o.lg_connect path
    in
    Ok (Service.Loadgen.render_stream report)

let loadgen_materialised (o : loadgen_opts) =
  let* instance = Workload_select.build o.source in
  if o.emit then Ok (String.concat "\n" (Service.Loadgen.script instance) ^ "\n")
  else if o.lg_clients < 0 then Error "--clients must be >= 0"
  else
    match o.lg_connect with
    | Some path ->
        let clients = max 1 o.lg_clients in
        let instances = List.init clients (fun _ -> instance) in
        let* report =
          Service.Loadgen.run_connect ~policy:o.lg_policy ~seed:o.lg_seed ~path
            ~window:o.lg_window instances
        in
        Ok (Service.Loadgen.render_multi report)
    | None ->
        if o.lg_clients = 0 then
          let* report =
            Service.Loadgen.run ~policy:o.lg_policy ~seed:o.lg_seed
              ?journal:o.lg_journal ?snapshot:o.lg_snapshot
              ?snapshot_every:o.lg_snapshot_every
              ?fsync_every:o.lg_fsync_every instance
          in
          Ok (Service.Loadgen.render report)
        else
          let instances = List.init o.lg_clients (fun _ -> instance) in
          let* report =
            Service.Loadgen.run_multi ~policy:o.lg_policy ~seed:o.lg_seed
              ?journal:o.lg_journal ?snapshot:o.lg_snapshot
              ?snapshot_every:o.lg_snapshot_every
              ?fsync_every:o.lg_fsync_every ~jobs:o.lg_jobs ~window:o.lg_window
              instances
          in
          Ok (Service.Loadgen.render_multi report)

let loadgen (o : loadgen_opts) =
  match o.source.Workload_select.trace with
  | Some path when (not o.emit) && Dvbp_tracestore.Trace_reader.sniff_magic path
    ->
      loadgen_stream o path
  | _ -> loadgen_materialised o
