module Vec = Dvbp_vec.Vec
module Item = Dvbp_core.Item
module Instance = Dvbp_core.Instance
module Packing = Dvbp_core.Packing

type config = { gamma : float; merge_twins : bool }

let default_config = { gamma = 1.0; merge_twins = true }

let config ~gamma ?(merge_twins = true) () =
  if not (Float.is_finite gamma) || gamma < 1.0 then
    invalid_arg
      (Printf.sprintf "Reduce.config: gamma must be a finite float >= 1.0 (got %g)" gamma);
  { gamma; merge_twins }

module Certificate = struct
  type status = Lossless | Rounded of { size_inflation : float }

  type t = {
    status : status;
    original_items : int;
    reduced_items : int;
    distinct_types : int;
    merged_items : int;
    rounded_coords : int;
  }

  let is_lossless t = match t.status with Lossless -> true | Rounded _ -> false

  let size_inflation t =
    match t.status with Lossless -> 1.0 | Rounded { size_inflation } -> size_inflation

  let render t =
    match t.status with
    | Lossless ->
        Printf.sprintf "reduce: %d items unchanged, %d types [lossless]"
          t.original_items t.distinct_types
    | Rounded { size_inflation } ->
        Printf.sprintf
          "reduce: %d items -> %d (%d merged into twins), %d types, %d coords rounded, inflation <= %.4g %s"
          t.original_items t.reduced_items t.merged_items t.distinct_types
          t.rounded_coords size_inflation
          (if t.rounded_coords = 0 then "[exact merge]" else "[rounded]")
end

type t = {
  original : Instance.t;
  reduced : Instance.t;
  certificate : Certificate.t;
  constituents : Item.t list array;  (* indexed by reduced item id *)
  identity : bool;
}

(* Smallest grid point ceil(gamma^j) >= s, clamped at [cap] (so the
   rounded coordinate still fits an empty bin). Requires gamma > 1. *)
let round_up_grid ~gamma ~cap s =
  if s <= 1 then s
  else begin
    let v = ref 1.0 and g = ref 1 in
    while !g < s do
      v := !v *. gamma;
      g := int_of_float (Float.ceil !v)
    done;
    min !g cap
  end

(* One original item after the (optional) rounding pass. *)
type rounded = { orig : Item.t; rsize : Vec.t }

let round_pass ~gamma instance =
  let cap = (instance.Instance.capacity :> int array) in
  let rounded_coords = ref 0 and inflation = ref 1.0 in
  let items =
    List.map
      (fun (it : Item.t) ->
        if gamma <= 1.0 then { orig = it; rsize = it.Item.size }
        else begin
          let s = (it.Item.size :> int array) in
          let changed = ref false in
          let r =
            Array.mapi
              (fun j sj ->
                let rj = round_up_grid ~gamma ~cap:cap.(j) sj in
                if rj > sj then begin
                  incr rounded_coords;
                  changed := true;
                  let ratio = float_of_int rj /. float_of_int sj in
                  if ratio > !inflation then inflation := ratio
                end;
                rj)
              s
          in
          let rsize = if !changed then Vec.of_array r else it.Item.size in
          { orig = it; rsize }
        end)
      instance.Instance.items
  in
  (items, !rounded_coords, !inflation)

(* A reduced item before re-iding: the constituents share arrival,
   departure and rounded size; [size] is the combined size. *)
type proto = {
  first_id : int;
  arrival : float;
  departure : float;
  size : Vec.t;
  members : Item.t list;
}

let proto_of_single (r : rounded) =
  {
    first_id = r.orig.Item.id;
    arrival = r.orig.Item.arrival;
    departure = r.orig.Item.departure;
    size = r.rsize;
    members = [ r.orig ];
  }

(* Largest multiplicity c >= 1 with c * size <= cap componentwise. *)
let max_multiplicity ~cap ~group_size size =
  let cap = (cap : Vec.t :> int array) and s = (size : Vec.t :> int array) in
  let c = ref group_size in
  Array.iteri (fun j sj -> if sj > 0 then c := min !c (cap.(j) / sj)) s;
  max 1 !c

let merge_pass ~capacity rounded_items =
  (* Group by (arrival, departure, rounded size), first-seen order. *)
  let groups : (float * float * int array, int) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] and n_groups = ref 0 in
  let members : rounded list ref array ref = ref (Array.make 16 (ref [])) in
  List.iter
    (fun (r : rounded) ->
      let key = (r.orig.Item.arrival, r.orig.Item.departure, (r.rsize :> int array)) in
      match Hashtbl.find_opt groups key with
      | Some gi -> !members.(gi) := r :: !(!members.(gi))
      | None ->
          let gi = !n_groups in
          incr n_groups;
          if gi >= Array.length !members then begin
            let bigger = Array.make (2 * Array.length !members) (ref []) in
            Array.blit !members 0 bigger 0 (Array.length !members);
            members := bigger
          end;
          !members.(gi) <- ref [ r ];
          Hashtbl.replace groups key gi;
          order := gi :: !order)
    rounded_items;
  let merged = ref 0 in
  let protos =
    List.concat_map
      (fun gi ->
        let group = List.rev !(!members.(gi)) in
        match group with
        | [] -> []
        | first :: _ ->
            let c = max_multiplicity ~cap:capacity ~group_size:(List.length group) first.rsize in
            if c <= 1 then List.map proto_of_single group
            else begin
              (* Chunk the group into super-items of multiplicity <= c. *)
              let rec chunk acc cur k = function
                | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
                | r :: rest ->
                    if k = c then chunk (List.rev cur :: acc) [ r ] 1 rest
                    else chunk acc (r :: cur) (k + 1) rest
              in
              let chunks = chunk [] [] 0 group in
              List.map
                (fun ch ->
                  let m = List.length ch in
                  if m > 1 then merged := !merged + m;
                  match ch with
                  | [] -> assert false
                  | hd :: _ ->
                      {
                        first_id = hd.orig.Item.id;
                        arrival = hd.orig.Item.arrival;
                        departure = hd.orig.Item.departure;
                        size = Vec.scale m hd.rsize;
                        members = List.map (fun r -> r.orig) ch;
                      })
                chunks
            end)
      (List.rev !order)
  in
  (protos, !merged)

let distinct_types protos =
  let seen = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace seen ((p.size :> int array)) ()) protos;
  Hashtbl.length seen

let apply ?(config = default_config) (instance : Instance.t) =
  let n = List.length instance.Instance.items in
  let rounded_items, rounded_coords, inflation = round_pass ~gamma:config.gamma instance in
  let protos, merged_items =
    if config.merge_twins then merge_pass ~capacity:instance.Instance.capacity rounded_items
    else (List.map proto_of_single rounded_items, 0)
  in
  let types = distinct_types protos in
  if rounded_coords = 0 && merged_items = 0 then
    (* Nothing changed: keep the original instance (physical equality)
       so downstream runs are trivially bit-identical. *)
    let constituents = Array.make n [] in
    List.iter (fun (it : Item.t) -> constituents.(it.Item.id) <- [ it ]) instance.Instance.items;
    {
      original = instance;
      reduced = instance;
      certificate =
        {
          Certificate.status = Lossless;
          original_items = n;
          reduced_items = n;
          distinct_types = types;
          merged_items = 0;
          rounded_coords = 0;
        };
      constituents;
      identity = true;
    }
  else begin
    let protos =
      List.sort
        (fun a b ->
          let c = Float.compare a.arrival b.arrival in
          if c <> 0 then c else compare a.first_id b.first_id)
        protos
    in
    let n' = List.length protos in
    let constituents = Array.make n' [] in
    let items =
      List.mapi
        (fun id p ->
          constituents.(id) <- p.members;
          Item.make ~id ~arrival:p.arrival ~departure:p.departure ~size:p.size)
        protos
    in
    let reduced = Instance.make_exn ~capacity:instance.Instance.capacity items in
    let size_inflation = if rounded_coords = 0 then 1.0 else inflation in
    {
      original = instance;
      reduced;
      certificate =
        {
          Certificate.status = Rounded { size_inflation };
          original_items = n;
          reduced_items = n';
          distinct_types = types;
          merged_items;
          rounded_coords;
        };
      constituents;
      identity = false;
    }
  end

let instance t = t.reduced
let original t = t.original
let certificate t = t.certificate

let constituents t id =
  if id < 0 || id >= Array.length t.constituents then raise Not_found
  else t.constituents.(id)

let lift t (packing : Packing.t) =
  if t.identity then packing
  else begin
    let records =
      List.map
        (fun (br : Packing.bin_record) ->
          let items =
            List.concat_map
              (fun (it : Item.t) ->
                match constituents t it.Item.id with
                | members -> members
                | exception Not_found ->
                    invalid_arg
                      (Printf.sprintf
                         "Reduce.lift: item %d is not part of the reduced instance"
                         it.Item.id))
              br.Packing.items
          in
          { br with Packing.items })
        packing.Packing.bins
    in
    Packing.make ~capacity:t.original.Instance.capacity records
  end
