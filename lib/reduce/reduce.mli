(** Instance preprocessing: round item sizes onto a geometric grid and
    merge exact duplicate "types", with a machine-checkable certificate.

    Van Bevern et al. ("On data reduction for dynamic vector bin
    packing", PAPERS.md) observe that DVBP instances from real traces
    are massively redundant: a few hundred {e item types} — identical
    size vectors, often identical lifetimes — cover millions of items.
    This module implements the two classic reduction moves for the
    MinUsageTime objective:

    {ul
    {- {b Geometric rounding}: every size coordinate is rounded {e up}
       to the next point of the grid [{⌈γ^j⌉ : j ≥ 0}] (clamped at the
       bin capacity), collapsing the coordinate universe from [B] values
       to [O(log_γ B)]. Rounding up means any packing of the rounded
       instance is feasible for the original — at the price of a
       bounded size inflation the certificate reports exactly.}
    {- {b Twin merging}: items with identical arrival, departure {e and}
       (rounded) size are fused into super-items of combined size, as
       long as the combination still fits an empty bin. A twin group
       occupies the same time interval, so fusing it changes no load
       profile at any instant where the fused item is placed — the merge
       is exact with respect to the cost model.}}

    The output is a {e reduction}: the reduced {!Dvbp_core.Instance.t},
    a {!Certificate.t} stating whether the rewrite was lossless, and an
    inverse {!lift} that maps any packing of the reduced instance back
    to a packing of the original with {e bit-identical cost} (bins keep
    their usage intervals; each super-item is replaced by its
    constituents, each rounded item by its original).

    Guarantees, as pinned by the property tests:
    {ul
    {- [lift] of a valid packing of the reduced instance is a valid
       packing of the original instance, with the same bin intervals and
       therefore exactly the same {!Dvbp_core.Packing.cost}.}
    {- When the certificate is {!Certificate.Lossless} the reduced
       instance {e is} the original (physically equal), so every
       deterministic policy produces a bit-identical run.}
    {- When it is [Rounded], [size_inflation] is the exact maximum
       per-coordinate ratio [rounded/original] over all rounded
       coordinates — the factor by which the instance was made harder.}} *)

(** {1 Configuration} *)

type config = {
  gamma : float;
      (** Geometric rounding base, [>= 1.0]. With [gamma = 1.0] the grid
          contains every integer and rounding is the identity. *)
  merge_twins : bool;
      (** Fuse identical [(arrival, departure, size)] groups into
          super-items while the combined size fits the capacity. *)
}

val default_config : config
(** [{ gamma = 1.0; merge_twins = true }] — the exact reduction:
    twin merging only, no rounding. *)

val config : gamma:float -> ?merge_twins:bool -> unit -> config
(** Validating constructor.
    @raise Invalid_argument when [gamma] is not finite or [< 1.0],
    naming the offending value. *)

(** {1 Certificates} *)

module Certificate : sig
  (** What the reduction did to the instance, and what it cost. *)

  type status =
    | Lossless
        (** The reduced instance is the original: no coordinate was
            changed by rounding and no items were merged. Any
            deterministic policy runs bit-identically on it. *)
    | Rounded of { size_inflation : float }
        (** At least one coordinate was rounded up (or items merged).
            [size_inflation] is the exact maximum ratio
            [rounded_coord / original_coord] over all changed
            coordinates ([1.0] if only merging occurred). The {e lifted}
            cost is still exactly the reduced run's cost; the inflation
            bounds how much harder the reduced instance may pack. *)

  type t = {
    status : status;
    original_items : int;  (** [n] of the input instance *)
    reduced_items : int;  (** [n'] of the reduced instance, [<= n] *)
    distinct_types : int;
        (** distinct (rounded) size vectors in the reduced instance *)
    merged_items : int;
        (** original items absorbed into some super-item
            ([0] when no merging happened) *)
    rounded_coords : int;
        (** coordinates strictly increased by rounding, over all
            original items *)
  }

  val is_lossless : t -> bool

  val size_inflation : t -> float
  (** [1.0] when {!Lossless}; the recorded factor otherwise. *)

  val render : t -> string
  (** One human-readable line, e.g.
      ["reduce: 200 items -> 143 (57 merged into twins), 31 types, 86 coords rounded, inflation <= 1.094 [rounded]"]. *)
end

(** {1 Reductions} *)

type t
(** A reduction of one instance: the reduced instance, its certificate,
    and the data needed to lift packings back. *)

val apply : ?config:config -> Dvbp_core.Instance.t -> t
(** Runs the configured passes (rounding, then merging). When neither
    pass changes anything the reduction is lossless and {!instance}
    returns the input unchanged (physical equality). *)

val instance : t -> Dvbp_core.Instance.t
(** The reduced instance — feed it to any engine. *)

val original : t -> Dvbp_core.Instance.t

val certificate : t -> Certificate.t

val constituents : t -> int -> Dvbp_core.Item.t list
(** [constituents t id] are the original items represented by reduced
    item [id] (a single original for an unmerged item).
    @raise Not_found on an id not in the reduced instance. *)

val lift : t -> Dvbp_core.Packing.t -> Dvbp_core.Packing.t
(** Maps a packing of {!instance} back to a packing of {!original}:
    every bin keeps its id and usage interval; each reduced item is
    replaced by its constituents. The lifted packing always validates
    against {!original} and its {!Dvbp_core.Packing.cost} is
    bit-identical to the input packing's (same interval list).
    @raise Invalid_argument if the packing references an item id that is
    not in the reduced instance (i.e. it is not a packing of
    {!instance}). *)
