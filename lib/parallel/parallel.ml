let chunked_for ?pool ?jobs ?(chunk = 1) ~n body =
  if n < 0 then invalid_arg "Parallel.chunked_for: negative n";
  if chunk < 1 then invalid_arg "Parallel.chunked_for: chunk < 1";
  if n > 0 then begin
    let pool = match pool with Some p -> p | None -> Domain_pool.default () in
    let want =
      match jobs with Some j -> max 1 j | None -> Domain_pool.jobs pool
    in
    (* never occupy more members than there are chunks *)
    let want = min want ((n + chunk - 1) / chunk) in
    if want <= 1 then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let next = Atomic.make 0 in
      let work () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else
            for i = start to min n (start + chunk) - 1 do
              body i
            done
        done
      in
      Domain_pool.run ~jobs:want pool work
    end
  end

let map_array ?pool ?jobs ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    chunked_for ?pool ?jobs ?chunk ~n:(n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end
