(** A spawn-once pool of [Domain.t] workers for embarrassingly parallel
    experiment sweeps.

    Worker domains are spawned lazily on the first run that needs them and
    then reused for every subsequent call ({!spawned} never exceeds
    [jobs - 1] over the life of the pool); re-spawning per call would cost
    milliseconds per sweep cell. The calling domain always participates in a
    run, so a pool of size [jobs] occupies exactly [jobs] domains while
    running and [jobs - 1] parked workers while idle.

    Sizing: [DVBP_JOBS] (validated — a clear [Invalid_argument] on
    non-integer or non-positive values) takes precedence over
    [Domain.recommended_domain_count]; an explicit [~jobs] argument to
    {!create} / {!run} takes precedence over both. All sizes are clamped
    to at least 1; a size-1 pool degenerates to plain sequential calls and
    never spawns a domain.

    Determinism contract: the pool schedules work but never injects any
    ordering-dependent state — callers that write results into
    pre-assigned slots (see {!Parallel}) get output that is bit-identical
    whatever the pool size. *)

type t

val default_jobs : unit -> int
(** [DVBP_JOBS] if set (validated), else [Domain.recommended_domain_count],
    clamped to ≥ 1.
    @raise Invalid_argument if [DVBP_JOBS] is set to a non-integer or a
    value < 1. *)

val create : ?jobs:int -> unit -> t
(** A fresh pool targeting [jobs] concurrent members (default
    {!default_jobs}; values < 1 are clamped to 1). No domain is spawned
    until the first parallel {!run}. *)

val jobs : t -> int
(** The pool's current target parallelism (≥ 1). *)

val spawned : t -> int
(** How many worker domains this pool has spawned so far — stays put
    across repeated runs; grows (once) only when a run requests more
    parallelism than any earlier run. *)

val run : ?jobs:int -> t -> (unit -> unit) -> unit
(** [run pool work] executes [work ()] concurrently on [min jobs (pool
    target)] members — the caller plus workers; [~jobs] overrides the
    pool's target for this call only, growing the pool if it asks for more
    workers than have been spawned. The call returns when every member has
    returned. If any member raises, the first exception (worker or caller)
    is re-raised in the caller with its backtrace — after all members have
    finished, so no task is still touching shared buffers. Re-entrant
    calls (from inside a running task) degrade to sequential execution
    rather than deadlocking.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Park, join and release all worker domains. Idempotent. The pool is
    unusable afterwards. *)

val set_default_jobs : int -> unit
(** Override the target parallelism of the {!default} pool (clamped to
    ≥ 1) — e.g. from a [--jobs] command-line flag. Takes effect even if
    the default pool already exists; precedence: [set_default_jobs] >
    [DVBP_JOBS] > [Domain.recommended_domain_count]. *)

val default : unit -> t
(** The process-wide shared pool, created on first use (size: the last
    {!set_default_jobs}, else {!default_jobs}) and joined automatically at
    exit. Every experiment entry point that takes [?jobs] uses this pool
    unless handed an explicit one. *)
