(* One mailbox per worker (own mutex + condition) so posting a job never
   contends with unrelated workers; one completion latch per run shared by
   all members. Workers never busy-wait: parked workers block in
   [Condition.wait] until a job or a stop order arrives. *)

type job = {
  work : unit -> unit;
  latch_m : Mutex.t;
  latch_c : Condition.t;
  mutable pending : int;  (* workers (not the caller) still running *)
  mutable error : (exn * Printexc.raw_backtrace) option;  (* first wins *)
}

type mailbox = Idle | Job of job | Stop

type worker = {
  m : Mutex.t;
  c : Condition.t;
  mutable box : mailbox;
  mutable domain : unit Domain.t option;  (* set right after spawn *)
}

type t = {
  pool_m : Mutex.t;
  mutable target : int;  (* desired parallelism, >= 1 *)
  mutable workers : worker list;  (* spawned so far, length <= target - 1 *)
  mutable busy : bool;  (* a run is in flight: re-entrant calls go sequential *)
  mutable closed : bool;
}

let record_error job e bt =
  Mutex.lock job.latch_m;
  if job.error = None then job.error <- Some (e, bt);
  Mutex.unlock job.latch_m

let finish_one job =
  Mutex.lock job.latch_m;
  job.pending <- job.pending - 1;
  if job.pending = 0 then Condition.signal job.latch_c;
  Mutex.unlock job.latch_m

let rec worker_loop w =
  Mutex.lock w.m;
  while (match w.box with Idle -> true | Job _ | Stop -> false) do
    Condition.wait w.c w.m
  done;
  let order = w.box in
  (match order with Job _ -> w.box <- Idle | Idle | Stop -> ());
  Mutex.unlock w.m;
  match order with
  | Stop | Idle -> ()
  | Job job ->
      (try job.work ()
       with e -> record_error job e (Printexc.get_raw_backtrace ()));
      finish_one job;
      worker_loop w

let clamp_jobs j = if j < 1 then 1 else j

let parse_env_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> n
  | Some n ->
      invalid_arg
        (Printf.sprintf "DVBP_JOBS must be a positive integer (got %d)" n)
  | None ->
      invalid_arg
        (Printf.sprintf
           "DVBP_JOBS must be a positive integer (got %S); unset it to use \
            all cores" s)

let default_jobs () =
  match Sys.getenv_opt "DVBP_JOBS" with
  | Some s -> parse_env_jobs s
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let create ?jobs () =
  let target =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  { pool_m = Mutex.create (); target; workers = []; busy = false; closed = false }

let jobs t =
  Mutex.lock t.pool_m;
  let n = t.target in
  Mutex.unlock t.pool_m;
  n

let spawned t =
  Mutex.lock t.pool_m;
  let n = List.length t.workers in
  Mutex.unlock t.pool_m;
  n

let spawn_worker () =
  (* the record must be complete before the domain starts looping on it *)
  let w = { m = Mutex.create (); c = Condition.create (); box = Idle; domain = None } in
  w.domain <- Some (Domain.spawn (fun () -> worker_loop w));
  w

(* called with t.pool_m held *)
let ensure_workers t n =
  let missing = n - List.length t.workers in
  for _ = 1 to missing do
    t.workers <- spawn_worker () :: t.workers
  done

let post w job =
  Mutex.lock w.m;
  w.box <- Job job;
  Condition.signal w.c;
  Mutex.unlock w.m

let run ?jobs t work =
  let want = match jobs with Some j -> clamp_jobs j | None -> 0 in
  Mutex.lock t.pool_m;
  if t.closed then begin
    Mutex.unlock t.pool_m;
    invalid_arg "Domain_pool.run: pool already shut down"
  end;
  let want = if want = 0 then t.target else want in
  if want > t.target then t.target <- want;
  if t.busy || want = 1 then begin
    (* size-1 pool, or a re-entrant call from inside a task: sequential *)
    Mutex.unlock t.pool_m;
    work ()
  end
  else begin
    t.busy <- true;
    ensure_workers t (want - 1);
    let helpers = List.filteri (fun i _ -> i < want - 1) t.workers in
    Mutex.unlock t.pool_m;
    let job =
      {
        work;
        latch_m = Mutex.create ();
        latch_c = Condition.create ();
        pending = List.length helpers;
        error = None;
      }
    in
    List.iter (fun w -> post w job) helpers;
    let caller_error =
      try work (); None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock job.latch_m;
    while job.pending > 0 do
      Condition.wait job.latch_c job.latch_m
    done;
    let worker_error = job.error in
    Mutex.unlock job.latch_m;
    Mutex.lock t.pool_m;
    t.busy <- false;
    Mutex.unlock t.pool_m;
    match caller_error, worker_error with
    | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None, None -> ()
  end

let shutdown t =
  Mutex.lock t.pool_m;
  if t.closed then Mutex.unlock t.pool_m
  else begin
    t.closed <- true;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.pool_m;
    List.iter
      (fun w ->
        Mutex.lock w.m;
        w.box <- Stop;
        Condition.signal w.c;
        Mutex.unlock w.m)
      workers;
    List.iter
      (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
      workers
  end

(* ---------- the process-wide shared pool ---------- *)

let default_m = Mutex.create ()
let default_pool = ref None
let default_override = ref None

let set_default_jobs n =
  let n = clamp_jobs n in
  Mutex.lock default_m;
  default_override := Some n;
  (match !default_pool with
  | Some t ->
      Mutex.lock t.pool_m;
      t.target <- n;
      Mutex.unlock t.pool_m
  | None -> ());
  Mutex.unlock default_m

let default () =
  Mutex.lock default_m;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let jobs =
          match !default_override with Some n -> n | None -> default_jobs ()
        in
        let t = create ~jobs () in
        default_pool := Some t;
        at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock default_m;
  t
