(** Deterministic data-parallel combinators on top of {!Domain_pool}.

    Both combinators hand out {e index chunks} from a shared atomic
    counter (work stealing: a member that finishes its chunk immediately
    grabs the next one, so uneven task costs never leave a domain idle),
    and every task writes only to its own pre-assigned slot. The result is
    therefore a pure function of the inputs — bit-identical whatever the
    number of domains or the interleaving, which is what lets the
    experiment layer keep its golden-data guarantees while going wide.

    [?pool] defaults to {!Domain_pool.default}; [?jobs] overrides the
    pool's parallelism for this call. With an effective parallelism of 1
    the combinators run inline without touching the pool (no domain is
    ever spawned), so sequential use stays allocation- and thread-free. *)

val chunked_for :
  ?pool:Domain_pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  n:int ->
  (int -> unit) ->
  unit
(** [chunked_for ~n body] runs [body i] for every [0 <= i < n], sharded
    over the pool in chunks of [chunk] consecutive indices (default 1 —
    experiment tasks are milliseconds each, so counter traffic is noise).
    Within a chunk indices run in order; across chunks order is
    unspecified, so [body] must only write to per-[i] slots. Exceptions
    propagate per {!Domain_pool.run} — after all members finished.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val map_array :
  ?pool:Domain_pool.t -> ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a], sharded like {!chunked_for}
    ([f] is applied exactly once per element; [f a.(0)] runs first, in the
    caller, like [Array.map]'s seed application). *)
