type t = int array

let validate ?(what = "Vec") a =
  if Array.length a = 0 then invalid_arg (what ^ ": empty vector");
  Array.iter (fun x -> if x < 0 then invalid_arg (what ^ ": negative entry")) a

let of_array a =
  validate a;
  Array.copy a

let of_list l = of_array (Array.of_list l)

let make ~dim c =
  if dim <= 0 then invalid_arg "Vec.make: non-positive dimension";
  if c < 0 then invalid_arg "Vec.make: negative entry";
  Array.make dim c

let zero ~dim = make ~dim 0

let unit_scaled ~dim ~axis ~on_axis ~off_axis =
  if dim <= 0 then invalid_arg "Vec.unit_scaled: non-positive dimension";
  if axis < 0 || axis >= dim then invalid_arg "Vec.unit_scaled: axis out of range";
  if on_axis < 0 || off_axis < 0 then invalid_arg "Vec.unit_scaled: negative entry";
  Array.init dim (fun j -> if j = axis then on_axis else off_axis)

let dim = Array.length
let get v j = v.(j)
let to_array = Array.copy

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun j -> a.(j) + b.(j))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun j ->
      let x = a.(j) - b.(j) in
      if x < 0 then invalid_arg "Vec.sub: negative result" else x)

let scale c v =
  if c < 0 then invalid_arg "Vec.scale: negative factor";
  Array.map (fun x -> Dvbp_prelude.Intmath.mul_checked c x) v

let sum ~dim vs = List.fold_left add (zero ~dim) vs

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b
let compare = Stdlib.compare

(* The comparison loops are top-level recursive functions on purpose: a
   local [let rec] capturing the arrays compiles to a heap-allocated
   closure per call without flambda, and [fits_trusted] runs once per
   open bin per arrival — the single hottest call site in the repo. *)
let rec le_from a b n j = j >= n || (Array.unsafe_get a j <= Array.unsafe_get b j && le_from a b n (j + 1))

let le a b =
  check_dims "le" a b;
  le_from a b (Array.length a) 0

let rec fits_from cap load v n j =
  j >= n
  || (Array.unsafe_get load j + Array.unsafe_get v j <= Array.unsafe_get cap j
      && fits_from cap load v n (j + 1))

let fits ~cap ~load v =
  check_dims "fits" load v;
  check_dims "fits" load cap;
  fits_from cap load v (Array.length v) 0

let fits_trusted ~cap ~load v =
  check_dims "fits_trusted" load v;
  fits_from cap load v (Array.length v) 0

(* In-place accumulation for engine-owned load vectors (never shared). *)
let add_into ~into v =
  check_dims "add_into" into v;
  for j = 0 to Array.length v - 1 do
    Array.unsafe_set into j (Array.unsafe_get into j + Array.unsafe_get v j)
  done

let sub_into ~into v =
  check_dims "sub_into" into v;
  for j = 0 to Array.length v - 1 do
    let x = Array.unsafe_get into j - Array.unsafe_get v j in
    if x < 0 then invalid_arg "Vec.sub_into: negative result";
    Array.unsafe_set into j x
  done

let is_zero v = Array.for_all (fun x -> x = 0) v
let max_coord v = Array.fold_left max v.(0) v
let sum_coords v = Array.fold_left ( + ) 0 v

let check_cap name cap v =
  check_dims name v cap;
  Array.iter (fun c -> if c <= 0 then invalid_arg ("Vec." ^ name ^ ": zero capacity")) cap

let linf ~cap v =
  check_cap "linf" cap v;
  let best = ref 0.0 in
  Array.iteri (fun j x ->
      let r = float_of_int x /. float_of_int cap.(j) in
      if r > !best then best := r)
    v;
  !best

let l1 ~cap v =
  check_cap "l1" cap v;
  let acc = ref 0.0 in
  Array.iteri (fun j x -> acc := !acc +. (float_of_int x /. float_of_int cap.(j))) v;
  !acc

let lp ~p ~cap v =
  if p < 1.0 then invalid_arg "Vec.lp: p < 1";
  check_cap "lp" cap v;
  let acc = ref 0.0 in
  Array.iteri (fun j x -> acc := !acc +. ((float_of_int x /. float_of_int cap.(j)) ** p)) v;
  !acc ** (1.0 /. p)

let height ~cap v =
  check_cap "height" cap v;
  let best = ref 0 in
  Array.iteri (fun j x ->
      let h = Dvbp_prelude.Intmath.ceil_div x cap.(j) in
      if h > !best then best := h)
    v;
  !best

(* Lane codec for the SWAR fit kernel: coordinate [j] occupies bits
   [lane_bits*j .. lane_bits*(j+1)-1] of one native int. The top two bits
   of every lane are reserved — a guard bit the kernel's masked subtract
   reports through, and one slack bit that keeps the dead-slot poison word
   borrow-free — so a packable coordinate must fit in [lane_bits - 2]
   payload bits (and in a byte: the kernel's precondition is u8-sized
   capacities). *)

let max_packable ~lane_bits = min 255 ((1 lsl (lane_bits - 2)) - 1)

let check_lanes name ~lane_bits v =
  if lane_bits < 3 then
    invalid_arg (Printf.sprintf "Vec.%s: lane_bits %d < 3" name lane_bits);
  if Array.length v * lane_bits > 63 then
    invalid_arg
      (Printf.sprintf "Vec.%s: %d lanes of %d bits exceed one 63-bit word" name
         (Array.length v) lane_bits)

let pack_u8 ?(lane_bits = 10) v =
  check_lanes "pack_u8" ~lane_bits v;
  let bound = max_packable ~lane_bits in
  let word = ref 0 in
  Array.iteri
    (fun j x ->
      if x > bound then
        invalid_arg
          (Printf.sprintf
             "Vec.pack_u8: coordinate %d is %d, above the %d-bit-lane bound %d"
             j x lane_bits bound);
      word := !word lor (x lsl (lane_bits * j)))
    v;
  !word

let unpack_u8 ?(lane_bits = 10) ~dim word =
  if dim <= 0 then invalid_arg "Vec.unpack_u8: non-positive dimension";
  if lane_bits < 3 then invalid_arg "Vec.unpack_u8: lane_bits < 3";
  if dim * lane_bits > 63 then
    invalid_arg "Vec.unpack_u8: lanes exceed one 63-bit word";
  if word < 0 then invalid_arg "Vec.unpack_u8: negative word";
  let payload = (1 lsl (lane_bits - 2)) - 1 in
  Array.init dim (fun j -> (word lsr (lane_bits * j)) land payload)

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
