(** [d]-dimensional resource vectors in exact integer units.

    The paper normalises bins to the unit cube [1{^d}] and item sizes to
    [\[0,1\]{^d}]; we instead keep an explicit integer capacity vector (the
    experiments in the paper already use integer sizes in [{1..B}{^d}] with
    [B = 100]) so that every fit decision — including the strict
    "[load > capacity] in some dimension" overflow arguments of the proofs —
    is computed exactly, with no float-epsilon hazards. Normalised
    ([capacity]-relative) views are provided for reporting and for the
    [L∞]-based quantities of Lemma 1.

    Values are immutable; all entries are non-negative. *)

type t = private int array
(** An immutable vector of non-negative integer resource amounts.

    The representation is exposed read-only ([private]) so that the
    engine's candidate scan — one fit test per open bin per arrival —
    can run directly over the coordinates without a per-test function
    call. Use [(v :> int array)] to read; all construction and
    mutation still goes through this interface. *)

(** {1 Construction} *)

val of_array : int array -> t
(** Copies the array.
    @raise Invalid_argument on an empty array or any negative entry. *)

val of_list : int list -> t
(** Same as {!of_array} from a list. *)

val make : dim:int -> int -> t
(** [make ~dim c] is the vector with [dim] coordinates all equal to [c].
    @raise Invalid_argument if [dim <= 0] or [c < 0]. *)

val zero : dim:int -> t
(** All-zero vector. *)

val unit_scaled : dim:int -> axis:int -> on_axis:int -> off_axis:int -> t
(** Vector equal to [on_axis] on [axis] and [off_axis] elsewhere — the shape
    of every item in the paper's adversarial constructions.
    @raise Invalid_argument if [axis] is out of range or a value is
    negative. *)

(** {1 Access} *)

val dim : t -> int
val get : t -> int -> int
val to_array : t -> int array
(** Fresh copy. *)

(** {1 Algebra} *)

val add : t -> t -> t
(** Componentwise sum.
    @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t
(** Componentwise difference.
    @raise Invalid_argument on dimension mismatch or if any coordinate would
    become negative. *)

val scale : int -> t -> t
(** [scale c v] multiplies every coordinate by [c >= 0]. *)

val sum : dim:int -> t list -> t
(** Sum of a list of vectors; the all-zero vector for the empty list. *)

(** {1 Comparisons} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic; total order for use in maps/sets. *)

val le : t -> t -> bool
(** Componentwise [<=]. @raise Invalid_argument on dimension mismatch. *)

val fits : cap:t -> load:t -> t -> bool
(** [fits ~cap ~load v] holds iff [load + v <= cap] in every dimension —
    the exact fit test used by every Any Fit policy.
    @raise Invalid_argument on dimension mismatch. *)

val fits_trusted : cap:t -> load:t -> t -> bool
(** Same as {!fits}, but only [v] vs [load] dimensions are checked; the
    caller must guarantee [cap] has the same dimension as [load] (the bin
    invariant). Used on the candidate-scan hot path, where the same
    [cap]/[load] pair is tested against thousands of items.
    @raise Invalid_argument if [v] and [load] dimensions differ. *)

val add_into : into:t -> t -> unit
(** [add_into ~into v] adds [v] to [into] in place. Only for accumulators
    the caller exclusively owns (the engine's bin loads) — everything else
    should treat vectors as immutable and use {!add}.
    @raise Invalid_argument on dimension mismatch. *)

val sub_into : into:t -> t -> unit
(** In-place {!sub}, same ownership caveat as {!add_into}.
    @raise Invalid_argument on dimension mismatch or a negative result. *)

val is_zero : t -> bool

(** {1 Scalar summaries} *)

val max_coord : t -> int
(** Largest coordinate. *)

val sum_coords : t -> int
(** Sum of coordinates ([L1] in integer units). *)

(** {1 Capacity-relative norms}

    All take the capacity vector and return floats in [\[0, ∞)]. *)

val linf : cap:t -> t -> float
(** [max_j v_j / cap_j] — the [‖·‖∞] of the paper after normalisation. *)

val l1 : cap:t -> t -> float
(** [Σ_j v_j / cap_j]. *)

val lp : p:float -> cap:t -> t -> float
(** [(Σ_j (v_j / cap_j)^p)^(1/p)] for [p >= 1]. *)

val height : cap:t -> t -> int
(** [max_j ⌈v_j / cap_j⌉] — the minimum number of bins forced by this total
    load in its most loaded dimension (the integrand of Lemma 1 (i)). *)

(** {1 Lane codec (SWAR fit kernel)}

    Packs a whole vector into one native int, one fixed-width lane per
    coordinate: coordinate [j] occupies bits
    [lane_bits*j .. lane_bits*(j+1)-1]. The top two bits of every lane are
    reserved for the SWAR fit test (a guard bit the masked subtract reports
    through, plus one slack bit that keeps the dead-slot poison word
    borrow-free), so a packable coordinate must fit in [lane_bits - 2]
    payload bits — and always in a byte, hence the [u8] name: the fit
    kernel's precondition is byte-sized capacities. *)

val max_packable : lane_bits:int -> int
(** Largest packable coordinate: [min 255 (2{^lane_bits - 2} - 1)]. *)

val pack_u8 : ?lane_bits:int -> t -> int
(** [pack_u8 ~lane_bits v] is the packed word. [lane_bits] defaults to 10
    (8 payload bits — the full u8 range — per lane, up to 6 lanes).
    @raise Invalid_argument if [lane_bits < 3], if
    [dim v * lane_bits > 63], or if any coordinate exceeds
    {!max_packable}. *)

val unpack_u8 : ?lane_bits:int -> dim:int -> int -> t
(** Inverse of {!pack_u8} on its image: extracts the low [lane_bits - 2]
    payload bits of each of [dim] lanes.
    @raise Invalid_argument on a negative word, [dim <= 0], [lane_bits < 3]
    or [dim * lane_bits > 63]. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Renders as [(a, b, ...)]. *)

val to_string : t -> string
