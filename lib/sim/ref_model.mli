(** Pure in-memory reference model for the state-machine test.

    Deliberately {e independent} of the engine: it never consults a policy
    or a [Session] — it folds over the recorded events (arrival placements
    as the live server replied them, departures) with its own five-line
    bookkeeping of clock, accumulated bin-time cost, bins opened, and the
    open-bin occupancy map. A recovered session that disagrees with this
    fold has corrupted state, whatever the engine's own invariants say.

    Cost comparison is exact float equality; the state-machine test feeds
    integer-valued timestamps, for which both the model's incremental
    accrual and the session's per-bin summation are exact. *)

type t = {
  clock : float;
  cost : float;
  bins_opened : int;
  open_bins : (int * int list) list;
      (** opening order; occupants in placement order *)
}

val initial : t

val apply : t -> Dvbp_service.Journal.event -> t
(** Pure: accrue cost to the event's time, then apply the placement or
    departure (a departure emptying a bin closes it). *)

val of_events : Dvbp_service.Journal.event list -> t

val agrees_with : t -> Dvbp_engine.Session.t -> (unit, string) result
(** Exact comparison of clock, cost, bins opened, and open-bin occupancy
    (ids in opening order, occupants compared as sets). *)
