(** Pure in-memory reference model for the state-machine test.

    Deliberately {e independent} of the engine: it never consults a policy
    or a [Session] — it folds over the recorded events (arrival placements
    as the live server replied them, departures) with its own few lines of
    per-tenant bookkeeping: clock, accumulated bin-time cost, bins opened,
    and the open-bin occupancy map, each keyed by the event's tenant.
    Recovered sessions that disagree with this fold have corrupted state,
    whatever the engine's own invariants say.

    Cost comparison is exact float equality; the state-machine test feeds
    integer-valued timestamps, for which both the model's incremental
    accrual and the session's per-bin summation are exact. *)

type tenant_model = {
  clock : float;
  cost : float;
  bins_opened : int;
  open_bins : (int * int list) list;
      (** opening order; occupants in placement order *)
}

type t = (string * tenant_model) list
(** One model per tenant, first-appearance order. *)

val initial : t

val empty_tenant : tenant_model

val find : t -> string -> tenant_model
(** The tenant's model, {!empty_tenant} if never touched. *)

val apply : t -> Dvbp_service.Journal.event -> t
(** Pure: route to the event's tenant, accrue cost to the event's time,
    then apply the placement or departure (a departure emptying a bin
    closes it). *)

val of_events : Dvbp_service.Journal.event list -> t

val agrees_with_session :
  tenant_model -> string -> Dvbp_engine.Session.t -> (unit, string) result
(** Exact comparison of clock, cost, bins opened, and open-bin occupancy
    (ids in opening order, occupants compared as sets) for one tenant. *)

val agrees_with :
  t -> (string * Dvbp_engine.Session.t) list -> (unit, string) result
(** Both directions: every tenant in the model must match its session, and
    every session must match its (possibly empty) model — so an untouched
    tenant session must be in its initial state. *)
