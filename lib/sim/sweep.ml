module Rng = Dvbp_prelude.Rng
module Io = Dvbp_service.Io
module Journal = Dvbp_service.Journal
module Recovery = Dvbp_service.Recovery
module Server = Dvbp_service.Server
module Metrics = Dvbp_service.Metrics
module Loadgen = Dvbp_service.Loadgen
module Session = Dvbp_engine.Session
module Uniform_model = Dvbp_workload.Uniform_model

type failure = { boundary : int; mode : string; message : string }

type outcome = {
  boundaries : int;
  scenarios : int;
  events : int;
  failures : failure list;
}

let journal_path = "sim/j.log"
let snapshot_path = "sim/s.snap"
let modes = [ Sim_fs.Lose_unsynced; Sim_fs.Keep_unsynced; Sim_fs.Torn ]

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let rec take n l =
  if n <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl

let rec is_prefix xs ~of_ =
  match (xs, of_) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys -> Journal.equal_event x y && is_prefix xs ~of_:ys

let check_applied line reply quit =
  if quit then failwith "unexpected QUIT reply";
  match reply.[0] with
  | 'P' | 'O' -> ()
  | _ -> failwith (Printf.sprintf "request %S refused: %s" line reply)

(* Drive one protocol line and insist it was applied: the canonical workload
   is all-accepting, so a REJECT/ERR anywhere means the recovered session
   diverged from the uninterrupted one. *)
let apply_line server line =
  let reply, quit = Server.handle_line server line in
  check_applied line reply quit

(* Drive the whole script. [batch = Some b] exercises the group-commit path
   ({!Server.handle_batch}, [b] lines per call); [None] the streaming one.
   [check] is off while a planned crash is pending (replies then never
   arrive — the run dies mid-script by design). [tick] runs after every
   line (or chunk) — the compaction sweeps pass {!Server.compaction_step}
   so segment retirement interleaves with traffic exactly as the event
   loop interleaves it, and its I/O boundaries are swept like any other. *)
let apply_all ?batch ~check ~tick server lines =
  match batch with
  | None ->
      List.iter
        (fun line ->
          if check then apply_line server line
          else ignore (Server.handle_line server line);
          tick server)
        lines
  | Some b ->
      let rec go = function
        | [] -> ()
        | lines ->
            let chunk = take b lines in
            let arr = Array.of_list chunk in
            let replies = Server.handle_batch server arr in
            if check then
              Array.iteri
                (fun i (reply, quit) -> check_applied arr.(i) reply quit)
                replies;
            tick server;
            go (drop b lines)
      in
      go lines

(* All tenant sessions folded into one comparable string (sorted by tenant
   so first-appearance order can't mask or fake a divergence). *)
let fingerprint_server server =
  Server.sessions server
  |> List.map (fun (tn, s) -> tn ^ "=" ^ Session.fingerprint s)
  |> List.sort String.compare
  |> String.concat ";"

(* [tenants > 1] round-robins the script across [t0..t{tenants-1}] with the
   tenant-prefixed grammar — every tenant runs the same item schedule in
   its own isolated session. [tenants = 1] keeps the un-prefixed grammar
   (the pre-tenant sweep, byte-for-byte). *)
let make_lines ~tenants inst =
  let base = Loadgen.script inst in
  if tenants <= 1 then base
  else
    let prefixed tn =
      List.map
        (fun line ->
          match String.index_opt line ' ' with
          | Some sp ->
              String.sub line 0 sp
              ^ Printf.sprintf " t%d" tn
              ^ String.sub line sp (String.length line - sp)
          | None -> line)
        base
    in
    let scripts = List.init tenants prefixed in
    let rec interleave acc scripts =
      if List.for_all (( = ) []) scripts then List.rev acc
      else
        let heads, tails =
          List.fold_right
            (fun s (hs, ts) ->
              match s with [] -> (hs, [] :: ts) | h :: t -> (h :: hs, t :: ts))
            scripts ([], [])
        in
        interleave (List.rev_append heads acc) tails
    in
    interleave [] scripts

let run ?(policy = "mtf") ?(seed = 11) ?(n = 12) ?(fsync_every = 3)
    ?(snapshot_every = 5) ?(snapshot = true) ?segment_bytes ?retain_segments
    ?(wrap = fun io -> io) ?batch ?(tenants = 1) ?(jobs = 1) () =
  let params = { Uniform_model.d = 2; n; mu = 10; span = 60; bin_size = 100 } in
  let inst = Uniform_model.generate params ~rng:(Rng.create ~seed:(seed + 1)) in
  let lines = make_lines ~tenants inst in
  let config =
    {
      Server.policy;
      seed;
      capacity = Uniform_model.capacity params;
      journal = Some journal_path;
      snapshot = (if snapshot then Some snapshot_path else None);
      (* with compaction armed, snapshots come from the compaction pass —
         the truncate-everything auto-snapshot would retire every sealed
         segment out from under it *)
      snapshot_every =
        (if snapshot && retain_segments = None then Some snapshot_every else None);
      fsync_every;
      jobs;
      segment_bytes;
      retain_segments;
    }
  in
  (* with a retention trigger configured, step compaction after every
     line/chunk — the event loop's once-per-tick cadence *)
  let tick =
    match retain_segments with
    | None -> fun _ -> ()
    | Some _ -> fun server -> Server.compaction_step server
  in
  (* Uninterrupted run: fixes the boundary count, the canonical event
     history, and the reference final state. *)
  let fs0 = Sim_fs.create ~seed () in
  let io0 = wrap (Sim_fs.io fs0) in
  let server =
    match Server.create ~io:io0 ~metrics:(Metrics.noop ()) config with
    | Ok s -> s
    | Error e -> failwith ("sweep baseline: " ^ e)
  in
  apply_all ?batch ~check:true ~tick server lines;
  let baseline_fp = fingerprint_server server in
  Server.close server;
  let boundaries = Sim_fs.ops fs0 in
  let canonical =
    match Recovery.recover ~io:io0 ~snapshot:snapshot_path ~journal:journal_path () with
    | Ok st -> st.Recovery.history
    | Error e -> failwith ("sweep baseline recovery: " ^ e)
  in
  let events = List.length canonical in
  if List.length lines <> events then
    failwith "sweep baseline: not every request became a journaled event";
  (* One scenario: crash at boundary [k], power-cut with [mode], recover,
     replay the rest of the workload, compare final fingerprints. *)
  let scenario k mode_idx mode =
    let fs = Sim_fs.create ~seed:(seed + (1000 * (k + 1)) + mode_idx) () in
    let io = wrap (Sim_fs.io fs) in
    Sim_fs.plan_crash fs ~at_op:k;
    (try
       match Server.create ~io ~metrics:(Metrics.noop ()) config with
       | Error e -> failwith ("server create: " ^ e)
       | Ok server ->
           apply_all ?batch ~check:false ~tick server lines;
           Server.close server;
           failwith "planned crash never fired"
     with Sim_fs.Crash -> ());
    Sim_fs.crash fs ~mode;
    let resumed, recovered_events =
      if Journal.exists ~io journal_path then
        match Recovery.recover ~io ~snapshot:snapshot_path ~journal:journal_path () with
        | Error e -> failwith ("recovery: " ^ e)
        | Ok st ->
            if not (is_prefix st.Recovery.history ~of_:canonical) then
              failwith "recovered history is not a prefix of the canonical history";
            let m = List.length st.Recovery.history in
            (match Server.resume ~io ~metrics:(Metrics.noop ()) config st with
            | Ok s -> (s, m)
            | Error e -> failwith ("resume: " ^ e))
      else
        (* the journal's creation itself was rolled back: no durable state
           ever existed, so the operator starts from scratch *)
        match Server.create ~io ~metrics:(Metrics.noop ()) config with
        | Ok s -> (s, 0)
        | Error e -> failwith ("fresh restart: " ^ e)
    in
    apply_all ?batch ~check:true ~tick resumed (drop recovered_events lines);
    let fp = fingerprint_server resumed in
    Server.close resumed;
    if fp <> baseline_fp then
      failwith
        (Printf.sprintf "final state diverged after %d recovered events:\n  crashed: %s\n  baseline: %s"
           recovered_events fp baseline_fp)
  in
  let failures = ref [] in
  for k = 0 to boundaries - 1 do
    List.iteri
      (fun mode_idx mode ->
        try scenario k mode_idx mode with
        | Failure message ->
            failures := { boundary = k; mode = Sim_fs.mode_name mode; message } :: !failures
        | e ->
            failures :=
              { boundary = k; mode = Sim_fs.mode_name mode; message = Printexc.to_string e }
              :: !failures)
      modes
  done;
  {
    boundaries;
    scenarios = boundaries * List.length modes;
    events;
    failures = List.rev !failures;
  }

let render o =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "crash-point sweep: %d boundaries x %d modes = %d scenarios over %d events: %s"
       o.boundaries (List.length modes) o.scenarios o.events
       (if o.failures = [] then "all recovered bit-identically"
        else Printf.sprintf "%d FAILURES" (List.length o.failures)));
  List.iteri
    (fun i f ->
      if i < 5 then
        Buffer.add_string b
          (Printf.sprintf "\n  boundary %d, mode %s: %s" f.boundary f.mode f.message))
    o.failures;
  if List.length o.failures > 5 then
    Buffer.add_string b (Printf.sprintf "\n  ... and %d more" (List.length o.failures - 5));
  Buffer.contents b
