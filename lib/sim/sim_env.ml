let var = "DVBP_SIM_BUDGET"

let parse s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> n
  | Some n ->
      invalid_arg (Printf.sprintf "%s must be a positive integer (got %d)" var n)
  | None ->
      invalid_arg
        (Printf.sprintf
           "%s must be a positive integer (got %S); unset it for the quick profile"
           var s)

let budget () = match Sys.getenv_opt var with Some s -> parse s | None -> 1
