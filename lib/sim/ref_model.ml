module Journal = Dvbp_service.Journal
module Session = Dvbp_engine.Session
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item

type t = {
  clock : float;
  cost : float;
  bins_opened : int;
  open_bins : (int * int list) list; (* opening order; occupants in placement order *)
}

let initial = { clock = 0.0; cost = 0.0; bins_opened = 0; open_bins = [] }

let accrue m time =
  {
    m with
    cost = m.cost +. ((time -. m.clock) *. float_of_int (List.length m.open_bins));
    clock = time;
  }

let apply m = function
  | Journal.Arrive { time; item_id; bin_id; opened_new_bin; _ } ->
      let m = accrue m time in
      if opened_new_bin then
        {
          m with
          bins_opened = m.bins_opened + 1;
          open_bins = m.open_bins @ [ (bin_id, [ item_id ]) ];
        }
      else
        {
          m with
          open_bins =
            List.map
              (fun (b, occ) -> if b = bin_id then (b, occ @ [ item_id ]) else (b, occ))
              m.open_bins;
        }
  | Journal.Depart { time; item_id } ->
      let m = accrue m time in
      {
        m with
        open_bins =
          List.filter_map
            (fun (b, occ) ->
              if List.mem item_id occ then
                match List.filter (fun i -> i <> item_id) occ with
                | [] -> None
                | occ' -> Some (b, occ')
              else Some (b, occ))
            m.open_bins;
      }

let of_events events = List.fold_left apply initial events

let agrees_with m session =
  let fail fmt = Printf.ksprintf (fun s -> Error ("model mismatch: " ^ s)) fmt in
  if Session.now session <> m.clock then
    fail "clock %.17g, model says %.17g" (Session.now session) m.clock
  else if Session.cost_so_far session <> m.cost then
    fail "cost %.17g, model says %.17g" (Session.cost_so_far session) m.cost
  else if Session.bins_opened session <> m.bins_opened then
    fail "bins_opened %d, model says %d" (Session.bins_opened session) m.bins_opened
  else
    let norm bins =
      List.map (fun (b, occ) -> (b, List.sort Int.compare occ)) bins
    in
    let live =
      List.map
        (fun (b : Bin.t) ->
          (b.Bin.id, List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items))
        (Session.open_bins session)
    in
    if norm live <> norm m.open_bins then
      let render bins =
        String.concat ";"
          (List.map
             (fun (b, occ) ->
               Printf.sprintf "%d{%s}" b
                 (String.concat "," (List.map string_of_int occ)))
             (norm bins))
      in
      fail "open bins [%s], model says [%s]" (render live) (render m.open_bins)
    else Ok ()
