module Journal = Dvbp_service.Journal
module Tenant = Dvbp_service.Tenant
module Session = Dvbp_engine.Session
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item

type tenant_model = {
  clock : float;
  cost : float;
  bins_opened : int;
  open_bins : (int * int list) list; (* opening order; occupants in placement order *)
}

type t = (string * tenant_model) list (* first-appearance order *)

let empty_tenant = { clock = 0.0; cost = 0.0; bins_opened = 0; open_bins = [] }

let initial = []

let accrue m time =
  {
    m with
    cost = m.cost +. ((time -. m.clock) *. float_of_int (List.length m.open_bins));
    clock = time;
  }

let apply_tenant m = function
  | Journal.Arrive { time; item_id; bin_id; opened_new_bin; _ } ->
      let m = accrue m time in
      if opened_new_bin then
        {
          m with
          bins_opened = m.bins_opened + 1;
          open_bins = m.open_bins @ [ (bin_id, [ item_id ]) ];
        }
      else
        {
          m with
          open_bins =
            List.map
              (fun (b, occ) -> if b = bin_id then (b, occ @ [ item_id ]) else (b, occ))
              m.open_bins;
        }
  | Journal.Depart { time; item_id; _ } ->
      let m = accrue m time in
      {
        m with
        open_bins =
          List.filter_map
            (fun (b, occ) ->
              if List.mem item_id occ then
                match List.filter (fun i -> i <> item_id) occ with
                | [] -> None
                | occ' -> Some (b, occ')
              else Some (b, occ))
            m.open_bins;
      }

let find t tenant =
  Option.value (List.assoc_opt tenant t) ~default:empty_tenant

let apply t event =
  let tenant = Journal.event_tenant event in
  if List.mem_assoc tenant t then
    List.map
      (fun (tn, m) -> if tn = tenant then (tn, apply_tenant m event) else (tn, m))
      t
  else t @ [ (tenant, apply_tenant empty_tenant event) ]

let of_events events = List.fold_left apply initial events

let agrees_with_session m tenant session =
  let fail fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "model mismatch (tenant %s): %s" tenant s)) fmt
  in
  if Session.now session <> m.clock then
    fail "clock %.17g, model says %.17g" (Session.now session) m.clock
  else if Session.cost_so_far session <> m.cost then
    fail "cost %.17g, model says %.17g" (Session.cost_so_far session) m.cost
  else if Session.bins_opened session <> m.bins_opened then
    fail "bins_opened %d, model says %d" (Session.bins_opened session) m.bins_opened
  else
    let norm bins =
      List.map (fun (b, occ) -> (b, List.sort Int.compare occ)) bins
    in
    let live =
      List.map
        (fun (b : Bin.t) ->
          (b.Bin.id, List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items))
        (Session.open_bins session)
    in
    if norm live <> norm m.open_bins then
      let render bins =
        String.concat ";"
          (List.map
             (fun (b, occ) ->
               Printf.sprintf "%d{%s}" b
                 (String.concat "," (List.map string_of_int occ)))
             (norm bins))
      in
      fail "open bins [%s], model says [%s]" (render live) (render m.open_bins)
    else Ok ()

let ( let* ) = Result.bind

let agrees_with t sessions =
  (* every tenant the model touched must have a matching session; sessions
     the model never touched must still be empty *)
  let rec check_model = function
    | [] -> Ok ()
    | (tenant, m) :: rest -> (
        match List.assoc_opt tenant sessions with
        | None -> Error (Printf.sprintf "model has tenant %s but no session exists" tenant)
        | Some session ->
            let* () = agrees_with_session m tenant session in
            check_model rest)
  in
  let rec check_sessions = function
    | [] -> Ok ()
    | (tenant, session) :: rest ->
        let m = find t tenant in
        let* () = agrees_with_session m tenant session in
        check_sessions rest
  in
  let* () = check_model t in
  check_sessions sessions
