module Rng = Dvbp_prelude.Rng
module Io = Dvbp_service.Io

exception Crash

type mode =
  | Lose_unsynced
  | Keep_unsynced
  | Torn
  | Directed of {
      keep_rename : dst:string -> bool;
      keep_create : path:string -> bool;
      keep_remove : path:string -> bool;
      tear : path:string -> synced:int -> length:int -> int;
    }

let mode_name = function
  | Lose_unsynced -> "lose"
  | Keep_unsynced -> "keep"
  | Torn -> "torn"
  | Directed _ -> "directed"

(* one inode: [data] is the OS-cache view (what a live process reads),
   [synced] the prefix length guaranteed to survive a power cut *)
type file = { mutable data : string; mutable synced : int }

(* a rename (or creation) is a directory-entry change: durable only after
   fsync_dir on the containing directory, else resolved by the crash mode *)
type pending_rename = {
  pr_src : string;
  pr_dst : string;
  pr_prev_dst : file option;
  pr_moved : file;
}

type handle = { h_path : string; h_file : file; h_buf : Buffer.t; mutable h_open : bool }

type t = {
  rng : Rng.t;
  live : (string, file) Hashtbl.t;
  mutable pending_renames : pending_rename list; (* newest first *)
  mutable pending_creates : (string * file) list;
  mutable pending_removes : (string * file) list; (* newest first *)
  mutable handles : handle list;
  mutable op_count : int;
  mutable planned : int option;
  mutable dead : bool;
}

let create ?(seed = 0) () =
  {
    rng = Rng.create ~seed;
    live = Hashtbl.create 16;
    pending_renames = [];
    pending_creates = [];
    pending_removes = [];
    handles = [];
    op_count = 0;
    planned = None;
    dead = false;
  }

let ops t = t.op_count
let plan_crash t ~at_op = t.planned <- Some at_op

let ensure_alive t = if t.dead then raise Crash

(* Every mutating operation is an I/O boundary: a planned crash fires
   *before* the operation takes effect, and once crashed every further
   operation raises too (the process is dead until [crash] reboots). Reads
   are not boundaries — crashing before a read is indistinguishable from
   crashing before the next write. *)
let boundary t =
  ensure_alive t;
  (match t.planned with
  | Some k when t.op_count >= k ->
      t.dead <- true;
      raise Crash
  | Some _ | None -> ());
  t.op_count <- t.op_count + 1

let dirname = Filename.dirname

let open_out_sim t ~append path =
  boundary t;
  let file =
    match Hashtbl.find_opt t.live path with
    | Some f ->
        if not append then begin
          (* truncation simplification: the old contents are gone even at a
             crash (service code only ever truncates fresh ".tmp" files,
             whose stale contents are never read back) *)
          f.data <- "";
          f.synced <- 0
        end;
        f
    | None ->
        let f = { data = ""; synced = 0 } in
        Hashtbl.replace t.live path f;
        t.pending_creates <- (path, f) :: t.pending_creates;
        f
  in
  let h = { h_path = path; h_file = file; h_buf = Buffer.create 256; h_open = true } in
  t.handles <- h :: t.handles;
  let check_h () =
    if not h.h_open then
      failwith (Printf.sprintf "sim_fs: handle on %s used after close or crash" h.h_path)
  in
  let do_flush () =
    file.data <- file.data ^ Buffer.contents h.h_buf;
    Buffer.clear h.h_buf
  in
  {
    Io.write =
      (fun s ->
        boundary t;
        check_h ();
        Buffer.add_string h.h_buf s);
    flush =
      (fun () ->
        boundary t;
        check_h ();
        do_flush ());
    fsync =
      (fun () ->
        boundary t;
        check_h ();
        do_flush ();
        file.synced <- String.length file.data);
    close =
      (fun () ->
        boundary t;
        check_h ();
        do_flush ();
        h.h_open <- false);
  }

let io t =
  {
    Io.read_file =
      (fun path ->
        ensure_alive t;
        match Hashtbl.find_opt t.live path with
        | Some f -> Ok f.data
        | None -> Error (Printf.sprintf "%s: no such file (simulated)" path));
    file_exists =
      (fun path ->
        ensure_alive t;
        Hashtbl.mem t.live path);
    open_out = (fun ~append path -> open_out_sim t ~append path);
    rename =
      (fun ~src ~dst ->
        boundary t;
        match Hashtbl.find_opt t.live src with
        | None -> failwith (Printf.sprintf "sim_fs: rename of missing file %s" src)
        | Some f ->
            let prev = Hashtbl.find_opt t.live dst in
            Hashtbl.remove t.live src;
            Hashtbl.replace t.live dst f;
            t.pending_renames <-
              { pr_src = src; pr_dst = dst; pr_prev_dst = prev; pr_moved = f }
              :: t.pending_renames);
    fsync_dir =
      (fun dir ->
        boundary t;
        t.pending_renames <-
          List.filter (fun pr -> dirname pr.pr_dst <> dir) t.pending_renames;
        t.pending_creates <-
          List.filter (fun (path, _) -> dirname path <> dir) t.pending_creates;
        t.pending_removes <-
          List.filter (fun (path, _) -> dirname path <> dir) t.pending_removes);
    remove =
      (fun path ->
        boundary t;
        (* an unlink is a directory-entry change like a rename: durable only
           after fsync_dir, else the crash mode decides whether the entry is
           really gone *)
        match Hashtbl.find_opt t.live path with
        | None -> ()
        | Some f ->
            Hashtbl.remove t.live path;
            t.pending_removes <- (path, f) :: t.pending_removes);
    list_dir =
      (fun dir ->
        ensure_alive t;
        Hashtbl.fold
          (fun path _ acc ->
            if dirname path = dir then Filename.basename path :: acc else acc)
          t.live []
        |> List.sort String.compare);
  }

let crash t ~mode =
  (* reboot: the dead process's buffers vanish, un-dirsynced directory
     entries and unsynced bytes are resolved by [mode] *)
  t.dead <- false;
  t.planned <- None;
  List.iter
    (fun h ->
      h.h_open <- false;
      Buffer.clear h.h_buf)
    t.handles;
  t.handles <- [];
  (* removes first: a rolled-back unlink resurrects the file — unless a
     newer entry occupies the path (crashed unlink-then-recreate leaves the
     old or the new entry, never both). Resurrection precedes the create
     pass so a file whose creation also rolls back is dropped again below. *)
  List.iter
    (fun (path, f) ->
      let keep =
        match mode with
        | Lose_unsynced -> false
        | Keep_unsynced -> true
        | Torn -> Rng.bool t.rng
        | Directed d -> d.keep_remove ~path
      in
      if (not keep) && not (Hashtbl.mem t.live path) then Hashtbl.replace t.live path f)
    t.pending_removes;
  t.pending_removes <- [];
  (* directory entries: renames newest first, so shadowed renames only roll
     back if their destination still points at the file they moved *)
  let kept_renames =
    List.filter
      (fun pr ->
        let keep =
          match mode with
          | Lose_unsynced -> false
          | Keep_unsynced -> true
          | Torn -> Rng.bool t.rng
          | Directed d -> d.keep_rename ~dst:pr.pr_dst
        in
        (if not keep then
           match Hashtbl.find_opt t.live pr.pr_dst with
           | Some f when f == pr.pr_moved ->
               (match pr.pr_prev_dst with
               | Some prev -> Hashtbl.replace t.live pr.pr_dst prev
               | None -> Hashtbl.remove t.live pr.pr_dst);
               Hashtbl.replace t.live pr.pr_src pr.pr_moved
           | Some _ | None -> ());
        keep)
      t.pending_renames
  in
  t.pending_renames <- [];
  List.iter
    (fun (path, f) ->
      let keep =
        match mode with
        | Lose_unsynced -> false
        | Keep_unsynced -> true
        | Torn -> Rng.bool t.rng
        | Directed d -> d.keep_create ~path
      in
      if not keep then
        (* the inode never became durable: drop its directory entries. An
           entry installed over an existing file by a kept rename falls back
           to the file it replaced — a crashed rename(2) leaves the old or
           the new entry, never a dangling one — so atomic replacement of a
           durable file surfaces old or new content, never neither. *)
        Hashtbl.fold (fun p f' acc -> if f' == f then p :: acc else acc) t.live []
        |> List.iter (fun p ->
               match
                 List.find_opt
                   (fun pr -> pr.pr_dst = p && pr.pr_moved == f)
                   kept_renames
               with
               | Some { pr_prev_dst = Some prev; _ } -> Hashtbl.replace t.live p prev
               | Some { pr_prev_dst = None; _ } | None -> Hashtbl.remove t.live p))
    t.pending_creates;
  t.pending_creates <- [];
  (* contents: the synced prefix survives; the unsynced suffix is torn at a
     byte offset chosen by the mode *)
  Hashtbl.iter
    (fun path f ->
      let len = String.length f.data in
      let durable =
        match mode with
        | Lose_unsynced -> f.synced
        | Keep_unsynced -> len
        | Torn -> f.synced + Rng.int t.rng (len - f.synced + 1)
        | Directed d -> d.tear ~path ~synced:f.synced ~length:len
      in
      let durable = if durable < f.synced then f.synced else if durable > len then len else durable in
      f.data <- String.sub f.data 0 durable;
      f.synced <- durable)
    t.live

let exists t path = Hashtbl.mem t.live path

let contents t path =
  match Hashtbl.find_opt t.live path with Some f -> Some f.data | None -> None

let dump t =
  Hashtbl.fold (fun path f acc -> (path, f.data) :: acc) t.live []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
