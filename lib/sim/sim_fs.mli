(** Deterministic in-memory filesystem with fault injection.

    Implements the service layer's {!Dvbp_service.Io} contract entirely in
    memory, tracking — per file — the OS-cache view and the fsynced durable
    prefix, and — per directory — which entry changes (creations, renames)
    have been made durable by [fsync_dir]. A seeded {!Dvbp_prelude.Rng}
    drives every nondeterministic fault decision, so a failing schedule
    replays exactly from its seed.

    {b Fault model.} A crash may be planted at any I/O boundary
    ({!plan_crash}): the scheduled operation raises {!Crash} before taking
    effect and every later operation raises too (the process is dead).
    {!crash} then reboots the filesystem into the post-power-cut state:

    - bytes buffered in a handle but never flushed vanish;
    - bytes flushed but not fsynced are {e torn} at a byte offset chosen by
      the crash mode — anywhere between the synced prefix and the full
      cache view, so a record can be cut mid-line;
    - renames, creations and removals not yet covered by a directory fsync
      are kept or rolled back per the mode — rolling back a tmp-file rename
      restores the old destination {e and} resurrects the [.tmp]; rolling
      back a creation drops the inode's directory entries, except that an
      entry a {e kept} rename installed over an existing file falls back to
      the file it replaced (a crashed [rename(2)] leaves the old or the new
      entry, never a dangling one); rolling back an unlink resurrects the
      removed file — the window the segmented journal's compaction (retire
      = unlink sealed segments) must survive.

    Simplification: truncating an existing file discards its old contents
    even at a crash. Service code only truncates fresh [.tmp] files whose
    stale contents are never read back, so no covered crash window is lost.

    The three blanket modes bracket the outcome space ([Lose_unsynced] and
    [Keep_unsynced] are the two extremes, [Torn] samples the middle);
    [Directed] lets a test force one specific combination — e.g. "keep the
    journal truncation's rename but roll back the snapshot's" to exhibit
    the crash-after-rename-before-dirsync window. *)

exception Crash

type mode =
  | Lose_unsynced  (** only fsynced bytes/dirsynced entries survive *)
  | Keep_unsynced  (** everything flushed survives (fsync was "about to win") *)
  | Torn  (** rng-chosen tear offsets and entry coin-flips *)
  | Directed of {
      keep_rename : dst:string -> bool;
      keep_create : path:string -> bool;
      keep_remove : path:string -> bool;
          (** [true] keeps the unlink (file stays gone); [false] rolls it
              back, resurrecting the file unless the path was re-created *)
      tear : path:string -> synced:int -> length:int -> int;
          (** returns the surviving length, clamped to [[synced, length]] *)
    }

val mode_name : mode -> string

type t

val create : ?seed:int -> unit -> t
(** Fresh empty filesystem; [seed] (default 0) seeds the fault rng. *)

val io : t -> Dvbp_service.Io.t
(** The backend view: hand this to [Journal]/[Snapshot]/[Recovery]/[Server]. *)

val ops : t -> int
(** Mutating I/O operations performed so far (the boundary counter). *)

val plan_crash : t -> at_op:int -> unit
(** Arrange for boundary [at_op] (0-based, counted by {!ops}) to raise
    {!Crash} instead of executing. *)

val crash : t -> mode:mode -> unit
(** Apply power-cut semantics (see the fault model above) and reboot: the
    filesystem is alive again, holding exactly the durable state. All open
    handles are invalidated. *)

val exists : t -> string -> bool
val contents : t -> string -> string option

val dump : t -> (string * string) list
(** Every live file with its current (cache-view) contents, sorted by path. *)
