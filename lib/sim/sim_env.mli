(** [DVBP_SIM_BUDGET]: scale factor for the simulation-testing suites.

    [1] (the default) is the quick CI profile; larger values multiply the
    crash-point sweep's workload size and the state-machine test's case
    count for longer local soaks. Validated the same way as [DVBP_JOBS]: a
    non-integer or non-positive value is a clear [Invalid_argument], never
    a silent fallback. *)

val var : string

val budget : unit -> int
(** @raise Invalid_argument if the variable is set but invalid. *)

val parse : string -> int
(** Exposed for the validation tests. *)
