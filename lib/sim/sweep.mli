(** Exhaustive crash-point sweep over the serve → journal → snapshot path.

    One uninterrupted run of a canonical workload over {!Sim_fs} fixes the
    number of I/O boundaries [B], the canonical event history, and the
    reference final state ({!Dvbp_engine.Session.fingerprint}). Then, for
    {e every} boundary [k < B] and every blanket crash mode (lose-unsynced,
    keep-unsynced, torn), the same run is repeated with a crash planted at
    [k]; after the power cut the surviving files are recovered, the
    remainder of the workload is replayed through a resumed server, and the
    final fingerprint must equal the reference bit for bit. Along the way
    the recovered history must be a prefix of the canonical one, and every
    replayed request must be accepted.

    A rolled-back journal creation (nothing durable ever existed) is
    handled the way an operator would: start a fresh server and replay the
    whole workload.

    Failures are collected, not thrown — the callers assert [failures = []]
    (or, for the sensitivity smoke with a sabotaged backend, that failures
    are present). *)

type failure = { boundary : int; mode : string; message : string }

type outcome = {
  boundaries : int;  (** I/O boundaries in the uninterrupted run *)
  scenarios : int;  (** boundaries x crash modes *)
  events : int;  (** events in the canonical history *)
  failures : failure list;
}

val run :
  ?policy:string ->
  ?seed:int ->
  ?n:int ->
  ?fsync_every:int ->
  ?snapshot_every:int ->
  ?snapshot:bool ->
  ?segment_bytes:int ->
  ?retain_segments:int ->
  ?wrap:(Dvbp_service.Io.t -> Dvbp_service.Io.t) ->
  ?batch:int ->
  ?tenants:int ->
  ?jobs:int ->
  unit ->
  outcome
(** Defaults: [policy = "mtf"], [seed = 11], [n = 12] items, [fsync_every =
    3], [snapshot_every = 5] (small batches so fsync batching and journal
    truncation both land inside the sweep). [wrap] decorates the simulated
    backend — the sensitivity smoke uses it to sabotage the torn-record
    guard and prove the sweep notices.

    [segment_bytes] shrinks the journal's segment roll threshold so seals
    land inside the sweep; [retain_segments] arms online compaction, which
    the sweep then steps after every line (or chunk) the way the event
    loop steps it per tick — every segment open/seal/rename/retire/dir-sync
    boundary becomes a swept crash point. [snapshot = false] strips the
    snapshot path entirely (and [snapshot_every] with it): recovery then
    leans on the journal chain alone, which the seal-sensitivity smoke
    uses to prove a defeated seal check is caught.

    [batch = Some b] drives the {b group-commit} path instead of the
    streaming one: lines go through {!Dvbp_service.Server.handle_batch},
    [b] per call, so every crash boundary inside
    {!Dvbp_service.Journal.append_batch}'s write+fsync is swept too — a
    crash may lose only whole un-fsynced batch suffixes. [tenants > 1]
    round-robins the workload across that many tenants with the
    tenant-prefixed grammar (each tenant an isolated session); [jobs]
    shards the batch path over domains — final states must stay
    bit-identical to [jobs = 1]. *)

val render : outcome -> string
(** One-line summary plus the first few failures. *)
