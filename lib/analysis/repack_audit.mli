(** Post-hoc verification of a repacking run's migration ledger.

    The repack engine promises a hard per-event budget and meaningful
    moves (an item never "migrates" to the bin it is already in). This
    module re-checks both promises from the {e ledger alone} — grouped
    by the ledger's event ordinal, so two events sharing a timestamp are
    still audited separately — which is how the property tests certify
    the engine without trusting its internal counters. *)

type report = {
  events : int;  (** distinct events that committed migrations *)
  max_per_event : int;  (** largest migration batch one event committed *)
  drains : int;  (** moves with reason {!Dvbp_engine.Repack.Drain} *)
  make_rooms : int;  (** moves with reason {!Dvbp_engine.Repack.Make_room} *)
  self_moves : int;  (** moves with [from_bin = to_bin] — always a bug *)
  over_budget_events : int;  (** events exceeding [config.budget] — always a bug *)
}

val audit : config:Dvbp_engine.Repack.config -> Dvbp_engine.Repack.migration list -> report

val ok : report -> bool
(** No self-moves and no over-budget events. *)

val render : report -> string
(** One line, ending in [[ok]] or a [[VIOLATION: ...]] summary. *)
