module Repack = Dvbp_engine.Repack

type report = {
  events : int;
  max_per_event : int;
  drains : int;
  make_rooms : int;
  self_moves : int;
  over_budget_events : int;
}

let audit ~config (ledger : Repack.migration list) =
  let events = Hashtbl.create 32 in
  let drains = ref 0 and make_rooms = ref 0 and self_moves = ref 0 in
  List.iter
    (fun (m : Repack.migration) ->
      let key = m.Repack.event in
      Hashtbl.replace events key (1 + Option.value ~default:0 (Hashtbl.find_opt events key));
      (match m.Repack.reason with
      | Repack.Drain -> incr drains
      | Repack.Make_room -> incr make_rooms);
      if m.Repack.from_bin = m.Repack.to_bin then incr self_moves)
    ledger;
  let max_per_event = Hashtbl.fold (fun _ n acc -> Int.max n acc) events 0 in
  let over_budget_events =
    Hashtbl.fold
      (fun _ n acc -> if n > config.Repack.budget then acc + 1 else acc)
      events 0
  in
  {
    events = Hashtbl.length events;
    max_per_event;
    drains = !drains;
    make_rooms = !make_rooms;
    self_moves = !self_moves;
    over_budget_events;
  }

let ok r = r.self_moves = 0 && r.over_budget_events = 0

let render r =
  Printf.sprintf
    "repack audit: %d migration events, max %d migrations/event, %d drain + %d make-room moves%s"
    r.events r.max_per_event r.drains r.make_rooms
    (if ok r then " [ok]"
     else
       Printf.sprintf " [VIOLATION: %d self-moves, %d over-budget events]"
         r.self_moves r.over_budget_events)
