module Vec = Dvbp_vec.Vec
module Core = Dvbp_core
module Item = Core.Item
module Instance = Core.Instance
module Load_measure = Core.Load_measure
module Trace = Dvbp_engine.Trace
module Dynarray = Dvbp_prelude.Dynarray

type semantics =
  | First_fit
  | Last_fit
  | Best_fit of Load_measure.t
  | Worst_fit of Load_measure.t
  | Move_to_front
  | Next_fit

let semantics_of_name = function
  | "ff" -> Some First_fit
  | "lf" -> Some Last_fit
  | "bf" -> Some (Best_fit Load_measure.Linf)
  | "wf" -> Some (Worst_fit Load_measure.Linf)
  | "mtf" -> Some Move_to_front
  | "nf" -> Some Next_fit
  | _ -> None

type violation = {
  time : float;
  item_id : int;
  chosen_bin : int option;
  expected_bin : int option;
  reason : string;
}

(* replayed bin state, maintained purely from the trace *)
type rbin = {
  id : int;
  mutable load : Vec.t;
  mutable last_used : int;
  mutable received : int;  (* placements so far; 0 = freshly opened *)
  mutable closed : bool;
}

let check semantics (instance : Instance.t) trace =
  let cap = instance.Instance.capacity in
  let item_size =
    let table = Hashtbl.create 64 in
    List.iter
      (fun (r : Item.t) -> Hashtbl.replace table r.Item.id r.Item.size)
      instance.Instance.items;
    fun id -> Hashtbl.find table id
  in
  let bins : (int, rbin) Hashtbl.t = Hashtbl.create 64 in
  (* open bins in opening order — the same candidate view the registry gives
     policies: closed bins are tombstones, compacted when they dominate *)
  let dummy =
    { id = -1; load = Vec.zero ~dim:(Vec.dim cap); last_used = 0; received = 0;
      closed = true }
  in
  let order : rbin Dynarray.t = Dynarray.create ~dummy () in
  let live = ref 0 and dead = ref 0 in
  let touch = ref 0 in
  let current = ref None (* Next Fit's current bin id *) in
  let violations = ref [] in
  let report v = violations := v :: !violations in

  let expected_existing_bin size =
    (* candidates: open bins that have already received an item, ascending;
       scanned without building a list, ties keeping the earliest-opened *)
    let admissible b =
      (not b.closed) && b.received > 0 && Vec.fits ~cap ~load:b.load size
    in
    let best_by better score =
      let best = ref None and best_score = ref 0.0 in
      Dynarray.iter order (fun b ->
          if admissible b then
            let v = score b in
            match !best with
            | Some _ when not (better v !best_score) -> ()
            | _ ->
                best := Some b.id;
                best_score := v);
      !best
    in
    match semantics with
    | First_fit ->
        Option.map (fun b -> b.id) (Dynarray.find order admissible)
    | Last_fit -> best_by (fun v best -> v > best) (fun b -> float_of_int b.id)
    | Best_fit m ->
        best_by (fun v best -> v > best) (fun b -> Load_measure.apply m ~cap b.load)
    | Worst_fit m ->
        best_by (fun v best -> v < best) (fun b -> Load_measure.apply m ~cap b.load)
    | Move_to_front ->
        best_by (fun v best -> v > best) (fun b -> float_of_int b.last_used)
    | Next_fit -> (
        match !current with
        | Some id -> (
            match Hashtbl.find_opt bins id with
            | Some b when (not b.closed) && Vec.fits ~cap ~load:b.load size ->
                Some id
            | Some _ | None -> None)
        | None -> None)
  in

  List.iter
    (fun event ->
      match event with
      | Trace.Opened { bin_id; _ } ->
          incr touch;
          let b =
            { id = bin_id; load = Vec.zero ~dim:(Vec.dim cap);
              last_used = !touch; received = 0; closed = false }
          in
          Hashtbl.replace bins bin_id b;
          Dynarray.push order b;
          incr live
      | Trace.Placed { time; item_id; bin_id } -> (
          let size = item_size item_id in
          let b = Hashtbl.find bins bin_id in
          let fresh = b.received = 0 in
          let expected = expected_existing_bin size in
          (match (expected, fresh) with
          | Some want, true ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = None;
                  expected_bin = Some want;
                  reason = "opened a fresh bin although an admissible bin fits";
                }
          | Some want, false when want <> bin_id ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = Some bin_id;
                  expected_bin = Some want;
                  reason = "placed in the wrong bin for these semantics";
                }
          | Some _, false -> ()
          | None, true -> ()
          | None, false ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = Some bin_id;
                  expected_bin = None;
                  reason = "reused a bin although a fresh bin was required";
                });
          incr touch;
          b.load <- Vec.add b.load size;
          b.last_used <- !touch;
          b.received <- b.received + 1;
          match semantics with Next_fit -> current := Some bin_id | _ -> ())
      | Trace.Departed { item_id; bin_id; _ } ->
          let b = Hashtbl.find bins bin_id in
          b.load <- Vec.sub b.load (item_size item_id)
      | Trace.Closed { bin_id; _ } ->
          let b = Hashtbl.find bins bin_id in
          b.closed <- true;
          Hashtbl.remove bins bin_id;
          decr live;
          incr dead;
          if !dead > !live then begin
            Dynarray.filter_in_place order (fun b -> not b.closed);
            dead := 0
          end;
          if !current = Some bin_id then current := None)
    (Trace.events trace);
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let pp_violation ppf v =
  let pp_bin ppf = function
    | None -> Format.fprintf ppf "fresh"
    | Some id -> Format.fprintf ppf "bin %d" id
  in
  Format.fprintf ppf "t=%g item %d: chose %a, expected %a (%s)" v.time v.item_id
    pp_bin v.chosen_bin pp_bin v.expected_bin v.reason
