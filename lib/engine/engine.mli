(** Discrete-event simulator for online MinUsageTime DVBP.

    Drives a {!Dvbp_core.Policy.t} over an instance exactly per the paper's
    model (§2.1):
    - items are presented in arrival order (ties broken by sequence id);
    - placement is immediate and irrevocable;
    - activity intervals are half-open, so departures at time [t] free their
      capacity {e before} arrivals at [t] are served;
    - a bin closes when its last item departs and is never reused.

    The simulator knows all departure times (it plays the role of the world);
    the policy sees them only when [clairvoyant] is set. *)

exception Policy_error of string
(** Raised when a policy misbehaves: selects a bin the item does not fit in,
    selects a closed bin, or — for policies declaring [strict_any_fit] —
    opens a fresh bin while some open bin fits. *)

type run = {
  packing : Dvbp_core.Packing.t;
  trace : Trace.t;
  bins_opened : int;
  max_open_bins : int;  (** peak number of simultaneously open bins *)
}

val run :
  ?clairvoyant:bool ->
  ?departure_oracle:(Dvbp_core.Item.t -> float option) ->
  ?record_trace:bool ->
  policy:Dvbp_core.Policy.t ->
  Dvbp_core.Instance.t ->
  run
(** Simulates the policy on the instance. [clairvoyant] (default [false])
    exposes exact departure times to the policy; [departure_oracle]
    overrides it with an arbitrary per-item hint (e.g. a noisy machine-
    learned prediction, the §8 "additional information" setting) — returned
    hints must be strictly after the item's arrival. [record_trace]
    (default [true]) can be disabled on hot paths that never read
    [run.trace]; the packing and counters are unaffected. The returned
    packing always passes {!Dvbp_core.Packing.validate}.
    @raise Policy_error on policy misbehaviour. *)

val cost : run -> float
(** Shorthand for [Packing.cost run.packing]. *)
