(** Budgeted-migration repacking: the algorithm family beyond Any Fit.

    Theorem 5 of Murhekar et al. caps {e every} Any Fit policy at a
    competitive ratio of at least [(µ+1)d] — the bound is a property of
    never touching placed items, not of any particular selection rule.
    Real clusters escape it with {e live migration}: on an arrival or
    departure the scheduler may move a few running jobs between servers.
    This module implements that family with a hard per-event budget: on
    each event at most [k] items migrate ([k = 0] degenerates to the
    plain engine, bit-identically in cost).

    Two concrete strategies are provided (and composable):

    {ul
    {- {!Empty_on_departure} ({e drain}): after a departure, find the
       open bin with the fewest active items (ties: smallest total load,
       then the youngest bin). If its items number at most the remaining
       budget and {e every one} of them fits elsewhere — each into the
       most-loaded other bin that fits it, Best-Fit style — migrate them
       all and close the bin. The relocation plan is executed
       transactionally: if any item has no target the moves already made
       are rolled back and the bin stays open.}
    {- {!Consolidate_on_arrival} ({e make room}): when the base policy
       answers {!Dvbp_core.Policy.Fresh} (no open bin fits), try each
       open bin in opening order and attempt to evict up to [k] of its
       items — largest first — into other bins until the arrival fits;
       the first bin where the plan succeeds receives the item and no
       fresh bin is opened. Failed attempts are rolled back.}}

    Candidate scans reuse the {!Dvbp_core.Bin_registry} fit kernel
    (SWAR word-at-a-time when eligible), so a migration target search
    costs the same as a Best Fit select.

    {b Base policies.} Migration is only defined for bases whose
    state is entirely {e in the bins} — the strict Any Fit policies
    (ff, lf, bf, wf, mtf, rf). Policies that keep private bin lists
    (nf, next-k-fit, harmonic, hff) have no defined semantics when a
    bin they track is drained away; {!create} rejects them. Note that
    migrations update the touched bins' recency, so an mtf base sees
    migration targets as recently used — that is part of the policy
    family's definition here, not an artefact.

    {b Determinism and replay.} Repacking adds no randomness: victim
    choice, eviction order and target choice are all total orders over
    bin/item ids, loads and the registry's opening order. A repack run
    is a pure function of the event sequence, so migrations are {e not}
    journaled by the service — they are re-derived by replaying the
    journaled arrivals/departures through the same configuration
    (DESIGN.md §13.3 states the argument; the jobs-determinism test
    pins it). *)

exception Repack_error of string
(** Raised on invalid events (same conditions as
    {!Session.Session_error}) and on internal invariant violations. *)

(** {1 Configuration} *)

type strategy =
  | Empty_on_departure  (** drain the lightest bin after departures *)
  | Consolidate_on_arrival  (** evict to make room instead of opening *)
  | Combined  (** both; the default *)

val strategy_name : strategy -> string
(** ["el"], ["cons"], ["both"]. *)

val strategy_of_name : string -> (strategy, string) result
(** Parses [strategy_name] output; the error lists the valid names. *)

type config = {
  budget : int;  (** max migrations per event, [0..max_budget] *)
  strategy : strategy;
}

val max_budget : int
(** [64] — a sanity cap: per-event migration beyond this is outside any
    realistic live-migration regime and only hides quadratic blowups. *)

val config : budget:int -> ?strategy:strategy -> unit -> config
(** Validating constructor ([strategy] defaults to {!Combined}).
    @raise Invalid_argument when [budget] is outside [0..max_budget],
    naming the valid range. *)

val default_config : config
(** [{ budget = 2; strategy = Combined }]. *)

val supported_base : Dvbp_core.Policy.t -> bool
(** Whether migration is defined under this base policy
    (its {!Dvbp_core.Policy.t.strict_any_fit} flag). *)

val supported_base_names : string
(** ["ff, lf, bf, wf, mtf, rf"] — for error messages. *)

(** {1 Migration ledger} *)

type reason =
  | Drain  (** the source bin was being emptied after a departure *)
  | Make_room  (** evicted so an arrival could consolidate *)

type migration = {
  time : float;
  event : int;
      (** ordinal of the triggering event in the session (arrivals and
          departures both count) — migrations sharing it were committed
          by one event, so per-event budget compliance is auditable even
          when distinct events share a timestamp *)
  item_id : int;
  from_bin : int;
  to_bin : int;
  reason : reason;
}

type stats = {
  migrations : int;  (** items moved (committed plans only) *)
  migration_events : int;  (** events on which >= 1 migration committed *)
  drained_bins : int;  (** bins closed early by the drain strategy *)
  consolidations : int;  (** arrivals placed by eviction instead of a fresh bin *)
  budget_exhausted : int;
      (** opportunities declined only because the budget was too small *)
}

(** {1 Incremental sessions} *)

type t

type placement = { item_id : int; bin_id : int; opened_new_bin : bool }

val create :
  ?record_ledger:bool ->
  ?expected_items:int ->
  ?fit_kernel:[ `Auto | `Scalar ] ->
  ?observe_migration:(seconds:float -> unit) ->
  ?clock:(unit -> float) ->
  capacity:Dvbp_vec.Vec.t ->
  policy:Dvbp_core.Policy.t ->
  config:config ->
  unit ->
  t
(** A fresh repacking session. [record_ledger] (default [true]) keeps
    the per-run {!migration} list; sweeps turn it off. When both
    [observe_migration] and [clock] are given, each committed
    migration's wall time is reported (the metrics layer feeds these
    into the [dvbp_repack_migration_seconds] histogram).
    @raise Invalid_argument when the policy is not a supported base
    (the message names {!supported_base_names}) or the budget is out of
    range. *)

val arrive :
  t -> at:float -> ?id:int -> size:Dvbp_vec.Vec.t -> unit -> placement
(** Processes one arrival (validations as in {!Session.arrive}); may
    commit up to [budget] migrations first under
    {!Consolidate_on_arrival}. @raise Repack_error on invalid events —
    the session is left untouched. *)

val depart : t -> at:float -> item_id:int -> unit
(** Processes one departure; may then drain a bin (up to [budget]
    migrations) under {!Empty_on_departure}. @raise Repack_error on
    invalid events. *)

val finish : t -> at:float -> unit
(** Departs every still-active item at [at] ({e without} triggering
    drains — everything is leaving anyway) and seals the session. *)

(** {1 Observers} *)

val now : t -> float
val active_items : t -> int
val bins_opened : t -> int
val max_open_bins : t -> int
val open_bin_count : t -> int

val cost : t -> float
(** Total usage time over all bins, open bins charged up to {!now}.
    Summed exactly as {!Dvbp_core.Packing.cost} does (Kahan, ascending
    bin id), so a [budget = 0] run's final cost is bit-identical to the
    plain engine's. *)

val stats : t -> stats

val ledger : t -> migration list
(** Committed migrations in chronological order ([[]] when
    [record_ledger] was off). *)

val fingerprint : t -> string
(** One-line digest of clock, cost, counters and open-bin contents —
    the determinism tests' comparison key. *)

(** {1 Batch driver} *)

type run = {
  cost : float;
  bins_opened : int;
  max_open_bins : int;
  stats : stats;
  ledger : migration list;
}

val run :
  ?config:config ->
  ?record_ledger:bool ->
  ?fit_kernel:[ `Auto | `Scalar ] ->
  policy:Dvbp_core.Policy.t ->
  Dvbp_core.Instance.t ->
  run
(** Replays the instance through a repacking session in the engine's
    event order (departures before arrivals at equal times, ids break
    ties). [config] defaults to {!default_config}. *)

(** {1 Competitor specs}

    Sweeps name repacking competitors with a compact spec,
    [<base>+<strategy><budget>]: ["ff+el2"] is First Fit with
    drain-on-departure and budget 2, ["bf+both8"] Best Fit with both
    strategies and budget 8. A bare policy name has no repacking. *)

val spec_of_string : string -> (string * config option, string) result
(** Splits a competitor spec into the base policy name and the
    repacking configuration. The base name is {e not} resolved here —
    the caller looks it up — but a present repack suffix is fully
    validated (strategy name, budget range) with messages naming the
    valid forms. *)

val spec_to_string : base:string -> config -> string
