module Vec = Dvbp_vec.Vec
module Int_table = Dvbp_prelude.Int_table
module Floatx = Dvbp_prelude.Floatx
module Core = Dvbp_core
module Bin = Core.Bin
module Bin_registry = Core.Bin_registry
module Item = Core.Item
module Policy = Core.Policy
module Load_measure = Core.Load_measure

exception Repack_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Repack_error s)) fmt

type strategy = Empty_on_departure | Consolidate_on_arrival | Combined

let strategy_name = function
  | Empty_on_departure -> "el"
  | Consolidate_on_arrival -> "cons"
  | Combined -> "both"

let strategy_of_name = function
  | "el" -> Ok Empty_on_departure
  | "cons" -> Ok Consolidate_on_arrival
  | "both" -> Ok Combined
  | s -> Error (Printf.sprintf "unknown repack strategy %S (valid: el, cons, both)" s)

type config = { budget : int; strategy : strategy }

let max_budget = 64

let config ~budget ?(strategy = Combined) () =
  if budget < 0 || budget > max_budget then
    invalid_arg
      (Printf.sprintf "Repack.config: budget must be in 0..%d (got %d)" max_budget budget);
  { budget; strategy }

let default_config = { budget = 2; strategy = Combined }

let supported_base (p : Policy.t) = p.Policy.strict_any_fit
let supported_base_names = "ff, lf, bf, wf, mtf, rf"

let drains = function Empty_on_departure | Combined -> true | Consolidate_on_arrival -> false
let consolidates = function Consolidate_on_arrival | Combined -> true | Empty_on_departure -> false

type reason = Drain | Make_room

type migration = {
  time : float;
  event : int;
  item_id : int;
  from_bin : int;
  to_bin : int;
  reason : reason;
}

type stats = {
  migrations : int;
  migration_events : int;
  drained_bins : int;
  consolidations : int;
  budget_exhausted : int;
}

type item_state = { item : Item.t; mutable bin : Bin.t; mutable departed_at : float option }

type clock = { mutable time : float }

type t = {
  capacity : Vec.t;
  policy : Policy.t;
  cfg : config;
  record_ledger : bool;
  observe_migration : (seconds:float -> unit) option;
  wall : (unit -> float) option;
  clock : clock;
  mutable started : bool;
  mutable events_seen : int;
  mutable next_item : int;
  mutable next_bin : int;
  mutable touch : int;
  reg : Bin_registry.t;
  mutable all_bins_desc : Bin.t list;
  items : item_state Int_table.t;
  mutable max_open : int;
  mutable finished : bool;
  mutable ledger_rev : migration list;
  mutable stat_migrations : int;
  mutable stat_migration_events : int;
  mutable stat_drained : int;
  mutable stat_consolidations : int;
  mutable stat_budget_exhausted : int;
}

type placement = { item_id : int; bin_id : int; opened_new_bin : bool }

let create ?(record_ledger = true) ?(expected_items = 64) ?(fit_kernel = `Auto)
    ?observe_migration ?clock:wall ~capacity ~policy ~config:cfg () =
  if cfg.budget < 0 || cfg.budget > max_budget then
    invalid_arg
      (Printf.sprintf "Repack.create: budget must be in 0..%d (got %d)" max_budget cfg.budget);
  if not (supported_base policy) then
    invalid_arg
      (Printf.sprintf
         "Repack.create: policy %s does not support migration (it keeps private bin state); supported bases: %s"
         policy.Policy.name supported_base_names);
  let dummy_state =
    {
      item = Item.make ~id:0 ~arrival:0.0 ~departure:1.0 ~size:capacity;
      bin = Bin.create ~id:(-1) ~capacity ~now:0.0 ~touch:0;
      departed_at = None;
    }
  in
  {
    capacity;
    policy;
    cfg;
    record_ledger;
    observe_migration;
    wall;
    clock = { time = 0.0 };
    started = false;
    events_seen = 0;
    next_item = 0;
    next_bin = 0;
    touch = 0;
    reg = Bin_registry.create ~kernel:fit_kernel ~capacity ();
    all_bins_desc = [];
    items = Int_table.create ~expected:expected_items ~dummy:dummy_state ();
    max_open = 0;
    finished = false;
    ledger_rev = [];
    stat_migrations = 0;
    stat_migration_events = 0;
    stat_drained = 0;
    stat_consolidations = 0;
    stat_budget_exhausted = 0;
  }

let now t = t.clock.time

let check_advance t at ~what =
  if t.finished then error "%s at %g: repack session already finished" what at;
  if not (Float.is_finite at) then error "%s: non-finite timestamp %g" what at;
  if t.started && at < t.clock.time then
    error "%s: time went backwards: %g after %g" what at t.clock.time

let commit_advance t at =
  t.clock.time <- at;
  t.events_seen <- t.events_seen + 1;
  t.started <- true

let next_touch t =
  t.touch <- t.touch + 1;
  t.touch

let open_fresh t ~at =
  let b = Bin.create ~id:t.next_bin ~capacity:t.capacity ~now:at ~touch:(next_touch t) in
  t.next_bin <- t.next_bin + 1;
  Bin_registry.add t.reg b;
  t.all_bins_desc <- b :: t.all_bins_desc;
  t.max_open <- Int.max t.max_open (Bin_registry.count t.reg);
  b

(* {2 Migration primitives}

   A relocation plan is executed eagerly — each move mutates the bins and
   the registry mirror so the next target search sees it — and rolled
   back in reverse if the plan cannot complete. Reversing in reverse
   order restores exactly the pre-plan loads, so every rollback [place]
   is guaranteed to fit. *)

type move = { mi : Item.t; msrc : Bin.t; mdst : Bin.t; melapsed : float }

(* Most-loaded other open bin the item fits (Best-Fit style target,
   earliest opened wins ties), via the registry's kernel scan. *)
let best_target t ~exclude size =
  Bin_registry.fold_fitting t.reg size
    (fun acc b ->
      if b == exclude then acc
      else
        let m = Bin.load_measure Load_measure.Linf b in
        match acc with Some (_, bm) when bm >= m -> acc | _ -> Some (b, m))
    None

let execute_move t x ~src ~dst =
  let timed = t.wall <> None && t.observe_migration <> None in
  let t0 = match t.wall with Some c when timed -> c () | _ -> 0.0 in
  Bin.remove src x;
  Bin_registry.refresh t.reg src;
  Bin.place dst x ~touch:(next_touch t);
  Bin_registry.refresh t.reg dst;
  (Int_table.find t.items x.Item.id).bin <- dst;
  let elapsed = match t.wall with Some c when timed -> c () -. t0 | _ -> 0.0 in
  { mi = x; msrc = src; mdst = dst; melapsed = elapsed }

let undo_move t { mi = x; msrc = src; mdst = dst; _ } =
  Bin.remove dst x;
  Bin_registry.refresh t.reg dst;
  Bin.place src x ~touch:(next_touch t);
  Bin_registry.refresh t.reg src;
  (Int_table.find t.items x.Item.id).bin <- src

let rollback t moves = List.iter (undo_move t) moves (* moves are newest-first *)

let commit t ~at ~reason moves_newest_first =
  let moves = List.rev moves_newest_first in
  let n = List.length moves in
  if n > 0 then begin
    t.stat_migrations <- t.stat_migrations + n;
    t.stat_migration_events <- t.stat_migration_events + 1;
    List.iter
      (fun m ->
        if t.record_ledger then
          t.ledger_rev <-
            {
              time = at;
              event = t.events_seen;
              item_id = m.mi.Item.id;
              from_bin = m.msrc.Bin.id;
              to_bin = m.mdst.Bin.id;
              reason;
            }
            :: t.ledger_rev;
        match t.observe_migration with
        | Some f when t.wall <> None -> f ~seconds:m.melapsed
        | Some _ | None -> ())
      moves
  end;
  n

(* {2 Strategy: empty the lightest bin on departure} *)

(* Fewest active items; ties by smaller total load, then youngest bin
   (the ascending fold replaces on ties, and bins ascend in id). *)
let drain_victim t =
  Bin_registry.fold t.reg
    (fun acc b ->
      let n = List.length b.Bin.active_items in
      let l = Vec.sum_coords b.Bin.load in
      match acc with
      | Some (_, bn, bl) when bn < n || (bn = n && bl < l) -> acc
      | Some _ | None -> Some (b, n, l))
    None

let eviction_order items =
  List.filter (fun (x : Item.t) -> Vec.sum_coords x.Item.size > 0) items
  |> List.sort (fun (a : Item.t) (b : Item.t) ->
         let c = compare (Vec.sum_coords b.Item.size) (Vec.sum_coords a.Item.size) in
         if c <> 0 then c else compare a.Item.id b.Item.id)

let try_drain t ~at =
  match drain_victim t with
  | None -> ()
  | Some (victim, n_items, _) ->
      if n_items > t.cfg.budget then
        (* a drain opportunity existed but the budget cannot cover it *)
        t.stat_budget_exhausted <- t.stat_budget_exhausted + 1
      else begin
        let plan = eviction_order victim.Bin.active_items in
        (* zero-size items cannot be drained anywhere meaningful but also
           block closing the bin only if left behind; they always fit any
           open bin, so keep them in the plan *)
        let plan =
          plan
          @ List.filter
              (fun (x : Item.t) -> Vec.sum_coords x.Item.size = 0)
              victim.Bin.active_items
        in
        let rec go moves = function
          | [] -> Ok moves
          | x :: rest -> (
              match best_target t ~exclude:victim x.Item.size with
              | None -> Error moves
              | Some (dst, _) -> go (execute_move t x ~src:victim ~dst :: moves) rest)
        in
        match go [] plan with
        | Error moves -> rollback t moves
        | Ok moves ->
            Bin.close victim ~now:at;
            Bin_registry.note_closed t.reg victim;
            t.policy.Policy.on_close ~bin:victim ~now:at;
            t.stat_drained <- t.stat_drained + 1;
            ignore (commit t ~at ~reason:Drain moves)
      end

(* {2 Strategy: consolidate on arrival} *)

(* Try to make [size] fit into [b] by evicting up to [budget] of its
   items (largest first) into other bins. Returns the executed moves
   (newest first) or rolls back and reports whether the budget was the
   binding constraint. *)
let try_evict_into t b ~size ~budget_hit =
  let rec go moves n =
    if Bin.fits b size then Ok moves
    else if n >= t.cfg.budget then begin
      budget_hit := true;
      Error moves
    end
    else
      let rec first_movable = function
        | [] -> None
        | x :: rest -> (
            match best_target t ~exclude:b x.Item.size with
            | Some (dst, _) -> Some (x, dst)
            | None -> first_movable rest)
      in
      match first_movable (eviction_order b.Bin.active_items) with
      | None -> Error moves
      | Some (x, dst) -> go (execute_move t x ~src:b ~dst :: moves) (n + 1)
  in
  match go [] 0 with
  | Ok moves -> Some moves
  | Error moves ->
      rollback t moves;
      None

let try_make_room t ~size =
  if t.cfg.budget = 0 then None
  else begin
    let budget_hit = ref false in
    let candidates = Bin_registry.to_list t.reg in
    let rec try_bins = function
      | [] ->
          if !budget_hit then
            t.stat_budget_exhausted <- t.stat_budget_exhausted + 1;
          None
      | b :: rest -> (
          match try_evict_into t b ~size ~budget_hit with
          | Some moves -> Some (b, moves)
          | None -> try_bins rest)
    in
    try_bins candidates
  end

(* {2 Events} *)

let arrive t ~at ?id ~size () =
  let given_id = match id with Some i -> i | None -> -1 in
  let what =
    if given_id < 0 then "arrival" else Printf.sprintf "arrival of item %d" given_id
  in
  check_advance t at ~what;
  if Vec.dim size <> Vec.dim t.capacity then
    error "%s at %g: item dimension %d does not match capacity dimension %d" what at
      (Vec.dim size) (Vec.dim t.capacity);
  if not (Vec.le size t.capacity) then
    error "%s at %g: item size %s exceeds the bin capacity %s" what at
      (Vec.to_string size) (Vec.to_string t.capacity);
  (match id with
  | Some id ->
      if id < 0 then error "arrival at %g: negative item id %d" at id;
      if Int_table.mem t.items id then error "arrival at %g: duplicate item id %d" at id
  | None -> ());
  commit_advance t at;
  let view = { Policy.size; arrival = at; departure = None } in
  let target, opened_new_bin =
    match t.policy.Policy.select ~item:view ~open_bins:t.reg with
    | Policy.Existing b ->
        if not (Bin.is_open b) then
          error "%s at %g: policy %s selected closed bin %d" what at t.policy.Policy.name
            b.Bin.id;
        if not (Bin.fits b size) then
          error "%s at %g: policy %s selected bin %d, where the item does not fit" what at
            t.policy.Policy.name b.Bin.id;
        (b, false)
    | Policy.Fresh -> (
        if consolidates t.cfg.strategy then
          match try_make_room t ~size with
          | Some (b, moves) ->
              t.stat_consolidations <- t.stat_consolidations + 1;
              ignore (commit t ~at ~reason:Make_room moves);
              (b, false)
          | None -> (open_fresh t ~at, true)
        else (open_fresh t ~at, true))
  in
  let item_id =
    match id with
    | Some id -> id
    | None ->
        while Int_table.mem t.items t.next_item do
          t.next_item <- t.next_item + 1
        done;
        t.next_item
  in
  if item_id = t.next_item then t.next_item <- t.next_item + 1;
  let item = Item.make ~id:item_id ~arrival:at ~departure:(at +. 1.0) ~size in
  Bin.place target item ~touch:(next_touch t);
  Bin_registry.refresh t.reg target;
  Int_table.replace t.items item_id { item; bin = target; departed_at = None };
  t.policy.Policy.on_place ~bin:target ~now:at;
  { item_id; bin_id = target.Bin.id; opened_new_bin }

let depart_core t ~at ~item_id ~drain =
  let what = Printf.sprintf "departure of item %d" item_id in
  check_advance t at ~what;
  let state =
    match Int_table.find t.items item_id with
    | s -> s
    | exception Not_found -> error "departure at %g: unknown item id %d" at item_id
  in
  (match state.departed_at with
  | Some earlier -> error "departure at %g: item %d already departed at %g" at item_id earlier
  | None -> ());
  if at <= state.item.Item.arrival then
    error "departure at %g: item %d cannot depart, it arrived at %g" at item_id
      state.item.Item.arrival;
  commit_advance t at;
  state.departed_at <- Some at;
  Bin.remove state.bin state.item;
  if Bin.is_empty state.bin then begin
    Bin.close state.bin ~now:at;
    Bin_registry.note_closed t.reg state.bin;
    t.policy.Policy.on_close ~bin:state.bin ~now:at
  end
  else Bin_registry.refresh t.reg state.bin;
  if drain && drains t.cfg.strategy && t.cfg.budget > 0 && Bin_registry.count t.reg >= 2
  then try_drain t ~at

let depart t ~at ~item_id = depart_core t ~at ~item_id ~drain:true

let active_items t =
  Int_table.fold t.items
    (fun _ s acc -> match s.departed_at with None -> acc + 1 | Some _ -> acc)
    0

let bins_opened t = t.next_bin
let max_open_bins t = t.max_open
let open_bin_count t = Bin_registry.count t.reg

let cost t =
  let horizon = now t in
  (* ascending bin id, Kahan — exactly Packing.cost's summation order *)
  Floatx.kahan_sum
    (List.rev_map
       (fun (b : Bin.t) ->
         Option.value ~default:horizon b.Bin.closed_at -. b.Bin.opened_at)
       t.all_bins_desc)

let stats t =
  {
    migrations = t.stat_migrations;
    migration_events = t.stat_migration_events;
    drained_bins = t.stat_drained;
    consolidations = t.stat_consolidations;
    budget_exhausted = t.stat_budget_exhausted;
  }

let ledger t = List.rev t.ledger_rev

let finish t ~at =
  let still_active =
    Int_table.fold t.items
      (fun id s acc -> match s.departed_at with None -> id :: acc | Some _ -> acc)
      []
    |> List.sort Int.compare
  in
  List.iter (fun id -> depart_core t ~at ~item_id:id ~drain:false) still_active;
  check_advance t at ~what:"finish";
  commit_advance t at;
  t.finished <- true

let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "clock=%.17g cost=%.17g opened=%d max_open=%d active=%d mig=%d drained=%d cons=%d open=["
       (now t) (cost t) (bins_opened t) (max_open_bins t) (active_items t)
       t.stat_migrations t.stat_drained t.stat_consolidations);
  List.iteri
    (fun i (b : Bin.t) ->
      if i > 0 then Buffer.add_char buf ';';
      Buffer.add_string buf (Printf.sprintf "%d{" b.Bin.id);
      List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
      |> List.sort Int.compare
      |> List.iteri (fun j id ->
             if j > 0 then Buffer.add_char buf ',';
             Buffer.add_string buf (string_of_int id));
      Buffer.add_char buf '}')
    (Bin_registry.to_list t.reg);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* {2 Batch driver} *)

type run = {
  cost : float;
  bins_opened : int;
  max_open_bins : int;
  stats : stats;
  ledger : migration list;
}

let run ?(config = default_config) ?(record_ledger = true) ?(fit_kernel = `Auto) ~policy
    (instance : Core.Instance.t) =
  let arrivals = Array.of_list instance.Core.Instance.items in
  let n = Array.length arrivals in
  Array.sort
    (fun (a : Item.t) (b : Item.t) ->
      let c = Float.compare a.Item.arrival b.Item.arrival in
      if c <> 0 then c else Int.compare a.Item.id b.Item.id)
    arrivals;
  let departures = Array.copy arrivals in
  Array.sort
    (fun (a : Item.t) (b : Item.t) ->
      let c = Float.compare a.Item.departure b.Item.departure in
      if c <> 0 then c else Int.compare a.Item.id b.Item.id)
    departures;
  let session =
    create ~record_ledger ~expected_items:n ~fit_kernel
      ~capacity:instance.Core.Instance.capacity ~policy ~config ()
  in
  let i = ref 0 and j = ref 0 in
  while !i < n || !j < n do
    if
      !i >= n
      || (!j < n && departures.(!j).Item.departure <= arrivals.(!i).Item.arrival)
    then begin
      let r = departures.(!j) in
      incr j;
      depart session ~at:r.Item.departure ~item_id:r.Item.id
    end
    else begin
      let r = arrivals.(!i) in
      incr i;
      ignore (arrive session ~at:r.Item.arrival ~id:r.Item.id ~size:r.Item.size ())
    end
  done;
  finish session ~at:(now session);
  {
    cost = cost session;
    bins_opened = bins_opened session;
    max_open_bins = max_open_bins session;
    stats = stats session;
    ledger = ledger session;
  }

(* {2 Competitor specs} *)

let spec_to_string ~base cfg =
  Printf.sprintf "%s+%s%d" base (strategy_name cfg.strategy) cfg.budget

let is_digit c = c >= '0' && c <= '9'

let spec_of_string s =
  match String.index_opt s '+' with
  | None -> Ok (s, None)
  | Some i -> (
      let base = String.sub s 0 i in
      let suffix = String.sub s (i + 1) (String.length s - i - 1) in
      if base = "" then
        Error
          (Printf.sprintf
             "repack spec %S: empty base policy (expected <policy>+<strategy><budget>, e.g. ff+el2)"
             s)
      else
        let n = String.length suffix in
        let j = ref 0 in
        while !j < n && not (is_digit suffix.[!j]) do
          incr j
        done;
        let strat = String.sub suffix 0 !j and num = String.sub suffix !j (n - !j) in
        match strategy_of_name strat with
        | Error e -> Error (Printf.sprintf "repack spec %S: %s" s e)
        | Ok strategy -> (
            if num = "" then
              Error
                (Printf.sprintf
                   "repack spec %S: missing migration budget (expected e.g. %s+%s2)" s base
                   strat)
            else
              match int_of_string_opt num with
              | None ->
                  Error (Printf.sprintf "repack spec %S: invalid budget %S" s num)
              | Some b when b < 0 || b > max_budget ->
                  Error
                    (Printf.sprintf "repack spec %S: budget must be in 0..%d (got %d)" s
                       max_budget b)
              | Some budget -> Ok (base, Some { budget; strategy })))
