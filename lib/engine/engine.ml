module Core = Dvbp_core
module Item = Core.Item

exception Policy_error of string

type run = {
  packing : Core.Packing.t;
  trace : Trace.t;
  bins_opened : int;
  max_open_bins : int;
}

(* Hand-rolled quicksorts for the two event streams: Stdlib.Array.sort
   pays an indirect call per comparison, which dominates the sort on large
   instances. Keys are (time, id) with unique ids, hence strictly distinct,
   so an unstable sort yields the same order as the stable one. *)

let[@inline] before_arrival (a : Item.t) (b : Item.t) =
  a.Item.arrival < b.Item.arrival
  || (a.Item.arrival = b.Item.arrival && a.Item.id < b.Item.id)

let[@inline] before_departure (a : Item.t) (b : Item.t) =
  a.Item.departure < b.Item.departure
  || (a.Item.departure = b.Item.departure && a.Item.id < b.Item.id)

let[@inline] swap (a : Item.t array) i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

let rec qsort_arrival (a : Item.t array) lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && before_arrival v a.(!j) do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    (* median-of-three pivot, Hoare partition *)
    let mid = lo + ((hi - lo) / 2) in
    if before_arrival a.(mid) a.(lo) then swap a mid lo;
    if before_arrival a.(hi) a.(mid) then begin
      swap a hi mid;
      if before_arrival a.(mid) a.(lo) then swap a mid lo
    end;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while before_arrival a.(!i) pivot do incr i done;
      while before_arrival pivot a.(!j) do decr j done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    qsort_arrival a lo !j;
    qsort_arrival a !i hi
  end

let rec qsort_departure (a : Item.t array) lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && before_departure v a.(!j) do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let mid = lo + ((hi - lo) / 2) in
    if before_departure a.(mid) a.(lo) then swap a mid lo;
    if before_departure a.(hi) a.(mid) then begin
      swap a hi mid;
      if before_departure a.(mid) a.(lo) then swap a mid lo
    end;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while before_departure a.(!i) pivot do incr i done;
      while before_departure pivot a.(!j) do decr j done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    qsort_departure a lo !j;
    qsort_departure a !i hi
  end

(* The batch engine is a thin driver over the incremental session: it knows
   the full future, sorts it, and feeds it event by event. Instead of
   sorting one array of 2n tagged events, it sorts the items twice — by
   arrival and by departure — and merges the two streams while driving the
   session: same total order (departures precede arrivals at equal times,
   ids break remaining ties), but monomorphic float/int comparisons and no
   per-event boxing. *)
let run ?(clairvoyant = false) ?departure_oracle ?(record_trace = true) ~policy
    (instance : Core.Instance.t) =
  let oracle =
    match departure_oracle with
    | Some f -> f
    | None ->
        if clairvoyant then fun (r : Item.t) -> Some r.Item.departure
        else fun _ -> None
  in
  let arrivals = Array.of_list instance.Core.Instance.items in
  let n = Array.length arrivals in
  qsort_arrival arrivals 0 (n - 1);
  let departures = Array.copy arrivals in
  qsort_departure departures 0 (n - 1);
  let session =
    Session.create ~record_trace ~expected_items:n
      ~capacity:instance.Core.Instance.capacity ~policy ()
  in
  (try
     let i = ref 0 (* next arrival *) and j = ref 0 (* next departure *) in
     while !i < n || !j < n do
       (* every departed item arrived strictly earlier in this order, so
          arrivals can never fall behind departures (!j <= !i) *)
       if
         !i >= n
         || (!j < n
             && departures.(!j).Item.departure <= arrivals.(!i).Item.arrival)
       then begin
         let r = departures.(!j) in
         incr j;
         Session.depart session ~at:r.Item.departure ~item_id:r.Item.id
       end
       else begin
         let r = arrivals.(!i) in
         incr i;
         let departure = oracle r in
         ignore
           (Session.arrive session ~at:r.Item.arrival ~id:r.Item.id ?departure
              ~size:r.Item.size ())
       end
     done
   with Session.Session_error msg -> raise (Policy_error msg));
  assert (Session.active_items session = 0);
  let horizon = Session.now session in
  let trace = Session.trace session in
  let packing = Session.finish session ~at:horizon in
  {
    packing;
    trace;
    bins_opened = Session.bins_opened session;
    max_open_bins = Session.max_open_bins session;
  }

let cost run = Core.Packing.cost run.packing
