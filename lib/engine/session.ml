module Vec = Dvbp_vec.Vec
module Int_table = Dvbp_prelude.Int_table
module Core = Dvbp_core
module Bin = Core.Bin
module Bin_registry = Core.Bin_registry
module Item = Core.Item
module Policy = Core.Policy

exception Session_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Session_error s)) fmt

type item_state = {
  item : Item.t;  (* departure is provisional unless the arrival was clairvoyant *)
  bin : Bin.t;
  mutable departed_at : float option;
}

type placement = { item_id : int; bin_id : int; opened_new_bin : bool }

(* all-float record: flat storage, so advancing the clock never allocates *)
type clock = { mutable time : float }

type t = {
  capacity : Vec.t;
  policy : Policy.t;
  record_trace : bool;
  clock : clock;
  mutable started : bool;
  mutable next_item : int;
  mutable next_bin : int;
  mutable touch : int;
  open_bins : Bin_registry.t;  (* ascending open order, incremental count *)
  mutable all_bins_desc : Bin.t list;
  items : item_state Int_table.t;
  mutable trace_rev : Trace.event list;
  mutable max_open : int;
  mutable finished : bool;
  (* Observability tallies — scraped by the metrics layer at render
     time, never read by the engine itself. Refused events are counted
     here precisely because they leave everything else untouched. *)
  mutable stat_placements : int;
  mutable stat_departures : int;
  mutable stat_rejects : int;
}

let create ?(record_trace = true) ?(expected_items = 64) ?(fit_kernel = `Auto)
    ~capacity ~policy () =
  (* the dummy state fills the item table's empty slots; it is never read *)
  let dummy_state =
    {
      item = Item.make ~id:0 ~arrival:0.0 ~departure:1.0 ~size:capacity;
      bin = Bin.create ~id:(-1) ~capacity ~now:0.0 ~touch:0;
      departed_at = None;
    }
  in
  {
    capacity;
    policy;
    record_trace;
    clock = { time = 0.0 };
    started = false;
    next_item = 0;
    next_bin = 0;
    touch = 0;
    open_bins = Bin_registry.create ~kernel:fit_kernel ~capacity ();
    all_bins_desc = [];
    items = Int_table.create ~expected:expected_items ~dummy:dummy_state ();
    trace_rev = [];
    max_open = 0;
    finished = false;
    stat_placements = 0;
    stat_departures = 0;
    stat_rejects = 0;
  }

let now t = t.clock.time
let capacity t = t.capacity

(* [kind]/[item] name the offending event in time errors so they are
   diagnosable from a journal replay. Both are immediates ([item] is [-1]
   when the arrival's id is not yet assigned): passing them never allocates,
   and the message is only built on the failure path. *)
let who kind item =
  let k =
    match kind with 'a' -> "arrival" | 'd' -> "departure" | _ -> "finish"
  in
  if item < 0 then Printf.sprintf "%s" k else Printf.sprintf "%s of item %d" k item

(* Validation and commit are split so that a refused event (the service's
   REJECT-and-keep-serving path) leaves the session — clock included —
   exactly as it was: refused events are not journaled, so any state they
   left behind would diverge from a journal replay. *)
let check_advance t at ~kind ~item =
  if t.finished then error "%s at %g: session already finished" (who kind item) at;
  if not (Float.is_finite at) then
    error "%s: non-finite timestamp %g" (who kind item) at;
  if t.started && at < t.clock.time then
    error "%s: time went backwards: %g after %g" (who kind item) at t.clock.time

let commit_advance t at =
  t.clock.time <- at;
  t.started <- true

let advance t at ~kind ~item =
  check_advance t at ~kind ~item;
  commit_advance t at

let next_touch t =
  t.touch <- t.touch + 1;
  t.touch

let emit t e = if t.record_trace then t.trace_rev <- e :: t.trace_rev

let open_fresh t ~at =
  let b = Bin.create ~id:t.next_bin ~capacity:t.capacity ~now:at ~touch:(next_touch t) in
  t.next_bin <- t.next_bin + 1;
  Bin_registry.add t.open_bins b;
  t.all_bins_desc <- b :: t.all_bins_desc;
  emit t (Trace.Opened { time = at; bin_id = b.Bin.id });
  t.max_open <- Int.max t.max_open (Bin_registry.count t.open_bins);
  b

let arrive_core t ~at ?id ?departure ~size () =
  let given_id = match id with Some i -> i | None -> -1 in
  check_advance t at ~kind:'a' ~item:given_id;
  if Vec.dim size <> Vec.dim t.capacity then
    error "arrival%s at %g: item dimension %d does not match capacity dimension %d"
      (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
      at (Vec.dim size) (Vec.dim t.capacity);
  if not (Vec.le size t.capacity) then
    error "arrival%s at %g: item size %s exceeds the bin capacity %s"
      (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
      at (Vec.to_string size)
      (Vec.to_string t.capacity);
  (match departure with
  | Some dep when dep <= at ->
      error "arrival%s at %g: clairvoyant departure %g not after arrival"
        (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
        at dep
  | Some _ | None -> ());
  (* id validation must precede bin selection: a rejected arrival must leave
     the session untouched (the service replies REJECT and keeps serving),
     and selection may open a fresh bin *)
  (match id with
  | Some id ->
      if id < 0 then error "arrival at %g: negative item id %d" at id;
      if Int_table.mem t.items id then error "arrival at %g: duplicate item id %d" at id
  | None -> ());
  commit_advance t at;
  let view = { Policy.size; arrival = at; departure } in
  let target, opened_new_bin =
    match t.policy.Policy.select ~item:view ~open_bins:t.open_bins with
    | Policy.Existing b ->
        if not (Bin.is_open b) then
          error "arrival%s at %g: policy %s selected closed bin %d"
            (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
            at t.policy.Policy.name b.Bin.id;
        if not (Bin.fits b size) then
          error "arrival%s at %g: policy %s selected bin %d, where the item does not fit"
            (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
            at t.policy.Policy.name b.Bin.id;
        (b, false)
    | Policy.Fresh ->
        if t.policy.Policy.strict_any_fit
           && Bin_registry.exists_fitting t.open_bins size
        then
          error "arrival%s at %g: policy %s opened a fresh bin although an open bin fits"
            (if given_id < 0 then "" else Printf.sprintf " of item %d" given_id)
            at t.policy.Policy.name;
        (open_fresh t ~at, true)
  in
  let item_id =
    match id with
    | Some id -> id
    | None ->
        (* skip over any ids the caller has claimed explicitly *)
        while Int_table.mem t.items t.next_item do
          t.next_item <- t.next_item + 1
        done;
        t.next_item
  in
  if item_id = t.next_item then t.next_item <- t.next_item + 1;
  (* The provisional departure keeps Item.make's invariants; the real value
     is recorded at depart time and substituted when the packing is built. *)
  let provisional = match departure with Some d -> d | None -> at +. 1.0 in
  let item = Item.make ~id:item_id ~arrival:at ~departure:provisional ~size in
  Bin.place target item ~touch:(next_touch t);
  Bin_registry.refresh t.open_bins target;
  Int_table.replace t.items item_id { item; bin = target; departed_at = None };
  emit t (Trace.Placed { time = at; item_id; bin_id = target.Bin.id });
  t.policy.Policy.on_place ~bin:target ~now:at;
  { item_id; bin_id = target.Bin.id; opened_new_bin }

let arrive t ~at ?id ?departure ~size () =
  match arrive_core t ~at ?id ?departure ~size () with
  | p ->
      t.stat_placements <- t.stat_placements + 1;
      p
  | exception (Session_error _ as e) ->
      t.stat_rejects <- t.stat_rejects + 1;
      raise e

let depart_core t ~at ~item_id =
  check_advance t at ~kind:'d' ~item:item_id;
  let state =
    match Int_table.find t.items item_id with
    | s -> s
    | exception Not_found -> error "departure at %g: unknown item id %d" at item_id
  in
  (match state.departed_at with
  | Some earlier ->
      error "departure at %g: item %d already departed at %g" at item_id earlier
  | None -> ());
  if at <= state.item.Item.arrival then
    error "departure at %g: item %d cannot depart, it arrived at %g" at item_id
      state.item.Item.arrival;
  commit_advance t at;
  state.departed_at <- Some at;
  Bin.remove state.bin state.item;
  emit t (Trace.Departed { time = at; item_id; bin_id = state.bin.Bin.id });
  if Bin.is_empty state.bin then begin
    Bin.close state.bin ~now:at;
    Bin_registry.note_closed t.open_bins state.bin;
    emit t (Trace.Closed { time = at; bin_id = state.bin.Bin.id });
    t.policy.Policy.on_close ~bin:state.bin ~now:at
  end
  else Bin_registry.refresh t.open_bins state.bin

let depart t ~at ~item_id =
  match depart_core t ~at ~item_id with
  | () -> t.stat_departures <- t.stat_departures + 1
  | exception (Session_error _ as e) ->
      t.stat_rejects <- t.stat_rejects + 1;
      raise e

type event =
  | Arrive of { at : float; id : int option; size : Vec.t }
  | Depart of { at : float; item_id : int }

let apply t = function
  | Arrive { at; id; size } -> Some (arrive t ~at ?id ~size ())
  | Depart { at; item_id } ->
      depart t ~at ~item_id;
      None

let open_bins t = Bin_registry.to_list t.open_bins

let active_items t =
  Int_table.fold t.items
    (fun _ s acc -> match s.departed_at with None -> acc + 1 | Some _ -> acc)
    0

let bins_opened t = t.next_bin
let max_open_bins t = t.max_open
let open_bin_count t = Bin_registry.count t.open_bins
let bins_closed t = t.next_bin - Bin_registry.count t.open_bins
let placements t = t.stat_placements
let departures t = t.stat_departures
let rejects t = t.stat_rejects
let scan_stats t = Bin_registry.scan_stats t.open_bins
let fit_kernel t = Bin_registry.kernel_name t.open_bins

let cost_so_far t =
  let horizon = now t in
  Dvbp_prelude.Listx.sum_by
    (fun (b : Bin.t) ->
      let close = Option.value ~default:horizon b.Bin.closed_at in
      close -. b.Bin.opened_at)
    t.all_bins_desc

let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "clock=%.17g cost=%.17g opened=%d max_open=%d active=%d open=["
       (now t) (cost_so_far t) (bins_opened t) (max_open_bins t) (active_items t));
  List.iteri
    (fun i (b : Bin.t) ->
      if i > 0 then Buffer.add_char buf ';';
      Buffer.add_string buf (Printf.sprintf "%d{" b.Bin.id);
      List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
      |> List.sort Int.compare
      |> List.iteri (fun j id ->
             if j > 0 then Buffer.add_char buf ',';
             Buffer.add_string buf (string_of_int id));
      Buffer.add_char buf '}')
    (open_bins t);
  Buffer.add_char buf ']';
  Buffer.contents buf

let trace t = Trace.of_events (List.rev t.trace_rev)

let finish t ~at =
  let still_active =
    Int_table.fold t.items
      (fun id s acc ->
        match s.departed_at with None -> (id, s) :: acc | Some _ -> acc)
      []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter (fun (id, _) -> depart t ~at ~item_id:id) still_active;
  advance t at ~kind:'f' ~item:(-1);
  t.finished <- true;
  let final_item id =
    let s = Int_table.find t.items id in
    let departure =
      match s.departed_at with Some d -> d | None -> assert false
    in
    Item.make ~id ~arrival:s.item.Item.arrival ~departure ~size:s.item.Item.size
  in
  let records =
    List.rev_map
      (fun (b : Bin.t) ->
        {
          Core.Packing.bin_id = b.Bin.id;
          interval = Bin.usage_interval b;
          items = List.rev_map (fun (r : Item.t) -> final_item r.Item.id) b.Bin.placed;
        })
      t.all_bins_desc
  in
  Core.Packing.make ~capacity:t.capacity records
