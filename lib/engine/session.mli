(** Incremental (truly online) packing session.

    {!Engine.run} replays a complete instance, but a real dispatcher does
    not know the future: requests arrive one at a time and departures are
    observed, not scheduled. A session exposes exactly that interface — feed
    it arrivals and departures in time order and read placements, costs and
    open-bin state as you go. The batch engine is implemented on top of this
    module, so both views of an execution agree by construction.

    Time must be fed monotonically: events at equal timestamps are legal
    (departures must be fed before arrivals at the same instant, matching
    the half-open interval semantics); going backwards raises. *)

type t

type placement = {
  item_id : int;  (** session-assigned, consecutive from 0 *)
  bin_id : int;
  opened_new_bin : bool;
}

exception Session_error of string

val create :
  ?record_trace:bool ->
  ?expected_items:int ->
  ?fit_kernel:[ `Auto | `Scalar ] ->
  capacity:Dvbp_vec.Vec.t ->
  policy:Dvbp_core.Policy.t ->
  unit ->
  t
(** A fresh session with no bins. The policy must be freshly created (its
    mutable state belongs to this session). [record_trace] (default [true])
    controls whether events are accumulated for {!trace}; disable it on hot
    paths (e.g. ratio sweeps) that never read the trace — {!trace} then
    returns an empty trace. [expected_items] pre-sizes the item table when
    the caller knows the workload size (the batch engine does), avoiding
    rehashes mid-run. [fit_kernel] (default [`Auto]) is forwarded to
    {!Dvbp_core.Bin_registry.create}: [`Scalar] forces the per-dimension
    fit-scan loop even when the capacity qualifies for the SWAR kernel
    (differential tests, benchmarks). Kernel choice never changes
    placements or statistics — only scan speed. *)

val arrive :
  t ->
  at:float ->
  ?id:int ->
  ?departure:float ->
  size:Dvbp_vec.Vec.t ->
  unit ->
  placement
(** Places a new item and returns where it went. [id] overrides the
    session-assigned item id (it must be fresh — used by the batch engine to
    preserve instance ids). [departure] may be passed to make the placement
    clairvoyant (the policy then sees it); the session itself never acts on
    it — the caller still must call {!depart}.
    @raise Session_error on non-monotonic time, a duplicate [id], a size
    that cannot fit an empty bin, a dimension mismatch, or policy
    misbehaviour. *)

val depart : t -> at:float -> item_id:int -> unit
(** Removes an active item; closes its bin if it was the last occupant.
    @raise Session_error on unknown or already-departed items, or
    non-monotonic time. *)

type event =
  | Arrive of { at : float; id : int option; size : Dvbp_vec.Vec.t }
  | Depart of { at : float; item_id : int }
      (** A session event as a value — what streaming drivers (the trace
          store's replay, the service loadgen) carry around instead of
          closures over {!arrive}/{!depart}. *)

val apply : t -> event -> placement option
(** Feeds one event: [Arrive] calls {!arrive} (returning [Some placement]),
    [Depart] calls {!depart} (returning [None]). Same exceptions. *)

val finish : t -> at:float -> Dvbp_core.Packing.t
(** Departs every still-active item at [at] and returns the final packing.
    The session cannot be used afterwards.
    @raise Session_error on non-monotonic time or if already finished. *)

(** {1 Observability} *)

val now : t -> float
(** Timestamp of the last event ([0.] for a fresh session). *)

val capacity : t -> Dvbp_vec.Vec.t
(** The bin capacity the session was created with. *)

val open_bins : t -> Dvbp_core.Bin.t list
(** Currently open bins in opening order. Callers must not mutate. *)

val active_items : t -> int

val bins_opened : t -> int

val max_open_bins : t -> int
(** Peak number of simultaneously open bins so far. *)

val open_bin_count : t -> int
(** Number of currently open bins. O(1). *)

val bins_closed : t -> int
(** Bins opened and since closed ([bins_opened - open_bin_count]). *)

val placements : t -> int
(** Successful {!arrive} calls so far. *)

val departures : t -> int
(** Successful {!depart} calls so far (including those forced by
    {!finish}). *)

val rejects : t -> int
(** {!arrive}/{!depart} calls refused with {!Session_error}. Refused
    events leave all other state untouched, so this is the only trace
    they leave. *)

val scan_stats : t -> Dvbp_core.Bin_registry.scan_stats
(** Cumulative fit-scan tallies of the session's open-bin registry. *)

val fit_kernel : t -> string
(** {!Dvbp_core.Bin_registry.kernel_name} of the session's registry:
    ["swar"] or ["scalar"]. *)

val cost_so_far : t -> float
(** Total bin-time accumulated up to [now] (open bins billed to [now]). *)

val fingerprint : t -> string
(** Canonical one-line digest of the observable state: clock, cost (both
    [%.17g], so equality is bit-equality), bins opened, peak open bins,
    active items, and every open bin with its occupant ids sorted. Two
    sessions that processed the same events have equal fingerprints; the
    crash-simulation tests compare recovered sessions against uninterrupted
    ones with exactly this. *)

val trace : t -> Trace.t
(** Everything that happened so far, oldest first. Empty when the session
    was created with [~record_trace:false]. *)
