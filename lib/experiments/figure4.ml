module Rng = Dvbp_prelude.Rng
module Uniform_model = Dvbp_workload.Uniform_model
module Table = Dvbp_report.Table
module Ascii_plot = Dvbp_report.Ascii_plot

type config = {
  ds : int list;
  mus : int list;
  instances : int;
  seed : int;
  n_items : int;
  span : int;
  bin_size : int;
}

let grid_ds = [ 1; 2; 5 ]
let grid_mus = [ 1; 2; 5; 10; 100; 200 ]

let default =
  {
    ds = grid_ds;
    mus = grid_mus;
    instances = 1000;
    seed = 42;
    n_items = 1000;
    span = 1000;
    bin_size = 100;
  }

let paper = default
let quick = { default with instances = 60 }

let env_var = "DVBP_FIGURE4_INSTANCES"

let instances_from_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Some n
      | Some n ->
          invalid_arg
            (Printf.sprintf "%s must be a positive instance count (got %d)"
               env_var n)
      | None ->
          invalid_arg
            (Printf.sprintf
               "%s must be a positive integer (got %S); unset it for the \
                caller's default" env_var s))

type cell = { d : int; mu : int; per_policy : (string * Runner.stats) list }

let run ?pool ?jobs ?(progress = fun _ -> ()) config =
  let cells =
    List.concat_map (fun d -> List.map (fun mu -> (d, mu)) config.mus) config.ds
  in
  List.map
    (fun (d, mu) ->
      let params =
        {
          Uniform_model.d;
          n = config.n_items;
          mu;
          span = config.span;
          bin_size = config.bin_size;
        }
      in
      let gen ~rng = Uniform_model.generate params ~rng in
      let per_policy =
        Runner.ratio_stats ?pool ?jobs ~instances:config.instances
          ~seed:(config.seed + (1000 * d) + mu)
          ~gen
          ~competitors:(Runner.standard_competitors ())
          ()
      in
      let best =
        List.fold_left
          (fun acc (label, s) ->
            match acc with
            | Some (_, m) when m <= s.Runner.mean -> acc
            | _ -> Some (label, s.Runner.mean))
          None per_policy
      in
      progress
        (Printf.sprintf "figure4: d=%d mu=%-3d done (best: %s)" d mu
           (match best with Some (l, m) -> Printf.sprintf "%s %.3f" l m | None -> "-"));
      { d; mu; per_policy })
    cells

let policy_labels cells =
  match cells with [] -> [] | c :: _ -> List.map fst c.per_policy

let render_table cells =
  let policies = policy_labels cells in
  let header = "d" :: "mu" :: policies in
  let rows =
    List.map
      (fun c ->
        string_of_int c.d :: string_of_int c.mu
        :: List.map
             (fun p ->
               let s = List.assoc p c.per_policy in
               Printf.sprintf "%.3f±%.3f" s.Runner.mean s.Runner.std)
             policies)
      cells
  in
  Table.render ~header ~rows

let render_plots cells =
  let policies = policy_labels cells in
  let markers = [ 'M'; 'F'; 'B'; 'N'; 'W'; 'L'; 'R'; 'D' ] in
  let ds = List.sort_uniq Int.compare (List.map (fun c -> c.d) cells) in
  String.concat "\n"
    (List.map
       (fun d ->
         let of_d = List.filter (fun c -> c.d = d) cells in
         let mus = List.map (fun c -> c.mu) of_d in
         let series =
           List.mapi
             (fun i p ->
               {
                 Ascii_plot.label = p;
                 marker = (try List.nth markers i with _ -> Char.chr (Char.code 'a' + i));
                 points =
                   List.map2
                     (fun c mu_idx ->
                       ( float_of_int mu_idx,
                         (List.assoc p c.per_policy).Runner.mean ))
                     of_d
                     (List.mapi (fun i _ -> i) mus);
               })
             policies
         in
         Printf.sprintf "d = %d  (x axis: mu index over %s)\n%s" d
           (String.concat "," (List.map string_of_int mus))
           (Ascii_plot.render ~x_label:"mu#" ~y_label:"cost/LB" series))
       ds)

let to_csv cells =
  let header = [ "d"; "mu"; "policy"; "mean"; "std"; "min"; "max"; "n" ] in
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun (p, s) ->
            [
              string_of_int c.d;
              string_of_int c.mu;
              p;
              Printf.sprintf "%.6f" s.Runner.mean;
              Printf.sprintf "%.6f" s.Runner.std;
              Printf.sprintf "%.6f" s.Runner.min;
              Printf.sprintf "%.6f" s.Runner.max;
              string_of_int s.Runner.n;
            ])
          c.per_policy)
      cells
  in
  Dvbp_report.Table.to_csv ~header ~rows
