module Rng = Dvbp_prelude.Rng
module Repack = Dvbp_engine.Repack
module Opt = Dvbp_lowerbound.Opt
module U = Dvbp_workload.Uniform_model
module Table = Dvbp_report.Table

type frontier = {
  base : string;
  strategy : Repack.strategy;
  ks : int list;
  params : U.params;
  lb_rows : (string * Runner.stats) list;
  opt_params : U.params;
  opt_rows : (string * Runner.stats) list;
}

let repack_comp ~base ~strategy k =
  match Runner.repack_competitor ~base (Repack.config ~budget:k ~strategy ()) with
  | Ok c -> c
  | Error e -> invalid_arg ("Migration_frontier: " ^ e)

let run ?pool ?jobs ?(instances = 40) ?(seed = 42) ?(base = "ff")
    ?(strategy = Repack.Combined) ?(ks = [ 0; 1; 2; 4; 8 ]) ?(d = 2) ?(mu = 100)
    ?(n = 200) () =
  if ks = [] then invalid_arg "Migration_frontier.run: empty budget list";
  List.iter
    (fun k ->
      if k < 0 || k > Repack.max_budget then
        invalid_arg
          (Printf.sprintf "Migration_frontier.run: budget must be in 0..%d (got %d)"
             Repack.max_budget k))
    ks;
  let params = { U.d; n; mu; span = 1000; bin_size = 100 } in
  let anyfit = Runner.standard_competitors () in
  let frontier_comps = List.map (repack_comp ~base ~strategy) ks in
  let lb_rows =
    Runner.ratio_stats ?pool ?jobs ~instances ~seed
      ~gen:(fun ~rng -> U.generate params ~rng)
      ~competitors:(anyfit @ frontier_comps) ()
  in
  (* Exact-OPT column: instances small enough for the branch-and-bound
     optimum (low concurrency by construction), d = 1. *)
  let opt_params = { U.d = 1; n = 8; mu = 4; span = 12; bin_size = 10 } in
  let opt_rows =
    Runner.ratio_stats ?pool ?jobs ~instances ~seed:(seed + 1)
      ~denominator:(fun inst -> Opt.exact_exn inst)
      ~gen:(fun ~rng -> U.generate opt_params ~rng)
      ~competitors:(anyfit @ List.map (repack_comp ~base ~strategy) ks)
      ()
  in
  { base; strategy; ks; params; lb_rows; opt_params; opt_rows }

let render_table ~title rows =
  title ^ "\n"
  ^ Table.render
      ~header:[ "policy"; "mean"; "std"; "min"; "max"; "n" ]
      ~rows:
        (List.map
           (fun (label, (s : Runner.stats)) ->
             [
               label;
               Printf.sprintf "%.4f" s.Runner.mean;
               Printf.sprintf "%.4f" s.Runner.std;
               Printf.sprintf "%.4f" s.Runner.min;
               Printf.sprintf "%.4f" s.Runner.max;
               string_of_int s.Runner.n;
             ])
           rows)

let best_anyfit rows ~ks ~base ~strategy =
  let is_frontier label =
    List.exists
      (fun k ->
        label = Repack.spec_to_string ~base (Repack.config ~budget:k ~strategy ()))
      ks
  in
  List.filter (fun (label, _) -> not (is_frontier label)) rows
  |> List.fold_left
       (fun acc (label, (s : Runner.stats)) ->
         match acc with
         | Some (_, (b : Runner.stats)) when b.Runner.mean <= s.Runner.mean -> acc
         | _ -> Some (label, s))
       None

let render f =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (render_table
       ~title:
         (Printf.sprintf
            "migration frontier vs Lemma 1 LB: uniform d=%d mu=%d n=%d (cost / height-integral LB)"
            f.params.U.d f.params.U.mu f.params.U.n)
       f.lb_rows);
  (match best_anyfit f.lb_rows ~ks:f.ks ~base:f.base ~strategy:f.strategy with
  | Some (label, s) ->
      Buffer.add_string b
        (Printf.sprintf "best Any Fit: %s (mean %.4f)\n" label s.Runner.mean)
  | None -> ());
  Buffer.add_char b '\n';
  Buffer.add_string b
    (render_table
       ~title:
         (Printf.sprintf
            "migration frontier vs exact OPT: uniform d=%d mu=%d n=%d (cost / OPT)"
            f.opt_params.U.d f.opt_params.U.mu f.opt_params.U.n)
       f.opt_rows);
  Buffer.contents b
