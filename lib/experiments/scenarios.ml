module Policy = Dvbp_core.Policy
module W = Dvbp_workload

let competitors () =
  let clairvoyant name =
    {
      Runner.label = name ^ "*";
      make = (fun ~rng -> Policy.of_name_exn ~rng name);
      oracle = Runner.Exact_departures;
    }
  in
  Runner.standard_competitors () @ [ clairvoyant "daf"; clairvoyant "hff" ]

let cloud_gaming ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 500) () =
  let params = { W.Cloud_gaming.default with W.Cloud_gaming.n } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Cloud_gaming.generate params ~rng)
    ~competitors:(competitors ()) ()

let vm_placement ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 400) () =
  let params = { W.Vm_requests.default with W.Vm_requests.n } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Vm_requests.generate params ~rng)
    ~competitors:(competitors ()) ()

let flash_crowd ?pool ?jobs ?(instances = 30) ?(seed = 42) () =
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Bursty.generate W.Bursty.default ~rng)
    ~competitors:(competitors ()) ()

let render = Ablations.render
