module Policy = Dvbp_core.Policy
module W = Dvbp_workload

let competitors () =
  let clairvoyant name =
    {
      Runner.label = name ^ "*";
      make = (fun ~rng -> Policy.of_name_exn ~rng name);
      oracle = Runner.Exact_departures;
      repack = None;
    }
  in
  Runner.standard_competitors () @ [ clairvoyant "daf"; clairvoyant "hff" ]

let cloud_gaming ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 500) () =
  let params = { W.Cloud_gaming.default with W.Cloud_gaming.n } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Cloud_gaming.generate params ~rng)
    ~competitors:(competitors ()) ()

let vm_placement ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 400) () =
  let params = { W.Vm_requests.default with W.Vm_requests.n } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Vm_requests.generate params ~rng)
    ~competitors:(competitors ()) ()

let flash_crowd ?pool ?jobs ?(instances = 30) ?(seed = 42) () =
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Bursty.generate W.Bursty.default ~rng)
    ~competitors:(competitors ()) ()

(* {2 Cloud-calibrated families (trace-store PR)} *)

let diurnal ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 600) () =
  let base = { W.Diurnal.default.W.Diurnal.base with W.Uniform_model.n } in
  let params = { W.Diurnal.default with W.Diurnal.base = base } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Diurnal.generate params ~rng)
    ~competitors:(competitors ()) ()

let heavy_tail ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 600) () =
  let base = { W.Heavy_tail.default.W.Heavy_tail.base with W.Uniform_model.n } in
  let params = { W.Heavy_tail.default with W.Heavy_tail.base = base } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Heavy_tail.generate params ~rng)
    ~competitors:(competitors ()) ()

(* distinct from {!flash_crowd} above (the Bursty flat-window model):
   this is the asymmetric spike-and-decay family *)
let flash_crowd_decay ?pool ?jobs ?(instances = 30) ?(seed = 42) () =
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Flash_crowd.generate W.Flash_crowd.default ~rng)
    ~competitors:(competitors ()) ()

let azure_mix ?pool ?jobs ?(instances = 30) ?(seed = 42) ?(n = 600) () =
  let params = { W.Azure_mix.default with W.Azure_mix.n } in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed
    ~gen:(fun ~rng -> W.Azure_mix.generate params ~rng)
    ~competitors:(competitors ()) ()

(* Figure-4-style parameter sweep over the diurnal modulation depth: at
   amplitude 0 this degenerates to a plain Poisson stream, at 0.9 the
   troughs nearly empty — the sweep shows which policies exploit the
   drain-and-refill cycles. *)
let diurnal_amplitude_sweep ?pool ?jobs ?(instances = 30) ?(seed = 42)
    ?(amplitudes = [ 0.0; 0.3; 0.6; 0.9 ]) () =
  List.map
    (fun amplitude ->
      let params = { W.Diurnal.default with W.Diurnal.amplitude = amplitude } in
      ( amplitude,
        Runner.ratio_stats ?pool ?jobs ~instances ~seed
          ~gen:(fun ~rng -> W.Diurnal.generate params ~rng)
          ~competitors:(competitors ()) () ))
    amplitudes

let render = Ablations.render

let render_sweep ~title rows =
  String.concat ""
    (List.map
       (fun (amplitude, stats) ->
         render ~title:(Printf.sprintf "%s (amplitude %.1f)" title amplitude) stats)
       rows)
