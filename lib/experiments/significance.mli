(** Statistical head-to-head comparison of policies on a grid point.

    Figure 4's "Move To Front outperforms other Any Fit packing algorithms"
    is an ordering of sample means; this experiment makes it a tested claim:
    for a chosen baseline policy, every other policy's paired ratio samples
    are compared with the Mann–Whitney rank-sum test. *)

type row = {
  challenger : string;
  baseline : string;
  mean_gap : float;  (** challenger mean − baseline mean *)
  p_two_sided : float;
  verdict : string;  (** ["baseline wins"], ["challenger wins"] or ["tie"] *)
}

val head_to_head :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?instances:int ->
  ?seed:int ->
  ?baseline:string ->
  d:int ->
  mu:int ->
  unit ->
  row list
(** Runs the seven standard policies on the Table 2 workload at [(d, µ)]
    (defaults: 60 instances, seed 42, baseline ["mtf"]) and tests every
    other policy against the baseline at level 0.05. Instance simulation
    is sharded over the domain pool ([?pool] / [?jobs] as in
    {!Runner.ratio_samples}); results are jobs-independent. *)

type bootstrap_row = {
  b_challenger : string;
  b_baseline : string;
  b_mean_gap : float;  (** challenger mean − baseline mean (point estimate) *)
  ci_lo : float;  (** lower percentile-bootstrap confidence bound *)
  ci_hi : float;  (** upper percentile-bootstrap confidence bound *)
  resamples : int;
}

val bootstrap_gaps :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?instances:int ->
  ?seed:int ->
  ?baseline:string ->
  ?resamples:int ->
  ?confidence:float ->
  d:int ->
  mu:int ->
  unit ->
  bootstrap_row list
(** Percentile-bootstrap confidence intervals for the paired mean ratio
    gap of every challenger against the baseline (defaults: 60 instances,
    seed 42, baseline ["mtf"], 2000 resamples, 95% confidence) — a
    distribution-free complement to the rank-sum test that also reports
    effect size. Resampling keeps the instance pairing (indices are drawn
    once per resample and applied to the gap vector). Both the underlying
    simulations and the resampling loop are sharded over the domain pool;
    every resample [b] draws its indices from its own [Rng.split ~key:b]
    stream and writes slot [b], so the intervals are bit-identical
    whatever [jobs] is.
    @raise Invalid_argument if [resamples < 2] or [confidence] is outside
    [(0, 1)] (and the usual runner validation). *)

val render_bootstrap : bootstrap_row list -> string

val render : row list -> string
