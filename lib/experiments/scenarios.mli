(** Scenario experiments on the paper's motivating workloads.

    The paper's evaluation uses only the Table 2 uniform model; these runs
    exercise the same policies on the workloads §1 motivates — cloud-gaming
    sessions, VM requests with heavy-tailed lifetimes — plus the flash-crowd
    stress test. Beyond the seven non-clairvoyant policies, the clairvoyant
    extensions (daf, hff) quantify what §8's extra information buys on each
    scenario. Reported as [cost / LowerBound(i)] like Figure 4. *)

val competitors : unit -> Runner.competitor list
(** The seven standard policies plus clairvoyant daf and hff. *)

val cloud_gaming :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val vm_placement :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val flash_crowd :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> unit -> (string * Runner.stats) list

(** {1 Cloud-calibrated families}

    The four generator families added with the trace store, run through
    the same ratio harness. *)

val diurnal :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val heavy_tail :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val flash_crowd_decay :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> unit -> (string * Runner.stats) list
(** The asymmetric spike-and-decay family ({!Dvbp_workload.Flash_crowd}),
    as opposed to {!flash_crowd}, which runs the older flat-window
    {!Dvbp_workload.Bursty} model. *)

val azure_mix :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val diurnal_amplitude_sweep :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?instances:int ->
  ?seed:int ->
  ?amplitudes:float list ->
  unit ->
  (float * (string * Runner.stats) list) list
(** Figure-4-style sweep over the diurnal modulation depth (default
    amplitudes 0, 0.3, 0.6, 0.9): how much of the drain-and-refill cycle
    each policy converts into fewer open bins. *)

val render : title:string -> (string * Runner.stats) list -> string

val render_sweep :
  title:string -> (float * (string * Runner.stats) list) list -> string
(** One {!render} block per amplitude. *)
