(** Scenario experiments on the paper's motivating workloads.

    The paper's evaluation uses only the Table 2 uniform model; these runs
    exercise the same policies on the workloads §1 motivates — cloud-gaming
    sessions, VM requests with heavy-tailed lifetimes — plus the flash-crowd
    stress test. Beyond the seven non-clairvoyant policies, the clairvoyant
    extensions (daf, hff) quantify what §8's extra information buys on each
    scenario. Reported as [cost / LowerBound(i)] like Figure 4. *)

val competitors : unit -> Runner.competitor list
(** The seven standard policies plus clairvoyant daf and hff. *)

val cloud_gaming :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val vm_placement :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> ?n:int -> unit -> (string * Runner.stats) list

val flash_crowd :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> unit -> (string * Runner.stats) list

val render : title:string -> (string * Runner.stats) list -> string
