module Rng = Dvbp_prelude.Rng
module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Policy = Dvbp_core.Policy
module Engine = Dvbp_engine.Engine
module Repack = Dvbp_engine.Repack
module Opt = Dvbp_lowerbound.Opt
module Bound_check = Dvbp_analysis.Bound_check

type config = {
  d : int;
  max_items : int;
  max_time : int;
  max_duration : int;
  bin_size : int;
  steps : int;
  seed : int;
}

let default =
  { d = 1; max_items = 6; max_time = 6; max_duration = 4; bin_size = 10; steps = 400; seed = 1 }

type result = {
  instance : Instance.t;
  ratio : float;
  theoretical_bound : float option;
  steps_taken : int;
  improvements : int;
}

(* mutable genome: items as (arrival, duration, sizes) with integer genes *)
type gene = { arrival : int; duration : int; sizes : int array }

let random_gene config ~rng =
  {
    arrival = Rng.int_incl rng ~lo:0 ~hi:config.max_time;
    duration = Rng.int_incl rng ~lo:1 ~hi:config.max_duration;
    sizes = Array.init config.d (fun _ -> Rng.int_incl rng ~lo:1 ~hi:config.bin_size);
  }

let instance_of config genes =
  Instance.of_specs_exn
    ~capacity:(Vec.make ~dim:config.d config.bin_size)
    (List.map
       (fun g ->
         ( float_of_int g.arrival,
           float_of_int (g.arrival + g.duration),
           Vec.of_array g.sizes ))
       genes)

let clamp ~lo ~hi x = Int.min hi (Int.max lo x)

let mutate config ~rng genes =
  let n = List.length genes in
  let bump rng x ~lo ~hi =
    clamp ~lo ~hi (x + if Rng.bool rng then 1 else -1)
  in
  match Rng.int rng 4 with
  | 0 when n < config.max_items -> random_gene config ~rng :: genes
  | 1 when n > 1 ->
      let victim = Rng.int rng n in
      List.filteri (fun i _ -> i <> victim) genes
  | 2 when n < config.max_items ->
      (* duplicating a gene probes the "many identical items" constructions *)
      List.nth genes (Rng.int rng n) :: genes
  | _ ->
      let target = Rng.int rng n in
      List.mapi
        (fun i g ->
          if i <> target then g
          else
            match Rng.int rng 3 with
            | 0 -> { g with arrival = bump rng g.arrival ~lo:0 ~hi:config.max_time }
            | 1 -> { g with duration = bump rng g.duration ~lo:1 ~hi:config.max_duration }
            | _ ->
                let sizes = Array.copy g.sizes in
                let j = Rng.int rng config.d in
                sizes.(j) <- bump rng sizes.(j) ~lo:1 ~hi:config.bin_size;
                { g with sizes })
        genes

let score ~base ~repack config genes =
  let instance = instance_of config genes in
  match Opt.exact instance with
  | Error (`Node_limit _) -> None
  | Ok opt ->
      let p = Policy.of_name_exn base in
      let cost =
        match repack with
        | Some rc ->
            (Repack.run ~config:rc ~record_ledger:false ~policy:p instance).Repack.cost
        | None -> Engine.cost (Engine.run ~record_trace:false ~policy:p instance)
      in
      Some (cost /. opt, instance)

let validate config =
  if config.d < 1 || config.max_items < 1 || config.max_time < 0
     || config.max_duration < 1 || config.bin_size < 1 || config.steps < 0
  then invalid_arg "Worst_case_search: non-positive configuration field"

let search ~policy config =
  validate config;
  (* the policy may be a repack spec like "ff+el2" — split it first, then
     fail early on unknown/stochastic/unsupported bases *)
  let base, repack =
    match Repack.spec_of_string policy with
    | Ok (b, r) -> (b, r)
    | Error e -> invalid_arg ("Worst_case_search: " ^ e)
  in
  let probe = Policy.of_name_exn base in
  (match repack with
  | Some _ when not (Repack.supported_base probe) ->
      invalid_arg
        (Printf.sprintf
           "Worst_case_search: policy %s does not support migration (supported bases: %s)"
           base Repack.supported_base_names)
  | Some _ | None -> ());
  let rng = Rng.create ~seed:config.seed in
  let start =
    List.init
      (1 + Rng.int rng (Int.min 3 config.max_items))
      (fun _ -> random_gene config ~rng)
  in
  (* plateau-tolerant hill climbing: the walker accepts equal-score moves
     (so it can drift off ratio-1 plateaus); the best point is tracked
     separately *)
  let current_genes = ref start in
  let current_score, best0 =
    match score ~base ~repack config start with
    | Some (r, i) -> (ref r, (r, i))
    | None -> invalid_arg "Worst_case_search: initial instance too hard for exact OPT"
  in
  let best = ref best0 in
  let improvements = ref 0 in
  for _ = 1 to config.steps do
    let candidate = mutate config ~rng !current_genes in
    match score ~base ~repack config candidate with
    | Some (r, i) when r >= !current_score -. 1e-12 ->
        current_genes := candidate;
        current_score := r;
        if r > fst !best +. 1e-12 then begin
          best := (r, i);
          incr improvements
        end
    | Some _ | None -> ()
  done;
  let ratio, instance = !best in
  {
    instance;
    ratio;
    theoretical_bound =
      (* Thm 5's Any Fit lower bound does not constrain repacking —
         that headroom is the point of the family *)
      (match repack with
      | Some _ -> None
      | None ->
          Bound_check.theoretical_bound ~policy:base ~mu:(Instance.mu instance)
            ~d:(Instance.dim instance));
    steps_taken = config.steps;
    improvements = !improvements;
  }

let search_many ?pool ?jobs cases =
  (* each hill climb is inherently sequential, but the (policy, config)
     cases are independent — one task per case, results in input order *)
  Array.to_list
    (Dvbp_parallel.Parallel.map_array ?pool ?jobs
       (fun (policy, config) -> (policy, search ~policy config))
       (Array.of_list cases))

let render ~policy r =
  Printf.sprintf
    "%s: worst ratio found %.4f over %d steps (%d improvements), n=%d, mu=%.1f%s\n"
    policy r.ratio r.steps_taken r.improvements
    (Instance.size r.instance)
    (Instance.mu r.instance)
    (match r.theoretical_bound with
    | Some b -> Printf.sprintf ", proven bound at this mu: %.1f" b
    | None -> "")
