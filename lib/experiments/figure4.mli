(** Figure 4: average-case performance of Any Fit policies on the Table 2
    uniform workload.

    For every grid point [(d, µ)] the experiment draws [instances] random
    instances, runs the seven policies, and reports mean ± standard
    deviation of [cost / LowerBound(i)] — exactly the quantity the paper
    plots. The paper's grid is [d ∈ {1,2,5}] × [µ ∈ {1,2,5,10,100,200}]
    with 1000 instances per point; {!default} now runs at that full paper
    scale (instances are sharded over the domain pool, so m = 1000 is
    affordable), {!quick} keeps the grid at 60 instances per point for
    interactive use, and the bench harness's [DVBP_FIGURE4_INSTANCES]
    knob (see {!instances_from_env}) scales it down further for CI. *)

type config = {
  ds : int list;
  mus : int list;
  instances : int;
  seed : int;
  n_items : int;
  span : int;
  bin_size : int;
}

val default : config
(** Full grid, 1000 instances per point (Table 2's [m]), seed 42. *)

val paper : config
(** Alias for {!default} — the paper-scale configuration. *)

val quick : config
(** Full grid, 60 instances per point: for interactive runs. *)

val env_var : string
(** ["DVBP_FIGURE4_INSTANCES"]. *)

val instances_from_env : unit -> int option
(** The instance-count override from the [DVBP_FIGURE4_INSTANCES]
    environment variable, if set ([None] when unset or set to the empty
    string). The variable controls {e how many
    instances} each grid point draws; it is orthogonal to (and composes
    with) the [--jobs] / [DVBP_JOBS] parallelism knobs, which only control
    how those instances are sharded over domains and never change results.
    @raise Invalid_argument with a self-explanatory message if the
    variable is set to a non-integer or a value < 1 (instead of the raw
    [int_of_string] failure it used to be). *)

type cell = { d : int; mu : int; per_policy : (string * Runner.stats) list }

val run :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  config ->
  cell list
(** Cells in row-major [(d, µ)] order. [progress] receives one line per
    completed cell. Instances are sharded over the domain pool ([?jobs]
    caps the parallelism for this sweep); cell values are bit-identical
    whatever [jobs] is. *)

val render_table : cell list -> string
(** One aligned table: rows are grid points, columns are policies
    (mean±std). *)

val render_plots : cell list -> string
(** One ASCII plot per dimension count: x = µ (log scale positions by
    index), y = mean ratio, one series per policy — the shape of the
    paper's 18 panels condensed to 3. *)

val to_csv : cell list -> string
(** Long-format CSV: [d,mu,policy,mean,std,min,max,n]. *)
