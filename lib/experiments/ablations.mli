(** Ablation studies for the design choices DESIGN.md calls out.

    Three knobs the paper mentions but does not evaluate:
    - the Best Fit load measure for [d >= 2] (§2.2 lists L∞ / L1 / Lp);
    - correlation between resource dimensions (real demands are correlated;
      the paper draws dimensions independently);
    - clairvoyance (§8 future work: what does knowing departure times buy?).

    All reuse the Figure 4 methodology: mean ± std of cost over the
    Lemma 1 (i) lower bound — including its instance sharding over the
    domain pool ([?pool] / [?jobs] as in {!Runner.ratio_samples}; results
    never depend on either). *)

val best_fit_measures :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> unit ->
  (string * Runner.stats) list
(** Best Fit under L∞, L1 and L2 load measures on the Table 2 workload
    (defaults: 60 instances, seed 42). *)

val correlation_sweep :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> rhos:float list -> unit ->
  (float * (string * Runner.stats) list) list
(** mtf/ff/bf/nf ratios as dimension correlation [rho] varies. *)

val clairvoyance :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> unit ->
  (string * Runner.stats) list
(** Non-clairvoyant mtf/ff/bf against the clairvoyant duration-aligned
    policy on the same instances. *)

val denominator_tightness :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> unit ->
  (string * Runner.stats) list
(** The same Move To Front runs normalised by each available lower bound
    (span, utilisation, Lemma 1 (i) height, DFF): how much of the reported
    "competitive ratio" is really lower-bound slack. Uses a smaller [n] so
    the DFF integral stays cheap. *)

val load_sweep :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> ns:int list -> unit ->
  (float * (string * Runner.stats) list) list
(** Ratios as the offered load grows (item count [n] at fixed span) — the
    paper fixes [n = 1000]; this shows how the policy gaps widen with
    load. Keyed by [n] (as a float, for the shared sweep renderer). *)

val next_k_sweep :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> ks:int list -> unit ->
  (string * Runner.stats) list
(** Next-K Fit for each [k], bracketed by plain Next Fit ([k = 1]) and
    First Fit ([k = ∞]) — how many "recent" bins buy back First Fit's
    packing quality (§7's packing-vs-alignment trade-off). *)

val size_classes :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> unit ->
  (string * Runner.stats) list
(** First Fit vs Harmonic Fit (size-classified bins): does segregating big
    and small items help on the uniform workload? *)

val prediction_error :
  ?pool:Dvbp_parallel.Domain_pool.t -> ?jobs:int -> ?instances:int -> ?seed:int -> d:int -> mu:int -> sigmas:float list -> unit ->
  (string * Runner.stats) list
(** How much of the clairvoyant advantage survives noisy duration
    predictions: duration-aligned fit with exact hints and with log-normal
    multiplicative error for each [sigma], against the non-clairvoyant
    mtf baseline (the §8 "machine learning advice" direction). *)

val render : title:string -> (string * Runner.stats) list -> string
(** One aligned table for a single ablation result. *)

val render_sweep :
  title:string -> param:string -> (float * (string * Runner.stats) list) list -> string
