module Policy = Dvbp_core.Policy
module Load_measure = Dvbp_core.Load_measure
module Uniform_model = Dvbp_workload.Uniform_model
module Correlated = Dvbp_workload.Correlated
module Table = Dvbp_report.Table

let uniform_gen ~d ~mu =
  let params = Uniform_model.table2 ~d ~mu in
  fun ~rng -> Uniform_model.generate params ~rng

let best_fit_measures ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu () =
  let competitors =
    List.map
      (fun measure ->
        {
          Runner.label = "bf-" ^ Load_measure.name measure;
          make = (fun ~rng:_ -> Policy.best_fit ~measure ());
          oracle = Runner.No_departure_info;
          repack = None;
        })
      Load_measure.all_standard
  in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen:(uniform_gen ~d ~mu) ~competitors ()

let named_competitors names =
  List.map
    (fun name ->
      {
        Runner.label = name;
        make = (fun ~rng -> Policy.of_name_exn ~rng name);
        oracle = Runner.No_departure_info;
        repack = None;
      })
    names

let correlation_sweep ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu ~rhos () =
  let base = Uniform_model.table2 ~d ~mu in
  List.map
    (fun rho ->
      let gen ~rng = Correlated.generate { Correlated.base; rho } ~rng in
      ( rho,
        Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen
          ~competitors:(named_competitors [ "mtf"; "ff"; "bf"; "nf" ])
          () ))
    rhos

let clairvoyance ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu () =
  let clairvoyant name label =
    {
      Runner.label;
      make = (fun ~rng -> Policy.of_name_exn ~rng name);
      oracle = Runner.Exact_departures;
      repack = None;
    }
  in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen:(uniform_gen ~d ~mu)
    ~competitors:
      (named_competitors [ "mtf"; "ff"; "bf" ]
      @ [ clairvoyant "daf" "daf(clairvoyant)"; clairvoyant "hff" "hff(clairvoyant)" ])
    ()

let denominator_tightness ?pool ?jobs ?(instances = 30) ?(seed = 42) ~d ~mu () =
  let params = { (Uniform_model.table2 ~d ~mu) with Uniform_model.n = 300 } in
  let gen ~rng = Uniform_model.generate params ~rng in
  let mtf = named_competitors [ "mtf" ] in
  let with_denominator label denominator =
    match
      Runner.ratio_stats ?pool ?jobs ~denominator ~instances ~seed ~gen ~competitors:mtf ()
    with
    | [ (_, stats) ] -> (label, stats)
    | _ -> assert false
  in
  [
    with_denominator "vs span (iii)" Dvbp_lowerbound.Bounds.span;
    with_denominator "vs utilisation (ii)" Dvbp_lowerbound.Bounds.utilisation;
    with_denominator "vs height (i)" Dvbp_lowerbound.Bounds.height_integral;
    with_denominator "vs DFF" Dvbp_lowerbound.Dff.integral;
  ]

let load_sweep ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu ~ns () =
  List.map
    (fun n ->
      let params = { (Uniform_model.table2 ~d ~mu) with Uniform_model.n } in
      let gen ~rng = Uniform_model.generate params ~rng in
      ( float_of_int n,
        Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen
          ~competitors:(named_competitors [ "mtf"; "ff"; "bf"; "nf"; "wf" ])
          () ))
    ns

let next_k_sweep ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu ~ks () =
  let nfk k =
    {
      Runner.label = Printf.sprintf "nf%d" k;
      make = (fun ~rng:_ -> Policy.next_k_fit ~k ());
      oracle = Runner.No_departure_info;
      repack = None;
    }
  in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen:(uniform_gen ~d ~mu)
    ~competitors:(List.map nfk ks @ named_competitors [ "ff" ])
    ()

let size_classes ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu () =
  let capacity = Uniform_model.capacity (Uniform_model.table2 ~d ~mu) in
  let harmonic =
    {
      Runner.label = "harmonic";
      make = (fun ~rng:_ -> Policy.harmonic_fit ~capacity ());
      oracle = Runner.No_departure_info;
      repack = None;
    }
  in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen:(uniform_gen ~d ~mu)
    ~competitors:(named_competitors [ "ff"; "mtf" ] @ [ harmonic ])
    ()

let prediction_error ?pool ?jobs ?(instances = 60) ?(seed = 42) ~d ~mu ~sigmas () =
  let daf_with oracle label =
    {
      Runner.label;
      make = (fun ~rng -> Policy.of_name_exn ~rng "daf");
      oracle;
      repack = None;
    }
  in
  let competitors =
    named_competitors [ "mtf" ]
    @ daf_with Runner.Exact_departures "daf-exact"
      :: List.map
           (fun sigma ->
             daf_with (Runner.Noisy_departures sigma)
               (Printf.sprintf "daf-noise%.1f" sigma))
           sigmas
  in
  Runner.ratio_stats ?pool ?jobs ~instances ~seed ~gen:(uniform_gen ~d ~mu) ~competitors ()

let render ~title results =
  title ^ "\n"
  ^ Table.render
      ~header:[ "policy"; "mean"; "std"; "min"; "max"; "n" ]
      ~rows:
        (List.map
           (fun (label, (s : Runner.stats)) ->
             [
               label;
               Printf.sprintf "%.4f" s.Runner.mean;
               Printf.sprintf "%.4f" s.Runner.std;
               Printf.sprintf "%.4f" s.Runner.min;
               Printf.sprintf "%.4f" s.Runner.max;
               string_of_int s.Runner.n;
             ])
           results)

let render_sweep ~title ~param sweep =
  let policies = match sweep with [] -> [] | (_, r) :: _ -> List.map fst r in
  title ^ "\n"
  ^ Table.render
      ~header:(param :: policies)
      ~rows:
        (List.map
           (fun (value, results) ->
             Printf.sprintf "%.2f" value
             :: List.map
                  (fun p ->
                    let s = List.assoc p results in
                    Printf.sprintf "%.3f±%.3f" s.Runner.mean s.Runner.std)
                  policies)
           sweep)
