(** Shared experiment plumbing: run a set of competitors over a stream of
    random instances and accumulate cost/lower-bound ratios.

    Randomness is fully deterministic: every instance and every stochastic
    policy gets its own stream derived from the root seed with {!Dvbp_prelude.Rng.split},
    so single results can be replayed in isolation and adding a competitor
    never perturbs the instances.

    Instances are embarrassingly parallel and are sharded over the
    {!Dvbp_parallel.Domain_pool} ([?pool] defaults to the shared pool,
    [?jobs] to its size — override either, or set [DVBP_JOBS]). Instance
    [i] always derives its generators from [split ~key:i] and writes into
    slot [i] of the pre-sized sample arrays, so the output is
    {b bit-identical to the sequential run and independent of the number
    of domains} — the determinism regression tests pin this. *)

type stats = { mean : float; std : float; min : float; max : float; n : int }

type oracle =
  | No_departure_info  (** the paper's non-clairvoyant setting *)
  | Exact_departures  (** fully clairvoyant (§8) *)
  | Noisy_departures of float
      (** departure hints with multiplicative log-normal error of the given
          sigma — the "machine-learned predictions" setting of §8 / [5] *)

type competitor = {
  label : string;
  make : rng:Dvbp_prelude.Rng.t -> Dvbp_core.Policy.t;
      (** fresh policy per run; [rng] feeds stochastic policies *)
  oracle : oracle;  (** what the policy gets to know about departures *)
  repack : Dvbp_engine.Repack.config option;
      (** when set, runs through {!Dvbp_engine.Repack} (budgeted
          migration) instead of the plain engine; the oracle is ignored
          (the repacking bases are non-clairvoyant) *)
}

val standard_competitors : unit -> competitor list
(** The paper's seven, in Figure 4's legend order:
    mtf, ff, bf, nf, wf, lf, rf (all non-clairvoyant). *)

val repack_competitor :
  base:string -> Dvbp_engine.Repack.config -> (competitor, string) result
(** A budgeted-migration competitor over the named base policy, labelled
    with {!Dvbp_engine.Repack.spec_to_string}. Errors when the base is
    unknown or does not support migration. *)

val competitor_of_name : string -> (competitor, string) result
(** Standard names plus the clairvoyant extensions ["daf"]
    (duration-aligned fit) and ["hff"] (hybrid first fit), plus repack
    specs like ["ff+el2"] or ["bf+both8"]
    (see {!Dvbp_engine.Repack.spec_of_string}). *)

val ratio_samples :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?denominator:(Dvbp_core.Instance.t -> float) ->
  instances:int ->
  seed:int ->
  gen:(rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t) ->
  competitors:competitor list ->
  unit ->
  (string * float array) list
(** The raw per-instance ratios, one array per competitor (index [i] of
    every array is the same random instance — paired samples, as needed by
    the significance tests). Same validation rules as {!ratio_stats}. *)

val ratio_stats :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?denominator:(Dvbp_core.Instance.t -> float) ->
  instances:int ->
  seed:int ->
  gen:(rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t) ->
  competitors:competitor list ->
  unit ->
  (string * stats) list
(** Runs every competitor on [instances] instances drawn with [gen] and
    returns the per-competitor distribution of [cost / denominator]
    (default denominator: the Lemma 1 (i) lower bound, as in the paper's
    experiments). Results are keyed by competitor label, in input order.
    @raise Invalid_argument if [instances <= 0] or labels collide. *)

(** {1 Reduced-vs-raw sweeps} *)

type reduction_delta = {
  raw : stats;  (** [cost / denominator] on the raw instances *)
  reduced : stats;
      (** [cost / denominator] running on the {e reduced} instances —
          same denominator (the raw instance's lower bound), so the two
          columns are directly comparable; the lifted packing's cost
          equals the reduced run's cost exactly *)
}

type reduction_report = {
  deltas : (string * reduction_delta) list;  (** competitor label order *)
  lossless : int;  (** instances whose certificate was lossless *)
  mean_item_shrink : float;
      (** mean over instances of [reduced_items / original_items] *)
  max_inflation : float;
      (** largest certified size inflation over all instances *)
}

val reduction_report :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?denominator:(Dvbp_core.Instance.t -> float) ->
  ?config:Dvbp_reduce.Reduce.config ->
  instances:int ->
  seed:int ->
  gen:(rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t) ->
  competitors:competitor list ->
  unit ->
  reduction_report
(** Runs every competitor on each instance twice — raw, and through
    {!Dvbp_reduce.Reduce.apply} with [config] (default
    {!Dvbp_reduce.Reduce.default_config}, the exact twin-merge) — and
    reports both ratio distributions plus the certificate summary.
    Sharding and rng discipline are identical to {!ratio_samples}
    (paired, bit-identical at any [jobs]).
    @raise Invalid_argument if [instances <= 0] or labels collide. *)
