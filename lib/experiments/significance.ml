module Rng = Dvbp_prelude.Rng
module Parallel = Dvbp_parallel.Parallel
module Uniform_model = Dvbp_workload.Uniform_model
module Compare = Dvbp_stats.Compare
module Summary = Dvbp_stats.Summary
module Table = Dvbp_report.Table

type row = {
  challenger : string;
  baseline : string;
  mean_gap : float;
  p_two_sided : float;
  verdict : string;
}

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let paired_samples ?pool ?jobs ~instances ~seed ~baseline ~d ~mu () =
  let params = Uniform_model.table2 ~d ~mu in
  let samples =
    Runner.ratio_samples ?pool ?jobs ~instances ~seed
      ~gen:(fun ~rng -> Uniform_model.generate params ~rng)
      ~competitors:(Runner.standard_competitors ())
      ()
  in
  let base =
    match List.assoc_opt baseline samples with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Significance: unknown baseline %S" baseline)
  in
  (samples, base)

let head_to_head ?pool ?jobs ?(instances = 60) ?(seed = 42) ?(baseline = "mtf")
    ~d ~mu () =
  let samples, base =
    paired_samples ?pool ?jobs ~instances ~seed ~baseline ~d ~mu ()
  in
  List.filter_map
    (fun (label, s) ->
      if label = baseline then None
      else
        let r = Compare.rank_sum s base in
        let verdict =
          if Compare.significantly_less base s then baseline ^ " wins"
          else if Compare.significantly_less s base then label ^ " wins"
          else "tie"
        in
        Some
          {
            challenger = label;
            baseline;
            mean_gap = mean s -. mean base;
            p_two_sided = r.Compare.p_two_sided;
            verdict;
          })
    samples

type bootstrap_row = {
  b_challenger : string;
  b_baseline : string;
  b_mean_gap : float;
  ci_lo : float;
  ci_hi : float;
  resamples : int;
}

let bootstrap_gaps ?pool ?jobs ?(instances = 60) ?(seed = 42) ?(baseline = "mtf")
    ?(resamples = 2000) ?(confidence = 0.95) ~d ~mu () =
  if resamples < 2 then invalid_arg "Significance.bootstrap_gaps: resamples < 2";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Significance.bootstrap_gaps: confidence not in (0, 1)";
  let samples, base =
    paired_samples ?pool ?jobs ~instances ~seed ~baseline ~d ~mu ()
  in
  let root = Rng.create ~seed in
  let n = instances in
  let nf = float_of_int n in
  List.filter_map
    (fun (label, s) ->
      if label = baseline then None
      else begin
        (* paired gaps: resampling instance indices keeps the pairing *)
        let gaps = Array.init n (fun i -> s.(i) -. base.(i)) in
        let point = Array.fold_left ( +. ) 0.0 gaps /. nf in
        let means = Array.make resamples 0.0 in
        (* one split per (challenger, resample): slot-indexed writes keep
           this deterministic and jobs-independent, like the runner *)
        let lane = Rng.split (Rng.split root ~key:0x6273) ~key:(Hashtbl.hash label) in
        Parallel.chunked_for ?pool ?jobs ~chunk:64 ~n:resamples (fun b ->
            let rng = Rng.split lane ~key:b in
            let acc = ref 0.0 in
            for _ = 1 to n do
              acc := !acc +. gaps.(Rng.int rng n)
            done;
            means.(b) <- !acc /. nf);
        Array.sort Float.compare means;
        let alpha = 1.0 -. confidence in
        Some
          {
            b_challenger = label;
            b_baseline = baseline;
            b_mean_gap = point;
            ci_lo = Summary.quantile means (alpha /. 2.0);
            ci_hi = Summary.quantile means (1.0 -. (alpha /. 2.0));
            resamples;
          }
      end)
    samples

let render_bootstrap rows =
  Table.render
    ~header:[ "challenger"; "baseline"; "mean gap"; "95% CI"; "resamples"; "verdict" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.b_challenger;
             r.b_baseline;
             Printf.sprintf "%+.4f" r.b_mean_gap;
             Printf.sprintf "[%+.4f, %+.4f]" r.ci_lo r.ci_hi;
             string_of_int r.resamples;
             (if r.ci_lo > 0.0 then r.b_baseline ^ " wins"
              else if r.ci_hi < 0.0 then r.b_challenger ^ " wins"
              else "tie");
           ])
         rows)

let render rows =
  Table.render
    ~header:[ "challenger"; "baseline"; "mean gap"; "p (two-sided)"; "verdict" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.challenger;
             r.baseline;
             Printf.sprintf "%+.4f" r.mean_gap;
             Printf.sprintf "%.4g" r.p_two_sided;
             r.verdict;
           ])
         rows)
