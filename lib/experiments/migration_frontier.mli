(** The migration-budget/cost frontier: how much does a repacking policy
    buy at each budget [k]?

    One sweep runs the seven Any Fit references plus the configured
    repack family at budgets [ks] over the paper's uniform workload,
    charging everything against the Lemma 1 height-integral lower bound;
    a second, tiny-instance sweep ([d = 1], low concurrency) charges
    against the {e exact} optimum, where the branch-and-bound solver is
    feasible. Both tables use {!Runner.ratio_stats} — paired instances,
    bit-identical at any [--jobs].

    EXPERIMENTS.md §migration-frontier commits one rendered output of
    this module together with the reproduction command
    ([dvbp frontier]). *)

type frontier = {
  base : string;  (** base policy of the repack family *)
  strategy : Dvbp_engine.Repack.strategy;
  ks : int list;  (** budgets swept, e.g. [\[0; 1; 2; 4; 8\]] *)
  params : Dvbp_workload.Uniform_model.params;  (** LB-table workload *)
  lb_rows : (string * Runner.stats) list;
      (** [cost / height-integral LB]: the seven Any Fit policies, then
          one row per budget (labels like ["ff+both2"]) *)
  opt_params : Dvbp_workload.Uniform_model.params;
      (** exact-OPT-table workload (small) *)
  opt_rows : (string * Runner.stats) list;  (** [cost / exact OPT] *)
}

val run :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  ?instances:int ->
  ?seed:int ->
  ?base:string ->
  ?strategy:Dvbp_engine.Repack.strategy ->
  ?ks:int list ->
  ?d:int ->
  ?mu:int ->
  ?n:int ->
  unit ->
  frontier
(** Defaults: 40 instances, seed 42, base ["ff"], strategy
    {!Dvbp_engine.Repack.Combined}, budgets [0;1;2;4;8], uniform
    workload [d = 2], [mu = 100], [n = 200] (span 1000, bin 100).
    @raise Invalid_argument on an empty or out-of-range budget list or
    an unsupported base. *)

val render : frontier -> string
(** Both tables plus the best-Any-Fit summary line, in the repo's
    standard table format. *)
