(** Randomised search for bad instances: an empirical probe of the gap
    between the paper's lower and upper bounds (§8's first open problem).

    Hill-climbing over small instances: start from a random instance, apply
    local mutations (perturb a size, duration or arrival; add or drop an
    item), and keep a mutation when it increases [cost(policy) / OPT_exact]
    (the exact optimum is computable at this scale). The search is a probe,
    not a proof — but it recovers ratios well above the random-instance
    average and its results can be compared against the §6 gadgets and the
    theoretical bounds. Fully deterministic for a given seed. *)

type config = {
  d : int;
  max_items : int;  (** instance size cap — keep small: exact OPT inside *)
  max_time : int;  (** arrivals in [\[0, max_time\]], integer *)
  max_duration : int;  (** durations in [\[1, max_duration\]]; bounds µ *)
  bin_size : int;
  steps : int;  (** mutation attempts *)
  seed : int;
}

val default : config
(** d=1, ≤ 6 items, horizon 6, µ ≤ 4, bin 10, 400 steps. *)

type result = {
  instance : Dvbp_core.Instance.t;  (** the worst instance found *)
  ratio : float;  (** [cost / OPT_exact] on it *)
  theoretical_bound : float option;  (** the policy's proven bound at this µ, d *)
  steps_taken : int;
  improvements : int;  (** accepted mutations *)
}

val search : policy:string -> config -> result
(** [policy] is a plain policy name or a repack spec like ["ff+el2"]
    (see {!Dvbp_engine.Repack.spec_of_string}) — the search then attacks
    the budgeted-migration policy, and [theoretical_bound] is [None]
    because Thm 5's Any Fit bound does not constrain repacking.
    @raise Invalid_argument for unknown policies, repack specs over
    unsupported bases, or non-positive config fields. Stochastic
    policies are not supported (ratio must be a pure function of the
    instance). *)

val search_many :
  ?pool:Dvbp_parallel.Domain_pool.t ->
  ?jobs:int ->
  (string * config) list ->
  (string * result) list
(** Run one {!search} per [(policy, config)] case, sharded over the
    domain pool (each climb is sequential; the cases are independent).
    Results come back in input order and are identical to running each
    {!search} alone — the climbs share no random state. *)

val render : policy:string -> result -> string
