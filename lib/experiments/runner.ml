module Rng = Dvbp_prelude.Rng
module Policy = Dvbp_core.Policy
module Engine = Dvbp_engine.Engine
module Bounds = Dvbp_lowerbound.Bounds
module Running = Dvbp_stats.Running

type stats = { mean : float; std : float; min : float; max : float; n : int }

type oracle = No_departure_info | Exact_departures | Noisy_departures of float

type competitor = {
  label : string;
  make : rng:Rng.t -> Policy.t;
  oracle : oracle;
}

let plain name = {
  label = name;
  make = (fun ~rng -> Policy.of_name_exn ~rng name);
  oracle = No_departure_info;
}

let standard_competitors () = List.map plain Policy.standard_names

let competitor_of_name name =
  match String.lowercase_ascii name with
  | "daf" | "duration-aligned" ->
      Ok
        {
          label = "daf";
          make = (fun ~rng -> Policy.of_name_exn ~rng "daf");
          oracle = Exact_departures;
        }
  | "hff" | "hybrid-first-fit" ->
      Ok
        {
          label = "hff";
          make = (fun ~rng -> Policy.of_name_exn ~rng "hff");
          oracle = Exact_departures;
        }
  | other -> (
      (* probe the registry so unknown names fail here, not mid-experiment *)
      match Policy.of_name ~rng:(Rng.create ~seed:0) other with
      | Ok _ -> Ok (plain other)
      | Error e -> Error e)

let ratio_samples ?pool ?jobs ?(denominator = Bounds.height_integral) ~instances
    ~seed ~gen ~competitors () =
  if instances <= 0 then invalid_arg "Runner.ratio_samples: instances <= 0";
  let labels = List.map (fun c -> c.label) competitors in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels then
    invalid_arg "Runner.ratio_samples: duplicate competitor labels";
  let root = Rng.create ~seed in
  let comps = Array.of_list competitors in
  let outs = Array.map (fun _ -> Array.make instances 0.0) comps in
  (* Instances are sharded over the domain pool. Instance [i] derives every
     stream it needs from [Rng.split _ ~key:i] off the root — splitting only
     reads the parent's immutable path, so concurrent splits are safe — and
     writes only slot [i] of each output array: the result is bit-identical
     to the sequential loop whatever the number of domains. *)
  let run_instance i =
    let inst_rng = Rng.split (Rng.split root ~key:0) ~key:i in
    let instance = gen ~rng:inst_rng in
    let lb = denominator instance in
    Array.iteri
      (fun pi c ->
        let policy_rng = Rng.split (Rng.split (Rng.split root ~key:1) ~key:i) ~key:pi in
        let policy = c.make ~rng:policy_rng in
        let departure_oracle =
          match c.oracle with
          | No_departure_info -> fun _ -> None
          | Exact_departures ->
              fun (r : Dvbp_core.Item.t) -> Some r.Dvbp_core.Item.departure
          | Noisy_departures sigma ->
              let noise_rng = Rng.split policy_rng ~key:0x6e6f in
              let floor_duration = 1e-6 in
              fun (r : Dvbp_core.Item.t) ->
                let duration = Dvbp_core.Item.duration r in
                let predicted =
                  duration *. exp (Rng.normal noise_rng ~mean:0.0 ~sigma)
                in
                Some (r.Dvbp_core.Item.arrival +. Float.max floor_duration predicted)
        in
        (* ratio sweeps never read the trace; skip recording it *)
        let run = Engine.run ~departure_oracle ~record_trace:false ~policy instance in
        outs.(pi).(i) <- Engine.cost run /. lb)
      comps
  in
  Dvbp_parallel.Parallel.chunked_for ?pool ?jobs ~n:instances run_instance;
  List.init (Array.length comps) (fun pi -> (comps.(pi).label, outs.(pi)))

let ratio_stats ?pool ?jobs ?denominator ~instances ~seed ~gen ~competitors () =
  let samples =
    ratio_samples ?pool ?jobs ?denominator ~instances ~seed ~gen ~competitors ()
  in
  List.map
    (fun (label, out) ->
      let acc = Running.create () in
      Array.iter (Running.add acc) out;
      ( label,
        {
          mean = Running.mean acc;
          std = Running.stddev acc;
          min = Running.min_value acc;
          max = Running.max_value acc;
          n = Running.count acc;
        } ))
    samples
