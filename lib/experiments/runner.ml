module Rng = Dvbp_prelude.Rng
module Policy = Dvbp_core.Policy
module Engine = Dvbp_engine.Engine
module Repack = Dvbp_engine.Repack
module Reduce = Dvbp_reduce.Reduce
module Bounds = Dvbp_lowerbound.Bounds
module Running = Dvbp_stats.Running

type stats = { mean : float; std : float; min : float; max : float; n : int }

type oracle = No_departure_info | Exact_departures | Noisy_departures of float

type competitor = {
  label : string;
  make : rng:Rng.t -> Policy.t;
  oracle : oracle;
  repack : Repack.config option;
}

let plain name = {
  label = name;
  make = (fun ~rng -> Policy.of_name_exn ~rng name);
  oracle = No_departure_info;
  repack = None;
}

let standard_competitors () = List.map plain Policy.standard_names

let repack_competitor ~base config =
  match Policy.of_name ~rng:(Rng.create ~seed:0) base with
  | Error e -> Error e
  | Ok probe ->
      if not (Repack.supported_base probe) then
        Error
          (Printf.sprintf
             "policy %s does not support migration (supported bases: %s)" base
             Repack.supported_base_names)
      else
        Ok
          {
            label = Repack.spec_to_string ~base config;
            make = (fun ~rng -> Policy.of_name_exn ~rng base);
            oracle = No_departure_info;
            repack = Some config;
          }

let competitor_of_name name =
  match String.lowercase_ascii name with
  | "daf" | "duration-aligned" ->
      Ok
        {
          label = "daf";
          make = (fun ~rng -> Policy.of_name_exn ~rng "daf");
          oracle = Exact_departures;
          repack = None;
        }
  | "hff" | "hybrid-first-fit" ->
      Ok
        {
          label = "hff";
          make = (fun ~rng -> Policy.of_name_exn ~rng "hff");
          oracle = Exact_departures;
          repack = None;
        }
  | other -> (
      match Repack.spec_of_string other with
      | Error e -> Error e
      | Ok (base, Some config) -> repack_competitor ~base config
      | Ok (_, None) -> (
          (* probe the registry so unknown names fail here, not mid-experiment *)
          match Policy.of_name ~rng:(Rng.create ~seed:0) other with
          | Ok _ -> Ok (plain other)
          | Error e -> Error e))

let ratio_samples ?pool ?jobs ?(denominator = Bounds.height_integral) ~instances
    ~seed ~gen ~competitors () =
  if instances <= 0 then invalid_arg "Runner.ratio_samples: instances <= 0";
  let labels = List.map (fun c -> c.label) competitors in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels then
    invalid_arg "Runner.ratio_samples: duplicate competitor labels";
  let root = Rng.create ~seed in
  let comps = Array.of_list competitors in
  let outs = Array.map (fun _ -> Array.make instances 0.0) comps in
  (* Instances are sharded over the domain pool. Instance [i] derives every
     stream it needs from [Rng.split _ ~key:i] off the root — splitting only
     reads the parent's immutable path, so concurrent splits are safe — and
     writes only slot [i] of each output array: the result is bit-identical
     to the sequential loop whatever the number of domains. *)
  let run_instance i =
    let inst_rng = Rng.split (Rng.split root ~key:0) ~key:i in
    let instance = gen ~rng:inst_rng in
    let lb = denominator instance in
    Array.iteri
      (fun pi c ->
        let policy_rng = Rng.split (Rng.split (Rng.split root ~key:1) ~key:i) ~key:pi in
        let policy = c.make ~rng:policy_rng in
        let departure_oracle =
          match c.oracle with
          | No_departure_info -> fun _ -> None
          | Exact_departures ->
              fun (r : Dvbp_core.Item.t) -> Some r.Dvbp_core.Item.departure
          | Noisy_departures sigma ->
              let noise_rng = Rng.split policy_rng ~key:0x6e6f in
              let floor_duration = 1e-6 in
              fun (r : Dvbp_core.Item.t) ->
                let duration = Dvbp_core.Item.duration r in
                let predicted =
                  duration *. exp (Rng.normal noise_rng ~mean:0.0 ~sigma)
                in
                Some (r.Dvbp_core.Item.arrival +. Float.max floor_duration predicted)
        in
        let cost =
          match c.repack with
          | Some config ->
              (* repacking bases are non-clairvoyant; the oracle is unused *)
              (Repack.run ~config ~record_ledger:false ~policy instance).Repack.cost
          | None ->
              (* ratio sweeps never read the trace; skip recording it *)
              Engine.cost
                (Engine.run ~departure_oracle ~record_trace:false ~policy instance)
        in
        outs.(pi).(i) <- cost /. lb)
      comps
  in
  Dvbp_parallel.Parallel.chunked_for ?pool ?jobs ~n:instances run_instance;
  List.init (Array.length comps) (fun pi -> (comps.(pi).label, outs.(pi)))

let summarize out =
  let acc = Running.create () in
  Array.iter (Running.add acc) out;
  {
    mean = Running.mean acc;
    std = Running.stddev acc;
    min = Running.min_value acc;
    max = Running.max_value acc;
    n = Running.count acc;
  }

let ratio_stats ?pool ?jobs ?denominator ~instances ~seed ~gen ~competitors () =
  ratio_samples ?pool ?jobs ?denominator ~instances ~seed ~gen ~competitors ()
  |> List.map (fun (label, out) -> (label, summarize out))

type reduction_delta = { raw : stats; reduced : stats }

type reduction_report = {
  deltas : (string * reduction_delta) list;
  lossless : int;
  mean_item_shrink : float;
  max_inflation : float;
}

let reduction_report ?pool ?jobs ?(denominator = Bounds.height_integral)
    ?(config = Reduce.default_config) ~instances ~seed ~gen ~competitors () =
  if instances <= 0 then invalid_arg "Runner.reduction_report: instances <= 0";
  let labels = List.map (fun c -> c.label) competitors in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels then
    invalid_arg "Runner.reduction_report: duplicate competitor labels";
  let root = Rng.create ~seed in
  let comps = Array.of_list competitors in
  let raw_out = Array.map (fun _ -> Array.make instances 0.0) comps in
  let red_out = Array.map (fun _ -> Array.make instances 0.0) comps in
  let lossless = Array.make instances false in
  let shrink = Array.make instances 0.0 in
  let inflation = Array.make instances 1.0 in
  (* Same sharding discipline as [ratio_samples]: instance [i] derives its
     streams from [split ~key:i] and writes only slot [i] — bit-identical
     at any [jobs]. Both runs are charged against the {e raw} instance's
     lower bound, so the reduced column reads directly as "what the
     reduction cost (or saved) on the original problem" (the lifted
     packing's cost equals the reduced run's cost exactly). *)
  let run_instance i =
    let inst_rng = Rng.split (Rng.split root ~key:0) ~key:i in
    let instance = gen ~rng:inst_rng in
    let lb = denominator instance in
    let reduction = Reduce.apply ~config instance in
    let cert = Reduce.certificate reduction in
    lossless.(i) <- Reduce.Certificate.is_lossless cert;
    shrink.(i) <-
      float_of_int cert.Reduce.Certificate.reduced_items
      /. float_of_int cert.Reduce.Certificate.original_items;
    inflation.(i) <- Reduce.Certificate.size_inflation cert;
    Array.iteri
      (fun pi c ->
        let policy_rng = Rng.split (Rng.split (Rng.split root ~key:1) ~key:i) ~key:pi in
        let cost_on inst =
          (* a fresh policy per run: policies carry private mutable state *)
          let policy = c.make ~rng:policy_rng in
          match c.repack with
          | Some config ->
              (Repack.run ~config ~record_ledger:false ~policy inst).Repack.cost
          | None -> Engine.cost (Engine.run ~record_trace:false ~policy inst)
        in
        raw_out.(pi).(i) <- cost_on instance /. lb;
        red_out.(pi).(i) <- cost_on (Reduce.instance reduction) /. lb)
      comps
  in
  Dvbp_parallel.Parallel.chunked_for ?pool ?jobs ~n:instances run_instance;
  let deltas =
    List.init (Array.length comps) (fun pi ->
        ( comps.(pi).label,
          { raw = summarize raw_out.(pi); reduced = summarize red_out.(pi) } ))
  in
  let n_lossless = Array.fold_left (fun a b -> if b then a + 1 else a) 0 lossless in
  let mean_item_shrink =
    Array.fold_left ( +. ) 0.0 shrink /. float_of_int instances
  in
  let max_inflation = Array.fold_left Float.max 1.0 inflation in
  { deltas; lossless = n_lossless; mean_item_shrink; max_inflation }
