(** A growable array with O(1) amortised append and in-place filtering.

    OCaml 5.1 has no [Stdlib.Dynarray] yet; this is the small subset the
    simulation hot path needs. A [dummy] element fills unused slots so
    that removed elements do not leak through the backing array.

    Used by the engine's open-bin registry and the conformance replayer;
    all traversals run in index order without allocating. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** An empty array. @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** No bounds check — undefined on indices outside [0, length).
    For hand-written scan loops that already bound the index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument out of bounds. *)

val push : 'a t -> 'a -> unit
(** Appends, growing the backing array geometrically when full. *)

val truncate : 'a t -> int -> unit
(** Drops elements beyond the new length (slots are reset to [dummy]).
    @raise Invalid_argument if the length is negative or grows. *)

val clear : 'a t -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Index order, allocation-free. *)

val fold : 'a t -> ('acc -> 'a -> 'acc) -> 'acc -> 'acc
(** Index order. *)

val find : 'a t -> ('a -> bool) -> 'a option
(** First match in index order, early exit. *)

val exists : 'a t -> ('a -> bool) -> bool

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keeps matching elements, preserving order; O(length), no allocation. *)

val to_list : 'a t -> 'a list

val of_list : dummy:'a -> 'a list -> 'a t
