(* Open-addressing hash table for non-negative int keys, no deletion.
   See the .mli for why stdlib Hashtbl is too slow for the session's
   per-item bookkeeping. *)

type 'a t = {
  mutable keys : int array;  (* -1 marks an empty slot *)
  mutable vals : 'a array;  (* dummy-filled where empty *)
  dummy : 'a;
  mutable size : int;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
}

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (2 * acc)

let create ?(expected = 16) ~dummy () =
  if expected < 0 then invalid_arg "Int_table.create: negative size hint";
  (* keep load factor <= 1/2 *)
  let cap = next_pow2 (2 * max 8 expected) 16 in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap dummy;
    dummy;
    size = 0;
    mask = cap - 1;
  }

let length t = t.size

(* Fibonacci hashing spreads consecutive ids across the table; the probe
   sequence is linear, which keys clustered by the hash keep cache-local. *)
let[@inline] start_slot t k = (k * 0x9E3779B1) land t.mask

(* slot holding [k], or the empty slot where it would be inserted *)
let rec probe_from (keys : int array) mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = k || kk = -1 then i else probe_from keys mask k ((i + 1) land mask)

let[@inline] probe t k = probe_from t.keys t.mask k (start_slot t k)

let mem t k =
  if k < 0 then invalid_arg "Int_table.mem: negative key";
  Array.unsafe_get t.keys (probe t k) = k

let find t k =
  if k < 0 then invalid_arg "Int_table.find: negative key";
  let i = probe t k in
  if Array.unsafe_get t.keys i = k then Array.unsafe_get t.vals i
  else raise Not_found

let find_opt t k =
  if k < 0 then invalid_arg "Int_table.find_opt: negative key";
  let i = probe t k in
  if Array.unsafe_get t.keys i = k then Some (Array.unsafe_get t.vals i)
  else None

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then begin
      let j = probe t k in
      Array.unsafe_set t.keys j k;
      Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
    end
  done

let replace t k v =
  if k < 0 then invalid_arg "Int_table.replace: negative key";
  let i = probe t k in
  if Array.unsafe_get t.keys i = k then Array.unsafe_set t.vals i v
  else begin
    Array.unsafe_set t.keys i k;
    Array.unsafe_set t.vals i v;
    t.size <- t.size + 1;
    if 2 * t.size > t.mask then grow t
  end

let fold t f init =
  let acc = ref init in
  for i = 0 to Array.length t.keys - 1 do
    let k = Array.unsafe_get t.keys i in
    if k >= 0 then acc := f k (Array.unsafe_get t.vals i) !acc
  done;
  !acc

let iter t f = fold t (fun k v () -> f k v) ()
