type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (* fills unused slots so freed elements can be collected *)
}

let create ?(capacity = 8) ~dummy () =
  if capacity < 1 then invalid_arg "Dynarray.create: capacity < 1";
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.get: index out of bounds";
  Array.unsafe_get t.data i

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.set: index out of bounds";
  Array.unsafe_set t.data i x

let ensure_capacity t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let cap' = Int.max n (Int.max 8 (2 * cap)) in
    let data = Array.make cap' t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Dynarray.truncate: bad length";
  for i = n to t.len - 1 do
    Array.unsafe_set t.data i t.dummy
  done;
  t.len <- n

let clear t = truncate t 0

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold t f init =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let find t p =
  let n = t.len in
  let rec go i =
    if i >= n then None
    else
      let x = Array.unsafe_get t.data i in
      if p x then Some x else go (i + 1)
  in
  go 0

let exists t p = Option.is_some (find t p)

(* In-place stable filter: keeps elements satisfying [p], preserves order. *)
let filter_in_place t p =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = Array.unsafe_get t.data i in
    if p x then begin
      Array.unsafe_set t.data !kept x;
      incr kept
    end
  done;
  truncate t !kept

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Array.unsafe_get t.data i :: acc) in
  go (t.len - 1) []

let of_list ~dummy xs =
  let t = create ~capacity:(Int.max 8 (List.length xs)) ~dummy () in
  List.iter (push t) xs;
  t
