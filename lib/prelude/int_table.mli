(** Open-addressing hash table for non-negative int keys, without
    deletion.

    The simulation session does four keyed operations per item (duplicate
    check, insert, departure lookup, finish lookup); [Stdlib.Hashtbl]
    spends a C call on hashing plus generic equality per probe, which was
    a measurable slice of every run. This table inlines a multiplicative
    hash and compares keys as plain ints. Slots are never freed — the
    session only ever accumulates items — which keeps probing trivial.

    A [dummy] value fills empty value slots so absent entries do not leak
    old values. All operations raise [Invalid_argument] on negative keys. *)

type 'a t

val create : ?expected:int -> dummy:'a -> unit -> 'a t
(** [expected] pre-sizes the table (it grows automatically regardless). *)

val length : _ t -> int

val mem : _ t -> int -> bool

val find : 'a t -> int -> 'a
(** @raise Not_found when absent. *)

val find_opt : 'a t -> int -> 'a option

val replace : 'a t -> int -> 'a -> unit
(** Inserts or overwrites. *)

val fold : 'a t -> (int -> 'a -> 'acc -> 'acc) -> 'acc -> 'acc
(** Unspecified order. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
