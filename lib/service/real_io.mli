(** The default {!Io} backend: [out_channel] + [Unix].

    This is exactly the I/O the service performed before the backend was
    injectable, plus directory fsyncs: {!Io.t.fsync_dir} opens the directory
    read-only and fsyncs its fd, so renames and creations survive a power
    cut (best-effort — filesystems that refuse to fsync a directory degrade
    gracefully). All service entry points default to this backend. *)

val v : Io.t
