(** Replay a workload instance against a live {!Server} and measure it.

    The instance's arrivals and departures are turned into a time-ordered
    protocol script (departures before arrivals at equal timestamps — the
    half-open interval semantics the engine uses), every request's reply is
    checked against a deterministic shadow session, and throughput plus a
    client-side latency summary are reported.

    {!run} drives a real server over an in-process channel pair (two OS
    pipes, the server loop in its own domain), so the measured path is the
    full serialise → pipe → parse → place → journal → reply round trip.

    {!run_multi} drives [N] concurrent clients (one domain each, one
    socketpair each, one tenant each — [t0], [t1], ...) against a single
    {!Event_loop} server, measuring the group-commit path: requests
    pipeline in windows, the server batches across clients, and one fsync
    covers many events. Every reply is still verified against that
    tenant's own shadow session, so concurrency never relaxes
    correctness. *)

type report = {
  events : int;  (** protocol requests sent (arrivals + departures) *)
  wall_seconds : float;
  events_per_sec : float;
  latency_us : Dvbp_obs.Histogram.snapshot;
      (** client-observed round-trip, µs (mean and p50/p90/p99/max) *)
  server_stats : string;  (** the server's final [STATS] reply *)
  server_metrics : string;
      (** the server's final [METRICS] reply (Prometheus-style text,
          without the [# EOF] terminator) *)
}

val script : Dvbp_core.Instance.t -> string list
(** The protocol request lines, in event-time order, without a trailing
    [QUIT]. *)

val run :
  policy:string ->
  seed:int ->
  ?journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?segment_bytes:int ->
  ?retain_segments:int ->
  Dvbp_core.Instance.t ->
  (report, string) result
(** Starts a fresh server (journaling to [journal] if given), replays the
    instance, verifies every reply against the shadow session, then [STATS],
    [METRICS] and [QUIT]. Any unexpected reply is an error naming the
    request. [segment_bytes]/[retain_segments] are passed through to the
    server config — the disk-bound regression test drives tiny segments
    with aggressive compaction through these. *)

val render : report -> string
(** Operator-facing summary. *)

(** {1 Multi-client group-commit driver} *)

type client_report = {
  tenant : string;
  client_events : int;
  client_latency_us : Dvbp_obs.Histogram.snapshot;
}

type multi_report = {
  clients : int;
  jobs : int;  (** server-side tenant shards *)
  total_events : int;
  mr_wall_seconds : float;
  mr_events_per_sec : float;
  mr_latency_us : Dvbp_obs.Histogram.snapshot;
      (** all clients merged; includes the group-commit wait *)
  per_client : client_report list;
  mr_server_stats : string;
  mr_server_metrics : string;
}

val expected_replies :
  ?tenant:string ->
  policy:string ->
  seed:int ->
  Dvbp_core.Instance.t ->
  ((string * string) list, string) result
(** The (request, expected reply) pairs a correct server must produce for
    this instance — [tenant] (default {!Tenant.default}) selects the
    request grammar and the shadow session's rng ({!Tenant.rng}). *)

val run_multi :
  policy:string ->
  seed:int ->
  ?journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?segment_bytes:int ->
  ?retain_segments:int ->
  ?jobs:int ->
  ?window:int ->
  Dvbp_core.Instance.t list ->
  (multi_report, string) result
(** One client per instance (all instances must share a capacity); client
    [i] is tenant [t<i>]. [fsync_every] (default [1024]) is the per-batch
    commit ceiling, [jobs] (default [1]) the server's shard count,
    [window] (default [256]) the per-client pipelining depth. Fails on any
    reply divergence, naming the client. *)

val run_connect :
  policy:string ->
  seed:int ->
  path:string ->
  ?window:int ->
  Dvbp_core.Instance.t list ->
  (multi_report, string) result
(** Like {!run_multi}, but against an {e external} server already listening
    on the unix socket [path] ([dvbp serve --listen]). Built for the kill
    smoke: a server dying mid-traffic is a normal outcome (each client
    reports the events it completed), while a {e wrong} reply is still an
    error. [mr_server_stats]/[mr_server_metrics] are placeholders — the
    server may be gone by the epilogue. [jobs] is reported as [0]
    (unknown: it lives in the server's own configuration). *)

val render_multi : multi_report -> string
(** Operator-facing summary: aggregate and per-client percentiles. *)

(** {1 Streaming binary-trace driver} *)

type stream_report = {
  st_report : report;
  st_blocks : int;
  st_resident_bytes_max : int;
      (** the trace reader's resident window (block buffer + index) *)
}

val run_stream :
  policy:string ->
  seed:int ->
  ?journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?connect:string ->
  ?probe:Dvbp_tracestore.Replay.probe ->
  string ->
  (stream_report, string) result
(** [run_stream ... path] drives a server straight from the compiled
    binary trace at [path] — block by block, never materialising the
    instance, so arbitrarily long traces replay in bounded memory. Each
    block's requests are pipelined as one write and the replies verified
    in bulk against an incrementally-advanced shadow session (divergence
    errors name the request, as in {!run}). By default the server runs
    in-process as in {!run}; [connect] drives an external
    [dvbp serve --listen] unix socket instead (stats/metrics are then
    placeholders, as in {!run_connect}). [probe] feeds the replay
    progress gauges ({!Dvbp_tracestore.Replay.probe}). *)

val render_stream : stream_report -> string
