(** Replay a workload instance against a live {!Server} and measure it.

    The instance's arrivals and departures are turned into a time-ordered
    protocol script (departures before arrivals at equal timestamps — the
    half-open interval semantics the engine uses), every request's reply is
    checked against a deterministic shadow session, and throughput plus a
    client-side latency summary are reported.

    {!run} drives a real server over an in-process channel pair (two OS
    pipes, the server loop in its own domain), so the measured path is the
    full serialise → pipe → parse → place → journal → reply round trip. *)

type report = {
  events : int;  (** protocol requests sent (arrivals + departures) *)
  wall_seconds : float;
  events_per_sec : float;
  latency_us : Dvbp_obs.Histogram.snapshot;
      (** client-observed round-trip, µs (mean and p50/p90/p99/max) *)
  server_stats : string;  (** the server's final [STATS] reply *)
  server_metrics : string;
      (** the server's final [METRICS] reply (Prometheus-style text,
          without the [# EOF] terminator) *)
}

val script : Dvbp_core.Instance.t -> string list
(** The protocol request lines, in event-time order, without a trailing
    [QUIT]. *)

val run :
  policy:string ->
  seed:int ->
  ?journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  Dvbp_core.Instance.t ->
  (report, string) result
(** Starts a fresh server (journaling to [journal] if given), replays the
    instance, verifies every reply against the shadow session, then [STATS],
    [METRICS] and [QUIT]. Any unexpected reply is an error naming the
    request. *)

val render : report -> string
(** Operator-facing summary. *)
