module Vec = Dvbp_vec.Vec

type header = { policy : string; seed : int; capacity : Vec.t; base : int }

type event =
  | Arrive of {
      tenant : string;
      time : float;
      item_id : int;
      size : Vec.t;
      bin_id : int;
      opened_new_bin : bool;
    }
  | Depart of { tenant : string; time : float; item_id : int }

let event_time = function Arrive { time; _ } | Depart { time; _ } -> time
let event_item = function Arrive { item_id; _ } | Depart { item_id; _ } -> item_id
let event_tenant = function Arrive { tenant; _ } | Depart { tenant; _ } -> tenant

let equal_event a b =
  match (a, b) with
  | Arrive a, Arrive b ->
      String.equal a.tenant b.tenant && a.time = b.time && a.item_id = b.item_id
      && Vec.equal a.size b.size && a.bin_id = b.bin_id
      && a.opened_new_bin = b.opened_new_bin
  | Depart a, Depart b ->
      String.equal a.tenant b.tenant && a.time = b.time && a.item_id = b.item_id
  | Arrive _, Depart _ | Depart _, Arrive _ -> false

let pp_tenant ppf tenant =
  if not (String.equal tenant Tenant.default) then
    Format.fprintf ppf "tenant=%s " tenant

let pp_event ppf = function
  | Arrive { tenant; time; item_id; size; bin_id; opened_new_bin } ->
      Format.fprintf ppf "arrive %at=%g item=%d size=%a -> bin %d%s" pp_tenant
        tenant time item_id Vec.pp size bin_id
        (if opened_new_bin then " (new)" else "")
  | Depart { tenant; time; item_id } ->
      Format.fprintf ppf "depart %at=%g item=%d" pp_tenant tenant time item_id

(* ---------- record codec ---------- *)

(* 16-bit rolling checksum over the record body: enough to tell a torn
   final record from a complete one (a truncated prefix that still passes
   both the syntax check and the checksum is a 1-in-65536 coincidence per
   crash, vs certainty of misparse for records whose prefix is valid). *)
let checksum body =
  String.fold_left (fun acc c -> ((acc * 31) + Char.code c) land 0xffff) 0 body

let hex_digits = "0123456789abcdef"

(* Hot-path record writer: every journaled event pays encode cost before
   its reply can be released, so fields go into a reusable byte scratch
   (no per-record [Buffer], no [Printf]), the checksum runs over those
   bytes in place, and the sealed record is blitted into the batch
   buffer in one move. *)
module Scratch = struct
  type t = { mutable buf : Bytes.t; mutable pos : int }

  let create () = { buf = Bytes.create 256; pos = 0 }
  let reset t = t.pos <- 0

  let ensure t extra =
    let need = t.pos + extra in
    if need > Bytes.length t.buf then begin
      let nb = Bytes.create (max need (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 nb 0 t.pos;
      t.buf <- nb
    end

  let add_char t c =
    ensure t 1;
    Bytes.unsafe_set t.buf t.pos c;
    t.pos <- t.pos + 1

  let add_string t s =
    let len = String.length s in
    ensure t len;
    Bytes.blit_string s 0 t.buf t.pos len;
    t.pos <- t.pos + len

  let add_int t n = add_string t (string_of_int n)

  let checksum t =
    let acc = ref 0 in
    for i = 0 to t.pos - 1 do
      acc := ((!acc * 31) + Char.code (Bytes.unsafe_get t.buf i)) land 0xffff
    done;
    !acc
end

(* v2 times are hex floats (e.g. [0x1.8p+1] for 3.0): they round-trip
   exactly like ["%.17g"] but cost a fraction to format, and
   [float_of_string] reads both spellings, so v1 journals (decimal
   times) replay unchanged. Written digit-by-digit from the IEEE bits
   rather than via ["%h"] because [Printf]'s dispatch alone costs more
   than the record's other fields combined. *)
let add_time s v =
  let bits = Int64.bits_of_float v in
  if Int64.logand bits Int64.min_int <> 0L then Scratch.add_char s '-';
  let e = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7ff in
  let m = Int64.logand bits 0xF_FFFF_FFFF_FFFFL in
  if e = 0x7ff then Scratch.add_string s (if m = 0L then "inf" else "nan")
  else if e = 0 && m = 0L then Scratch.add_string s "0x0p+0"
  else begin
    (* subnormals keep the raw [0x0.<m>p-1022] form: still exact binary,
       still one [float_of_string] away from the original *)
    let lead, exp = if e = 0 then ('0', -1022) else ('1', e - 1023) in
    Scratch.add_string s "0x";
    Scratch.add_char s lead;
    if m <> 0L then begin
      Scratch.add_char s '.';
      let nib i = Int64.to_int (Int64.shift_right_logical m ((12 - i) * 4)) land 0xf in
      let last = ref 12 in
      while nib !last = 0 do decr last done;
      for i = 0 to !last do Scratch.add_char s hex_digits.[nib i] done
    end;
    Scratch.add_char s 'p';
    if exp >= 0 then Scratch.add_char s '+';
    Scratch.add_int s exp
  end

let encode_into s = function
  | Arrive { tenant; time; item_id; size; bin_id; opened_new_bin } ->
      Scratch.add_string s "arrive,";
      Scratch.add_string s tenant;
      Scratch.add_char s ',';
      add_time s time;
      Scratch.add_char s ',';
      Scratch.add_int s item_id;
      Scratch.add_char s ',';
      Scratch.add_int s bin_id;
      Scratch.add_string s (if opened_new_bin then ",1" else ",0");
      for i = 0 to Vec.dim size - 1 do
        Scratch.add_char s ',';
        Scratch.add_int s (Vec.get size i)
      done
  | Depart { tenant; time; item_id } ->
      Scratch.add_string s "depart,";
      Scratch.add_string s tenant;
      Scratch.add_char s ',';
      add_time s time;
      Scratch.add_char s ',';
      Scratch.add_int s item_id

(* append the sealed record ([body ^ ",~%04x"] of the body checksum) to
   [buf] — the only place record bytes are copied out of the scratch *)
let seal_to buf s =
  let sum = Scratch.checksum s in
  Buffer.add_subbytes buf s.Scratch.buf 0 s.Scratch.pos;
  Buffer.add_string buf ",~";
  Buffer.add_char buf hex_digits.[(sum lsr 12) land 0xf];
  Buffer.add_char buf hex_digits.[(sum lsr 8) land 0xf];
  Buffer.add_char buf hex_digits.[(sum lsr 4) land 0xf];
  Buffer.add_char buf hex_digits.[sum land 0xf]

let encode_event e =
  let s = Scratch.create () in
  encode_into s e;
  let buf = Buffer.create (s.Scratch.pos + 6) in
  seal_to buf s;
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some x when Float.is_finite x -> Ok x
  | Some _ | None -> Error (Printf.sprintf "bad %s %S" what s)

let rec collect_ints what = function
  | [] -> Ok []
  | s :: rest ->
      let* x = parse_int what s in
      let* xs = collect_ints what rest in
      Ok (x :: xs)

let split_checksum line =
  match String.rindex_opt line ',' with
  | Some i
    when i + 1 < String.length line
         && line.[i + 1] = '~'
         && String.length line - i - 2 = 4 -> (
      let body = String.sub line 0 i in
      let hex = String.sub line (i + 2) 4 in
      match int_of_string_opt ("0x" ^ hex) with
      | Some sum when sum = checksum body -> Ok body
      | Some _ -> Error "checksum mismatch"
      | None -> Error (Printf.sprintf "bad checksum field %S" hex))
  | _ -> Error "missing checksum field"

(* v1 records carry no tenant field (they all belong to [Tenant.default]);
   v2 records put the tenant right after the kind. The version comes from
   the file's magic line — the two grammars are not self-distinguishing
   (a v1 arrive's timestamp sits where a v2 tenant would). *)
let decode_event ?(version = 2) line =
  let* body = split_checksum line in
  let parse_tenant tenant =
    Result.map_error (fun _ -> Printf.sprintf "bad tenant %S" tenant)
      (Tenant.validate tenant)
  in
  let arrive ~tenant ~time ~item ~bin ~fresh ~sizes =
    let* tenant = parse_tenant tenant in
    let* time = parse_float "arrival time" time in
    let* item_id = parse_int "item id" item in
    let* bin_id = parse_int "bin id" bin in
    let* fresh = parse_int "opened-new-bin flag" fresh in
    let* opened_new_bin =
      match fresh with
      | 0 -> Ok false
      | 1 -> Ok true
      | n -> Error (Printf.sprintf "opened-new-bin flag must be 0 or 1, got %d" n)
    in
    let* sizes = collect_ints "size entry" sizes in
    match sizes with
    | [] -> Error "arrive record with no size"
    | _ ->
        if List.exists (fun s -> s < 0) sizes then Error "negative size"
        else
          Ok
            (Arrive
               { tenant; time; item_id; size = Vec.of_list sizes; bin_id; opened_new_bin })
  in
  let depart ~tenant ~time ~item =
    let* tenant = parse_tenant tenant in
    let* time = parse_float "departure time" time in
    let* item_id = parse_int "item id" item in
    Ok (Depart { tenant; time; item_id })
  in
  match (version, String.split_on_char ',' body) with
  | 2, "arrive" :: tenant :: time :: item :: bin :: fresh :: sizes ->
      arrive ~tenant ~time ~item ~bin ~fresh ~sizes
  | 2, [ "depart"; tenant; time; item ] -> depart ~tenant ~time ~item
  | 1, "arrive" :: time :: item :: bin :: fresh :: sizes ->
      arrive ~tenant:Tenant.default ~time ~item ~bin ~fresh ~sizes
  | 1, [ "depart"; time; item ] -> depart ~tenant:Tenant.default ~time ~item
  | _, ("arrive" | "depart") :: _ -> Error "malformed record"
  | _, kind :: _ -> Error (Printf.sprintf "unrecognised record kind %S" kind)
  | _, [] -> Error "empty record"

(* ---------- header rows (shared by the legacy file and segment formats) ---------- *)

let header_rows h =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "policy,%s\n" h.policy);
  Buffer.add_string buf (Printf.sprintf "seed,%d\n" h.seed);
  Buffer.add_string buf "capacity";
  Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf ",%d" c)) (Vec.to_array h.capacity);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "base,%d\n" h.base);
  Buffer.contents buf

type partial_header = {
  mutable p_policy : string option;
  mutable p_seed : int option;
  mutable p_capacity : Vec.t option;
  mutable p_base : int option;
}

let empty_partial () =
  { p_policy = None; p_seed = None; p_capacity = None; p_base = None }

let finish_header p =
  match (p.p_policy, p.p_seed, p.p_capacity, p.p_base) with
  | Some policy, Some seed, Some capacity, Some base ->
      if base < 0 then Error "negative base" else Ok { policy; seed; capacity; base }
  | None, _, _, _ -> Error "incomplete header: missing policy row"
  | _, None, _, _ -> Error "incomplete header: missing seed row"
  | _, _, None, _ -> Error "incomplete header: missing capacity row"
  | _, _, _, None -> Error "incomplete header: missing base row"

let header_row ~line p trimmed =
  let dup what = Error (Printf.sprintf "line %d: duplicate %s row" line what) in
  match String.split_on_char ',' trimmed with
  | "policy" :: [ name ] ->
      if p.p_policy <> None then dup "policy"
      else if String.trim name = "" then Error (Printf.sprintf "line %d: empty policy" line)
      else (p.p_policy <- Some (String.trim name); Ok ())
  | "seed" :: [ s ] ->
      if p.p_seed <> None then dup "seed"
      else
        let* seed = Result.map_error (Printf.sprintf "line %d: %s" line) (parse_int "seed" s) in
        p.p_seed <- Some seed;
        Ok ()
  | "capacity" :: fields -> (
      if p.p_capacity <> None then dup "capacity"
      else
        let* cs =
          Result.map_error (Printf.sprintf "line %d: %s" line)
            (collect_ints "capacity entry" fields)
        in
        match cs with
        | [] -> Error (Printf.sprintf "line %d: empty capacity" line)
        | _ ->
            if List.exists (fun c -> c <= 0) cs then
              Error (Printf.sprintf "line %d: non-positive capacity" line)
            else (p.p_capacity <- Some (Vec.of_list cs); Ok ()))
  | "base" :: [ s ] ->
      if p.p_base <> None then dup "base"
      else
        let* base = Result.map_error (Printf.sprintf "line %d: %s" line) (parse_int "base" s) in
        p.p_base <- Some base;
        Ok ()
  | _ -> Error (Printf.sprintf "line %d: unrecognised header row %S" line trimmed)

let is_record trimmed =
  String.length trimmed >= 7
  && (String.sub trimmed 0 7 = "arrive," || String.sub trimmed 0 7 = "depart,")
