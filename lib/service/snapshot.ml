module Vec = Dvbp_vec.Vec
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item
module Session = Dvbp_engine.Session

let magic = "# dvbp-snapshot v2"
let magic_v1 = "# dvbp-snapshot v1"

type digest = {
  tenant : string;
  clock : float;
  cost : float;
  bins_opened : int;
  open_bins : (int * int list) list;
}

type t = {
  policy : string;
  seed : int;
  capacity : Vec.t;
  digests : digest list;
  history : Journal.event list;
}

let digest_of_session ~tenant session =
  let open_bins =
    List.map
      (fun (b : Bin.t) ->
        ( b.Bin.id,
          List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
          |> List.sort Int.compare ))
      (Session.open_bins session)
  in
  {
    tenant;
    clock = Session.now session;
    cost = Session.cost_so_far session;
    bins_opened = Session.bins_opened session;
    open_bins;
  }

(* Digest sections are written in tenant-name order so the snapshot bytes
   are a pure function of the state, not of arrival interleaving. *)
let sort_digests ds =
  List.sort (fun a b -> String.compare a.tenant b.tenant) ds

let to_string s =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "policy,%s\n" s.policy);
  Buffer.add_string buf (Printf.sprintf "seed,%d\n" s.seed);
  Buffer.add_string buf "capacity";
  Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf ",%d" c)) (Vec.to_array s.capacity);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "events,%d\n" (List.length s.history));
  List.iter
    (fun d ->
      Buffer.add_string buf (Printf.sprintf "tenant,%s\n" d.tenant);
      Buffer.add_string buf (Printf.sprintf "clock,%.17g\n" d.clock);
      Buffer.add_string buf (Printf.sprintf "cost,%.17g\n" d.cost);
      Buffer.add_string buf (Printf.sprintf "bins_opened,%d\n" d.bins_opened);
      List.iter
        (fun (bin_id, occupants) ->
          Buffer.add_string buf (Printf.sprintf "open,%d" bin_id);
          List.iter (fun id -> Buffer.add_string buf (Printf.sprintf ",%d" id)) occupants;
          Buffer.add_char buf '\n')
        d.open_bins)
    (sort_digests s.digests);
  List.iter
    (fun e ->
      Buffer.add_string buf (Journal.encode_event e);
      Buffer.add_char buf '\n')
    s.history;
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_int ~line what s =
  match int_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "line %d: bad %s %S" line what s)

let parse_float ~line what s =
  match float_of_string_opt (String.trim s) with
  | Some x when Float.is_finite x -> Ok x
  | Some _ | None -> Error (Printf.sprintf "line %d: bad %s %S" line what s)

let rec collect_ints ~line what = function
  | [] -> Ok []
  | s :: rest ->
      let* x = parse_int ~line what s in
      let* xs = collect_ints ~line what rest in
      Ok (x :: xs)

(* Mutable accumulator for one tenant's digest section. *)
type dacc = {
  d_tenant : string;
  mutable d_clock : float option;
  mutable d_cost : float option;
  mutable d_bins_opened : int option;
  mutable d_open_rev : (int * int list) list;
}

type acc = {
  mutable policy : string option;
  mutable seed : int option;
  mutable capacity : Vec.t option;
  mutable events : int option;
  mutable digests_rev : dacc list;  (* current section at the head *)
  mutable history_rev : Journal.event list;
  mutable saw_history : bool;
}

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %s row" what)

let finish_digest (d : dacc) =
  let* clock = require (d.d_tenant ^ " clock") d.d_clock in
  let* cost = require (d.d_tenant ^ " cost") d.d_cost in
  let* bins_opened = require (d.d_tenant ^ " bins_opened") d.d_bins_opened in
  Ok
    {
      tenant = d.d_tenant;
      clock;
      cost;
      bins_opened;
      open_bins = List.rev d.d_open_rev;
    }

let of_string text =
  if String.trim text = "" then Error "empty snapshot"
  else begin
    let version = ref 2 in
    let lines = String.split_on_char '\n' text in
    let a =
      {
        policy = None;
        seed = None;
        capacity = None;
        events = None;
        digests_rev = [];
        history_rev = [];
        saw_history = false;
      }
    in
    let scalar ~line what current store v =
      if current <> None then Error (Printf.sprintf "line %d: duplicate %s row" line what)
      else begin
        store v;
        Ok ()
      end
    in
    (* The v1 format has no tenant rows: its single digest section belongs
       to the default tenant and starts implicitly. *)
    let current_digest ~line =
      match a.digests_rev with
      | d :: _ -> Ok d
      | [] ->
          if !version = 1 then begin
            let d =
              { d_tenant = Tenant.default; d_clock = None; d_cost = None;
                d_bins_opened = None; d_open_rev = [] }
            in
            a.digests_rev <- [ d ];
            Ok d
          end
          else Error (Printf.sprintf "line %d: digest row before any tenant row" line)
    in
    let dscalar ~line what current store v =
      if current <> None then Error (Printf.sprintf "line %d: duplicate %s row" line what)
      else begin
        store v;
        Ok ()
      end
    in
    let row ~line trimmed =
      if a.saw_history
         && not
              (String.length trimmed >= 7
              && (String.sub trimmed 0 7 = "arrive," || String.sub trimmed 0 7 = "depart,"))
      then Error (Printf.sprintf "line %d: state row after history records" line)
      else
        match String.split_on_char ',' trimmed with
        | "policy" :: [ name ] when String.trim name <> "" ->
            scalar ~line "policy" a.policy (fun v -> a.policy <- Some v) (String.trim name)
        | "policy" :: _ -> Error (Printf.sprintf "line %d: empty policy" line)
        | "seed" :: [ s ] ->
            let* v = parse_int ~line "seed" s in
            scalar ~line "seed" a.seed (fun v -> a.seed <- Some v) v
        | "capacity" :: fields -> (
            let* cs = collect_ints ~line "capacity entry" fields in
            match cs with
            | [] -> Error (Printf.sprintf "line %d: empty capacity" line)
            | _ when List.exists (fun c -> c <= 0) cs ->
                Error (Printf.sprintf "line %d: non-positive capacity" line)
            | _ ->
                scalar ~line "capacity" a.capacity
                  (fun v -> a.capacity <- Some v)
                  (Vec.of_list cs))
        | "events" :: [ s ] ->
            let* v = parse_int ~line "events" s in
            scalar ~line "events" a.events (fun v -> a.events <- Some v) v
        | "tenant" :: [ name ] ->
            let name = String.trim name in
            let* name = Tenant.validate name in
            if List.exists (fun d -> d.d_tenant = name) a.digests_rev then
              Error (Printf.sprintf "line %d: duplicate tenant section %S" line name)
            else begin
              a.digests_rev <-
                { d_tenant = name; d_clock = None; d_cost = None;
                  d_bins_opened = None; d_open_rev = [] }
                :: a.digests_rev;
              Ok ()
            end
        | "clock" :: [ s ] ->
            let* v = parse_float ~line "clock" s in
            let* d = current_digest ~line in
            dscalar ~line "clock" d.d_clock (fun v -> d.d_clock <- Some v) v
        | "cost" :: [ s ] ->
            let* v = parse_float ~line "cost" s in
            let* d = current_digest ~line in
            dscalar ~line "cost" d.d_cost (fun v -> d.d_cost <- Some v) v
        | "bins_opened" :: [ s ] ->
            let* v = parse_int ~line "bins_opened" s in
            let* d = current_digest ~line in
            dscalar ~line "bins_opened" d.d_bins_opened (fun v -> d.d_bins_opened <- Some v) v
        | "open" :: bin :: occupants ->
            let* bin_id = parse_int ~line "bin id" bin in
            let* occupants = collect_ints ~line "occupant id" occupants in
            let* d = current_digest ~line in
            d.d_open_rev <- (bin_id, occupants) :: d.d_open_rev;
            Ok ()
        | ("arrive" | "depart") :: _ -> (
            match Journal.decode_event ~version:!version trimmed with
            | Ok e ->
                a.saw_history <- true;
                a.history_rev <- e :: a.history_rev;
                Ok ()
            | Error msg -> Error (Printf.sprintf "line %d: %s" line msg))
        | _ -> Error (Printf.sprintf "line %d: unrecognised row %S" line trimmed)
    in
    let rec go line = function
      | [] -> Ok ()
      | raw :: rest ->
          let trimmed = String.trim raw in
          if line = 1 then
            if trimmed = magic then go 2 rest
            else if trimmed = magic_v1 then begin
              version := 1;
              go 2 rest
            end
            else Error (Printf.sprintf "line 1: expected %S, got %S" magic trimmed)
          else if trimmed = "" || trimmed.[0] = '#' then go (line + 1) rest
          else
            let* () = row ~line trimmed in
            go (line + 1) rest
    in
    let* () = go 1 lines in
    let* policy = require "policy" a.policy in
    let* seed = require "seed" a.seed in
    let* capacity = require "capacity" a.capacity in
    let* events = require "events" a.events in
    let rec finish_all acc = function
      | [] -> Ok acc
      | d :: rest ->
          let* digest = finish_digest d in
          finish_all (digest :: acc) rest
    in
    (* digests_rev is newest-first, so folding restores section order *)
    let* digests = finish_all [] a.digests_rev in
    let history = List.rev a.history_rev in
    if List.length history <> events then
      Error
        (Printf.sprintf
           "snapshot records %d events but its history holds %d — truncated or corrupt"
           events (List.length history))
    else Ok { policy; seed; capacity; digests; history }
  end

let find_digest s tenant = List.find_opt (fun d -> d.tenant = tenant) s.digests

let write ?(io = Real_io.v) ~path s = Io.atomic_replace io ~path (to_string s)

let load ?(io = Real_io.v) ~path () =
  match io.Io.read_file path with
  | Ok text -> Result.map_error (Printf.sprintf "%s: %s" path) (of_string text)
  | Error msg -> Error msg
