(** Concurrent multi-client front end: a [select(2)]-based event loop
    feeding {!Server.handle_batch}.

    One loop tick = read every readable connection, drain the complete
    lines round-robin across connections into a single batch (per-
    connection FIFO is preserved; at most [max_batch] lines per tick),
    hand the batch to {!Server.handle_batch} — which journals all applied
    events and issues the group-commit fsync {e before} returning — and
    only then queue the replies onto their connections. An acked event is
    therefore always durable, and the fsync cost is shared by the whole
    batch: the busier the server, the cheaper each event's durability.

    Isolation: a malformed line or a rejected arrival answers on its own
    connection and affects nothing else; a client that disconnects
    mid-batch loses only its own replies. QUIT (or EOF) closes just that
    connection after its pending replies flush.

    Determinism: the loop itself only moves bytes; all packing and
    journaling happen in {!Server.handle_batch}, whose per-tenant results
    are bit-identical for any shard count and which the deterministic
    simulation tests drive directly (no sockets). File I/O stays behind
    the server's injectable {!Io} backend. *)

val serve :
  ?max_batch:int ->
  ?listen:Unix.file_descr ->
  ?conns:Unix.file_descr list ->
  ?stop_when_drained:bool ->
  Server.t ->
  unit
(** Runs the loop on the calling domain until it stops; closes the server
    (journal sync) on the way out.

    - [max_batch] (default [16384]): cap on lines per
      {!Server.handle_batch} call; excess stays queued for the next tick.
    - [listen]: a bound, listening socket to accept new connections from.
    - [conns]: already-connected bidirectional fds (socketpairs in the
      loadgen, accepted sockets otherwise). All fds are set nonblocking.
    - [stop_when_drained] (default [true]): return once at least one
      connection has existed and all are gone — the in-process loadgen's
      termination condition. With a [listen] socket the loop serves until
      the process dies. SIGPIPE is ignored (peer death must surface as an
      [EPIPE] on that one connection, not kill the server). *)
