(* Directory view of a segmented journal: scan the sibling segment files of
   a journal path, parse each ({!Segment}), and assemble the {e chain} —
   the longest event-contiguous suffix of segments ending at the newest
   one. Files below a contiguity break are {e stale}: leftovers of a
   crashed retire/truncate whose records the snapshot already absorbed
   (recovery verifies that via the chain's base; if the snapshot does not
   cover it, the missing records are reported as a hard error there).

   The writer side lives in {!Journal}; this module is read/maintenance
   only. *)

(* Test-only sensitivity hook: when set, the writer skips the seal footer
   and the pre-rename fsync, and the read side parses sealed segments with
   active-segment leniency (torn tails healed instead of rejected). The
   simulation sweep flips it to prove the seal invariant is load-bearing —
   with the check defeated, crash recovery demonstrably diverges. *)
let defeat_seal_check = ref false

type seg = {
  s_idx : int;
  s_kind : Segment.kind;  (* on-disk naming *)
  s_path : string;
  s_header : Record.header;  (* base = this segment's first global index *)
  s_count : int;
  s_events : Record.event list;
  s_sealed : bool;  (* verified seal footer present *)
  s_dropped_torn : bool;
  s_unterminated : bool;
  s_region : string;
  s_bytes : int;  (* file size as read *)
}

let s_base s = s.s_header.Record.base
let s_end s = s_base s + s.s_count

type view = {
  v_header : Record.header;  (* base = chain base *)
  v_chain : seg list;  (* ascending index; last entry may be the active one *)
  v_active : seg option;  (* last of chain when it is appendable *)
  v_stale : string list;  (* excluded files, deleted on the next append_to *)
  v_misnamed : seg list;  (* footered [.open] files: seal rename rolled back *)
  v_next_idx : int;  (* 1 + highest index seen (stale included) *)
  v_events : Record.event list;
  v_dropped_torn : bool;
}

let ( let* ) = Result.bind

(* (idx, kind, path) for every segment file of [prefix], ascending index,
   plus the paths displaced by duplicate indices: if both namings exist for
   one index the sealed one wins (the seal rename completed; the [.open]
   entry is a stale directory leftover). *)
let scan ?(io = Real_io.v) prefix =
  let dir = Filename.dirname prefix in
  let basename = Filename.basename prefix in
  let entries =
    List.filter_map
      (fun entry ->
        match Segment.classify ~basename entry with
        | Some (idx, kind) -> Some (idx, kind, Filename.concat dir entry)
        | None -> None)
      (io.Io.list_dir dir)
  in
  let tbl = Hashtbl.create 8 in
  let stale = ref [] in
  List.iter
    (fun (idx, kind, path) ->
      match (Hashtbl.find_opt tbl idx, kind) with
      | None, _ -> Hashtbl.replace tbl idx (kind, path)
      | Some (Segment.Sealed, _), Segment.Active -> stale := path :: !stale
      | Some (Segment.Active, opath), Segment.Sealed ->
          stale := opath :: !stale;
          Hashtbl.replace tbl idx (kind, path)
      | Some _, _ -> ())
    entries;
  let listed =
    Hashtbl.fold (fun idx (kind, path) acc -> (idx, kind, path) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  (listed, List.rev !stale)

let all_paths ?(io = Real_io.v) prefix =
  let listed, stale = scan ~io prefix in
  List.map (fun (_, _, path) -> path) listed @ stale

let parse_one ~io (idx, kind, path) =
  let* text = io.Io.read_file path in
  let expect_sealed = kind = Segment.Sealed && not !defeat_seal_check in
  let* parsed =
    Result.map_error
      (Printf.sprintf "%s: %s" path)
      (Segment.parse ~expect_sealed text)
  in
  match parsed with
  | Segment.Incomplete -> Ok None
  | Segment.Complete { header; events; sealed; dropped_torn; unterminated; region } ->
      Ok
        (Some
           {
             s_idx = idx;
             s_kind = kind;
             s_path = path;
             s_header = header;
             s_count = List.length events;
             s_events = events;
             s_sealed = sealed || kind = Segment.Sealed;
             s_dropped_torn = dropped_torn;
             s_unterminated = unterminated;
             s_region = region;
             s_bytes = String.length text;
           })

let same_shape (a : Record.header) (b : Record.header) =
  String.equal a.Record.policy b.Record.policy
  && a.Record.seed = b.Record.seed
  && Dvbp_vec.Vec.equal a.Record.capacity b.Record.capacity

(* [Ok None]: no usable segments (no files at all, or only ones whose
   header never completed — a crashed genesis holds no records, because
   records follow the header and tearing only removes suffixes).
   [Ok (Some view)] otherwise; hard [Error] on any corrupt segment. *)
let read ?(io = Real_io.v) prefix =
  let listed, name_stale = scan ~io prefix in
  match listed with
  | [] -> Ok None
  | _ -> (
      let next_idx =
        1 + List.fold_left (fun acc (idx, _, _) -> max acc idx) (-1) listed
      in
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | entry :: rest ->
            let* seg = parse_one ~io entry in
            parse_all ((entry, seg) :: acc) rest
      in
      let* parsed = parse_all [] listed in
      let complete = List.filter_map (fun (_, seg) -> seg) parsed in
      let incomplete_stale =
        List.filter_map
          (fun ((_, _, path), seg) -> if seg = None then Some path else None)
          parsed
      in
      match List.rev complete with
      | [] -> Ok None
      | top :: below_desc ->
          (* chain walk, newest downward: extend while event-contiguous *)
          let rec walk chain base = function
            | [] -> (chain, [])
            | seg :: rest ->
                if s_end seg = base then walk (seg :: chain) (s_base seg) rest
                else (chain, seg :: rest)
          in
          let chain, dropped_desc = walk [ top ] (s_base top) below_desc in
          let* () =
            let rec consistent = function
              | [] | [ _ ] -> Ok ()
              | a :: (b :: _ as rest) ->
                  if same_shape a.s_header b.s_header then consistent rest
                  else
                    Error
                      (Printf.sprintf
                         "%s: segment header does not match its neighbours"
                         b.s_path)
            in
            consistent chain
          in
          (* only the newest segment may be appendable; a footered segment —
             whatever its name — is sealed and must never be written again *)
          let active =
            match List.rev chain with
            | last :: _ when not last.s_sealed -> Some last
            | _ -> None
          in
          let misnamed =
            List.filter (fun s -> s.s_sealed && s.s_kind = Segment.Active) chain
          in
          let head = List.hd chain in
          let stale =
            name_stale @ incomplete_stale
            @ List.rev_map (fun s -> s.s_path) dropped_desc
          in
          Ok
            (Some
               {
                 v_header = head.s_header;
                 v_chain = chain;
                 v_active = active;
                 v_stale = stale;
                 v_misnamed = misnamed;
                 v_next_idx = next_idx;
                 v_events = List.concat_map (fun s -> s.s_events) chain;
                 v_dropped_torn =
                   (match active with Some a -> a.s_dropped_torn | None -> false);
               }))

let frontier v =
  match List.rev v.v_chain with
  | last :: _ -> s_end last
  | [] -> v.v_header.Record.base
