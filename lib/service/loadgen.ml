module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Histogram = Dvbp_obs.Histogram
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item
module Policy = Dvbp_core.Policy
module Session = Dvbp_engine.Session

type report = {
  events : int;
  wall_seconds : float;
  events_per_sec : float;
  latency_us : Histogram.snapshot;
  server_stats : string;
  server_metrics : string;
}

let ( let* ) = Result.bind

(* (time, kind, item): departures (kind 0) precede arrivals (kind 1) at the
   same instant — the engine's half-open interval convention *)
let events (instance : Instance.t) =
  List.concat_map
    (fun (r : Item.t) -> [ (r.Item.departure, 0, r); (r.Item.arrival, 1, r) ])
    instance.Instance.items
  |> List.sort (fun (ta, ka, (ra : Item.t)) (tb, kb, (rb : Item.t)) ->
         compare (ta, ka, ra.Item.id) (tb, kb, rb.Item.id))

let sizes_field size =
  String.concat "," (List.map string_of_int (Array.to_list (Vec.to_array size)))

(* [tenant = None] emits the un-prefixed (default tenant) grammar, pinning
   the compat contract alongside the tenant-prefixed form *)
let request_line ?tenant (time, kind, (r : Item.t)) =
  let prefix = match tenant with None -> "" | Some tn -> tn ^ " " in
  if kind = 1 then
    Printf.sprintf "ARRIVE %s%.17g %d %s" prefix time r.Item.id (sizes_field r.Item.size)
  else Printf.sprintf "DEPART %s%.17g %d" prefix time r.Item.id

let script instance = List.map (request_line ?tenant:None) (events instance)

(* the shadow session: the deterministic reference every reply is checked
   against — a server answering anything else is diverging *)
let expected_replies ?tenant ~policy ~seed (instance : Instance.t) =
  let tenant_name = Option.value tenant ~default:Tenant.default in
  let* p = Policy.of_name ~rng:(Tenant.rng ~seed tenant_name) policy in
  let session =
    Session.create ~record_trace:false ~capacity:instance.Instance.capacity ~policy:p ()
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ((time, kind, (r : Item.t)) as ev) :: rest -> (
        let line = request_line ?tenant ev in
        match
          if kind = 1 then
            let pl = Session.arrive session ~at:time ~id:r.Item.id ~size:r.Item.size () in
            Printf.sprintf "PLACED %d %d" pl.Session.bin_id
              (if pl.Session.opened_new_bin then 1 else 0)
          else begin
            Session.depart session ~at:time ~item_id:r.Item.id;
            "OK"
          end
        with
        | reply -> go ((line, reply) :: acc) rest
        | exception Session.Session_error msg ->
            Error (Printf.sprintf "shadow session refused %S: %s" line msg))
  in
  go [] (events instance)

let run ~policy ~seed ?journal ?snapshot ?snapshot_every ?(fsync_every = 64)
    ?segment_bytes ?retain_segments (instance : Instance.t) =
  let* pairs = expected_replies ~policy ~seed instance in
  let* server =
    Server.create
      {
        Server.policy;
        seed;
        capacity = instance.Instance.capacity;
        journal;
        snapshot;
        snapshot_every;
        fsync_every;
        jobs = 1;
        segment_bytes;
        retain_segments;
      }
  in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let dom =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () -> Server.serve server ic oc))
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let request line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | reply -> Ok reply
    | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
  in
  (* read a METRICS reply: every line up to (excluding) the terminator *)
  let request_multiline line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    let buf = Buffer.create 4096 in
    let rec go () =
      match input_line ic with
      | "# EOF" -> Ok (Buffer.contents buf)
      | reply ->
          Buffer.add_string buf reply;
          Buffer.add_char buf '\n';
          go ()
      | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
    in
    go ()
  in
  let latency = Histogram.create () in
  let outcome =
    let rec drive = function
      | [] -> Ok ()
      | (line, expected) :: rest ->
          let t0 = Unix.gettimeofday () in
          let* reply = request line in
          Histogram.observe latency ((Unix.gettimeofday () -. t0) *. 1e6);
          if reply <> expected then
            Error
              (Printf.sprintf "divergence on %S: server said %S, shadow session says %S"
                 line reply expected)
          else drive rest
    in
    let t0 = Unix.gettimeofday () in
    let* () = drive pairs in
    let wall = Unix.gettimeofday () -. t0 in
    let* stats = request "STATS" in
    let* metrics_text = request_multiline "METRICS" in
    let* bye = request "QUIT" in
    let* () =
      if bye <> "BYE" then Error (Printf.sprintf "expected BYE, got %S" bye) else Ok ()
    in
    let n = List.length pairs in
    Ok
      {
        events = n;
        wall_seconds = wall;
        events_per_sec = (if wall > 0.0 then float_of_int n /. wall else 0.0);
        latency_us = Histogram.snapshot latency;
        server_stats = stats;
        server_metrics = metrics_text;
      }
  in
  close_out_noerr oc;
  close_in_noerr ic;
  Domain.join dom;
  outcome

(* {2 Multi-client driver} *)

type client_report = {
  tenant : string;
  client_events : int;
  client_latency_us : Histogram.snapshot;
}

type multi_report = {
  clients : int;
  jobs : int;
  total_events : int;
  mr_wall_seconds : float;
  mr_events_per_sec : float;
  mr_latency_us : Histogram.snapshot;
  per_client : client_report list;
  mr_server_stats : string;
  mr_server_metrics : string;
}

let client_tenant i = Printf.sprintf "t%d" i

exception Diverged of string

exception Died of string

(* Chunked pipelining over a blocking socket: write a window of requests
   in one syscall, bulk-read the window of replies, verify the whole
   window against the pre-joined shadow replies with a single string
   compare (the per-line path only runs on divergence or a dead server).
   Every reply in a window shares the window's wall time as its latency —
   each of them waited for the same group commit(s). Returns the number
   of verified replies; with [tolerate_death] a dead server ends the run
   normally at that count (the SIGKILL smoke drives a server that is
   killed mid-traffic on purpose). *)
(* Pre-joined pipelining windows: each is [(lo, hi, request_blob,
   expected_blob)] over [pairs.(lo..hi-1)]. Built by the callers *before*
   the throughput clock starts, so serialising the script is setup cost,
   not measured server time. *)
type prepped = { pc_pairs : (string * string) array; pc_windows : (int * int * string * string) list }

let prep_windows ~window pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  let wins = ref [] in
  let i = ref 0 in
  let req = Buffer.create (window * 48) in
  let expected = Buffer.create (window * 12) in
  while !i < n do
    let hi = min n (!i + window) in
    Buffer.clear req;
    Buffer.clear expected;
    for k = !i to hi - 1 do
      Buffer.add_string req (fst arr.(k));
      Buffer.add_char req '\n';
      Buffer.add_string expected (snd arr.(k));
      Buffer.add_char expected '\n'
    done;
    wins := (!i, hi, Buffer.contents req, Buffer.contents expected) :: !wins;
    i := hi
  done;
  { pc_pairs = arr; pc_windows = List.rev !wins }

let drive_client ?(tolerate_death = false) fd prep hist =
  let arr = prep.pc_pairs in
  let n = Array.length arr in
  let completed = ref 0 in
  let inbuf = Bytes.create 65536 in
  let write_all s =
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring fd s !off (len - !off)
    done
  in
  (* slow path: line-by-line compare of whatever came back; a trailing
     torn line (server killed mid-reply) is not compared *)
  let verify_slow got lo hi =
    let lines =
      match List.rev (String.split_on_char '\n' got) with
      | _torn_or_empty :: rest -> List.rev rest
      | [] -> []
    in
    let k = ref lo in
    List.iter
      (fun line ->
        if !k < hi then begin
          if line <> snd arr.(!k) then
            raise
              (Diverged
                 (Printf.sprintf
                    "divergence on %S: server said %S, shadow session says %S"
                    (fst arr.(!k)) line (snd arr.(!k))));
          incr completed;
          incr k
        end)
      lines
  in
  let outcome =
    try
      List.iter
        (fun (lo, hi, req, expected) ->
          let want = hi - lo in
          let t0 = Unix.gettimeofday () in
          write_all req;
          let got = Buffer.create (String.length expected) in
          let seen = ref 0 in
          while !seen < want do
            match Unix.read fd inbuf 0 (Bytes.length inbuf) with
            | 0 ->
                verify_slow (Buffer.contents got) lo hi;
                raise
                  (Died
                     (Printf.sprintf "server died on %S"
                        (fst arr.(min !completed (n - 1)))))
            | r ->
                for j = 0 to r - 1 do
                  if Bytes.unsafe_get inbuf j = '\n' then incr seen
                done;
                Buffer.add_subbytes got inbuf 0 r
          done;
          let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
          if
            String.length (Buffer.contents got) = String.length expected
            && String.equal (Buffer.contents got) expected
          then begin
            completed := !completed + want;
            Histogram.observe_n hist dt_us want
          end
          else verify_slow (Buffer.contents got) lo hi)
        prep.pc_windows;
      write_all "QUIT\n";
      let got = Buffer.create 8 in
      let eof = ref false in
      while (not !eof) && not (String.contains (Buffer.contents got) '\n') do
        match Unix.read fd inbuf 0 (Bytes.length inbuf) with
        | 0 -> eof := true
        | r -> Buffer.add_subbytes got inbuf 0 r
      done;
      (match String.split_on_char '\n' (Buffer.contents got) with
      | ("BYE" | "") :: _ | [] -> ()
      | reply :: _ ->
          raise (Diverged (Printf.sprintf "expected BYE, got %S" reply)));
      Ok !completed
    with
    | Diverged msg -> Error msg
    | Died msg -> if tolerate_death then Ok !completed else Error msg
    | Sys_error msg -> if tolerate_death then Ok !completed else Error msg
    | Unix.Unix_error (e, fn, _) ->
        if tolerate_death then Ok !completed
        else Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  outcome

(* Drive every client concurrently — one thread per (tenant, prepped
   windows, fd) triple — and return the per-client results in client
   order. Callers build the [prepped] values before starting the clock. *)
let run_clients ?tolerate_death clients =
  let arr = Array.of_list clients in
  let results =
    Array.map (fun ((tenant, _), _) -> (tenant, 0, Histogram.create (), Ok 0)) arr
  in
  let threads =
    Array.mapi
      (fun i ((tenant, prep), fd) ->
        Thread.create
          (fun () ->
            let hist = Histogram.create () in
            let outcome = drive_client ?tolerate_death fd prep hist in
            let n = match outcome with Ok c -> c | Error _ -> 0 in
            results.(i) <- (tenant, n, hist, outcome))
          ())
      arr
  in
  Array.iter Thread.join threads;
  Array.to_list results

let run_multi ~policy ~seed ?journal ?snapshot ?snapshot_every ?(fsync_every = 1024)
    ?segment_bytes ?retain_segments ?(jobs = 1) ?(window = 256)
    (instances : Instance.t list) =
  let* () = if instances = [] then Error "run_multi: no client instances" else Ok () in
  let capacity = (List.hd instances).Instance.capacity in
  let* () =
    if List.for_all (fun (i : Instance.t) -> Vec.equal i.Instance.capacity capacity) instances
    then Ok ()
    else Error "run_multi: client instances disagree on capacity"
  in
  let clients = List.length instances in
  let* scripts =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | inst :: rest ->
          let tenant = client_tenant i in
          let* pairs = expected_replies ~tenant ~policy ~seed inst in
          go (i + 1) ((tenant, pairs) :: acc) rest
    in
    go 0 [] instances
  in
  let* server =
    Server.create
      {
        Server.policy;
        seed;
        capacity;
        journal;
        snapshot;
        snapshot_every;
        fsync_every;
        jobs;
        segment_bytes;
        retain_segments;
      }
  in
  (* one socketpair per client plus a control connection for the epilogue *)
  let endpoints =
    List.map
      (fun _ -> Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0)
      scripts
  in
  let ctl_client, ctl_server =
    Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let server_fds = List.map snd endpoints @ [ ctl_server ] in
  let server_dom =
    Domain.spawn (fun () -> Event_loop.serve ~conns:server_fds server)
  in
  (* one sys-thread per client, all in the calling domain: blocking socket
     I/O releases the runtime lock, so the clients still overlap with each
     other and with the server domain, without paying one OS-scheduled
     domain (plus its share of every stop-the-world pause) per client *)
  let preps =
    List.map (fun (tenant, pairs) -> (tenant, prep_windows ~window pairs)) scripts
  in
  let t0 = Unix.gettimeofday () in
  let finished = run_clients (List.combine preps (List.map fst endpoints)) in
  let wall = Unix.gettimeofday () -. t0 in
  (* epilogue on the control connection: stats + metrics, then release the
     loop (it stops once every connection is gone) *)
  let ctl_oc = Unix.out_channel_of_descr ctl_client in
  let ctl_ic = Unix.in_channel_of_descr ctl_client in
  let request line =
    output_string ctl_oc line;
    output_char ctl_oc '\n';
    flush ctl_oc;
    match input_line ctl_ic with
    | reply -> Ok reply
    | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
  in
  let request_multiline line =
    output_string ctl_oc line;
    output_char ctl_oc '\n';
    flush ctl_oc;
    let buf = Buffer.create 4096 in
    let rec go () =
      match input_line ctl_ic with
      | "# EOF" -> Ok (Buffer.contents buf)
      | reply ->
          Buffer.add_string buf reply;
          Buffer.add_char buf '\n';
          go ()
      | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
    in
    go ()
  in
  let epilogue =
    let* stats = request "STATS" in
    let* metrics_text = request_multiline "METRICS" in
    let* bye = request "QUIT" in
    let* () =
      if bye <> "BYE" then Error (Printf.sprintf "expected BYE, got %S" bye) else Ok ()
    in
    Ok (stats, metrics_text)
  in
  close_out_noerr ctl_oc;
  Domain.join server_dom;
  let* () =
    List.fold_left
      (fun acc (tenant, _, _, outcome) ->
        let* () = acc in
        match outcome with
        | Ok _ -> Ok ()
        | Error e -> Error (Printf.sprintf "client %s: %s" tenant e))
      (Ok ()) finished
  in
  let* stats, metrics_text = epilogue in
  let merged =
    List.fold_left
      (fun acc (_, _, hist, _) -> Histogram.merge acc hist)
      (Histogram.create ()) finished
  in
  let total = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 finished in
  Ok
    {
      clients;
      jobs;
      total_events = total;
      mr_wall_seconds = wall;
      mr_events_per_sec = (if wall > 0.0 then float_of_int total /. wall else 0.0);
      mr_latency_us = Histogram.snapshot merged;
      per_client =
        List.map
          (fun (tenant, n, hist, _) ->
            { tenant; client_events = n; client_latency_us = Histogram.snapshot hist })
          finished;
      mr_server_stats = stats;
      mr_server_metrics = metrics_text;
    }

(* External-server mode: connect [clients] sockets to a unix socket path
   served by an already-running [dvbp serve --listen]. Used by the CI kill
   smoke, so a server death mid-traffic is a normal outcome (clients report
   how far they got); a wrong reply is still an error. *)
let run_connect ~policy ~seed ~path ?(window = 256) (instances : Instance.t list) =
  let* () = if instances = [] then Error "run_connect: no client instances" else Ok () in
  let clients = List.length instances in
  let* scripts =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | inst :: rest ->
          let tenant = client_tenant i in
          let* pairs = expected_replies ~tenant ~policy ~seed inst in
          go (i + 1) ((tenant, pairs) :: acc) rest
    in
    go 0 [] instances
  in
  let* fds =
    try
      Ok
        (List.map
           (fun _ ->
             let fd = Unix.socket ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
             Unix.connect fd (Unix.ADDR_UNIX path);
             fd)
           scripts)
    with Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "connect %s: %s: %s" path fn (Unix.error_message e))
  in
  let preps =
    List.map (fun (tenant, pairs) -> (tenant, prep_windows ~window pairs)) scripts
  in
  let t0 = Unix.gettimeofday () in
  let finished = run_clients ~tolerate_death:true (List.combine preps fds) in
  let wall = Unix.gettimeofday () -. t0 in
  let* () =
    List.fold_left
      (fun acc (tenant, _, _, outcome) ->
        let* () = acc in
        match outcome with
        | Ok _ -> Ok ()
        | Error e -> Error (Printf.sprintf "client %s: %s" tenant e))
      (Ok ()) finished
  in
  let merged =
    List.fold_left
      (fun acc (_, _, hist, _) -> Histogram.merge acc hist)
      (Histogram.create ()) finished
  in
  let total = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 finished in
  Ok
    {
      clients;
      jobs = 0;
      total_events = total;
      mr_wall_seconds = wall;
      mr_events_per_sec = (if wall > 0.0 then float_of_int total /. wall else 0.0);
      mr_latency_us = Histogram.snapshot merged;
      per_client =
        List.map
          (fun (tenant, n, hist, _) ->
            { tenant; client_events = n; client_latency_us = Histogram.snapshot hist })
          finished;
      mr_server_stats = "(external server)";
      mr_server_metrics = "";
    }

(* {2 Streaming trace driver} *)

module Trace_reader = Dvbp_tracestore.Trace_reader
module Binfmt = Dvbp_tracestore.Binfmt
module Replay = Dvbp_tracestore.Replay

type stream_report = {
  st_report : report;
  st_blocks : int;
  st_resident_bytes_max : int;
}

let stream_request_line (ev : Binfmt.event) =
  match ev.Binfmt.ev_kind with
  | `Arrive ->
      Printf.sprintf "ARRIVE %.17g %d %s" ev.Binfmt.ev_time ev.Binfmt.ev_id
        (String.concat ","
           (List.map string_of_int (Array.to_list ev.Binfmt.ev_size)))
  | `Depart -> Printf.sprintf "DEPART %.17g %d" ev.Binfmt.ev_time ev.Binfmt.ev_id

(* the incremental shadow: expected reply for one streamed event *)
let stream_expected shadow (ev : Binfmt.event) =
  match ev.Binfmt.ev_kind with
  | `Arrive ->
      let pl =
        Session.arrive shadow ~at:ev.Binfmt.ev_time ~id:ev.Binfmt.ev_id
          ~size:(Vec.of_array ev.Binfmt.ev_size) ()
      in
      Printf.sprintf "PLACED %d %d" pl.Session.bin_id
        (if pl.Session.opened_new_bin then 1 else 0)
  | `Depart ->
      Session.depart shadow ~at:ev.Binfmt.ev_time ~item_id:ev.Binfmt.ev_id;
      "OK"

(* Drive a server straight from a compiled binary trace, one block at a
   time, never materialising the instance: the shadow session advances
   event by event alongside the reader, and each block's requests are
   pipelined as one write / one verified bulk read. Memory is the
   reader's window plus one block of request/reply text plus the shadow's
   active items — independent of the trace length. *)
let run_stream ~policy ~seed ?journal ?snapshot ?snapshot_every
    ?(fsync_every = 64) ?connect ?probe path =
  let* reader = Trace_reader.open_file path in
  Fun.protect ~finally:(fun () -> Trace_reader.close reader) @@ fun () ->
  let header = Trace_reader.header reader in
  let capacity = header.Binfmt.capacity in
  (match probe with None -> () | Some p -> Replay.touch p reader);
  let* shadow_policy = Policy.of_name ~rng:(Tenant.rng ~seed Tenant.default) policy in
  let shadow =
    Session.create ~record_trace:false ~capacity ~policy:shadow_policy ()
  in
  (* transport: an in-process server on pipes (as in {!run}) or an
     external [serve --listen] unix socket *)
  let* ic, oc, join =
    match connect with
    | Some path -> (
        try
          let fd = Unix.socket ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          Ok
            ( Unix.in_channel_of_descr fd,
              Unix.out_channel_of_descr fd,
              fun () -> () )
        with Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "connect %s: %s: %s" path fn (Unix.error_message e)))
    | None ->
        let* server =
          Server.create
            {
              Server.policy;
              seed;
              capacity;
              journal;
              snapshot;
              snapshot_every;
              fsync_every;
              jobs = 1;
              segment_bytes = None;
              retain_segments = None;
            }
        in
        let req_r, req_w = Unix.pipe ~cloexec:false () in
        let resp_r, resp_w = Unix.pipe ~cloexec:false () in
        let dom =
          Domain.spawn (fun () ->
              let ic = Unix.in_channel_of_descr req_r in
              let oc = Unix.out_channel_of_descr resp_w in
              Fun.protect
                ~finally:(fun () ->
                  close_in_noerr ic;
                  close_out_noerr oc)
                (fun () -> Server.serve server ic oc))
        in
        Ok
          ( Unix.in_channel_of_descr resp_r,
            Unix.out_channel_of_descr req_w,
            fun () -> Domain.join dom )
  in
  let latency = Histogram.create () in
  let req = Buffer.create 65536 in
  let expected = Buffer.create 8192 in
  let events = ref 0 in
  let blocks = Trace_reader.blocks reader in
  let drive_block i =
    let* evs = Trace_reader.read_block reader i in
    Buffer.clear req;
    Buffer.clear expected;
    let* want =
      try
        List.iter
          (fun ev ->
            Buffer.add_string req (stream_request_line ev);
            Buffer.add_char req '\n';
            Buffer.add_string expected (stream_expected shadow ev);
            Buffer.add_char expected '\n')
          evs;
        Ok (List.length evs)
      with Session.Session_error msg ->
        Error (Printf.sprintf "shadow session refused block %d: %s" i msg)
    in
    let t0 = Unix.gettimeofday () in
    Buffer.output_buffer oc req;
    flush oc;
    let got = Buffer.create (Buffer.length expected) in
    let rec collect seen =
      if seen = want then Ok ()
      else
        match input_line ic with
        | line ->
            Buffer.add_string got line;
            Buffer.add_char got '\n';
            collect (seen + 1)
        | exception End_of_file ->
            Error (Printf.sprintf "server died in block %d" i)
    in
    let* () = collect 0 in
    Histogram.observe_n latency ((Unix.gettimeofday () -. t0) *. 1e6) want;
    if not (String.equal (Buffer.contents got) (Buffer.contents expected)) then
      (* re-derive the offending line for the error message *)
      let got_lines = String.split_on_char '\n' (Buffer.contents got) in
      let exp_lines = String.split_on_char '\n' (Buffer.contents expected) in
      let req_lines = String.split_on_char '\n' (Buffer.contents req) in
      let rec first_diff = function
        | g :: gs, e :: es, r :: rs ->
            if g <> e then (r, g, e) else first_diff (gs, es, rs)
        | _ -> ("?", "?", "?")
      in
      let r, g, e = first_diff (got_lines, exp_lines, req_lines) in
      Error
        (Printf.sprintf "divergence on %S: server said %S, shadow session says %S"
           r g e)
    else begin
      events := !events + want;
      (match probe with
      | None -> ()
      | Some p -> Replay.touch p ~events:want ~blocks:1 reader);
      Ok ()
    end
  in
  let request line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | reply -> Ok reply
    | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
  in
  let request_metrics () =
    output_string oc "METRICS\n";
    flush oc;
    let buf = Buffer.create 4096 in
    let rec go () =
      match input_line ic with
      | "# EOF" -> Ok (Buffer.contents buf)
      | reply ->
          Buffer.add_string buf reply;
          Buffer.add_char buf '\n';
          go ()
      | exception End_of_file -> Error "server died on METRICS"
    in
    go ()
  in
  let outcome =
    let t0 = Unix.gettimeofday () in
    let rec go i = if i = blocks then Ok () else let* () = drive_block i in go (i + 1) in
    let* () = go 0 in
    let wall = Unix.gettimeofday () -. t0 in
    let eps = if wall > 0.0 then float_of_int !events /. wall else 0.0 in
    (match probe with None -> () | Some p -> Replay.set_throughput p eps);
    let* stats, metrics_text =
      match connect with
      | Some _ -> Ok ("(external server)", "")
      | None ->
          let* stats = request "STATS" in
          let* metrics_text = request_metrics () in
          Ok (stats, metrics_text)
    in
    let* bye = request "QUIT" in
    let* () =
      if bye <> "BYE" then Error (Printf.sprintf "expected BYE, got %S" bye)
      else Ok ()
    in
    Ok
      {
        st_report =
          {
            events = !events;
            wall_seconds = wall;
            events_per_sec = eps;
            latency_us = Histogram.snapshot latency;
            server_stats = stats;
            server_metrics = metrics_text;
          };
        st_blocks = blocks;
        st_resident_bytes_max = Trace_reader.resident_bytes_max reader;
      }
  in
  close_out_noerr oc;
  close_in_noerr ic;
  join ();
  outcome

let render_latency lat =
  if lat.Histogram.n = 0 then "n/a"
  else
    Printf.sprintf "mean %.1f us, p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us"
      lat.Histogram.mean lat.Histogram.p50 lat.Histogram.p90 lat.Histogram.p99
      lat.Histogram.max_v

let render_multi r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "loadgen: %d clients, %d events in %.3f s -> %.0f events/s (jobs=%d)\n"
       r.clients r.total_events r.mr_wall_seconds r.mr_events_per_sec r.jobs);
  Buffer.add_string buf
    (Printf.sprintf "aggregate latency: %s\n" (render_latency r.mr_latency_us));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d events, %s\n" c.tenant c.client_events
           (render_latency c.client_latency_us)))
    r.per_client;
  Buffer.add_string buf (Printf.sprintf "server: %s\n" r.mr_server_stats);
  Buffer.contents buf

let render r =
  let lat = r.latency_us in
  let lat_line =
    if lat.Histogram.n = 0 then "latency: n/a"
    else
      Printf.sprintf
        "latency: mean %.1f us, p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us"
        lat.Histogram.mean lat.Histogram.p50 lat.Histogram.p90 lat.Histogram.p99
        lat.Histogram.max_v
  in
  Printf.sprintf
    "loadgen: %d events in %.3f s -> %.0f events/s\n%s\nserver: %s\n" r.events
    r.wall_seconds r.events_per_sec lat_line r.server_stats

let render_stream r =
  Printf.sprintf
    "trace replay: %d blocks streamed, reader resident window <= %d bytes\n%s"
    r.st_blocks r.st_resident_bytes_max (render r.st_report)
