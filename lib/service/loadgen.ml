module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Histogram = Dvbp_obs.Histogram
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item
module Policy = Dvbp_core.Policy
module Session = Dvbp_engine.Session

type report = {
  events : int;
  wall_seconds : float;
  events_per_sec : float;
  latency_us : Histogram.snapshot;
  server_stats : string;
  server_metrics : string;
}

let ( let* ) = Result.bind

(* (time, kind, item): departures (kind 0) precede arrivals (kind 1) at the
   same instant — the engine's half-open interval convention *)
let events (instance : Instance.t) =
  List.concat_map
    (fun (r : Item.t) -> [ (r.Item.departure, 0, r); (r.Item.arrival, 1, r) ])
    instance.Instance.items
  |> List.sort (fun (ta, ka, (ra : Item.t)) (tb, kb, (rb : Item.t)) ->
         compare (ta, ka, ra.Item.id) (tb, kb, rb.Item.id))

let sizes_field size =
  String.concat "," (List.map string_of_int (Array.to_list (Vec.to_array size)))

let request_line (time, kind, (r : Item.t)) =
  if kind = 1 then
    Printf.sprintf "ARRIVE %.17g %d %s" time r.Item.id (sizes_field r.Item.size)
  else Printf.sprintf "DEPART %.17g %d" time r.Item.id

let script instance = List.map request_line (events instance)

(* the shadow session: the deterministic reference every reply is checked
   against — a server answering anything else is diverging *)
let expected_replies ~policy ~seed (instance : Instance.t) =
  let* p = Policy.of_name ~rng:(Rng.create ~seed) policy in
  let session =
    Session.create ~record_trace:false ~capacity:instance.Instance.capacity ~policy:p ()
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ((time, kind, (r : Item.t)) as ev) :: rest -> (
        let line = request_line ev in
        match
          if kind = 1 then
            let pl = Session.arrive session ~at:time ~id:r.Item.id ~size:r.Item.size () in
            Printf.sprintf "PLACED %d %d" pl.Session.bin_id
              (if pl.Session.opened_new_bin then 1 else 0)
          else begin
            Session.depart session ~at:time ~item_id:r.Item.id;
            "OK"
          end
        with
        | reply -> go ((line, reply) :: acc) rest
        | exception Session.Session_error msg ->
            Error (Printf.sprintf "shadow session refused %S: %s" line msg))
  in
  go [] (events instance)

let run ~policy ~seed ?journal ?snapshot ?snapshot_every ?(fsync_every = 64)
    (instance : Instance.t) =
  let* pairs = expected_replies ~policy ~seed instance in
  let* server =
    Server.create
      {
        Server.policy;
        seed;
        capacity = instance.Instance.capacity;
        journal;
        snapshot;
        snapshot_every;
        fsync_every;
      }
  in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let dom =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () -> Server.serve server ic oc))
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let request line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | reply -> Ok reply
    | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
  in
  (* read a METRICS reply: every line up to (excluding) the terminator *)
  let request_multiline line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    let buf = Buffer.create 4096 in
    let rec go () =
      match input_line ic with
      | "# EOF" -> Ok (Buffer.contents buf)
      | reply ->
          Buffer.add_string buf reply;
          Buffer.add_char buf '\n';
          go ()
      | exception End_of_file -> Error (Printf.sprintf "server died on %S" line)
    in
    go ()
  in
  let latency = Histogram.create () in
  let outcome =
    let rec drive = function
      | [] -> Ok ()
      | (line, expected) :: rest ->
          let t0 = Unix.gettimeofday () in
          let* reply = request line in
          Histogram.observe latency ((Unix.gettimeofday () -. t0) *. 1e6);
          if reply <> expected then
            Error
              (Printf.sprintf "divergence on %S: server said %S, shadow session says %S"
                 line reply expected)
          else drive rest
    in
    let t0 = Unix.gettimeofday () in
    let* () = drive pairs in
    let wall = Unix.gettimeofday () -. t0 in
    let* stats = request "STATS" in
    let* metrics_text = request_multiline "METRICS" in
    let* bye = request "QUIT" in
    let* () =
      if bye <> "BYE" then Error (Printf.sprintf "expected BYE, got %S" bye) else Ok ()
    in
    let n = List.length pairs in
    Ok
      {
        events = n;
        wall_seconds = wall;
        events_per_sec = (if wall > 0.0 then float_of_int n /. wall else 0.0);
        latency_us = Histogram.snapshot latency;
        server_stats = stats;
        server_metrics = metrics_text;
      }
  in
  close_out_noerr oc;
  close_in_noerr ic;
  Domain.join dom;
  outcome

let render r =
  let lat = r.latency_us in
  let lat_line =
    if lat.Histogram.n = 0 then "latency: n/a"
    else
      Printf.sprintf
        "latency: mean %.1f us, p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us"
        lat.Histogram.mean lat.Histogram.p50 lat.Histogram.p90 lat.Histogram.p99
        lat.Histogram.max_v
  in
  Printf.sprintf
    "loadgen: %d events in %.3f s -> %.0f events/s\n%s\nserver: %s\n" r.events
    r.wall_seconds r.events_per_sec lat_line r.server_stats
