(** Checkpoint of the full live service state.

    A snapshot lets recovery keep the journal short: after a successful
    snapshot the journal is truncated ({!Journal.truncate}) and only events
    appended after the checkpoint remain in it.

    Because policies carry private mutable state that is deliberately not
    serialisable (Move To Front's recency order, Next Fit's current bin,
    Random Fit's rng stream), the checkpoint stores two complementary
    sections and recovery uses both:

    - one {b state digest} per tenant — clock, accumulated usage-time cost,
      bins opened, and every open bin with its occupant item ids — which is
      what the operator reads and what recovery {e verifies} against;
    - the {b event history} since genesis in arrival order across all
      tenants (same checksummed record format as the journal), which is
      what recovery {e replays} to rebuild the exact sessions, policy state
      included.

    Replaying the history through fresh deterministic sessions and then
    checking the result against the digests means corruption, a policy
    mismatch, or a library behaviour change is a hard error, never silent
    divergence (see {!Recovery}).

    Format v2 groups digest rows under [tenant,<name>] section headers
    (written in tenant-name order so the bytes are independent of arrival
    interleaving). v1 files — one implicit digest section belonging to
    {!Tenant.default}, v1 history records — still load; new snapshots are
    always written v2.

    Snapshots are written atomically (temp file, fsync, rename), so unlike
    the journal a torn snapshot cannot exist; any parse failure on load is
    reported as corruption. *)

type digest = {
  tenant : string;
  clock : float;  (** timestamp of the tenant's last applied event *)
  cost : float;  (** usage-time cost accumulated up to [clock] *)
  bins_opened : int;
  open_bins : (int * int list) list;
      (** open bins in opening order; occupant item ids ascending *)
}

type t = {
  policy : string;
  seed : int;
  capacity : Dvbp_vec.Vec.t;
  digests : digest list;  (** one per tenant, section order (tenant-name order when written by {!to_string}) *)
  history : Journal.event list;  (** every applied event since genesis, arrival order *)
}

val digest_of_session : tenant:string -> Dvbp_engine.Session.t -> digest
(** Reads one tenant's digest fields off its live session. *)

val find_digest : t -> string -> digest option

val to_string : t -> string
val of_string : string -> (t, string) result
(** Fully validated; reports the offending line. Checks internally that the
    recorded event count matches the history section. *)

val write : ?io:Io.t -> path:string -> t -> unit
(** Atomic: temp file, fsync, rename, directory fsync (see
    {!Io.atomic_replace}). @raise Sys_error on IO failure (default backend). *)

val load : ?io:Io.t -> path:string -> unit -> (t, string) result
