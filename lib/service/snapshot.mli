(** Checkpoint of the full live service state.

    A snapshot lets recovery keep the journal short: after a successful
    snapshot the journal is truncated ({!Journal.truncate}) and only events
    appended after the checkpoint remain in it.

    Because policies carry private mutable state that is deliberately not
    serialisable (Move To Front's recency order, Next Fit's current bin,
    Random Fit's rng stream), the checkpoint stores two complementary
    sections and recovery uses both:

    - a {b state digest} — clock, accumulated usage-time cost, bins opened,
      and every open bin with its occupant item ids — which is what the
      operator reads and what recovery {e verifies} against;
    - the {b event history} since genesis (same checksummed record format as
      the journal), which is what recovery {e replays} to rebuild the exact
      session, policy state included.

    Replaying the history through a fresh deterministic session and then
    checking the result against the digest means corruption, a policy
    mismatch, or a library behaviour change is a hard error, never silent
    divergence (see {!Recovery}).

    Snapshots are written atomically (temp file, fsync, rename), so unlike
    the journal a torn snapshot cannot exist; any parse failure on load is
    reported as corruption. *)

type t = {
  policy : string;
  seed : int;
  capacity : Dvbp_vec.Vec.t;
  clock : float;  (** timestamp of the last applied event *)
  cost : float;  (** usage-time cost accumulated up to [clock] *)
  bins_opened : int;
  open_bins : (int * int list) list;
      (** open bins in opening order; occupant item ids ascending *)
  history : Journal.event list;  (** every applied event since genesis *)
}

val digest_of_session :
  policy:string ->
  seed:int ->
  capacity:Dvbp_vec.Vec.t ->
  history:Journal.event list ->
  Dvbp_engine.Session.t ->
  t
(** Reads the digest fields off a live session. [history] must be exactly
    the events the session has applied. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Fully validated; reports the offending line. Checks internally that the
    recorded event count matches the history section. *)

val write : ?io:Io.t -> path:string -> t -> unit
(** Atomic: temp file, fsync, rename, directory fsync (see
    {!Io.atomic_replace}). @raise Sys_error on IO failure (default backend). *)

val load : ?io:Io.t -> path:string -> unit -> (t, string) result
