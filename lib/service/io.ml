type out = {
  write : string -> unit;
  flush : unit -> unit;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  read_file : string -> (string, string) result;
  file_exists : string -> bool;
  open_out : append:bool -> string -> out;
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
  list_dir : string -> string list;
}

let close_noerr o = try o.close () with _ -> ()

(* write content to a temp file, fsync, rename over [path], fsync the
   parent directory — the file is never observable in a half-written state,
   and the rename itself is durable (a rename without a directory fsync may
   be rolled back by a power cut) *)
let atomic_replace io ~path content =
  let tmp = path ^ ".tmp" in
  let o = io.open_out ~append:false tmp in
  (match
     o.write content;
     o.fsync ()
   with
  | () -> o.close ()
  | exception e ->
      close_noerr o;
      raise e);
  io.rename ~src:tmp ~dst:path;
  io.fsync_dir (Filename.dirname path)
