(** The service's observability bundle: one {!Dvbp_obs.Registry} plus the
    journal- and server-side instruments, wired for the [METRICS] command.

    Layering: [lib/obs] knows nothing about the service; this module owns
    the metric {e names} (documented one by one in [OPERATIONS.md]) and
    the instruments behind them. The engine keeps plain counters
    ({!Dvbp_engine.Session.placements} and friends) that are registered
    here as pull metrics — sampled at render time, costing the hot path
    nothing — while the journal and server, where a syscall or a request
    dwarfs a histogram update, use push instruments.

    A {!noop} bundle (built on {!Dvbp_obs.Registry.noop}) never reads the
    clock and renders nothing; the sim sweeps and batch experiments pass
    it so instrumentation is compiled in but entirely inert. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A live bundle. [clock] defaults to [Unix.gettimeofday]; tests pass a
    fake clock for deterministic latencies and spans. *)

val noop : unit -> t
(** Records nothing, renders [""] (plus the [# EOF] terminator). *)

val is_noop : t -> bool

val registry : t -> Dvbp_obs.Registry.t
(** For registering additional pull metrics (the server adds its own
    request-level families). *)

val now : t -> float
(** The bundle clock; [0.] on noop (clock never called). *)

(** {1 Request kinds} *)

type kind = Arrive | Depart | Stats | Snapshot | Metrics | Other

val kind_of_line : string -> kind
(** Classifies a protocol line by its first token (for per-kind request
    counters and latency histograms). *)

val kind_name : kind -> string

(** {1 Journal-side hooks} *)

val on_append : t -> bytes:int -> unit
(** One record appended ([bytes] includes the newline). *)

val on_append_batch : t -> records:int -> bytes:int -> unit
(** One group-commit batch appended as a single buffered write: bumps the
    append/byte counters by the whole batch and records [records] into the
    [dvbp_journal_batch_size] histogram. The batch's single fsync is
    reported separately through {!time_fsync}. *)

val set_group_commit_waiters : t -> int -> unit
(** Gauge [dvbp_journal_group_commit_waiters]: replies currently staged
    behind the in-flight group commit (set just before the batch fsync,
    reset to [0] once the replies are released). *)

val time_fsync : t -> (unit -> unit) -> unit
(** Runs an fsync, counting it and timing it into the fsync-latency
    histogram. *)

val on_truncate : t -> unit
val on_heal : t -> unit
(** A torn or unterminated journal tail was rewritten on open. *)

val on_seal : t -> unit
(** One active segment sealed (footer + fsync + rename). *)

val on_retire : t -> segments:int -> bytes:int -> unit
(** Sealed segments unlinked by compaction: bumps
    [dvbp_journal_segments_retired_total] and
    [dvbp_journal_retired_bytes_total]. *)

val set_journal_live : t -> segments:int -> bytes:int -> unit
(** Gauges [dvbp_journal_segments] / [dvbp_journal_live_bytes]: live
    segment files (active included) and their total size, refreshed by the
    writer after every seal/retire/truncate/open. *)

(** {1 Compaction hooks} *)

val on_compaction : t -> seconds:float -> unit
(** One compaction pass completed (snapshot written, eligible sealed
    segments retired): counts it and observes the pass's wall time. *)

val set_compaction_lag : t -> int -> unit
(** Gauge [dvbp_server_compaction_lag_events]: events applied since the
    last durable snapshot frontier. *)

(** {1 Server-side hooks} *)

val on_request : t -> kind -> unit
(** One request line handled (counted even when the reply is ERR). *)

val observe_request : t -> kind -> seconds:float -> unit
(** End-to-end handling latency of one request (measured by the serve
    loop; in-process [handle_line] drivers don't produce latencies). *)

val observe_request_n : t -> kind -> seconds:float -> int -> unit
(** [observe_request_n t kind ~seconds k]: [k] requests of [kind] that all
    shared one latency — the group-commit batch path records a whole run
    with one bucket update instead of [k]. *)

val time_journal_append : t -> (unit -> 'a) -> 'a
(** Times the journal-before-reply write of one applied event. *)

val time_snapshot : t -> (unit -> 'a) -> 'a
(** Times a snapshot (manual or auto), also recording a ["snapshot"]
    span. *)

val observe_tenant_request : t -> tenant:string -> seconds:float -> unit
(** One event request for [tenant]: bumps
    [dvbp_server_tenant_requests_total{tenant=...}] and observes the
    latency into [dvbp_server_tenant_request_seconds{tenant=...}].
    Instruments are registered on the tenant's first event and memoized;
    cardinality is bounded by the number of live tenants. *)

val observe_tenant_request_n : t -> tenant:string -> seconds:float -> int -> unit
(** Bulk form of {!observe_tenant_request}: [k] event requests for
    [tenant] that shared one batch latency. *)

val request_summary : t -> Dvbp_obs.Histogram.snapshot
(** All per-kind request latency histograms merged — the source of the
    [STATS] line's backward-compatible [latency_mean_us]/[latency_max_us]
    fields. *)

val attach_session : t -> ?tenant:string -> policy:string -> Dvbp_engine.Session.t -> unit
(** Registers the engine pull family ([dvbp_engine_*], labelled
    [policy="..."] and, when [tenant] names a non-default tenant,
    [tenant="..."]) reading the session's counters at render time. *)

val observe_migration : t -> seconds:float -> unit
(** Wall time of one committed live migration, observed into the
    [dvbp_repack_migration_seconds] histogram (pass
    [observe_migration t] and the bundle clock to
    {!Dvbp_engine.Repack.create}). *)

val attach_repack : t -> policy:string -> Dvbp_engine.Repack.t -> unit
(** Registers the repacking pull family ([dvbp_repack_*], labelled
    [policy="..."]) reading the session's {!Dvbp_engine.Repack.stats}
    at render time: migrations, migration events, bins emptied,
    consolidations and budget-exhausted declines. *)

val render_text : t -> string
(** The full Prometheus-style exposition including spans, terminated by
    a final [# EOF] line (no trailing newline) — the [METRICS] reply and
    the [--metrics-dump] payload. *)
