(** The service's observability bundle: one {!Dvbp_obs.Registry} plus the
    journal- and server-side instruments, wired for the [METRICS] command.

    Layering: [lib/obs] knows nothing about the service; this module owns
    the metric {e names} (documented one by one in [OPERATIONS.md]) and
    the instruments behind them. The engine keeps plain counters
    ({!Dvbp_engine.Session.placements} and friends) that are registered
    here as pull metrics — sampled at render time, costing the hot path
    nothing — while the journal and server, where a syscall or a request
    dwarfs a histogram update, use push instruments.

    A {!noop} bundle (built on {!Dvbp_obs.Registry.noop}) never reads the
    clock and renders nothing; the sim sweeps and batch experiments pass
    it so instrumentation is compiled in but entirely inert. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A live bundle. [clock] defaults to [Unix.gettimeofday]; tests pass a
    fake clock for deterministic latencies and spans. *)

val noop : unit -> t
(** Records nothing, renders [""] (plus the [# EOF] terminator). *)

val is_noop : t -> bool

val registry : t -> Dvbp_obs.Registry.t
(** For registering additional pull metrics (the server adds its own
    request-level families). *)

val now : t -> float
(** The bundle clock; [0.] on noop (clock never called). *)

(** {1 Request kinds} *)

type kind = Arrive | Depart | Stats | Snapshot | Metrics | Other

val kind_of_line : string -> kind
(** Classifies a protocol line by its first token (for per-kind request
    counters and latency histograms). *)

val kind_name : kind -> string

(** {1 Journal-side hooks} *)

val on_append : t -> bytes:int -> unit
(** One record appended ([bytes] includes the newline). *)

val time_fsync : t -> (unit -> unit) -> unit
(** Runs an fsync, counting it and timing it into the fsync-latency
    histogram. *)

val on_truncate : t -> unit
val on_heal : t -> unit
(** A torn or unterminated journal tail was rewritten on open. *)

(** {1 Server-side hooks} *)

val on_request : t -> kind -> unit
(** One request line handled (counted even when the reply is ERR). *)

val observe_request : t -> kind -> seconds:float -> unit
(** End-to-end handling latency of one request (measured by the serve
    loop; in-process [handle_line] drivers don't produce latencies). *)

val time_journal_append : t -> (unit -> 'a) -> 'a
(** Times the journal-before-reply write of one applied event. *)

val time_snapshot : t -> (unit -> 'a) -> 'a
(** Times a snapshot (manual or auto), also recording a ["snapshot"]
    span. *)

val request_summary : t -> Dvbp_obs.Histogram.snapshot
(** All per-kind request latency histograms merged — the source of the
    [STATS] line's backward-compatible [latency_mean_us]/[latency_max_us]
    fields. *)

val attach_session : t -> policy:string -> Dvbp_engine.Session.t -> unit
(** Registers the engine pull family ([dvbp_engine_*], labelled
    [policy="..."]) reading the session's counters at render time. *)

val render_text : t -> string
(** The full Prometheus-style exposition including spans, terminated by
    a final [# EOF] line (no trailing newline) — the [METRICS] reply and
    the [--metrics-dump] payload. *)
