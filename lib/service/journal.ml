module Vec = Dvbp_vec.Vec

let magic = "# dvbp-journal v2"
let magic_v1 = "# dvbp-journal v1"

(* the codec lives in {!Record} (shared with {!Segment}); re-exported here
   so every existing caller keeps reading [Journal.Arrive]/[Journal.header] *)
type header = Record.header = {
  policy : string;
  seed : int;
  capacity : Vec.t;
  base : int;
}

type event = Record.event =
  | Arrive of {
      tenant : string;
      time : float;
      item_id : int;
      size : Vec.t;
      bin_id : int;
      opened_new_bin : bool;
    }
  | Depart of { tenant : string; time : float; item_id : int }

let event_time = Record.event_time
let event_item = Record.event_item
let event_tenant = Record.event_tenant
let equal_event = Record.equal_event
let pp_event = Record.pp_event
let encode_event = Record.encode_event
let decode_event = Record.decode_event

(* ---------- reading ---------- *)

type read = {
  header : header;
  events : event list;
  dropped_torn : bool;
  version : int;
}

(* legacy single-file reader (v1/v2 magic). Kept for reading journals from
   before the segmented format; {!append_to} migrates such a file into an
   active segment before the first new record. *)
let of_string text =
  let ( let* ) = Result.bind in
  if String.trim text = "" then Error "empty journal"
  else begin
    let terminated = text.[String.length text - 1] = '\n' in
    let lines = String.split_on_char '\n' text in
    (* a terminated file splits into a final "" pseudo-line: drop it *)
    let lines =
      if terminated then
        match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
      else lines
    in
    let p = Record.empty_partial () in
    let version = ref 2 in
    (* The final line of an unterminated file is a torn-write candidate: if
       it fails to parse it is dropped (the crash interrupted the append),
       never reported as corruption. Everywhere else, failures are hard. *)
    let rec go line ~events = function
      | [] ->
          let* header = Record.finish_header p in
          Ok { header; events = List.rev events; dropped_torn = false; version = !version }
      | raw :: rest -> (
          let torn_candidate = rest = [] && not terminated in
          let trimmed = String.trim raw in
          let tear_or error =
            if torn_candidate then
              let* header = Record.finish_header p in
              Ok { header; events = List.rev events; dropped_torn = true; version = !version }
            else error ()
          in
          if line = 1 then
            if trimmed = magic then go 2 ~events rest
            else if trimmed = magic_v1 then begin
              version := 1;
              go 2 ~events rest
            end
            else Error (Printf.sprintf "line 1: expected %S, got %S" magic trimmed)
          else if trimmed = "" || trimmed.[0] = '#' then go (line + 1) ~events rest
          else if Record.is_record trimmed then
            (* records may only follow a complete header *)
            let* _ = Record.finish_header p in
            match Record.decode_event ~version:!version trimmed with
            | Ok e -> go (line + 1) ~events:(e :: events) rest
            | Error msg ->
                tear_or (fun () -> Error (Printf.sprintf "line %d: %s" line msg))
          else
            match Record.header_row ~line p trimmed with
            | Ok () -> go (line + 1) ~events rest
            | Error msg -> tear_or (fun () -> Error msg))
    in
    go 1 ~events:[] lines
  end

let view_read (v : Log.view) =
  {
    header = v.Log.v_header;
    events = v.Log.v_events;
    dropped_torn = v.Log.v_dropped_torn;
    version = 2;
  }

let read_file ?(io = Real_io.v) path =
  if io.Io.file_exists path then
    match io.Io.read_file path with Ok text -> of_string text | Error msg -> Error msg
  else
    match Log.read ~io path with
    | Error msg -> Error msg
    | Ok (Some v) -> Ok (view_read v)
    | Ok None -> Error (Printf.sprintf "%s: no journal (no file, no segments)" path)

(* A journal "exists" once it holds durable state a resume must not ignore:
   a legacy file, any segment with a complete header — or unreadable
   segments, which must surface as a resume error rather than be shadowed
   by a silent fresh start. *)
let exists ?(io = Real_io.v) path =
  io.Io.file_exists path
  || (match Log.read ~io path with Ok None -> false | Ok (Some _) | Error _ -> true)

(* ---------- writing ---------- *)

type sealed_info = {
  si_idx : int;
  si_base : int;
  si_count : int;
  si_bytes : int;
  si_path : string;
}

type writer = {
  w_path : string;
  io : Io.t;
  metrics : Metrics.t;
  fsync_every : int;
  segment_bytes : int;
  shape : header;  (* policy/seed/capacity template for new segment headers *)
  mutable out : Io.out;
  mutable active_idx : int;
  mutable active_base : int;
  mutable active_count : int;
  mutable active_bytes : int;  (* active file size, header included *)
  mutable crc : int;  (* running CRC-32 of the active record region *)
  mutable sealed : sealed_info list;  (* ascending index *)
  mutable unsynced : int;
  mutable appended : int;
  mutable closed : bool;
}

let path w = w.w_path
let appended w = w.appended
let default_segment_bytes = 1 lsl 20

let validate_fsync_every fsync_every =
  if fsync_every < 1 then
    invalid_arg (Printf.sprintf "fsync_every must be >= 1, got %d" fsync_every)

let validate_segment_bytes segment_bytes =
  if segment_bytes < 64 then
    invalid_arg (Printf.sprintf "segment_bytes must be >= 64, got %d" segment_bytes)

let crc_add crc s =
  Dvbp_tracestore.Crc32.update crc
    (Bytes.unsafe_of_string s)
    ~pos:0 ~len:(String.length s)

let frontier w = w.active_base + w.active_count
let sealed_segments w = List.length w.sealed

let live_bytes w =
  List.fold_left (fun acc s -> acc + s.si_bytes) w.active_bytes w.sealed

let gauges w =
  Metrics.set_journal_live w.metrics
    ~segments:(List.length w.sealed + 1)
    ~bytes:(live_bytes w)

(* open a fresh active segment and make its header durable; the caller
   issues the directory fsync (usually batched with other entry changes) *)
let open_active ~(io : Io.t) ~path ~idx ~base shape =
  let p = Segment.name path ~idx Segment.Active in
  let out = io.Io.open_out ~append:false p in
  let hdr = Segment.header_string { shape with base } in
  out.Io.write hdr;
  out.Io.fsync ();
  (out, String.length hdr)

let create ?(io = Real_io.v) ?metrics ?(fsync_every = 64)
    ?(segment_bytes = default_segment_bytes) ~path header =
  let metrics = match metrics with Some m -> m | None -> Metrics.noop () in
  validate_fsync_every fsync_every;
  validate_segment_bytes segment_bytes;
  if header.base < 0 then invalid_arg "journal base must be non-negative";
  (* wipe whatever previous journal lived at this path: the legacy single
     file and any segment files (including crashed-genesis leftovers) *)
  let leftovers =
    (if io.Io.file_exists path then [ path ] else []) @ Log.all_paths ~io path
  in
  List.iter (fun p -> io.Io.remove p) leftovers;
  if leftovers <> [] then io.Io.fsync_dir (Filename.dirname path);
  let out, hbytes = open_active ~io ~path ~idx:0 ~base:header.base header in
  io.Io.fsync_dir (Filename.dirname path);
  let w =
    {
      w_path = path;
      io;
      metrics;
      fsync_every;
      segment_bytes;
      shape = header;
      out;
      active_idx = 0;
      active_base = header.base;
      active_count = 0;
      active_bytes = hbytes;
      crc = 0;
      sealed = [];
      unsynced = 0;
      appended = 0;
      closed = false;
    }
  in
  gauges w;
  w

(* Seal protocol: footer (count + region CRC), fsync, close, rename [.open]
   → [.seg], open the successor active with its header, one directory
   fsync covering both entry changes. The content fsync {e precedes} the
   rename, so a file named [.seg] is complete by construction — the read
   side ({!Segment.parse}) leans on that to reject any torn sealed file.
   With the {!Log.defeat_seal_check} test hook on, footer and fsync are
   skipped — the sweep uses that to prove the protocol is load-bearing. *)
let seal_active w =
  let dir = Filename.dirname w.w_path in
  if not !Log.defeat_seal_check then begin
    let footer = Segment.footer_string ~count:w.active_count ~crc:w.crc in
    w.out.Io.write footer;
    w.active_bytes <- w.active_bytes + String.length footer;
    Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ())
  end;
  w.out.Io.close ();
  let src = Segment.name w.w_path ~idx:w.active_idx Segment.Active in
  let dst = Segment.name w.w_path ~idx:w.active_idx Segment.Sealed in
  w.io.Io.rename ~src ~dst;
  w.sealed <-
    w.sealed
    @ [
        {
          si_idx = w.active_idx;
          si_base = w.active_base;
          si_count = w.active_count;
          si_bytes = w.active_bytes;
          si_path = dst;
        };
      ];
  Metrics.on_seal w.metrics;
  let idx = w.active_idx + 1 and base = w.active_base + w.active_count in
  let out, hbytes = open_active ~io:w.io ~path:w.w_path ~idx ~base w.shape in
  w.io.Io.fsync_dir dir;
  w.out <- out;
  w.active_idx <- idx;
  w.active_base <- base;
  w.active_count <- 0;
  w.active_bytes <- hbytes;
  w.crc <- 0;
  w.unsynced <- 0;
  gauges w

let check_open w = if w.closed then invalid_arg "journal writer is closed"

let append w e =
  check_open w;
  let line = Record.encode_event e in
  w.out.Io.write line;
  w.out.Io.write "\n";
  w.out.Io.flush ();
  Metrics.on_append w.metrics ~bytes:(String.length line + 1);
  w.appended <- w.appended + 1;
  w.active_count <- w.active_count + 1;
  w.active_bytes <- w.active_bytes + String.length line + 1;
  w.crc <- crc_add (crc_add w.crc line) "\n";
  w.unsynced <- w.unsynced + 1;
  if w.active_bytes >= w.segment_bytes then seal_active w
  else if w.unsynced >= w.fsync_every then begin
    Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ());
    w.unsynced <- 0
  end

(* Group commit: the whole batch becomes one buffered write and exactly
   one fsync — which, because fsync covers the file, also makes durable
   any records a streaming [append] left unsynced. An empty batch does
   nothing (no write, no fsync). The roll check runs once per batch, so
   a segment may overshoot its target by at most one batch. *)
let append_batch w events =
  check_open w;
  match events with
  | [] -> ()
  | _ ->
      let buf = Buffer.create 65536 in
      let scratch = Record.Scratch.create () in
      let n = ref 0 in
      List.iter
        (fun e ->
          Record.Scratch.reset scratch;
          Record.encode_into scratch e;
          Record.seal_to buf scratch;
          Buffer.add_char buf '\n';
          incr n)
        events;
      let s = Buffer.contents buf in
      let bytes = String.length s in
      w.out.Io.write s;
      w.out.Io.flush ();
      Metrics.on_append_batch w.metrics ~records:!n ~bytes;
      w.appended <- w.appended + !n;
      w.active_count <- w.active_count + !n;
      w.active_bytes <- w.active_bytes + bytes;
      w.crc <- crc_add w.crc s;
      Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ());
      w.unsynced <- 0;
      if w.active_bytes >= w.segment_bytes then seal_active w

let sync w =
  check_open w;
  Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ());
  w.unsynced <- 0

(* Drop everything: a snapshot absorbed the whole prefix. A fresh active
   segment with [base = new_base] is created and made durable {e before}
   the old files are unlinked, so a crash anywhere in between leaves a
   readable chain (the old active's end equals the new base, so both chain
   together until the removes land; a torn old active simply drops out as
   stale, its records covered by the snapshot). *)
let truncate w ~new_base =
  check_open w;
  if new_base < 0 then invalid_arg "journal base must be non-negative";
  Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ());
  w.out.Io.close ();
  let dir = Filename.dirname w.w_path in
  let old_active = Segment.name w.w_path ~idx:w.active_idx Segment.Active in
  let idx = w.active_idx + 1 in
  let out, hbytes = open_active ~io:w.io ~path:w.w_path ~idx ~base:new_base w.shape in
  w.io.Io.fsync_dir dir;
  List.iter (fun s -> w.io.Io.remove s.si_path) w.sealed;
  w.io.Io.remove old_active;
  w.io.Io.fsync_dir dir;
  Metrics.on_truncate w.metrics;
  w.out <- out;
  w.active_idx <- idx;
  w.active_base <- new_base;
  w.active_count <- 0;
  w.active_bytes <- hbytes;
  w.crc <- 0;
  w.sealed <- [];
  w.unsynced <- 0;
  gauges w

(* Online compaction's disk-reclaim half: unlink sealed segments whose
   records all fall at or below [upto] (an event frontier some durable
   snapshot covers), oldest first so any crash leaves a contiguous
   suffix. Bounded by [max_segments] per call to keep event-loop ticks
   short. Returns the number retired. *)
let retire_sealed ?(max_segments = max_int) w ~upto =
  check_open w;
  let rec split acc n = function
    | s :: rest when n < max_segments && s.si_base + s.si_count <= upto ->
        split (s :: acc) (n + 1) rest
    | rest -> (List.rev acc, rest)
  in
  let victims, keep = split [] 0 w.sealed in
  match victims with
  | [] -> 0
  | _ ->
      List.iter (fun s -> w.io.Io.remove s.si_path) victims;
      w.io.Io.fsync_dir (Filename.dirname w.w_path);
      w.sealed <- keep;
      Metrics.on_retire w.metrics
        ~segments:(List.length victims)
        ~bytes:(List.fold_left (fun acc s -> acc + s.si_bytes) 0 victims);
      gauges w;
      List.length victims

let close w =
  if not w.closed then begin
    Metrics.time_fsync w.metrics (fun () -> w.out.Io.fsync ());
    w.out.Io.close ();
    w.closed <- true
  end

let ( let* ) = Result.bind

let check_shape ~path (expected : header) (h : header) =
  if h.policy <> expected.policy then
    Error
      (Printf.sprintf "%s: journal was written by policy %s, not %s" path h.policy
         expected.policy)
  else if h.seed <> expected.seed then
    Error
      (Printf.sprintf "%s: journal was written with seed %d, not %d" path h.seed
         expected.seed)
  else if not (Vec.equal h.capacity expected.capacity) then
    Error
      (Printf.sprintf "%s: journal capacity %s does not match %s" path
         (Vec.to_string h.capacity)
         (Vec.to_string expected.capacity))
  else Ok ()

let encode_region events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Record.encode_event e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let append_to ?(io = Real_io.v) ?metrics ?(fsync_every = 64)
    ?(segment_bytes = default_segment_bytes) ~path header =
  let metrics = match metrics with Some m -> m | None -> Metrics.noop () in
  validate_fsync_every fsync_every;
  validate_segment_bytes segment_bytes;
  let dir = Filename.dirname path in
  let fresh () =
    let w = create ~io ~metrics ~fsync_every ~segment_bytes ~path header in
    Ok (w, { header; events = []; dropped_torn = false; version = 2 })
  in
  let mk_writer ~out ~active_idx ~active_base ~active_count ~active_bytes ~crc
      ~sealed =
    let w =
      {
        w_path = path;
        io;
        metrics;
        fsync_every;
        segment_bytes;
        shape = header;
        out;
        active_idx;
        active_base;
        active_count;
        active_bytes;
        crc;
        sealed;
        unsynced = 0;
        appended = 0;
        closed = false;
      }
    in
    gauges w;
    w
  in
  if io.Io.file_exists path then begin
    (* Legacy single-file journal: validate, heal, then migrate it into one
       active segment — segment made durable, then the legacy file removed
       (and the removal dirsynced) before any new append, so at every crash
       point either the legacy file or a superset segment is authoritative,
       never neither. *)
    match io.Io.read_file path with
    | Error msg -> Error msg
    | Ok "" -> fresh ()
    | Ok text -> (
        match of_string text with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok r ->
            let* () = check_shape ~path header r.header in
            let unterminated = text.[String.length text - 1] <> '\n' in
            if r.dropped_torn || unterminated then Metrics.on_heal metrics;
            let hdr = Segment.header_string r.header in
            let region = encode_region r.events in
            let apath = Segment.name path ~idx:0 Segment.Active in
            let out = io.Io.open_out ~append:false apath in
            out.Io.write hdr;
            out.Io.write region;
            out.Io.fsync ();
            io.Io.fsync_dir dir;
            io.Io.remove path;
            io.Io.fsync_dir dir;
            Ok
              ( mk_writer ~out ~active_idx:0 ~active_base:r.header.base
                  ~active_count:(List.length r.events)
                  ~active_bytes:(String.length hdr + String.length region)
                  ~crc:(crc_add 0 region) ~sealed:[],
                r ))
  end
  else
    match Log.read ~io path with
    | Error msg -> Error msg
    | Ok None -> fresh ()
    | Ok (Some v) ->
        let* () = check_shape ~path header v.Log.v_header in
        (* directory maintenance before reopening: finish seals whose
           rename a crash rolled back, drop stale files the chain walk
           excluded (retire/truncate leftovers, crashed births) *)
        let sealed_path (s : Log.seg) =
          Segment.name path ~idx:s.Log.s_idx Segment.Sealed
        in
        List.iter
          (fun (s : Log.seg) -> io.Io.rename ~src:s.Log.s_path ~dst:(sealed_path s))
          v.Log.v_misnamed;
        List.iter (fun p -> io.Io.remove p) v.Log.v_stale;
        if v.Log.v_misnamed <> [] || v.Log.v_stale <> [] then io.Io.fsync_dir dir;
        let sealed =
          List.filter (fun (s : Log.seg) -> s.Log.s_sealed) v.Log.v_chain
          |> List.map (fun (s : Log.seg) ->
                 {
                   si_idx = s.Log.s_idx;
                   si_base = Log.s_base s;
                   si_count = s.Log.s_count;
                   si_bytes = s.Log.s_bytes;
                   si_path = sealed_path s;
                 })
        in
        let r = view_read v in
        (match v.Log.v_active with
        | Some a ->
            (* an unterminated tail must not stay on disk: appending after
               it would weld the fragment to the next record. Rewrite the
               active segment in place (atomically) when its tail was torn
               or merely missed its final newline. Sealed segments never
               take this path — a short read there was a hard error. *)
            let needs_heal = a.Log.s_dropped_torn || a.Log.s_unterminated in
            if needs_heal then Metrics.on_heal metrics;
            let hdr = Segment.header_string a.Log.s_header in
            let region =
              if needs_heal then begin
                let region = encode_region a.Log.s_events in
                Io.atomic_replace io ~path:a.Log.s_path (hdr ^ region);
                region
              end
              else a.Log.s_region
            in
            Ok
              ( mk_writer
                  ~out:(io.Io.open_out ~append:true a.Log.s_path)
                  ~active_idx:a.Log.s_idx ~active_base:(Log.s_base a)
                  ~active_count:a.Log.s_count
                  ~active_bytes:(String.length hdr + String.length region)
                  ~crc:(crc_add 0 region) ~sealed,
                r )
        | None ->
            (* every chain segment is sealed (or the directory only held
               sealed files): start a fresh active above the frontier *)
            let base = Log.frontier v in
            let out, hbytes =
              open_active ~io ~path ~idx:v.Log.v_next_idx ~base header
            in
            io.Io.fsync_dir dir;
            Ok
              ( mk_writer ~out ~active_idx:v.Log.v_next_idx ~active_base:base
                  ~active_count:0 ~active_bytes:hbytes ~crc:0 ~sealed,
                r ))
