(** Rebuild live tenant sessions from snapshot + journal, verifying as it
    goes.

    The recovery invariant: replaying the recorded event history through
    fresh deterministic sessions must reproduce {e exactly} the placements
    the original server recorded — same bin id, same opened-new-bin flag,
    event by event. Sessions are deterministic (the golden tests pin this)
    and tenant shard/rng assignment is a pure function of the tenant name
    ({!Tenant}), so any deviation means the files are corrupt, were produced
    by a different policy/seed/capacity, or the library's behaviour changed;
    all three must be a hard error, never silent divergence.

    Order of operations:
    + load the snapshot if one exists (its absence is fine: the journal then
      must start at event 0);
    + replay the snapshot's history (arrival order across tenants, each
      event routed to its tenant's session, sessions created on first
      touch), verifying each recorded placement;
    + cross-check every rebuilt session against the snapshot's per-tenant
      state digests (clock, cost, bins opened, open bins with occupants) —
      both directions: a digest without a matching session is checked
      against a fresh zero-state one, a touched tenant without a digest is
      an error;
    + replay the journal suffix (records the snapshot has already absorbed
      are skipped after checking they match the snapshot history), verifying
      each recorded placement.

    The returned sessions are live: a server can resume serving from them. *)

type state = {
  sessions : (string * Dvbp_engine.Session.t) list;
      (** tenant sessions in first-appearance order; the {!Tenant.default}
          session always exists and comes first *)
  policy : string;
  seed : int;
  capacity : Dvbp_vec.Vec.t;
  history : Journal.event list;
      (** every applied event since genesis, in order — what the next
          snapshot must record *)
  from_snapshot : int;  (** events restored via the snapshot's history *)
  from_journal : int;  (** events replayed from the journal suffix *)
  dropped_torn : bool;  (** the journal's torn final record was dropped *)
}

val session : state -> Dvbp_engine.Session.t
(** The {!Tenant.default} tenant's session (always present). *)

val replay :
  policy:string ->
  seed:int ->
  capacity:Dvbp_vec.Vec.t ->
  Journal.event list ->
  ((string * Dvbp_engine.Session.t) list, string) result
(** Fresh sessions, events applied in order (routed by tenant), each
    recorded placement checked against the recomputed one. Also the
    building block of the loadgen's shadow check. *)

val recover :
  ?io:Io.t -> ?snapshot:string -> journal:string -> unit -> (state, string) result
(** [snapshot] names where snapshots are written; a missing snapshot file is
    not an error (recovery then replays the whole journal), a corrupt one
    is. A missing or corrupt journal is an error. [io] (default
    {!Real_io.v}) is the backend both files are read through. *)

val render : state -> string
(** Operator-facing multi-line summary of the recovered state. *)
