(* One fixed-size log segment of the segmented journal (see {!Log} for the
   directory view and {!Journal} for the writer facade).

   File format (text, like the legacy journal):

   {v
   # dvbp-segment v1
   policy,mtf
   seed,42
   capacity,100,100
   base,17
   arrive,default,0x1.8p+1,3,0,1,30,20,~0f3a
   seal,1,9ae1c2d4
   v}

   [base] is the global index of the segment's first record. A {e sealed}
   segment ([<journal>.NNNNNN.seg]) ends with a [seal,<count>,<crc32>]
   footer: [count] records, CRC-32 over the record-region bytes (everything
   between the header's last row and the footer, newlines included). The
   seal invariant — content fsynced before the [.open] → [.seg] rename —
   means a sealed segment is complete by construction, so {e any} short
   read, torn tail or footer mismatch inside one is a hard error, never
   healed. Only the {e active} segment ([.seg.open]) may end mid-record
   after a crash; its unterminated final line is dropped exactly like the
   legacy journal's torn tail. *)

let magic = "# dvbp-segment v1"

type kind = Sealed | Active

(* [<prefix>.%06d.seg[.open]] — sibling files of the configured journal
   path, so no directory-creation protocol is needed and `ls <journal>.*`
   finds every segment *)
let name prefix ~idx = function
  | Sealed -> Printf.sprintf "%s.%06d.seg" prefix idx
  | Active -> Printf.sprintf "%s.%06d.seg.open" prefix idx

(* classify a directory entry against the journal path's basename;
   anything that is not exactly [<base>.<digits>.seg[.open]] is ignored
   (tmp files, the legacy journal itself, unrelated files) *)
let classify ~basename entry =
  let prefix = basename ^ "." in
  let pn = String.length prefix in
  let en = String.length entry in
  if en <= pn || not (String.equal (String.sub entry 0 pn) prefix) then None
  else
    let rest = String.sub entry pn (en - pn) in
    let with_suffix suffix kind =
      let sn = String.length suffix in
      let rn = String.length rest in
      if rn <= sn || not (String.equal (String.sub rest (rn - sn) sn) suffix) then None
      else
        let digits = String.sub rest 0 (rn - sn) in
        if
          String.length digits > 0
          && String.for_all (fun c -> c >= '0' && c <= '9') digits
          && String.length digits <= 9
        then Some (int_of_string digits, kind)
        else None
    in
    match with_suffix ".seg.open" Active with
    | Some _ as r -> r
    | None -> with_suffix ".seg" Sealed

let header_string h = magic ^ "\n" ^ Record.header_rows h

let footer_string ~count ~crc = Printf.sprintf "seal,%d,%08x\n" count crc

let is_footer trimmed =
  String.length trimmed >= 5 && String.sub trimmed 0 5 = "seal,"

let parse_footer trimmed =
  match String.split_on_char ',' trimmed with
  | [ "seal"; count; crc ] -> (
      match (int_of_string_opt count, int_of_string_opt ("0x" ^ crc)) with
      | Some c, Some x when c >= 0 && String.length crc = 8 -> Some (c, x)
      | _ -> None)
  | _ -> None

type parsed =
  | Incomplete
      (* the header never finished — reachable only when a crash cut the
         segment's birth (header write precedes the first record and its
         fsync, and tearing removes suffixes), so there is nothing to
         recover: the segment is treated as absent *)
  | Complete of {
      header : Record.header;
      events : Record.event list;
      sealed : bool;  (* a valid seal footer was present and verified *)
      dropped_torn : bool;  (* active only: unterminated final line dropped *)
      unterminated : bool;  (* final record parsed but missed its newline *)
      region : string;  (* record-region bytes (post-heal, newlines incl.) *)
    }

let ( let* ) = Result.bind

(* [expect_sealed] turns every healing path into a hard error and requires
   the footer — the read side of the seal invariant. {!Log} passes [false]
   for the active segment (and, with the test-only sensitivity hook on,
   for sealed ones too, which is exactly what the sweep must catch). *)
let parse ~expect_sealed text =
  if String.trim text = "" then
    if expect_sealed then Error "empty sealed segment" else Ok Incomplete
  else begin
    let n = String.length text in
    let terminated = text.[n - 1] = '\n' in
    (* (line, start offset, is_last) triples *)
    let lines =
      let acc = ref [] and start = ref 0 in
      (try
         while true do
           let nl = String.index_from text !start '\n' in
           acc := (String.sub text !start (nl - !start), !start) :: !acc;
           start := nl + 1
         done
       with Not_found ->
         if !start < n then acc := (String.sub text !start (n - !start), !start) :: !acc);
      List.rev !acc
    in
    let last_index = List.length lines - 1 in
    let p = Record.empty_partial () in
    (* record region: [region_lo] is set when the first record (or the
       footer of an empty sealed segment) is reached; [region_hi] advances
       past each accepted record so a healed tail is excluded *)
    let region_lo = ref (-1) and region_hi = ref (-1) in
    let finish_active ~events ~dropped_torn ~unterminated =
      match Record.finish_header p with
      | Error _ ->
          if events <> [] then Error "records before a complete header"
          else Ok Incomplete
      | Ok header ->
          let region =
            if !region_lo < 0 then ""
            else String.sub text !region_lo (!region_hi - !region_lo)
          in
          Ok
            (Complete
               { header; events = List.rev events; sealed = false; dropped_torn;
                 unterminated; region })
    in
    let rec go i ~events = function
      | [] ->
          if expect_sealed then Error "sealed segment is missing its seal footer"
          else finish_active ~events ~dropped_torn:false ~unterminated:false
      | (raw, off) :: rest -> (
          let lineno = i + 1 in
          let is_last = i = last_index in
          let line_end = if is_last && not terminated then n else off + String.length raw + 1 in
          let torn_candidate = is_last && (not terminated) && not expect_sealed in
          let trimmed = String.trim raw in
          let tear_or error =
            if torn_candidate then
              finish_active ~events ~dropped_torn:true ~unterminated:false
            else error ()
          in
          if i = 0 then
            if trimmed = magic then go 1 ~events rest
            else if torn_candidate then Ok Incomplete
            else Error (Printf.sprintf "line 1: expected %S, got %S" magic trimmed)
          else if trimmed = "" || trimmed.[0] = '#' then begin
            if !region_lo >= 0 then
              tear_or (fun () ->
                  Error (Printf.sprintf "line %d: blank or comment line inside the record region" lineno))
            else go (i + 1) ~events rest
          end
          else if Record.is_record trimmed then begin
            match Record.finish_header p with
            | Error _ ->
                tear_or (fun () ->
                    Error (Printf.sprintf "line %d: record before a complete header" lineno))
            | Ok _ -> (
                match Record.decode_event ~version:2 trimmed with
                | Ok e ->
                    if !region_lo < 0 then region_lo := off;
                    region_hi := line_end;
                    if is_last && not terminated then
                      finish_active ~events:(e :: events) ~dropped_torn:false
                        ~unterminated:true
                    else go (i + 1) ~events:(e :: events) rest
                | Error msg ->
                    tear_or (fun () -> Error (Printf.sprintf "line %d: %s" lineno msg)))
          end
          else if is_footer trimmed then begin
            match Record.finish_header p with
            | Error _ ->
                tear_or (fun () ->
                    Error (Printf.sprintf "line %d: seal footer before a complete header" lineno))
            | Ok header -> (
                if is_last && not terminated then
                  (* a torn footer: the seal never completed — the segment
                     is still active (the rename cannot have happened, it
                     follows the footer's fsync) *)
                  tear_or (fun () ->
                      Error (Printf.sprintf "line %d: unterminated seal footer" lineno))
                else if not is_last then
                  Error (Printf.sprintf "line %d: data after the seal footer" lineno)
                else
                  match parse_footer trimmed with
                  | None -> Error (Printf.sprintf "line %d: malformed seal footer %S" lineno trimmed)
                  | Some (count, crc) ->
                      if !region_lo < 0 then begin
                        region_lo := off;
                        region_hi := off
                      end;
                      let region = String.sub text !region_lo (!region_hi - !region_lo) in
                      let events = List.rev events in
                      if List.length events <> count then
                        Error
                          (Printf.sprintf
                             "seal footer says %d records but the segment holds %d"
                             count (List.length events))
                      else if Dvbp_tracestore.Crc32.string region <> crc then
                        Error "seal footer CRC mismatch — sealed segment corrupted"
                      else
                        Ok
                          (Complete
                             { header; events; sealed = true; dropped_torn = false;
                               unterminated = false; region }))
          end
          else begin
            match Record.header_row ~line:lineno p trimmed with
            | Ok () ->
                if !region_lo >= 0 then
                  Error (Printf.sprintf "line %d: header row inside the record region" lineno)
                else go (i + 1) ~events rest
            | Error msg -> tear_or (fun () -> Error msg)
          end)
    in
    let* r = go 0 ~events:[] lines in
    match r with
    | Incomplete when expect_sealed -> Error "sealed segment header is incomplete"
    | r -> Ok r
  end
