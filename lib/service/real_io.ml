let fsync_dir dir =
  (* Directory fds cannot be opened for writing; O_RDONLY + fsync is the
     portable recipe on Linux. Some filesystems refuse to fsync a directory
     (EINVAL) — that is a property of the mount, not a caller bug, so it is
     swallowed: durability then degrades to what the filesystem offers. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let open_out_handle ~append path =
  let flags =
    Open_wronly :: Open_creat :: (if append then [ Open_append ] else [ Open_trunc ])
  in
  let oc = open_out_gen flags 0o644 path in
  {
    Io.write = (fun s -> output_string oc s);
    flush = (fun () -> flush oc);
    fsync =
      (fun () ->
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    close = (fun () -> close_out oc);
  }

let v =
  {
    Io.read_file =
      (fun path ->
        match In_channel.with_open_bin path In_channel.input_all with
        | text -> Ok text
        | exception Sys_error msg -> Error msg);
    file_exists = Sys.file_exists;
    open_out = open_out_handle;
    rename = (fun ~src ~dst -> Sys.rename src dst);
    fsync_dir;
    remove = Sys.remove;
    list_dir =
      (fun dir ->
        match Sys.readdir dir with
        | entries ->
            let l = Array.to_list entries in
            List.sort String.compare l
        | exception Sys_error _ -> []);
  }
