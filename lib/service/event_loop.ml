type conn = {
  fd : Unix.file_descr;
  mutable carry : string;  (* partial line carried between reads *)
  pending : string Queue.t;  (* complete lines not yet handled *)
  out : Buffer.t;  (* reply bytes accumulating until the next write *)
  mutable flushing : string;  (* snapshot being written, from [out_pos] *)
  mutable out_pos : int;
  mutable closing : bool;  (* QUIT or EOF seen: drain out, then close *)
  mutable closed : bool;
}

let make_conn fd =
  Unix.set_nonblock fd;
  {
    fd;
    carry = "";
    pending = Queue.create ();
    out = Buffer.create 4096;
    flushing = "";
    out_pos = 0;
    closing = false;
    closed = false;
  }

let has_out c = c.out_pos < String.length c.flushing || Buffer.length c.out > 0

let close_conn c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

(* split [carry ^ chunk] into complete lines + a new carry *)
let push_lines c chunk =
  let data = if c.carry = "" then chunk else c.carry ^ chunk in
  let n = String.length data in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from data !start '\n' in
       Queue.add (String.sub data !start (nl - !start)) c.pending;
       start := nl + 1
     done
   with Not_found -> ());
  c.carry <- if !start >= n then "" else String.sub data !start (n - !start)

(* [buf] is a reusable scratch owned by the calling serve loop: the chunk
   is copied into line strings before the next read, and allocating 64 KB
   per read(2) call is needless GC churn at 300k events/s *)
let read_chunk buf c =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 ->
      (* EOF: a trailing unterminated line still counts as a request, like
         the blocking loop's [input_line] *)
      if c.carry <> "" then begin
        Queue.add c.carry c.pending;
        c.carry <- ""
      end;
      c.closing <- true
  | n -> push_lines c (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> c.closing <- true

let try_write c =
  if not c.closed then begin
    (* snapshot accumulated replies once; a partial write then resumes
       into the immutable string instead of re-copying the buffer on
       every attempt (reply windows run to hundreds of KB) *)
    if c.out_pos >= String.length c.flushing && Buffer.length c.out > 0 then begin
      c.flushing <- Buffer.contents c.out;
      Buffer.clear c.out;
      c.out_pos <- 0
    end;
    let len = String.length c.flushing - c.out_pos in
    if len > 0 then
      match Unix.single_write_substring c.fd c.flushing c.out_pos len with
      | written ->
          c.out_pos <- c.out_pos + written;
          if c.out_pos >= String.length c.flushing then begin
            c.flushing <- "";
            c.out_pos <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ ->
          (* peer vanished: drop the connection, keep serving the rest *)
          Buffer.clear c.out;
          c.flushing <- "";
          c.out_pos <- 0;
          c.closing <- true
  end;
  if c.closing && (not (has_out c)) && Queue.is_empty c.pending then close_conn c

let serve ?(max_batch = 16384) ?listen ?(conns = []) ?(stop_when_drained = true) server =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  (match listen with Some fd -> Unix.set_nonblock fd | None -> ());
  let live = ref (List.map make_conn conns) in
  let ever_connected = ref (conns <> []) in
  (* preallocated batch slots: lines and their owner's index into this
     round's live array — refilled every dispatch, never re-allocated *)
  let batch_lines = Array.make max_batch "" in
  let batch_owner = Array.make max_batch (-1) in
  let read_scratch = Bytes.create 65536 in
  let drain_round live_arr =
    (* round-robin across connections: preserves per-connection FIFO while
       interleaving tenants fairly into one batch *)
    let k = Array.length live_arr in
    let batched = ref 0 in
    let progressed = ref true in
    while !progressed && !batched < max_batch do
      progressed := false;
      for i = 0 to k - 1 do
        let c = live_arr.(i) in
        if (not c.closed) && !batched < max_batch && not (Queue.is_empty c.pending)
        then begin
          batch_lines.(!batched) <- Queue.pop c.pending;
          batch_owner.(!batched) <- i;
          incr batched;
          progressed := true
        end
      done
    done;
    !batched
  in
  let dispatch live_arr n =
    if n > 0 then begin
      let replies = Server.handle_batch server (Array.sub batch_lines 0 n) in
      Array.iteri
        (fun i (reply, quit) ->
          let c = live_arr.(batch_owner.(i)) in
          if not c.closed then begin
            Buffer.add_string c.out reply;
            Buffer.add_char c.out '\n';
            if quit then c.closing <- true
          end)
        replies;
      (* drop the slot references so handled request lines can be GC'd *)
      Array.fill batch_lines 0 n ""
    end
  in
  let rec loop () =
    live := List.filter (fun c -> not c.closed) !live;
    let drained = !live = [] && listen = None in
    if not (stop_when_drained && !ever_connected && drained) then begin
      let read_fds =
        (match listen with Some fd -> [ fd ] | None -> [])
        @ List.filter_map
            (fun c -> if c.closing || c.closed then None else Some c.fd)
            !live
      in
      let write_fds =
        List.filter_map
          (fun c -> if (not c.closed) && has_out c then Some c.fd else None)
          !live
      in
      let have_pending =
        List.exists (fun c -> not (Queue.is_empty c.pending)) !live
      in
      if read_fds = [] && write_fds = [] && not have_pending then
        (* nothing left to wait on and told to keep going: all conns are
           gone and there is no listener — without a wake-up source this
           would spin, so stop *)
        ()
      else begin
        let timeout =
          (* compaction in flight: poll so its bounded steps keep running
             between batches instead of stalling until the next request *)
          if have_pending || Server.compaction_pending server then 0.0 else -1.0
        in
        let readable, writable, _ =
          match Unix.select read_fds write_fds [] timeout with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        (match listen with
        | Some lfd when List.memq lfd readable -> (
            match Unix.accept ~cloexec:true lfd with
            | fd, _ ->
                ever_connected := true;
                live := !live @ [ make_conn fd ]
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              -> ())
        | _ -> ());
        List.iter
          (fun c -> if List.memq c.fd readable then read_chunk read_scratch c)
          !live;
        let live_arr = Array.of_list !live in
        dispatch live_arr (drain_round live_arr);
        List.iter
          (fun c ->
            if List.memq c.fd writable || has_out c || c.closing then try_write c)
          !live;
        (* one bounded unit of compaction per tick, after replies are
           staged — group-commit acks never wait on a retire *)
        Server.compaction_step server;
        loop ()
      end
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn !live;
      Server.close server)
    loop
