(** Injectable file-I/O backend for the service layer.

    Everything {!Journal}, {!Snapshot} and {!Recovery} do to the filesystem
    goes through one of these records, so the same code runs against the
    real filesystem ({!Real_io}) and against the deterministic simulated
    filesystem used for crash testing ([Dvbp_sim.Sim_fs]), which can tear
    writes, lose unsynced data and roll back renames at any I/O boundary.

    The contract distinguishes three durability levels, mirroring POSIX:
    - {!out.write} buffers in the process — lost on any crash;
    - {!out.flush} hands the bytes to the OS ([write(2)]) — they survive a
      process kill ([SIGKILL]) but not a power cut;
    - {!out.fsync} makes them durable ([fsync(2)]).

    File {e contents} and directory {e entries} are durable independently: a
    rename (or creation) is only guaranteed to survive a power cut after
    {!t.fsync_dir} on the containing directory. {!atomic_replace} sequences
    all of this correctly and is the one way service code replaces a file. *)

type out = {
  write : string -> unit;  (** buffer bytes in the process *)
  flush : unit -> unit;  (** push buffered bytes to the OS *)
  fsync : unit -> unit;  (** flush, then make the contents durable *)
  close : unit -> unit;  (** flushes; does {e not} fsync *)
}
(** An open file handle (write side). *)

type t = {
  read_file : string -> (string, string) result;
      (** whole contents; [Error] for a missing or unreadable file *)
  file_exists : string -> bool;
  open_out : append:bool -> string -> out;
      (** creates if missing; truncates unless [append] *)
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
      (** make the directory's entries (creations, renames) durable *)
  remove : string -> unit;
  list_dir : string -> string list;
      (** entry basenames, sorted; [[]] for a missing directory. The
          segmented journal scans its directory through this, so the
          simulated backend can expose crash-resolved entry states. *)
}

val close_noerr : out -> unit

val atomic_replace : t -> path:string -> string -> unit
(** [atomic_replace io ~path content]: write [content] to [path ^ ".tmp"],
    fsync it, close, rename over [path], fsync the parent directory. After a
    crash at any point the reader sees either the old file or the new one,
    never a mixture; once this returns, the new contents are durable. *)
