module Rng = Dvbp_prelude.Rng

let default = "default"

let max_length = 64

let valid_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_valid name =
  let n = String.length name in
  n > 0 && n <= max_length
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (valid_char name.[i]) then ok := false
  done;
  !ok

let validate name =
  if is_valid name then Ok name
  else
    Error
      (Printf.sprintf
         "bad tenant %S (1-%d chars from [A-Za-z0-9_.-])" name max_length)

(* FNV-1a over the tenant name, folded to a non-negative OCaml int. The
   hash is part of the durability contract: it seeds the tenant's policy
   rng and picks its shard, and a recovered server must derive the same
   values from the journal alone — so it must never depend on process
   state (no [Hashtbl.hash], whose layout rules may move between compiler
   versions). *)
let hash name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  Int64.to_int !h land max_int

let shard ~jobs name = if jobs <= 1 then 0 else hash name mod jobs

(* The default tenant keeps the exact rng stream single-tenant servers
   always had (so v1 journals with seeded policies still replay
   bit-identically); every other tenant gets an independent split keyed
   by its name hash. *)
let rng ~seed name =
  let root = Rng.create ~seed in
  if String.equal name default then root else Rng.split root ~key:(hash name)
